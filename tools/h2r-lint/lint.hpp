// h2r-lint: the determinism & concurrency static-analysis pass.
//
// The engine's load-bearing property is that a study run is bit-identical
// across thread counts, seeds, resume points and fault rates. Every test
// that proves it (differential crawls, golden studies, metric snapshot
// diffs) is dynamic: it only catches a stray wall-clock read or an
// unordered-container iteration if a run happens to make the hazard
// visible. This tool is the static side of that contract — a token-level
// scanner (same hand-rolled philosophy as src/json: no libclang, no
// external deps) that walks src/, bench/ and tools/ and reports any use
// of an API or pattern that can silently break determinism.
//
// Rules (ids are stable; DESIGN.md §10 carries the authoritative table):
//
//   ban.clock      real-clock reads: std::chrono::{system,steady,
//                  high_resolution}_clock, clock_gettime
//   ban.time       C time APIs: time(), gettimeofday(), localtime(),
//                  gmtime(), mktime(), strftime()
//   ban.rand       non-seeded randomness: rand(), srand(),
//                  std::random_device
//   ban.thread-id  scheduler-dependent identity: std::thread::id,
//                  std::this_thread::get_id
//   ban.async      std::async (unordered completion; the crawl's worker
//                  pool is the sanctioned concurrency substrate)
//   env.getenv     raw getenv/setenv/unsetenv/putenv outside
//                  src/util/env.* — config must flow through the strict
//                  typed parsers (util::env_u64 and friends)
//   order.unordered  std::unordered_{map,set,multimap,multiset} declared
//                  in a translation unit that also serializes or merges
//                  (to_json / merge( / operator==): iteration order is
//                  seed-dependent and would leak into reports
//   lock.guards    a mutex member/variable without a `guards:` comment
//                  naming the state it protects (warning; error in
//                  --strict/CI)
//   lock.atomic-mix  one std::atomic member accessed both through
//                  explicit memory-order calls (.load/.store/.fetch_*)
//                  and through implicit seq_cst operators (=, ++, +=) in
//                  the same file — the mixed discipline hides which
//                  orderings the algorithm actually needs (warning;
//                  error in --strict/CI)
//   allow.reason   an allow annotation with no ` -- reason` clause; an
//                  unexplained suppression is itself a finding
//
// On top of the per-TU token rules sits the cross-TU contract pass
// (model.hpp / contract.hpp), which builds a lightweight semantic model
// of every scanned file together and proves relations no single-file
// scan can see:
//
//   contract.merge-coverage  every field of a struct with a merge()/add()
//                  taking the struct itself is combined in it
//   contract.codec-coverage  every field is both serialized by the
//                  struct's *to_json and parsed by its *from_json
//   contract.eq-coverage     every field participates in operator==
//                  (defaulted ==/<=> passes by construction)
//   lock.order     the lock-acquisition graph over all modeled mutexes
//                  (members, namespace- and function-scope) is acyclic
//   hotpath.alloc  no heap allocation inside functions annotated
//                  `// h2r-lint: hotpath -- reason`
//
// Per-field contract annotations (audited, reason mandatory):
//
//   // contract: diagnostic -- <reason>
//       excludes the field from merge, eq and codec coverage (the obs
//       diagnostic-domain quarantine).
//   // contract: exclude(merge|eq|codec[, ...]) -- <reason>
//       excludes the field from the named rules only.
//
// Suppression grammar (audited allows, not blanket ignores):
//
//   // h2r-lint: allow(rule[, rule...]) -- <reason>
//       suppresses those rules on this line, or — when the annotation
//       stands on a comment-only line — on the next line with code.
//   // h2r-lint: allow-file(rule[, rule...]) -- <reason>
//       suppresses those rules for the whole file.
//
// An em-dash may stand in for the "--" separator. The reason is
// mandatory: annotations without one raise allow.reason.
//
// On top of inline allows sits an expected-findings baseline (JSON, same
// schema as --format=json findings) so adoption can be incremental:
// baselined findings are reported as suppressed, not failed. Baseline
// entries match on (rule, path, snippet) — not line numbers — so
// unrelated edits above a grandfathered finding do not un-suppress it.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "util/expected.hpp"

namespace h2r::lint {

enum class Severity { kWarning, kError };

std::string_view severity_name(Severity severity) noexcept;

/// One finding. `path` is repo-relative with forward slashes; `line` is
/// 1-based; `snippet` is the trimmed source line (used for baseline
/// matching, so it is part of a finding's identity).
struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  Severity severity = Severity::kError;
  std::string message;
  std::string snippet;
  /// A concrete remediation ("fold 'x' into Foo::merge, or annotate
  /// `// contract: exclude(merge) -- why`"). Serialized only when
  /// non-empty; never part of baseline identity.
  std::string fix_hint;

  friend bool operator==(const Finding&, const Finding&) = default;
};

struct Options {
  /// Promote lock.* / hotpath.* warnings to errors (the CI posture).
  bool strict = false;
  /// Run the cross-TU contract pass (contract.*, lock.order,
  /// hotpath.alloc) over the scanned set. On by default; --no-contract
  /// turns it off for token-rule-only scans.
  bool contract = true;
};

/// The stable rule-id list (sorted), for --list-rules and the tests.
std::vector<std::string_view> rule_ids();

/// The rationale + annotation grammar for one rule (--explain). Empty
/// when `rule` is not a known rule id.
std::string explain_rule(std::string_view rule);

/// Scans one file's text. `path` is the repo-relative path used both for
/// reporting and for path-scoped rules (env.getenv is legal inside
/// src/util/env.*). The contract pass runs over the single file (a
/// struct and its merge in one TU are still checked).
std::vector<Finding> scan_source(std::string_view path, std::string_view text,
                                 const Options& options = {});

struct TreeReport {
  std::vector<Finding> findings;   // sorted by (path, line, rule)
  std::size_t files_scanned = 0;
};

/// One in-memory source file for scan_files.
struct SourceFile {
  std::string path;  // repo-relative, forward slashes
  std::string text;
};

/// The core entry point: per-TU token rules on each file plus the
/// cross-TU contract pass over the whole set (unless options.contract is
/// off). Findings are allow-filtered, strict-promoted and sorted by
/// (path, line, rule).
TreeReport scan_files(const std::vector<SourceFile>& files,
                      const Options& options = {});

/// Walks `roots` (repo-relative directories or files) under `repo_root`
/// and scans every C++ source/header (.cpp .hpp .cc .hh .h .cxx).
TreeReport scan_tree(const std::string& repo_root,
                     const std::vector<std::string>& roots,
                     const Options& options = {});

/// Findings <-> JSON (strict round trip; findings_from_json rejects
/// missing/mistyped fields and unknown severities). The same schema is
/// the baseline-file format.
json::Value findings_to_json(const std::vector<Finding>& findings);
util::Expected<std::vector<Finding>> findings_from_json(
    const json::Value& value);

/// Removes findings matched by `baseline` (each baseline entry suppresses
/// at most one finding; match is on rule + path + snippet). Increments
/// *suppressed per suppression when non-null.
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::vector<Finding>& baseline,
                                    std::size_t* suppressed = nullptr);

/// "path:line: error[rule]: message" lines plus a summary tail.
std::string render_text(const std::vector<Finding>& findings,
                        std::size_t files_scanned, std::size_t suppressed);

/// The machine-readable report: {"version": 1, "files_scanned": n,
/// "suppressed": k, "findings": [...]}.
json::Value report_to_json(const std::vector<Finding>& findings,
                           std::size_t files_scanned, std::size_t suppressed);

/// True when any finding is an error (after strict promotion) — the
/// process exit criterion.
bool has_errors(const std::vector<Finding>& findings);

/// The full CLI (argument parsing, scanning, rendering), extracted so
/// the exit-code contract is testable in-process:
///
///   0  clean (or warnings without --strict)
///   1  findings at error severity
///   2  usage error or internal failure — NEVER a lint verdict; the
///      tool prints a "h2r-lint: internal error:" / "usage:" marker on
///      stderr so CI logs can tell a broken gate from a failed one.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace h2r::lint
