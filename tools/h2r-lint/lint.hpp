// h2r-lint: the determinism & concurrency static-analysis pass.
//
// The engine's load-bearing property is that a study run is bit-identical
// across thread counts, seeds, resume points and fault rates. Every test
// that proves it (differential crawls, golden studies, metric snapshot
// diffs) is dynamic: it only catches a stray wall-clock read or an
// unordered-container iteration if a run happens to make the hazard
// visible. This tool is the static side of that contract — a token-level
// scanner (same hand-rolled philosophy as src/json: no libclang, no
// external deps) that walks src/, bench/ and tools/ and reports any use
// of an API or pattern that can silently break determinism.
//
// Rules (ids are stable; DESIGN.md §10 carries the authoritative table):
//
//   ban.clock      real-clock reads: std::chrono::{system,steady,
//                  high_resolution}_clock, clock_gettime
//   ban.time       C time APIs: time(), gettimeofday(), localtime(),
//                  gmtime(), mktime(), strftime()
//   ban.rand       non-seeded randomness: rand(), srand(),
//                  std::random_device
//   ban.thread-id  scheduler-dependent identity: std::thread::id,
//                  std::this_thread::get_id
//   ban.async      std::async (unordered completion; the crawl's worker
//                  pool is the sanctioned concurrency substrate)
//   env.getenv     raw getenv/setenv/unsetenv/putenv outside
//                  src/util/env.* — config must flow through the strict
//                  typed parsers (util::env_u64 and friends)
//   order.unordered  std::unordered_{map,set,multimap,multiset} declared
//                  in a translation unit that also serializes or merges
//                  (to_json / merge( / operator==): iteration order is
//                  seed-dependent and would leak into reports
//   lock.guards    a mutex member/variable without a `guards:` comment
//                  naming the state it protects (warning; error in
//                  --strict/CI)
//   lock.atomic-mix  one std::atomic member accessed both through
//                  explicit memory-order calls (.load/.store/.fetch_*)
//                  and through implicit seq_cst operators (=, ++, +=) in
//                  the same file — the mixed discipline hides which
//                  orderings the algorithm actually needs (warning;
//                  error in --strict/CI)
//   allow.reason   an allow annotation with no ` -- reason` clause; an
//                  unexplained suppression is itself a finding
//
// Suppression grammar (audited allows, not blanket ignores):
//
//   // h2r-lint: allow(rule[, rule...]) -- <reason>
//       suppresses those rules on this line, or — when the annotation
//       stands on a comment-only line — on the next line with code.
//   // h2r-lint: allow-file(rule[, rule...]) -- <reason>
//       suppresses those rules for the whole file.
//
// An em-dash may stand in for the "--" separator. The reason is
// mandatory: annotations without one raise allow.reason.
//
// On top of inline allows sits an expected-findings baseline (JSON, same
// schema as --format=json findings) so adoption can be incremental:
// baselined findings are reported as suppressed, not failed. Baseline
// entries match on (rule, path, snippet) — not line numbers — so
// unrelated edits above a grandfathered finding do not un-suppress it.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "util/expected.hpp"

namespace h2r::lint {

enum class Severity { kWarning, kError };

std::string_view severity_name(Severity severity) noexcept;

/// One finding. `path` is repo-relative with forward slashes; `line` is
/// 1-based; `snippet` is the trimmed source line (used for baseline
/// matching, so it is part of a finding's identity).
struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  Severity severity = Severity::kError;
  std::string message;
  std::string snippet;

  friend bool operator==(const Finding&, const Finding&) = default;
};

struct Options {
  /// Promote lock.* warnings to errors (the CI posture).
  bool strict = false;
};

/// The stable rule-id list (sorted), for --list-rules and the tests.
std::vector<std::string_view> rule_ids();

/// Scans one file's text. `path` is the repo-relative path used both for
/// reporting and for path-scoped rules (env.getenv is legal inside
/// src/util/env.*).
std::vector<Finding> scan_source(std::string_view path, std::string_view text,
                                 const Options& options = {});

struct TreeReport {
  std::vector<Finding> findings;   // sorted by (path, line, rule)
  std::size_t files_scanned = 0;
};

/// Walks `roots` (repo-relative directories or files) under `repo_root`
/// and scans every C++ source/header (.cpp .hpp .cc .hh .h .cxx).
TreeReport scan_tree(const std::string& repo_root,
                     const std::vector<std::string>& roots,
                     const Options& options = {});

/// Findings <-> JSON (strict round trip; findings_from_json rejects
/// missing/mistyped fields and unknown severities). The same schema is
/// the baseline-file format.
json::Value findings_to_json(const std::vector<Finding>& findings);
util::Expected<std::vector<Finding>> findings_from_json(
    const json::Value& value);

/// Removes findings matched by `baseline` (each baseline entry suppresses
/// at most one finding; match is on rule + path + snippet). Increments
/// *suppressed per suppression when non-null.
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::vector<Finding>& baseline,
                                    std::size_t* suppressed = nullptr);

/// "path:line: error[rule]: message" lines plus a summary tail.
std::string render_text(const std::vector<Finding>& findings,
                        std::size_t files_scanned, std::size_t suppressed);

/// The machine-readable report: {"version": 1, "files_scanned": n,
/// "suppressed": k, "findings": [...]}.
json::Value report_to_json(const std::vector<Finding>& findings,
                           std::size_t files_scanned, std::size_t suppressed);

/// True when any finding is an error (after strict promotion) — the
/// process exit criterion.
bool has_errors(const std::vector<Finding>& findings);

}  // namespace h2r::lint
