#include "lexer.hpp"

#include <cctype>

namespace h2r::lint {

bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<Line> lex(std::string_view text) {
  std::vector<Line> lines;
  lines.emplace_back();
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_close;       // ")delim\"" that ends the raw string
  char prev_significant = 0;   // last non-space code char (for 1'000)
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated string states cannot legally cross a newline; reset
      // so one bad line does not blank the rest of the file.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      lines.emplace_back();
      prev_significant = 0;
      continue;
    }
    Line& line = lines.back();
    switch (state) {
      case State::kCode: {
        const char next = i + 1 < text.size() ? text[i + 1] : 0;
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          line.code += "  ";
          ++i;
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlockComment;
          line.code += "  ";
          ++i;
          break;
        }
        if (c == '"') {
          // R"delim( ... )delim" — the R must directly precede the quote.
          if (prev_significant == 'R') {
            std::string delim;
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && delim.size() < 16) {
              delim += text[j++];
            }
            if (j < text.size() && text[j] == '(') {
              state = State::kRawString;
              raw_close = ")" + delim + "\"";
              line.code += ' ';
              break;
            }
          }
          state = State::kString;
          line.code += ' ';
          break;
        }
        if (c == '\'' && !ident_char(prev_significant)) {
          state = State::kChar;
          line.code += ' ';
          break;
        }
        line.code += c;
        if (!std::isspace(static_cast<unsigned char>(c))) {
          prev_significant = c;
        }
        break;
      }
      case State::kLineComment:
        line.comment += c;
        line.code += ' ';
        break;
      case State::kBlockComment: {
        const char next = i + 1 < text.size() ? text[i + 1] : 0;
        if (c == '*' && next == '/') {
          state = State::kCode;
          line.code += "  ";
          ++i;
        } else {
          line.comment += c;
          line.code += ' ';
        }
        break;
      }
      case State::kString: {
        if (c == '\\' && i + 1 < text.size() && text[i + 1] != '\n') {
          line.code += "  ";
          ++i;
        } else {
          if (c == '"') state = State::kCode;
          line.code += ' ';
        }
        break;
      }
      case State::kChar: {
        if (c == '\\' && i + 1 < text.size() && text[i + 1] != '\n') {
          line.code += "  ";
          ++i;
        } else {
          if (c == '\'') state = State::kCode;
          line.code += ' ';
        }
        break;
      }
      case State::kRawString: {
        if (text.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size() && text[i + k] != '\n';
               ++k) {
            line.code += ' ';
          }
          i += raw_close.size() - 1;
          state = State::kCode;
        } else {
          line.code += ' ';
        }
        break;
      }
    }
  }
  return lines;
}

bool has_ident(std::string_view code, std::string_view name,
               std::size_t* offset) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) {
      if (offset != nullptr) *offset = pos;
      return true;
    }
    pos += 1;
  }
  return false;
}

bool has_call(std::string_view code, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t end = pos + name.size();
    if (left_ok && (end >= code.size() || !ident_char(code[end]))) {
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end]))) {
        ++end;
      }
      if (end < code.size() && code[end] == '(') return true;
    }
    pos += 1;
  }
  return false;
}

}  // namespace h2r::lint
