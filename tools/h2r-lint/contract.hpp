// The cross-TU contract rules built on the semantic model (model.hpp):
//
//   contract.merge-coverage   every field of a struct with a merge() is
//                             combined in it (shard merges stay complete)
//   contract.codec-coverage   every field is serialized in to_json AND
//                             parsed in from_json — one-sided codec edits
//                             and forgotten fields both fail
//   contract.eq-coverage      every field participates in operator==
//                             (defaulted == passes by construction)
//   lock.order                the lock-acquisition graph across all
//                             modeled mutexes is acyclic
//   hotpath.alloc             no heap allocation inside functions
//                             annotated `// h2r-lint: hotpath -- reason`
//
// Per-field escape hatch, same audited-allow philosophy as the line
// grammar: `// contract: diagnostic -- why` excludes a field from all
// three coverage rules; `// contract: exclude(merge|eq|codec, ...) --
// why` excludes selectively. A missing reason raises allow.reason.
#pragma once

#include <vector>

#include "lint.hpp"
#include "model.hpp"

namespace h2r::lint {

/// Runs every contract rule over the model. Findings are unfiltered and
/// unsorted; the caller applies inline allows, strict promotion and the
/// global sort.
std::vector<Finding> contract_findings(const Model& model,
                                       const Options& options);

}  // namespace h2r::lint
