// h2r-lint CLI. Exit codes: 0 clean (or warnings only), 1 findings at
// error severity, 2 usage or I/O failure. `cmake --build build --target
// lint` runs this with --strict and the committed baseline; CI treats a
// non-zero exit as a failed job.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "lint.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: h2r-lint [options]\n"
               "  --repo DIR            repository root (default: .)\n"
               "  --root PATH           scan root, repeatable (default: "
               "src bench tools)\n"
               "  --baseline FILE       expected-findings baseline to "
               "suppress\n"
               "  --write-baseline FILE write current findings as a "
               "baseline and exit\n"
               "  --format text|json    output format (default: text)\n"
               "  --strict              promote warnings to errors (the "
               "CI posture)\n"
               "  --list-rules          print the rule ids and exit\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo = ".";
  std::vector<std::string> roots;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string format = "text";
  h2r::lint::Options options;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    // Value-taking options accept both `--opt value` and `--opt=value`.
    std::string_view inline_value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
      arg = arg.substr(0, eq);
    }
    auto value = [&](std::string& slot) {
      if (has_inline_value) {
        slot = inline_value;
        return true;
      }
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    if (has_inline_value &&
        (arg == "--strict" || arg == "--list-rules")) {
      return usage();
    }
    if (arg == "--repo") {
      if (!value(repo)) return usage();
    } else if (arg == "--root") {
      std::string root;
      if (!value(root)) return usage();
      roots.push_back(std::move(root));
    } else if (arg == "--baseline") {
      if (!value(baseline_path)) return usage();
    } else if (arg == "--write-baseline") {
      if (!value(write_baseline_path)) return usage();
    } else if (arg == "--format") {
      if (!value(format) || (format != "text" && format != "json")) {
        return usage();
      }
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--list-rules") {
      for (const std::string_view rule : h2r::lint::rule_ids()) {
        std::cout << rule << '\n';
      }
      return 0;
    } else {
      return usage();
    }
  }
  if (roots.empty()) roots = {"src", "bench", "tools"};

  h2r::lint::TreeReport report =
      h2r::lint::scan_tree(repo, roots, options);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "h2r-lint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << h2r::json::write(h2r::lint::findings_to_json(report.findings),
                            {.pretty = true})
        << '\n';
    std::fprintf(stderr, "h2r-lint: wrote %zu finding(s) to %s\n",
                 report.findings.size(), write_baseline_path.c_str());
    return 0;
  }

  std::size_t suppressed = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "h2r-lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto doc = h2r::json::parse(buffer.str());
    if (!doc.has_value()) {
      std::fprintf(stderr, "h2r-lint: baseline %s: invalid JSON: %s\n",
                   baseline_path.c_str(), doc.error().message.c_str());
      return 2;
    }
    auto entries = h2r::lint::findings_from_json(*doc);
    if (!entries.has_value()) {
      std::fprintf(stderr, "h2r-lint: baseline %s: %s\n",
                   baseline_path.c_str(), entries.error().message.c_str());
      return 2;
    }
    report.findings = h2r::lint::apply_baseline(
        std::move(report.findings), *entries, &suppressed);
  }

  if (format == "json") {
    std::cout << h2r::json::write(
                     h2r::lint::report_to_json(report.findings,
                                               report.files_scanned,
                                               suppressed),
                     {.pretty = true})
              << '\n';
  } else {
    std::cout << h2r::lint::render_text(report.findings,
                                        report.files_scanned, suppressed);
  }
  return h2r::lint::has_errors(report.findings) ? 1 : 0;
}
