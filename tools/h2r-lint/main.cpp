// h2r-lint CLI entry point. All logic lives in run_cli (cli.cpp) so the
// exit-code contract is testable in-process. Exit codes: 0 clean (or
// warnings only), 1 findings at error severity, 2 usage error or
// internal failure — exit 2 is never a lint verdict, and prints a
// "h2r-lint: internal error:" / "usage:" marker on stderr so CI logs
// can tell a broken gate from a failed one.
#include <exception>
#include <iostream>

#include "lint.hpp"

int main(int argc, char** argv) {
  try {
    return h2r::lint::run_cli(argc, argv, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "h2r-lint: internal error: unhandled exception: "
              << e.what() << '\n';
    return 2;
  } catch (...) {
    std::cerr << "h2r-lint: internal error: unhandled non-standard "
                 "exception\n";
    return 2;
  }
}
