// h2r-lint's cross-TU semantic model (AST-lite, no libclang).
//
// The per-TU token rules can ban an API wherever it appears, but the
// repo's load-bearing invariants are RELATIONS between translation units:
// a struct's fields live in one header, its merge() in a .cpp, its JSON
// codec pair in a third file — and "added a field, forgot one of
// merge()/operator==/to_json/from_json" is invisible to any single-file
// scan. This model is the minimum structure needed to prove those
// relations mechanically:
//
//   * struct definitions with their field lists (and per-field
//     `// contract:` annotations),
//   * every free or member function definition with its (blanked) body,
//     qualifier, parameter text and return text — enough to associate
//     merge()/add(), operator==, *to_json / *from_json functions back to
//     the struct they serve, wherever the defining TU lives,
//   * namespace-scope initializer tables (constexpr Field kX[] = {...})
//     so codecs driven by member-pointer tables still count as covering
//     the fields those tables name,
//   * mutex declarations (identity = EnclosingType::name, or file::name
//     for locals) and, per function, the lock acquisitions and call
//     sites in body order — the raw material of the lock-order graph,
//   * `// h2r-lint: hotpath -- reason` function annotations for the
//     allocation rule.
//
// Deliberate non-goals (DESIGN §15): templates are not instantiated
// (templated structs/functions are skipped), macros are not expanded,
// and `class` types are trusted to police their own invariants through
// their accessors — the contract rules cover aggregate `struct`s, which
// is where every merge/codec/equality surface in this repo lives.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace h2r::lint {

struct FieldDecl {
  std::string name;
  std::string path;  // file declaring the field
  int line = 0;      // 1-based line of the declaration's end (the ';')
  std::string decl;  // trimmed declaration text (snippet / baseline id)
  /// Contract rules ("merge", "eq", "codec") this field is excluded from
  /// via the per-field exclude/diagnostic annotations (grammar in
  /// lint.hpp — spelling it out here would parse as an annotation).
  std::set<std::string> excluded;
};

/// A lock acquisition or a call site inside one function body, in body
/// order (offsets are into FunctionDef::body).
struct LockUse {
  std::string mutex_name;  // spelled name at the acquisition site
  std::size_t offset = 0;
  int line = 0;
};

struct CallSite {
  std::string callee;  // unqualified name
  std::size_t offset = 0;
  int line = 0;
};

struct FunctionDef {
  std::string name;        // unqualified ("merge", "operator==", ...)
  std::string qualifier;   // "Class" for out-of-line Class::name, or the
                           // enclosing type for in-class definitions
  std::string return_text; // header text before the (qualified) name
  std::string params;      // blanked text inside the parameter parens
  std::string path;
  int header_line = 0;     // line the header's `(` is on
  int body_begin_line = 0;
  std::string body;        // blanked code of the body (braces excluded)
  bool templated = false;
  bool hotpath = false;            // `// h2r-lint: hotpath -- reason`
  bool hotpath_missing_reason = false;
  int hotpath_line = 0;
  std::vector<LockUse> locks;
  std::vector<CallSite> calls;
};

struct StructModel {
  std::string name;  // unqualified
  std::string path;
  int line = 0;
  bool templated = false;
  std::vector<FieldDecl> fields;
  /// True when the struct declares `operator==` or `operator<=>` with
  /// `= default` — every field participates by construction.
  bool defaulted_eq = false;
  /// True when any operator== is declared (defaulted or not).
  bool declares_eq = false;
};

struct MutexDecl {
  std::string id;    // "Type::name" or "path::name"
  std::string name;
  std::string path;
  int line = 0;
};

/// Malformed `// contract:` / hotpath annotations found while parsing
/// (reported by the contract pass as allow.reason findings).
struct AnnotationIssue {
  std::string path;
  int line = 0;
  std::string text;  // the offending comment, trimmed
};

struct FileModel {
  std::string path;
  std::vector<StructModel> structs;
  std::vector<FunctionDef> functions;
  std::vector<MutexDecl> mutexes;
  /// Namespace-scope initializer tables: name -> blanked initializer text.
  std::map<std::string, std::string> tables;
  std::vector<AnnotationIssue> annotation_issues;
};

/// Parses one lexed file into its model. `path` is repo-relative.
FileModel parse_file(std::string_view path, const std::vector<Line>& lines);

/// The repo-wide model: per-file models plus cross-file indexes.
struct Model {
  std::vector<FileModel> files;

  /// Structs by unqualified name. Name collisions across namespaces merge
  /// into the first definition seen (acceptable over-approximation for a
  /// linter; an annotation can always silence a false positive).
  std::map<std::string, const StructModel*> structs;
  /// All function definitions sharing an unqualified name.
  std::map<std::string, std::vector<const FunctionDef*>> functions_by_name;
  std::vector<const MutexDecl*> mutexes;

  /// Resolves a table reference from `file`: same-file tables win.
  const std::string* find_table(const FileModel& file,
                                const std::string& name) const;
};

Model build_model(const std::vector<FileModel>& files);

}  // namespace h2r::lint
