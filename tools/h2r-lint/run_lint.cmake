# Wrapper for the `lint` build target: runs h2r-lint --strict against
# the committed baseline and translates the exit-code contract into an
# unambiguous build-log verdict. Satellite fix for the bug where exit 2
# (usage/internal error — the gate itself broke) was indistinguishable
# from exit 1 (real findings) in the target output.
execute_process(
  COMMAND ${LINT_BIN} --repo ${REPO} --baseline ${BASELINE} --strict
  RESULT_VARIABLE code)
if(code EQUAL 0)
  # clean — h2r-lint already printed its summary line
elseif(code EQUAL 1)
  message(FATAL_ERROR
    "h2r-lint: findings at error severity (exit 1) — fix the code or "
    "annotate with an audited allow/contract exclusion")
else()
  message(FATAL_ERROR
    "h2r-lint: INTERNAL ERROR (exit ${code}), not a lint verdict — the "
    "gate itself failed to run; see the h2r-lint stderr marker above")
endif()
