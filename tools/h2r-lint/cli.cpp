// The h2r-lint CLI, as a library function so tests can pin the exit-code
// contract in-process (0 clean / 1 findings / 2 usage-or-internal) and
// the stderr markers that let CI logs tell a broken gate from a failed
// one. main.cpp is a thin wrapper.
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "lint.hpp"

namespace h2r::lint {

namespace {

int usage(std::ostream& err) {
  err << "usage: h2r-lint [options]\n"
         "  --repo DIR            repository root (default: .)\n"
         "  --root PATH           scan root, repeatable (default: "
         "src bench tools)\n"
         "  --baseline FILE       expected-findings baseline to suppress\n"
         "  --write-baseline FILE write current findings as a baseline "
         "and exit\n"
         "  --format text|json    output format (default: text)\n"
         "  --strict              promote warnings to errors (the CI "
         "posture)\n"
         "  --no-contract         skip the cross-TU contract pass "
         "(token rules only)\n"
         "  --list-rules          print the rule ids and exit\n"
         "  --explain RULE        print a rule's rationale and "
         "annotation grammar\n";
  return 2;
}

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  std::string repo = ".";
  std::vector<std::string> roots;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string format = "text";
  Options options;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    // Value-taking options accept both `--opt value` and `--opt=value`.
    std::string_view inline_value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
      arg = arg.substr(0, eq);
    }
    auto value = [&](std::string& slot) {
      if (has_inline_value) {
        slot = inline_value;
        return true;
      }
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    if (has_inline_value &&
        (arg == "--strict" || arg == "--list-rules" ||
         arg == "--no-contract")) {
      return usage(err);
    }
    if (arg == "--repo") {
      if (!value(repo)) return usage(err);
    } else if (arg == "--root") {
      std::string root;
      if (!value(root)) return usage(err);
      roots.push_back(std::move(root));
    } else if (arg == "--baseline") {
      if (!value(baseline_path)) return usage(err);
    } else if (arg == "--write-baseline") {
      if (!value(write_baseline_path)) return usage(err);
    } else if (arg == "--format") {
      if (!value(format) || (format != "text" && format != "json")) {
        return usage(err);
      }
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--no-contract") {
      options.contract = false;
    } else if (arg == "--list-rules") {
      for (const std::string_view rule : rule_ids()) {
        out << rule << '\n';
      }
      return 0;
    } else if (arg == "--explain") {
      std::string rule;
      if (!value(rule)) return usage(err);
      const std::string text = explain_rule(rule);
      if (text.empty()) {
        err << "h2r-lint: unknown rule '" << rule
            << "' (--list-rules prints the inventory)\n";
        return 2;
      }
      out << text;
      return 0;
    } else {
      return usage(err);
    }
  }
  if (roots.empty()) roots = {"src", "bench", "tools"};

  TreeReport report = scan_tree(repo, roots, options);
  if (report.files_scanned == 0) {
    // Nothing scanned means the gate did not run — a misconfigured
    // --repo/--root must not read as "clean".
    err << "h2r-lint: internal error: no sources found under the given "
           "roots (checked --repo "
        << repo << ")\n";
    return 2;
  }

  if (!write_baseline_path.empty()) {
    std::ofstream file(write_baseline_path, std::ios::binary);
    if (!file) {
      err << "h2r-lint: internal error: cannot write "
          << write_baseline_path << '\n';
      return 2;
    }
    file << json::write(findings_to_json(report.findings), {.pretty = true})
         << '\n';
    err << "h2r-lint: wrote " << report.findings.size() << " finding(s) to "
        << write_baseline_path << '\n';
    return 0;
  }

  std::size_t suppressed = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      err << "h2r-lint: internal error: cannot read baseline "
          << baseline_path << '\n';
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto doc = json::parse(buffer.str());
    if (!doc.has_value()) {
      err << "h2r-lint: internal error: baseline " << baseline_path
          << ": invalid JSON: " << doc.error().message << '\n';
      return 2;
    }
    auto entries = findings_from_json(*doc);
    if (!entries.has_value()) {
      err << "h2r-lint: internal error: baseline " << baseline_path << ": "
          << entries.error().message << '\n';
      return 2;
    }
    report.findings =
        apply_baseline(std::move(report.findings), *entries, &suppressed);
  }

  if (format == "json") {
    out << json::write(report_to_json(report.findings, report.files_scanned,
                                      suppressed),
                       {.pretty = true})
        << '\n';
  } else {
    out << render_text(report.findings, report.files_scanned, suppressed);
  }
  return has_errors(report.findings) ? 1 : 0;
}

}  // namespace h2r::lint
