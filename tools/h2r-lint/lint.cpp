#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace h2r::lint {

namespace {

// ------------------------------------------------------------------ text

bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// One physical line after lexing: `code` has comments and the contents
/// of string/char literals blanked to spaces (column positions are
/// preserved), `comment` holds the text of any comment on the line.
struct Line {
  std::string code;
  std::string comment;
};

/// Splits `text` into lines, blanking comments and literals. A
/// hand-rolled lexer in the spirit of src/json: handles // and block
/// comments, escaped quotes, digit separators (1'000) and raw strings.
std::vector<Line> lex(std::string_view text) {
  std::vector<Line> lines;
  lines.emplace_back();
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_close;       // ")delim\"" that ends the raw string
  char prev_significant = 0;   // last non-space code char (for 1'000)
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated string states cannot legally cross a newline; reset
      // so one bad line does not blank the rest of the file.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      lines.emplace_back();
      prev_significant = 0;
      continue;
    }
    Line& line = lines.back();
    switch (state) {
      case State::kCode: {
        const char next = i + 1 < text.size() ? text[i + 1] : 0;
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          line.code += "  ";
          ++i;
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlockComment;
          line.code += "  ";
          ++i;
          break;
        }
        if (c == '"') {
          // R"delim( ... )delim" — the R must directly precede the quote.
          if (prev_significant == 'R') {
            std::string delim;
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && delim.size() < 16) {
              delim += text[j++];
            }
            if (j < text.size() && text[j] == '(') {
              state = State::kRawString;
              raw_close = ")" + delim + "\"";
              line.code += ' ';
              break;
            }
          }
          state = State::kString;
          line.code += ' ';
          break;
        }
        if (c == '\'' && !ident_char(prev_significant)) {
          state = State::kChar;
          line.code += ' ';
          break;
        }
        line.code += c;
        if (!std::isspace(static_cast<unsigned char>(c))) {
          prev_significant = c;
        }
        break;
      }
      case State::kLineComment:
        line.comment += c;
        line.code += ' ';
        break;
      case State::kBlockComment: {
        const char next = i + 1 < text.size() ? text[i + 1] : 0;
        if (c == '*' && next == '/') {
          state = State::kCode;
          line.code += "  ";
          ++i;
        } else {
          line.comment += c;
          line.code += ' ';
        }
        break;
      }
      case State::kString: {
        if (c == '\\' && i + 1 < text.size() && text[i + 1] != '\n') {
          line.code += "  ";
          ++i;
        } else {
          if (c == '"') state = State::kCode;
          line.code += ' ';
        }
        break;
      }
      case State::kChar: {
        if (c == '\\' && i + 1 < text.size() && text[i + 1] != '\n') {
          line.code += "  ";
          ++i;
        } else {
          if (c == '\'') state = State::kCode;
          line.code += ' ';
        }
        break;
      }
      case State::kRawString: {
        if (text.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size() && text[i + k] != '\n';
               ++k) {
            line.code += ' ';
          }
          i += raw_close.size() - 1;
          state = State::kCode;
        } else {
          line.code += ' ';
        }
        break;
      }
    }
  }
  return lines;
}

/// True when `code` contains `name` as a standalone identifier (both
/// neighbours are non-identifier characters). `offset` receives the
/// match position.
bool has_ident(std::string_view code, std::string_view name,
               std::size_t* offset = nullptr) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) {
      if (offset != nullptr) *offset = pos;
      return true;
    }
    pos += 1;
  }
  return false;
}

/// True when `code` calls `name` (identifier directly followed by an
/// opening parenthesis, modulo whitespace).
bool has_call(std::string_view code, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t end = pos + name.size();
    if (left_ok && (end >= code.size() || !ident_char(code[end]))) {
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end]))) {
        ++end;
      }
      if (end < code.size() && code[end] == '(') return true;
    }
    pos += 1;
  }
  return false;
}

// ------------------------------------------------------------ annotations

/// Parsed allow / allow-file annotations for one file, plus any
/// malformed-annotation findings. (The grammar is documented in lint.hpp;
/// spelling it out here would make this comment parse as an annotation.)
struct Allows {
  std::set<std::string> file_rules;
  // line number (1-based) -> rules allowed on that line
  std::map<int, std::set<std::string>> line_rules;
  std::vector<Finding> malformed;
};

/// The separator between the rule list and the mandatory reason: "--" or
/// a em-dash (UTF-8 \xE2\x80\x94).
bool consume_reason_separator(std::string_view& rest) {
  rest = trim(rest);
  if (rest.rfind("--", 0) == 0) {
    rest.remove_prefix(2);
    return true;
  }
  if (rest.rfind("\xE2\x80\x94", 0) == 0) {
    rest.remove_prefix(3);
    return true;
  }
  return false;
}

Allows parse_allows(std::string_view path, const std::vector<Line>& lines) {
  Allows allows;
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const int line_no = static_cast<int>(idx) + 1;
    std::string_view comment = lines[idx].comment;
    const std::size_t tag = comment.find("h2r-lint:");
    if (tag == std::string_view::npos) continue;
    std::string_view rest = trim(comment.substr(tag + 9));
    bool file_scope = false;
    if (rest.rfind("allow-file(", 0) == 0) {
      file_scope = true;
      rest.remove_prefix(11);
    } else if (rest.rfind("allow(", 0) == 0) {
      rest.remove_prefix(6);
    } else {
      continue;  // some other h2r-lint comment; not an annotation
    }
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) continue;
    std::string_view rule_list = rest.substr(0, close);
    rest.remove_prefix(close + 1);

    std::set<std::string> rules;
    while (!rule_list.empty()) {
      const std::size_t comma = rule_list.find(',');
      rules.emplace(trim(rule_list.substr(0, comma)));
      if (comma == std::string_view::npos) break;
      rule_list.remove_prefix(comma + 1);
    }

    const bool has_sep = consume_reason_separator(rest);
    if (!has_sep || trim(rest).empty()) {
      Finding f;
      f.rule = "allow.reason";
      f.path = std::string(path);
      f.line = line_no;
      f.severity = Severity::kError;
      f.message =
          "allow annotation without a reason; write "
          "\"h2r-lint: allow(rule) -- why this use is safe\"";
      f.snippet = std::string(trim(comment));
      allows.malformed.push_back(std::move(f));
      continue;  // an unexplained allow does not suppress anything
    }

    if (file_scope) {
      allows.file_rules.insert(rules.begin(), rules.end());
      continue;
    }
    // A same-line annotation covers its own line; an annotation on a
    // comment-only line covers the next line that carries code.
    int target = line_no;
    if (trim(lines[idx].code).empty()) {
      for (std::size_t j = idx + 1; j < lines.size(); ++j) {
        if (!trim(lines[j].code).empty()) {
          target = static_cast<int>(j) + 1;
          break;
        }
      }
    }
    allows.line_rules[target].insert(rules.begin(), rules.end());
  }
  return allows;
}

// ------------------------------------------------------------------ rules

constexpr std::string_view kRuleIds[] = {
    "allow.reason", "ban.async",       "ban.clock",
    "ban.rand",     "ban.thread-id",   "ban.time",
    "env.getenv",   "lock.atomic-mix", "lock.guards",
    "order.unordered", "policy.alias",
};

void add_finding(std::vector<Finding>& out, std::string_view path, int line,
                 std::string_view rule, Severity severity,
                 std::string message, std::string_view snippet) {
  Finding f;
  f.rule = std::string(rule);
  f.path = std::string(path);
  f.line = line;
  f.severity = severity;
  f.message = std::move(message);
  f.snippet = std::string(trim(snippet));
  out.push_back(std::move(f));
}

void rule_banned_apis(std::string_view path, const std::vector<Line>& lines,
                      std::vector<Finding>& out) {
  const bool env_home = path.rfind("src/util/env.", 0) == 0;
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string& code = lines[idx].code;
    const int line_no = static_cast<int>(idx) + 1;

    for (std::string_view clock :
         {"system_clock", "steady_clock", "high_resolution_clock"}) {
      if (has_ident(code, clock)) {
        add_finding(out, path, line_no, "ban.clock", Severity::kError,
                    "real-clock read (std::chrono::" + std::string(clock) +
                        "): derive timing from util::SimTime so runs stay "
                        "reproducible",
                    code);
        break;
      }
    }
    if (has_call(code, "clock_gettime")) {
      add_finding(out, path, line_no, "ban.clock", Severity::kError,
                  "real-clock read (clock_gettime): derive timing from "
                  "util::SimTime so runs stay reproducible",
                  code);
    }

    for (std::string_view fn :
         {"time", "gettimeofday", "localtime", "gmtime", "mktime",
          "strftime"}) {
      if (has_call(code, fn)) {
        add_finding(out, path, line_no, "ban.time", Severity::kError,
                    "C time API (" + std::string(fn) +
                        "()): wall-clock dates have no place in a "
                        "simulated-time study",
                    code);
        break;
      }
    }

    if (has_call(code, "rand") || has_call(code, "srand") ||
        has_ident(code, "random_device")) {
      add_finding(out, path, line_no, "ban.rand", Severity::kError,
                  "non-seeded randomness: all entropy must come from "
                  "util::Rng seeded by (config seed, site)",
                  code);
    }

    if (code.find("this_thread::get_id") != std::string::npos ||
        has_ident(code, "thread::id")) {
      add_finding(out, path, line_no, "ban.thread-id", Severity::kError,
                  "thread identity is scheduler-dependent; key per-worker "
                  "state on the worker index instead",
                  code);
    }

    if (code.find("std::async") != std::string::npos) {
      add_finding(out, path, line_no, "ban.async", Severity::kError,
                  "std::async completion order is nondeterministic; use "
                  "the crawl worker pool (browser::crawl) instead",
                  code);
    }

    if (!env_home) {
      for (std::string_view fn :
           {"getenv", "secure_getenv", "setenv", "unsetenv", "putenv"}) {
        if (has_call(code, fn)) {
          add_finding(out, path, line_no, "env.getenv", Severity::kError,
                      "raw " + std::string(fn) +
                          "(): environment access must go through the "
                          "strict parsers in src/util/env.hpp",
                      code);
          break;
        }
      }
    }
  }
}

void rule_ordered_output(std::string_view path, const std::vector<Line>& lines,
                         std::vector<Finding>& out) {
  bool serializes = false;
  for (const Line& line : lines) {
    if (has_ident(line.code, "to_json") ||
        line.code.find("operator==") != std::string::npos ||
        has_call(line.code, "merge")) {
      serializes = true;
      break;
    }
  }
  if (!serializes) return;
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string& code = lines[idx].code;
    if (trim(code).rfind('#', 0) == 0) continue;  // skip #include lines
    for (std::string_view container :
         {"unordered_map", "unordered_multimap", "unordered_set",
          "unordered_multiset"}) {
      if (has_ident(code, container)) {
        add_finding(
            out, path, static_cast<int>(idx) + 1, "order.unordered",
            Severity::kError,
            "std::" + std::string(container) +
                " in a translation unit that serializes or merges "
                "(to_json/merge/operator==): iteration order is "
                "seed-dependent — use std::map/std::set or sort before "
                "output",
            code);
        break;
      }
    }
  }
}

void rule_lock_guards(std::string_view path, const std::vector<Line>& lines,
                      std::vector<Finding>& out) {
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string& code = lines[idx].code;
    std::size_t pos = std::string::npos;
    std::size_t type_len = 0;
    for (std::string_view type :
         {"std::mutex", "std::shared_mutex", "std::recursive_mutex",
          "std::timed_mutex"}) {
      std::size_t p = code.find(type);
      while (p != std::string::npos) {
        const std::size_t end = p + type.size();
        // Skip template-argument uses (std::lock_guard<std::mutex>) and
        // longer type names (std::mutex vs std::shared_mutex handled by
        // the boundary check).
        const bool left_ok = p == 0 || (code[p - 1] != '<');
        const bool right_ok = end >= code.size() ||
                              (code[end] != '>' && !ident_char(code[end]) &&
                               code[end] != ':');
        if (left_ok && right_ok) {
          pos = p;
          type_len = type.size();
          break;
        }
        p = code.find(type, p + 1);
      }
      if (pos != std::string::npos) break;
    }
    if (pos == std::string::npos) continue;
    // A declaration: the remainder is "<identifier>;" (optionally with an
    // empty brace initializer).
    std::string_view rest = trim(std::string_view(code).substr(pos + type_len));
    if (rest.empty() || !ident_char(rest.front())) continue;
    std::size_t name_end = 0;
    while (name_end < rest.size() && ident_char(rest[name_end])) ++name_end;
    const std::string name(rest.substr(0, name_end));
    std::string_view tail = trim(rest.substr(name_end));
    if (!tail.empty() && tail.rfind("{}", 0) == 0) {
      tail = trim(tail.substr(2));
    }
    if (tail != ";") continue;
    // Satisfied by a `guards:` comment on the same line or within the
    // three preceding lines.
    bool documented = false;
    for (std::size_t back = 0; back <= 3 && back <= idx; ++back) {
      if (lines[idx - back].comment.find("guards:") != std::string::npos) {
        documented = true;
        break;
      }
    }
    if (!documented) {
      add_finding(out, path, static_cast<int>(idx) + 1, "lock.guards",
                  Severity::kWarning,
                  "mutex '" + name +
                      "' without a `guards:` comment naming the state it "
                      "protects",
                  code);
    }
  }
}

void rule_atomic_mix(std::string_view path, const std::vector<Line>& lines,
                     std::vector<Finding>& out) {
  // Pass 1: names declared as std::atomic<...> members/variables.
  struct Decl {
    std::size_t line_idx;
  };
  std::map<std::string, Decl> atomics;
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string& code = lines[idx].code;
    std::size_t pos = code.find("std::atomic<");
    if (pos == std::string::npos) continue;
    // Find the matching '>' (template args may nest, e.g. atomic<pair<..>>
    // is illegal but atomic<Foo<int>> is not unthinkable in a refactor).
    std::size_t depth = 0;
    std::size_t end = pos + 11;  // at '<'
    for (; end < code.size(); ++end) {
      if (code[end] == '<') ++depth;
      if (code[end] == '>' && --depth == 0) break;
    }
    if (end >= code.size()) continue;
    std::string_view rest = trim(std::string_view(code).substr(end + 1));
    if (rest.empty() || !ident_char(rest.front())) continue;
    std::size_t name_end = 0;
    while (name_end < rest.size() && ident_char(rest[name_end])) ++name_end;
    atomics.emplace(std::string(rest.substr(0, name_end)), Decl{idx});
  }
  if (atomics.empty()) return;

  // Pass 2: classify each use.
  for (const auto& [name, decl] : atomics) {
    bool explicit_ops = false;
    int implicit_line = 0;
    for (std::size_t idx = 0; idx < lines.size(); ++idx) {
      const std::string& code = lines[idx].code;
      std::size_t pos = 0;
      while ((pos = code.find(name, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
        std::size_t end = pos + name.size();
        if (!left_ok || (end < code.size() && ident_char(code[end]))) {
          pos += 1;
          continue;
        }
        std::string_view after = trim(std::string_view(code).substr(end));
        if (after.rfind(".load", 0) == 0 || after.rfind(".store", 0) == 0 ||
            after.rfind(".exchange", 0) == 0 ||
            after.rfind(".fetch_", 0) == 0 ||
            after.rfind(".compare_exchange", 0) == 0) {
          explicit_ops = true;
        } else if (idx != decl.line_idx) {
          const bool assign = after.rfind('=', 0) == 0 &&
                              (after.size() < 2 || after[1] != '=');
          const bool compound =
              after.rfind("+=", 0) == 0 || after.rfind("-=", 0) == 0 ||
              after.rfind("|=", 0) == 0 || after.rfind("&=", 0) == 0 ||
              after.rfind("^=", 0) == 0 || after.rfind("++", 0) == 0 ||
              after.rfind("--", 0) == 0;
          if ((assign || compound) && implicit_line == 0) {
            implicit_line = static_cast<int>(idx) + 1;
          }
        }
        pos = end;
      }
    }
    if (explicit_ops && implicit_line != 0) {
      add_finding(out, path, implicit_line, "lock.atomic-mix",
                  Severity::kWarning,
                  "atomic '" + name +
                      "' is accessed through explicit memory-order calls "
                      "elsewhere in this file but assigned with an "
                      "implicit seq_cst operator here; pick one "
                      "discipline",
                  lines[static_cast<std::size_t>(implicit_line) - 1].code);
    }
  }
}

void rule_policy_alias(std::string_view path, const std::vector<Line>& lines,
                       std::vector<Finding>& out) {
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string& code = lines[idx].code;
    if (has_ident(code, "ClassifyOptions")) {
      add_finding(out, path, static_cast<int>(idx) + 1, "policy.alias",
                  Severity::kWarning,
                  "ClassifyOptions is a deprecated alias; new code should "
                  "spell core::Policy (it carries the counterfactual knobs "
                  "too)",
                  code);
    }
  }
}

// ------------------------------------------------------------------ io

util::Expected<Finding> finding_from_json(const json::Value& value) {
  if (!value.is_object()) return util::unexpected(util::Error{"finding: not an object"});
  const json::Object& obj = value.as_object();
  for (const auto& [key, unused] : obj) {
    (void)unused;
    if (key != "rule" && key != "path" && key != "line" &&
        key != "severity" && key != "message" && key != "snippet") {
      return util::unexpected(util::Error{"finding: unknown key '" + key + "'"});
    }
  }
  Finding f;
  const json::Value* rule = obj.find("rule");
  const json::Value* path = obj.find("path");
  const json::Value* line = obj.find("line");
  const json::Value* severity = obj.find("severity");
  if (rule == nullptr || !rule->is_string()) {
    return util::unexpected(util::Error{"finding: missing string 'rule'"});
  }
  if (path == nullptr || !path->is_string()) {
    return util::unexpected(util::Error{"finding: missing string 'path'"});
  }
  if (line == nullptr || !line->is_int() || line->as_int() < 1) {
    return util::unexpected(util::Error{"finding: missing positive integer 'line'"});
  }
  if (severity == nullptr || !severity->is_string()) {
    return util::unexpected(util::Error{"finding: missing string 'severity'"});
  }
  f.rule = rule->as_string();
  f.path = path->as_string();
  f.line = static_cast<int>(line->as_int());
  if (severity->as_string() == "error") {
    f.severity = Severity::kError;
  } else if (severity->as_string() == "warning") {
    f.severity = Severity::kWarning;
  } else {
    return util::unexpected(util::Error{"finding: unknown severity '" +
                                        severity->as_string() + "'"});
  }
  if (const json::Value* message = obj.find("message")) {
    if (!message->is_string()) {
      return util::unexpected(util::Error{"finding: 'message' must be a string"});
    }
    f.message = message->as_string();
  }
  if (const json::Value* snippet = obj.find("snippet")) {
    if (!snippet->is_string()) {
      return util::unexpected(util::Error{"finding: 'snippet' must be a string"});
    }
    f.snippet = snippet->as_string();
  }
  return f;
}

}  // namespace

std::string_view severity_name(Severity severity) noexcept {
  return severity == Severity::kError ? "error" : "warning";
}

std::vector<std::string_view> rule_ids() {
  return {std::begin(kRuleIds), std::end(kRuleIds)};
}

std::vector<Finding> scan_source(std::string_view path, std::string_view text,
                                 const Options& options) {
  const std::vector<Line> lines = lex(text);
  const Allows allows = parse_allows(path, lines);

  std::vector<Finding> raw;
  rule_banned_apis(path, lines, raw);
  rule_ordered_output(path, lines, raw);
  rule_lock_guards(path, lines, raw);
  rule_atomic_mix(path, lines, raw);
  rule_policy_alias(path, lines, raw);

  std::vector<Finding> findings;
  for (Finding& f : raw) {
    if (allows.file_rules.count(f.rule) != 0) continue;
    const auto it = allows.line_rules.find(f.line);
    if (it != allows.line_rules.end() && it->second.count(f.rule) != 0) {
      continue;
    }
    findings.push_back(std::move(f));
  }
  // Malformed annotations are findings in their own right and cannot be
  // allowed away.
  for (const Finding& f : allows.malformed) findings.push_back(f);

  if (options.strict) {
    for (Finding& f : findings) f.severity = Severity::kError;
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return findings;
}

TreeReport scan_tree(const std::string& repo_root,
                     const std::vector<std::string>& roots,
                     const Options& options) {
  namespace fs = std::filesystem;
  TreeReport report;
  std::vector<fs::path> files;
  const fs::path base(repo_root);
  for (const std::string& root : roots) {
    const fs::path dir = base / root;
    std::error_code ec;
    if (fs::is_regular_file(dir, ec)) {
      files.push_back(dir);
      continue;
    }
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".hh" ||
          ext == ".h" || ext == ".cxx") {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel =
        fs::relative(file, base).generic_string();
    std::vector<Finding> found =
        scan_source(rel, buffer.str(), options);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
    ++report.files_scanned;
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return report;
}

json::Value findings_to_json(const std::vector<Finding>& findings) {
  json::Array array;
  array.reserve(findings.size());
  for (const Finding& f : findings) {
    json::Object obj;
    obj.set("rule", f.rule);
    obj.set("path", f.path);
    obj.set("line", static_cast<std::int64_t>(f.line));
    obj.set("severity", std::string(severity_name(f.severity)));
    obj.set("message", f.message);
    obj.set("snippet", f.snippet);
    array.emplace_back(std::move(obj));
  }
  return json::Value(std::move(array));
}

util::Expected<std::vector<Finding>> findings_from_json(
    const json::Value& value) {
  if (!value.is_array()) {
    return util::unexpected(util::Error{"findings: expected a JSON array"});
  }
  std::vector<Finding> findings;
  findings.reserve(value.as_array().size());
  for (const json::Value& entry : value.as_array()) {
    util::Expected<Finding> f = finding_from_json(entry);
    if (!f.has_value()) return util::unexpected(f.error());
    findings.push_back(std::move(*f));
  }
  return findings;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::vector<Finding>& baseline,
                                    std::size_t* suppressed) {
  std::vector<bool> matched(findings.size(), false);
  for (const Finding& entry : baseline) {
    for (std::size_t i = 0; i < findings.size(); ++i) {
      if (matched[i]) continue;
      const Finding& f = findings[i];
      if (f.rule == entry.rule && f.path == entry.path &&
          f.snippet == entry.snippet) {
        matched[i] = true;
        if (suppressed != nullptr) ++*suppressed;
        break;
      }
    }
  }
  std::vector<Finding> rest;
  rest.reserve(findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (!matched[i]) rest.push_back(std::move(findings[i]));
  }
  return rest;
}

std::string render_text(const std::vector<Finding>& findings,
                        std::size_t files_scanned, std::size_t suppressed) {
  std::ostringstream out;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Finding& f : findings) {
    (f.severity == Severity::kError ? errors : warnings) += 1;
    out << f.path << ':' << f.line << ": " << severity_name(f.severity)
        << '[' << f.rule << "]: " << f.message << '\n';
    if (!f.snippet.empty()) out << "    " << f.snippet << '\n';
  }
  out << "h2r-lint: " << files_scanned << " file(s) scanned, " << errors
      << " error(s), " << warnings << " warning(s)";
  if (suppressed != 0) {
    out << ", " << suppressed << " suppressed by baseline";
  }
  out << '\n';
  return out.str();
}

json::Value report_to_json(const std::vector<Finding>& findings,
                           std::size_t files_scanned,
                           std::size_t suppressed) {
  json::Object report;
  report.set("version", std::int64_t{1});
  report.set("files_scanned", static_cast<std::int64_t>(files_scanned));
  report.set("suppressed", static_cast<std::int64_t>(suppressed));
  report.set("findings", findings_to_json(findings));
  return json::Value(std::move(report));
}

bool has_errors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity == Severity::kError;
  });
}

}  // namespace h2r::lint
