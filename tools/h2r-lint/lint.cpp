#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "contract.hpp"
#include "lexer.hpp"
#include "model.hpp"

namespace h2r::lint {

namespace {

// ------------------------------------------------------------ annotations

/// Parsed allow / allow-file annotations for one file, plus any
/// malformed-annotation findings. (The grammar is documented in lint.hpp;
/// spelling it out here would make this comment parse as an annotation.)
struct Allows {
  std::set<std::string> file_rules;
  // line number (1-based) -> rules allowed on that line
  std::map<int, std::set<std::string>> line_rules;
  std::vector<Finding> malformed;
};

/// The separator between the rule list and the mandatory reason: "--" or
/// a em-dash (UTF-8 \xE2\x80\x94).
bool consume_reason_separator(std::string_view& rest) {
  rest = trim(rest);
  if (rest.rfind("--", 0) == 0) {
    rest.remove_prefix(2);
    return true;
  }
  if (rest.rfind("\xE2\x80\x94", 0) == 0) {
    rest.remove_prefix(3);
    return true;
  }
  return false;
}

Allows parse_allows(std::string_view path, const std::vector<Line>& lines) {
  Allows allows;
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const int line_no = static_cast<int>(idx) + 1;
    std::string_view comment = lines[idx].comment;
    const std::size_t tag = comment.find("h2r-lint:");
    if (tag == std::string_view::npos) continue;
    std::string_view rest = trim(comment.substr(tag + 9));
    bool file_scope = false;
    if (rest.rfind("allow-file(", 0) == 0) {
      file_scope = true;
      rest.remove_prefix(11);
    } else if (rest.rfind("allow(", 0) == 0) {
      rest.remove_prefix(6);
    } else {
      continue;  // some other h2r-lint comment; not an annotation
    }
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) continue;
    std::string_view rule_list = rest.substr(0, close);
    rest.remove_prefix(close + 1);

    std::set<std::string> rules;
    while (!rule_list.empty()) {
      const std::size_t comma = rule_list.find(',');
      rules.emplace(trim(rule_list.substr(0, comma)));
      if (comma == std::string_view::npos) break;
      rule_list.remove_prefix(comma + 1);
    }

    const bool has_sep = consume_reason_separator(rest);
    if (!has_sep || trim(rest).empty()) {
      Finding f;
      f.rule = "allow.reason";
      f.path = std::string(path);
      f.line = line_no;
      f.severity = Severity::kError;
      f.message =
          "allow annotation without a reason; write "
          "\"h2r-lint: allow(rule) -- why this use is safe\"";
      f.snippet = std::string(trim(comment));
      allows.malformed.push_back(std::move(f));
      continue;  // an unexplained allow does not suppress anything
    }

    if (file_scope) {
      allows.file_rules.insert(rules.begin(), rules.end());
      continue;
    }
    // A same-line annotation covers its own line; an annotation on a
    // comment-only line covers the next line that carries code.
    int target = line_no;
    if (trim(lines[idx].code).empty()) {
      for (std::size_t j = idx + 1; j < lines.size(); ++j) {
        if (!trim(lines[j].code).empty()) {
          target = static_cast<int>(j) + 1;
          break;
        }
      }
    }
    allows.line_rules[target].insert(rules.begin(), rules.end());
  }
  return allows;
}

// ------------------------------------------------------------------ rules

constexpr std::string_view kRuleIds[] = {
    "allow.reason",
    "ban.async",
    "ban.clock",
    "ban.rand",
    "ban.thread-id",
    "ban.time",
    "contract.codec-coverage",
    "contract.eq-coverage",
    "contract.merge-coverage",
    "env.getenv",
    "hotpath.alloc",
    "lock.atomic-mix",
    "lock.guards",
    "lock.order",
    "order.unordered",
    "policy.alias",
};

void add_finding(std::vector<Finding>& out, std::string_view path, int line,
                 std::string_view rule, Severity severity,
                 std::string message, std::string_view snippet) {
  Finding f;
  f.rule = std::string(rule);
  f.path = std::string(path);
  f.line = line;
  f.severity = severity;
  f.message = std::move(message);
  f.snippet = std::string(trim(snippet));
  out.push_back(std::move(f));
}

void rule_banned_apis(std::string_view path, const std::vector<Line>& lines,
                      std::vector<Finding>& out) {
  const bool env_home = path.rfind("src/util/env.", 0) == 0;
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string& code = lines[idx].code;
    const int line_no = static_cast<int>(idx) + 1;

    for (std::string_view clock :
         {"system_clock", "steady_clock", "high_resolution_clock"}) {
      if (has_ident(code, clock)) {
        add_finding(out, path, line_no, "ban.clock", Severity::kError,
                    "real-clock read (std::chrono::" + std::string(clock) +
                        "): derive timing from util::SimTime so runs stay "
                        "reproducible",
                    code);
        break;
      }
    }
    if (has_call(code, "clock_gettime")) {
      add_finding(out, path, line_no, "ban.clock", Severity::kError,
                  "real-clock read (clock_gettime): derive timing from "
                  "util::SimTime so runs stay reproducible",
                  code);
    }

    for (std::string_view fn :
         {"time", "gettimeofday", "localtime", "gmtime", "mktime",
          "strftime"}) {
      if (has_call(code, fn)) {
        add_finding(out, path, line_no, "ban.time", Severity::kError,
                    "C time API (" + std::string(fn) +
                        "()): wall-clock dates have no place in a "
                        "simulated-time study",
                    code);
        break;
      }
    }

    if (has_call(code, "rand") || has_call(code, "srand") ||
        has_ident(code, "random_device")) {
      add_finding(out, path, line_no, "ban.rand", Severity::kError,
                  "non-seeded randomness: all entropy must come from "
                  "util::Rng seeded by (config seed, site)",
                  code);
    }

    if (code.find("this_thread::get_id") != std::string::npos ||
        has_ident(code, "thread::id")) {
      add_finding(out, path, line_no, "ban.thread-id", Severity::kError,
                  "thread identity is scheduler-dependent; key per-worker "
                  "state on the worker index instead",
                  code);
    }

    if (code.find("std::async") != std::string::npos) {
      add_finding(out, path, line_no, "ban.async", Severity::kError,
                  "std::async completion order is nondeterministic; use "
                  "the crawl worker pool (browser::crawl) instead",
                  code);
    }

    if (!env_home) {
      for (std::string_view fn :
           {"getenv", "secure_getenv", "setenv", "unsetenv", "putenv"}) {
        if (has_call(code, fn)) {
          add_finding(out, path, line_no, "env.getenv", Severity::kError,
                      "raw " + std::string(fn) +
                          "(): environment access must go through the "
                          "strict parsers in src/util/env.hpp",
                      code);
          break;
        }
      }
    }
  }
}

void rule_ordered_output(std::string_view path, const std::vector<Line>& lines,
                         std::vector<Finding>& out) {
  bool serializes = false;
  for (const Line& line : lines) {
    if (has_ident(line.code, "to_json") ||
        line.code.find("operator==") != std::string::npos ||
        has_call(line.code, "merge")) {
      serializes = true;
      break;
    }
  }
  if (!serializes) return;
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string& code = lines[idx].code;
    if (trim(code).rfind('#', 0) == 0) continue;  // skip #include lines
    for (std::string_view container :
         {"unordered_map", "unordered_multimap", "unordered_set",
          "unordered_multiset"}) {
      if (has_ident(code, container)) {
        add_finding(
            out, path, static_cast<int>(idx) + 1, "order.unordered",
            Severity::kError,
            "std::" + std::string(container) +
                " in a translation unit that serializes or merges "
                "(to_json/merge/operator==): iteration order is "
                "seed-dependent — use std::map/std::set or sort before "
                "output",
            code);
        break;
      }
    }
  }
}

void rule_lock_guards(std::string_view path, const std::vector<Line>& lines,
                      std::vector<Finding>& out) {
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string& code = lines[idx].code;
    std::size_t pos = std::string::npos;
    std::size_t type_len = 0;
    for (std::string_view type :
         {"std::mutex", "std::shared_mutex", "std::recursive_mutex",
          "std::timed_mutex"}) {
      std::size_t p = code.find(type);
      while (p != std::string::npos) {
        const std::size_t end = p + type.size();
        // Skip template-argument uses (std::lock_guard<std::mutex>) and
        // longer type names (std::mutex vs std::shared_mutex handled by
        // the boundary check).
        const bool left_ok = p == 0 || (code[p - 1] != '<');
        const bool right_ok = end >= code.size() ||
                              (code[end] != '>' && !ident_char(code[end]) &&
                               code[end] != ':');
        if (left_ok && right_ok) {
          pos = p;
          type_len = type.size();
          break;
        }
        p = code.find(type, p + 1);
      }
      if (pos != std::string::npos) break;
    }
    if (pos == std::string::npos) continue;
    // A declaration: the remainder is "<identifier>;" (optionally with an
    // empty brace initializer).
    std::string_view rest = trim(std::string_view(code).substr(pos + type_len));
    if (rest.empty() || !ident_char(rest.front())) continue;
    std::size_t name_end = 0;
    while (name_end < rest.size() && ident_char(rest[name_end])) ++name_end;
    const std::string name(rest.substr(0, name_end));
    std::string_view tail = trim(rest.substr(name_end));
    if (!tail.empty() && tail.rfind("{}", 0) == 0) {
      tail = trim(tail.substr(2));
    }
    if (tail != ";") continue;
    // Satisfied by a `guards:` comment on the same line or within the
    // three preceding lines.
    bool documented = false;
    for (std::size_t back = 0; back <= 3 && back <= idx; ++back) {
      if (lines[idx - back].comment.find("guards:") != std::string::npos) {
        documented = true;
        break;
      }
    }
    if (!documented) {
      add_finding(out, path, static_cast<int>(idx) + 1, "lock.guards",
                  Severity::kWarning,
                  "mutex '" + name +
                      "' without a `guards:` comment naming the state it "
                      "protects",
                  code);
    }
  }
}

void rule_atomic_mix(std::string_view path, const std::vector<Line>& lines,
                     std::vector<Finding>& out) {
  // Pass 1: names declared as std::atomic<...> members/variables.
  struct Decl {
    std::size_t line_idx;
  };
  std::map<std::string, Decl> atomics;
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string& code = lines[idx].code;
    std::size_t pos = code.find("std::atomic<");
    if (pos == std::string::npos) continue;
    // Find the matching '>' (template args may nest, e.g. atomic<pair<..>>
    // is illegal but atomic<Foo<int>> is not unthinkable in a refactor).
    std::size_t depth = 0;
    std::size_t end = pos + 11;  // at '<'
    for (; end < code.size(); ++end) {
      if (code[end] == '<') ++depth;
      if (code[end] == '>' && --depth == 0) break;
    }
    if (end >= code.size()) continue;
    std::string_view rest = trim(std::string_view(code).substr(end + 1));
    if (rest.empty() || !ident_char(rest.front())) continue;
    std::size_t name_end = 0;
    while (name_end < rest.size() && ident_char(rest[name_end])) ++name_end;
    atomics.emplace(std::string(rest.substr(0, name_end)), Decl{idx});
  }
  if (atomics.empty()) return;

  // Pass 2: classify each use.
  for (const auto& [name, decl] : atomics) {
    bool explicit_ops = false;
    int implicit_line = 0;
    for (std::size_t idx = 0; idx < lines.size(); ++idx) {
      const std::string& code = lines[idx].code;
      std::size_t pos = 0;
      while ((pos = code.find(name, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
        std::size_t end = pos + name.size();
        if (!left_ok || (end < code.size() && ident_char(code[end]))) {
          pos += 1;
          continue;
        }
        std::string_view after = trim(std::string_view(code).substr(end));
        if (after.rfind(".load", 0) == 0 || after.rfind(".store", 0) == 0 ||
            after.rfind(".exchange", 0) == 0 ||
            after.rfind(".fetch_", 0) == 0 ||
            after.rfind(".compare_exchange", 0) == 0) {
          explicit_ops = true;
        } else if (idx != decl.line_idx) {
          const bool assign = after.rfind('=', 0) == 0 &&
                              (after.size() < 2 || after[1] != '=');
          const bool compound =
              after.rfind("+=", 0) == 0 || after.rfind("-=", 0) == 0 ||
              after.rfind("|=", 0) == 0 || after.rfind("&=", 0) == 0 ||
              after.rfind("^=", 0) == 0 || after.rfind("++", 0) == 0 ||
              after.rfind("--", 0) == 0;
          if ((assign || compound) && implicit_line == 0) {
            implicit_line = static_cast<int>(idx) + 1;
          }
        }
        pos = end;
      }
    }
    if (explicit_ops && implicit_line != 0) {
      add_finding(out, path, implicit_line, "lock.atomic-mix",
                  Severity::kWarning,
                  "atomic '" + name +
                      "' is accessed through explicit memory-order calls "
                      "elsewhere in this file but assigned with an "
                      "implicit seq_cst operator here; pick one "
                      "discipline",
                  lines[static_cast<std::size_t>(implicit_line) - 1].code);
    }
  }
}

void rule_policy_alias(std::string_view path, const std::vector<Line>& lines,
                       std::vector<Finding>& out) {
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string& code = lines[idx].code;
    if (has_ident(code, "ClassifyOptions")) {
      add_finding(out, path, static_cast<int>(idx) + 1, "policy.alias",
                  Severity::kWarning,
                  "ClassifyOptions is a deprecated alias; new code should "
                  "spell core::Policy (it carries the counterfactual knobs "
                  "too)",
                  code);
    }
  }
}

// ------------------------------------------------------------------ io

util::Expected<Finding> finding_from_json(const json::Value& value) {
  if (!value.is_object()) return util::unexpected(util::Error{"finding: not an object"});
  const json::Object& obj = value.as_object();
  for (const auto& [key, unused] : obj) {
    (void)unused;
    if (key != "rule" && key != "path" && key != "line" &&
        key != "severity" && key != "message" && key != "snippet" &&
        key != "fix_hint") {
      return util::unexpected(util::Error{"finding: unknown key '" + key + "'"});
    }
  }
  Finding f;
  const json::Value* rule = obj.find("rule");
  const json::Value* path = obj.find("path");
  const json::Value* line = obj.find("line");
  const json::Value* severity = obj.find("severity");
  if (rule == nullptr || !rule->is_string()) {
    return util::unexpected(util::Error{"finding: missing string 'rule'"});
  }
  if (path == nullptr || !path->is_string()) {
    return util::unexpected(util::Error{"finding: missing string 'path'"});
  }
  if (line == nullptr || !line->is_int() || line->as_int() < 1) {
    return util::unexpected(util::Error{"finding: missing positive integer 'line'"});
  }
  if (severity == nullptr || !severity->is_string()) {
    return util::unexpected(util::Error{"finding: missing string 'severity'"});
  }
  f.rule = rule->as_string();
  f.path = path->as_string();
  f.line = static_cast<int>(line->as_int());
  if (severity->as_string() == "error") {
    f.severity = Severity::kError;
  } else if (severity->as_string() == "warning") {
    f.severity = Severity::kWarning;
  } else {
    return util::unexpected(util::Error{"finding: unknown severity '" +
                                        severity->as_string() + "'"});
  }
  if (const json::Value* message = obj.find("message")) {
    if (!message->is_string()) {
      return util::unexpected(util::Error{"finding: 'message' must be a string"});
    }
    f.message = message->as_string();
  }
  if (const json::Value* snippet = obj.find("snippet")) {
    if (!snippet->is_string()) {
      return util::unexpected(util::Error{"finding: 'snippet' must be a string"});
    }
    f.snippet = snippet->as_string();
  }
  if (const json::Value* fix_hint = obj.find("fix_hint")) {
    if (!fix_hint->is_string()) {
      return util::unexpected(
          util::Error{"finding: 'fix_hint' must be a string"});
    }
    f.fix_hint = fix_hint->as_string();
  }
  return f;
}

}  // namespace

std::string_view severity_name(Severity severity) noexcept {
  return severity == Severity::kError ? "error" : "warning";
}

std::vector<std::string_view> rule_ids() {
  return {std::begin(kRuleIds), std::end(kRuleIds)};
}

std::string explain_rule(std::string_view rule) {
  struct Entry {
    std::string_view id;
    std::string_view why;
    std::string_view grammar;
  };
  static constexpr Entry kExplanations[] = {
      {"allow.reason",
       "Every suppression must say why. An allow (or contract exclusion, "
       "or hotpath annotation) without a ` -- reason` clause is itself a "
       "finding: an unexplained exception rots into a blanket ignore.",
       "// h2r-lint: allow(rule) -- why this use is safe"},
      {"ban.async",
       "std::async completion order is scheduler-dependent; the crawl "
       "worker pool (browser::crawl) is the sanctioned concurrency "
       "substrate and keeps merges deterministic.",
       "// h2r-lint: allow(ban.async) -- reason"},
      {"ban.clock",
       "Real-clock reads (std::chrono system/steady/high_resolution "
       "clocks, clock_gettime) make runs irreproducible; derive all "
       "timing from util::SimTime.",
       "// h2r-lint: allow(ban.clock) -- reason"},
      {"ban.rand",
       "Unseeded randomness (rand, srand, std::random_device) breaks "
       "replay; all entropy must come from util::Rng seeded by (config "
       "seed, site).",
       "// h2r-lint: allow(ban.rand) -- reason"},
      {"ban.thread-id",
       "Thread identity is assigned by the scheduler; keying state on it "
       "makes threads=N diverge from threads=1. Use the worker index.",
       "// h2r-lint: allow(ban.thread-id) -- reason"},
      {"ban.time",
       "C time APIs (time, gettimeofday, localtime, ...) read the wall "
       "clock; a simulated-time study must not.",
       "// h2r-lint: allow(ban.time) -- reason"},
      {"contract.codec-coverage",
       "Cross-TU: every field of a struct that has both a *to_json "
       "encoder and a *from_json decoder must be serialized by the "
       "encoder AND parsed by the decoder (member-pointer tables the "
       "codec drives count). One-sided codec edits and forgotten fields "
       "silently drop data across checkpoint/resume round-trips.",
       "// contract: exclude(codec) -- reason   (on the field)\n"
       "// contract: diagnostic -- reason       (excludes all contracts)"},
      {"contract.eq-coverage",
       "Cross-TU: every field of a struct with a hand-written operator== "
       "must participate in the comparison; a field outside == is "
       "invisible to every differential test. `= default` passes by "
       "construction.",
       "// contract: exclude(eq) -- reason      (on the field)\n"
       "// contract: diagnostic -- reason       (excludes all contracts)"},
      {"contract.merge-coverage",
       "Cross-TU: every field of a struct with a merge()/add(const S&) "
       "must be combined in it, wherever the defining TU lives. A field "
       "missing from merge makes sharded runs drop data and threads=N "
       "diverge from threads=1.",
       "// contract: exclude(merge) -- reason   (on the field)\n"
       "// contract: diagnostic -- reason       (excludes all contracts)"},
      {"env.getenv",
       "Raw getenv/setenv bypass the strict typed parsers in "
       "src/util/env.hpp; config read anywhere else escapes validation "
       "and the env snapshot.",
       "// h2r-lint: allow(env.getenv) -- reason"},
      {"hotpath.alloc",
       "Cross-TU: functions annotated `// h2r-lint: hotpath -- reason` "
       "run once per site across million-site studies; PR 7's arena "
       "pass bought 2.2x by keeping them allocation-free. Heap traffic "
       "here (operator new, make_unique/make_shared, by-value "
       "std::string/std::vector locals, push_back on heap-backed "
       "containers) is a perf regression.",
       "// h2r-lint: hotpath -- why this function is per-site hot\n"
       "// h2r-lint: allow(hotpath.alloc) -- why this allocation is cold"},
      {"lock.atomic-mix",
       "One atomic accessed both through explicit memory-order calls and "
       "implicit seq_cst operators hides which orderings the algorithm "
       "needs; pick one discipline per variable.",
       "// h2r-lint: allow(lock.atomic-mix) -- reason"},
      {"lock.guards",
       "A mutex without a `guards:` comment naming the state it protects "
       "cannot be audited; the comment is the lock's contract.",
       "// guards: <the state this mutex protects>"},
      {"lock.order",
       "Cross-TU: the analyzer builds the lock-acquisition graph over "
       "every modeled mutex (struct members, namespace- and "
       "function-scope declarations), including acquisitions reached "
       "through calls, and fails on any cycle — two threads taking the "
       "same pair of locks in opposite orders deadlock.",
       "// h2r-lint: allow(lock.order) -- reason  (on the acquisition)"},
      {"order.unordered",
       "std::unordered_* iteration order is hash-seed dependent; in a TU "
       "that serializes or merges it leaks into reports. Use std::map / "
       "std::set or sort before output.",
       "// h2r-lint: allow(order.unordered) -- reason"},
      {"policy.alias",
       "ClassifyOptions is a deprecated alias of core::Policy kept for "
       "source compatibility; new code should spell core::Policy.",
       "// h2r-lint: allow(policy.alias) -- reason"},
  };
  for (const Entry& entry : kExplanations) {
    if (entry.id == rule) {
      std::string out;
      out += entry.id;
      out += "\n\n";
      out += entry.why;
      out += "\n\nannotation grammar:\n  ";
      for (const char c : entry.grammar) {
        out += c;
        if (c == '\n') out += "  ";
      }
      out += '\n';
      return out;
    }
  }
  return {};
}

TreeReport scan_files(const std::vector<SourceFile>& files,
                      const Options& options) {
  TreeReport report;
  report.files_scanned = files.size();

  std::vector<Finding> raw;
  std::map<std::string, Allows> allows_by_path;
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const SourceFile& file : files) {
    const std::vector<Line> lines = lex(file.text);
    Allows allows = parse_allows(file.path, lines);

    rule_banned_apis(file.path, lines, raw);
    rule_ordered_output(file.path, lines, raw);
    rule_lock_guards(file.path, lines, raw);
    rule_atomic_mix(file.path, lines, raw);
    rule_policy_alias(file.path, lines, raw);

    if (options.contract) models.push_back(parse_file(file.path, lines));
    allows_by_path.emplace(file.path, std::move(allows));
  }

  if (options.contract) {
    const Model model = build_model(models);
    std::vector<Finding> contract = contract_findings(model, options);
    raw.insert(raw.end(), std::make_move_iterator(contract.begin()),
               std::make_move_iterator(contract.end()));
  }

  std::vector<Finding>& findings = report.findings;
  for (Finding& f : raw) {
    const auto ait = allows_by_path.find(f.path);
    if (ait != allows_by_path.end()) {
      const Allows& allows = ait->second;
      if (allows.file_rules.count(f.rule) != 0) continue;
      const auto it = allows.line_rules.find(f.line);
      if (it != allows.line_rules.end() && it->second.count(f.rule) != 0) {
        continue;
      }
    }
    findings.push_back(std::move(f));
  }
  // Malformed annotations are findings in their own right and cannot be
  // allowed away.
  for (auto& [path, allows] : allows_by_path) {
    (void)path;
    for (Finding& f : allows.malformed) findings.push_back(std::move(f));
  }

  if (options.strict) {
    for (Finding& f : findings) f.severity = Severity::kError;
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return report;
}

std::vector<Finding> scan_source(std::string_view path, std::string_view text,
                                 const Options& options) {
  std::vector<SourceFile> files;
  files.push_back({std::string(path), std::string(text)});
  return scan_files(files, options).findings;
}

TreeReport scan_tree(const std::string& repo_root,
                     const std::vector<std::string>& roots,
                     const Options& options) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  const fs::path base(repo_root);
  for (const std::string& root : roots) {
    const fs::path dir = base / root;
    std::error_code ec;
    if (fs::is_regular_file(dir, ec)) {
      paths.push_back(dir);
      continue;
    }
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".hh" ||
          ext == ".h" || ext == ".cxx") {
        paths.push_back(it->path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& file : paths) {
    std::ifstream in(file, std::ios::binary);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.push_back(
        {fs::relative(file, base).generic_string(), buffer.str()});
  }
  return scan_files(files, options);
}

json::Value findings_to_json(const std::vector<Finding>& findings) {
  json::Array array;
  array.reserve(findings.size());
  for (const Finding& f : findings) {
    json::Object obj;
    obj.set("rule", f.rule);
    obj.set("path", f.path);
    obj.set("line", static_cast<std::int64_t>(f.line));
    obj.set("severity", std::string(severity_name(f.severity)));
    obj.set("message", f.message);
    obj.set("snippet", f.snippet);
    if (!f.fix_hint.empty()) obj.set("fix_hint", f.fix_hint);
    array.emplace_back(std::move(obj));
  }
  return json::Value(std::move(array));
}

util::Expected<std::vector<Finding>> findings_from_json(
    const json::Value& value) {
  if (!value.is_array()) {
    return util::unexpected(util::Error{"findings: expected a JSON array"});
  }
  std::vector<Finding> findings;
  findings.reserve(value.as_array().size());
  for (const json::Value& entry : value.as_array()) {
    util::Expected<Finding> f = finding_from_json(entry);
    if (!f.has_value()) return util::unexpected(f.error());
    findings.push_back(std::move(*f));
  }
  return findings;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::vector<Finding>& baseline,
                                    std::size_t* suppressed) {
  std::vector<bool> matched(findings.size(), false);
  for (const Finding& entry : baseline) {
    for (std::size_t i = 0; i < findings.size(); ++i) {
      if (matched[i]) continue;
      const Finding& f = findings[i];
      if (f.rule == entry.rule && f.path == entry.path &&
          f.snippet == entry.snippet) {
        matched[i] = true;
        if (suppressed != nullptr) ++*suppressed;
        break;
      }
    }
  }
  std::vector<Finding> rest;
  rest.reserve(findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (!matched[i]) rest.push_back(std::move(findings[i]));
  }
  return rest;
}

std::string render_text(const std::vector<Finding>& findings,
                        std::size_t files_scanned, std::size_t suppressed) {
  std::ostringstream out;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Finding& f : findings) {
    (f.severity == Severity::kError ? errors : warnings) += 1;
    out << f.path << ':' << f.line << ": " << severity_name(f.severity)
        << '[' << f.rule << "]: " << f.message << '\n';
    if (!f.snippet.empty()) out << "    " << f.snippet << '\n';
  }
  out << "h2r-lint: " << files_scanned << " file(s) scanned, " << errors
      << " error(s), " << warnings << " warning(s)";
  if (suppressed != 0) {
    out << ", " << suppressed << " suppressed by baseline";
  }
  out << '\n';
  return out.str();
}

json::Value report_to_json(const std::vector<Finding>& findings,
                           std::size_t files_scanned,
                           std::size_t suppressed) {
  json::Object report;
  report.set("version", std::int64_t{1});
  report.set("files_scanned", static_cast<std::int64_t>(files_scanned));
  report.set("suppressed", static_cast<std::int64_t>(suppressed));
  report.set("findings", findings_to_json(findings));
  return json::Value(std::move(report));
}

bool has_errors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity == Severity::kError;
  });
}

}  // namespace h2r::lint
