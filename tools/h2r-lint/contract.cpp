#include "contract.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <initializer_list>
#include <map>
#include <set>
#include <sstream>

namespace h2r::lint {

namespace {

void add(std::vector<Finding>& out, std::string_view rule,
         std::string_view path, int line, Severity severity,
         std::string message, std::string_view snippet,
         std::string fix_hint) {
  Finding f;
  f.rule = std::string(rule);
  f.path = std::string(path);
  f.line = line;
  f.severity = severity;
  f.message = std::move(message);
  f.snippet = std::string(trim(snippet));
  f.fix_hint = std::move(fix_hint);
  out.push_back(std::move(f));
}

std::string at(const FunctionDef& fn) {
  return fn.path + ":" + std::to_string(fn.header_line);
}

/// Shared context: the model plus the per-path file index.
struct Ctx {
  const Model& model;
  std::map<std::string, const FileModel*> file_by_path;

  explicit Ctx(const Model& m) : model(m) {
    for (const FileModel& file : m.files) {
      file_by_path.emplace(file.path, &file);
    }
  }

  const FileModel* file_of(const FunctionDef& fn) const {
    const auto it = file_by_path.find(fn.path);
    return it == file_by_path.end() ? nullptr : it->second;
  }

  /// Body text with one level of same-file initializer-table expansion:
  /// a codec driven by `constexpr CounterField kFields[] = {...}` covers
  /// exactly the fields that table names.
  std::string effective_body(const FunctionDef& fn) const {
    std::string body = fn.body;
    const FileModel* file = file_of(fn);
    if (file != nullptr) {
      for (const auto& [name, text] : file->tables) {
        if (has_ident(fn.body, name)) {
          body += '\n';
          body += text;
        }
      }
    }
    return body;
  }
};

// ------------------------------------------------------ field coverage

/// Member (or out-of-line member) functions of `name` on struct `s` whose
/// parameter list mentions the struct itself — the merge/operator==
/// association.
std::vector<const FunctionDef*> member_fns_taking_self(
    const Ctx& ctx, const StructModel& s,
    std::initializer_list<std::string_view> names, bool require_self) {
  std::vector<const FunctionDef*> out;
  for (std::string_view name : names) {
    const auto it = ctx.model.functions_by_name.find(std::string(name));
    if (it == ctx.model.functions_by_name.end()) continue;
    for (const FunctionDef* fn : it->second) {
      if (fn->templated || fn->body.empty()) continue;
      const bool self_param = has_ident(fn->params, s.name);
      if (fn->qualifier == s.name) {
        if (!require_self || self_param) out.push_back(fn);
      } else if (fn->qualifier.empty() && self_param) {
        // Free function (free operator== / free merge helper).
        out.push_back(fn);
      }
    }
  }
  return out;
}

std::string join_names(const std::vector<const FunctionDef*>& fns) {
  std::string out;
  for (const FunctionDef* fn : fns) {
    if (!out.empty()) out += ", ";
    if (!fn->qualifier.empty()) out += fn->qualifier + "::";
    out += fn->name + " (" + at(*fn) + ")";
  }
  return out;
}

void rule_merge_coverage(const Ctx& ctx, std::vector<Finding>& out) {
  for (const auto& [name, s] : ctx.model.structs) {
    const std::vector<const FunctionDef*> merges = member_fns_taking_self(
        ctx, *s, {"merge", "add"}, /*require_self=*/true);
    if (merges.empty()) continue;
    std::string combined;
    for (const FunctionDef* fn : merges) {
      combined += ctx.effective_body(*fn);
      combined += '\n';
    }
    for (const FieldDecl& field : s->fields) {
      if (field.excluded.count("merge") != 0) continue;
      if (has_ident(combined, field.name)) continue;
      add(out, "contract.merge-coverage", field.path, field.line,
          Severity::kError,
          "struct " + s->name + ": field '" + field.name +
              "' is never combined in " + join_names(merges) +
              " — a sharded run would silently drop it and threads=N "
              "would diverge from threads=1",
          field.decl,
          "fold '" + field.name + "' into " + s->name +
              "::" + merges.front()->name +
              " (+=, min/max, map-sum or container-append), or annotate "
              "the field `// contract: exclude(merge) -- <why>`");
    }
  }
}

void rule_eq_coverage(const Ctx& ctx, std::vector<Finding>& out) {
  for (const auto& [name, s] : ctx.model.structs) {
    if (s->defaulted_eq) continue;  // every field participates by language
    const std::vector<const FunctionDef*> eqs = member_fns_taking_self(
        ctx, *s, {"operator=="}, /*require_self=*/false);
    if (eqs.empty()) continue;
    std::string combined;
    for (const FunctionDef* fn : eqs) {
      combined += ctx.effective_body(*fn);
      combined += '\n';
    }
    for (const FieldDecl& field : s->fields) {
      if (field.excluded.count("eq") != 0) continue;
      if (has_ident(combined, field.name)) continue;
      add(out, "contract.eq-coverage", field.path, field.line,
          Severity::kError,
          "struct " + s->name + ": field '" + field.name +
              "' does not participate in " + join_names(eqs) +
              " — the differential tests comparing these values would "
              "miss a divergence in it",
          field.decl,
          "compare '" + field.name +
              "' in operator== (prefer `= default` when every field "
              "belongs), or annotate the field `// contract: exclude(eq) "
              "-- <why>`");
    }
  }
}

/// The struct a codec function serves: the known, non-templated struct
/// whose identifier appears earliest in `domain`.
const StructModel* earliest_struct(const Ctx& ctx, std::string_view domain) {
  const StructModel* best = nullptr;
  std::size_t best_off = std::string_view::npos;
  for (const auto& [name, s] : ctx.model.structs) {
    std::size_t off = 0;
    if (has_ident(domain, name, &off) && off < best_off) {
      best = s;
      best_off = off;
    }
  }
  return best;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

void rule_codec_coverage(const Ctx& ctx, std::vector<Finding>& out) {
  // Associate encoders (x_to_json(const X&...)) and decoders
  // (x_from_json(...) -> Expected<X> / X* out-param) to their structs.
  std::map<const StructModel*, std::vector<const FunctionDef*>> encoders;
  std::map<const StructModel*, std::vector<const FunctionDef*>> decoders;
  for (const auto& [name, fns] : ctx.model.functions_by_name) {
    const bool enc = name == "to_json" || ends_with(name, "_to_json");
    const bool dec = ends_with(name, "from_json");
    if (!enc && !dec) continue;
    for (const FunctionDef* fn : fns) {
      if (fn->templated || fn->body.empty()) continue;
      if (enc) {
        if (const StructModel* s = earliest_struct(ctx, fn->params)) {
          encoders[s].push_back(fn);
        }
      } else {
        const std::string domain = fn->return_text + " " + fn->params;
        if (const StructModel* s = earliest_struct(ctx, domain)) {
          decoders[s].push_back(fn);
        }
      }
    }
  }
  for (const auto& [s, encs] : encoders) {
    const auto dit = decoders.find(s);
    if (dit == decoders.end()) continue;  // one-directional by design
    const std::vector<const FunctionDef*>& decs = dit->second;
    std::string enc_body;
    for (const FunctionDef* fn : encs) {
      enc_body += ctx.effective_body(*fn);
      enc_body += '\n';
    }
    std::string dec_body;
    for (const FunctionDef* fn : decs) {
      dec_body += ctx.effective_body(*fn);
      dec_body += '\n';
    }
    for (const FieldDecl& field : s->fields) {
      if (field.excluded.count("codec") != 0) continue;
      const bool in_enc = has_ident(enc_body, field.name);
      const bool in_dec = has_ident(dec_body, field.name);
      if (in_enc && in_dec) continue;
      std::string gap;
      if (in_enc) {
        gap = "is serialized in " + join_names(encs) +
              " but never parsed in " + join_names(decs) +
              " — the value is lost on resume/import";
      } else if (in_dec) {
        gap = "is parsed in " + join_names(decs) +
              " but never serialized in " + join_names(encs) +
              " — the decoder reads a field the encoder never writes";
      } else {
        gap = "appears in neither " + join_names(encs) + " nor " +
              join_names(decs) +
              " — checkpoint round-trips silently drop it";
      }
      add(out, "contract.codec-coverage", field.path, field.line,
          Severity::kError,
          "struct " + s->name + ": field '" + field.name + "' " + gap,
          field.decl,
          "handle '" + field.name +
              "' on both codec sides (or add it to the member-pointer "
              "table both drive), or annotate the field `// contract: "
              "exclude(codec) -- <why>`");
    }
  }
}

// ----------------------------------------------------------- lock.order

void rule_lock_order(const Ctx& ctx, std::vector<Finding>& out) {
  // Mutex name resolution: members by enclosing type, then file scope.
  std::map<std::string, std::map<std::string, std::string>> by_owner;
  std::map<std::string, std::map<std::string, std::string>> by_file;
  for (const MutexDecl* m : ctx.model.mutexes) {
    const std::size_t sep = m->id.rfind("::");
    const std::string owner = m->id.substr(0, sep);
    if (owner == m->path) {
      by_file[m->path].emplace(m->name, m->id);
    } else {
      by_owner[owner].emplace(m->name, m->id);
    }
  }
  const auto resolve = [&](const FunctionDef& fn,
                           const std::string& name) -> std::string {
    if (!fn.qualifier.empty()) {
      const auto oit = by_owner.find(fn.qualifier);
      if (oit != by_owner.end()) {
        const auto it = oit->second.find(name);
        if (it != oit->second.end()) return it->second;
      }
    }
    const auto fit = by_file.find(fn.path);
    if (fit != by_file.end()) {
      const auto it = fit->second.find(name);
      if (it != fit->second.end()) return it->second;
    }
    return {};
  };

  struct Acq {
    std::string id;
    std::size_t offset;
    int line;
  };
  std::map<const FunctionDef*, std::vector<Acq>> direct;
  std::vector<const FunctionDef*> fns;
  for (const FileModel& file : ctx.model.files) {
    for (const FunctionDef& fn : file.functions) {
      std::vector<Acq> acqs;
      for (const LockUse& use : fn.locks) {
        std::string id = resolve(fn, use.mutex_name);
        if (!id.empty()) acqs.push_back({std::move(id), use.offset, use.line});
      }
      if (!acqs.empty() || !fn.calls.empty()) {
        direct.emplace(&fn, std::move(acqs));
        fns.push_back(&fn);
      }
    }
  }

  // Transitive lock sets: which mutexes can a call into `fn` acquire?
  // Callees resolve by unqualified name (over-approximation: all
  // overloads), iterated to fixpoint.
  std::map<const FunctionDef*, std::set<std::string>> holds;
  for (const auto& [fn, acqs] : direct) {
    for (const Acq& a : acqs) holds[fn].insert(a.id);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionDef* fn : fns) {
      for (const CallSite& call : fn->calls) {
        const auto cit = ctx.model.functions_by_name.find(call.callee);
        if (cit == ctx.model.functions_by_name.end()) continue;
        for (const FunctionDef* callee : cit->second) {
          const auto hit = holds.find(callee);
          if (hit == holds.end()) continue;
          for (const std::string& id : hit->second) {
            if (holds[fn].insert(id).second) changed = true;
          }
        }
      }
    }
  }

  // Edges: holding A, acquire B — either a later direct acquisition in
  // the same body, or a later call whose transitive set contains B.
  struct Edge {
    const FunctionDef* fn;
    int line;
  };
  std::map<std::string, std::map<std::string, Edge>> graph;
  const auto add_edge = [&](const std::string& from, const std::string& to,
                            const FunctionDef* fn, int line) {
    if (from == to) return;  // re-entrancy is not modeled (see DESIGN §15)
    graph[from].emplace(to, Edge{fn, line});
  };
  for (const auto& [fn, acqs] : direct) {
    for (std::size_t i = 0; i < acqs.size(); ++i) {
      for (std::size_t j = i + 1; j < acqs.size(); ++j) {
        add_edge(acqs[i].id, acqs[j].id, fn, acqs[j].line);
      }
      for (const CallSite& call : fn->calls) {
        if (call.offset <= acqs[i].offset) continue;
        const auto cit = ctx.model.functions_by_name.find(call.callee);
        if (cit == ctx.model.functions_by_name.end()) continue;
        for (const FunctionDef* callee : cit->second) {
          const auto hit = holds.find(callee);
          if (hit == holds.end()) continue;
          for (const std::string& id : hit->second) {
            add_edge(acqs[i].id, id, fn, call.line);
          }
        }
      }
    }
  }

  // Cycle detection: DFS with colors over the sorted node set; each
  // distinct cycle (by node set) is reported once, attributed to its
  // closing edge.
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        const auto git = graph.find(node);
        if (git != graph.end()) {
          for (const auto& [next, edge] : git->second) {
            if (color[next] == 1) {
              // Back edge: the cycle is stack[first(next)..end] + next.
              const auto begin =
                  std::find(stack.begin(), stack.end(), next);
              std::vector<std::string> cycle(begin, stack.end());
              std::vector<std::string> key_nodes = cycle;
              std::sort(key_nodes.begin(), key_nodes.end());
              std::string key;
              for (const std::string& n : key_nodes) key += n + "|";
              if (reported.insert(key).second) {
                std::ostringstream msg;
                msg << "lock-order cycle: ";
                for (const std::string& n : cycle) msg << n << " -> ";
                msg << next;
                msg << " (closing edge " << node << " -> " << next
                    << " in " << edge.fn->name << " at " << at(*edge.fn)
                    << "); two threads taking these locks in opposite "
                       "orders deadlock";
                add(out, "lock.order", edge.fn->path, edge.line,
                    Severity::kError, msg.str(), "",
                    "pick one global acquisition order for these mutexes "
                    "(document it in their `guards:` comments) or "
                    "collapse the critical sections so only one lock is "
                    "ever held at a time");
              }
            } else if (color[next] == 0) {
              dfs(next);
            }
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, unused] : graph) {
    (void)unused;
    if (color[node] == 0) dfs(node);
  }
}

// --------------------------------------------------------- hotpath.alloc

enum class Backing { kArena, kHeap, kUnknown };

/// Backing implied by one declaration's text, kUnknown when the text
/// names neither an arena type nor a heap container.
Backing backing_of_decl(const std::string& decl, std::size_t before) {
  std::size_t type_off = 0;
  if ((has_ident(decl, "ArenaVector", &type_off) ||
       has_ident(decl, "ArenaString", &type_off) ||
       has_ident(decl, "ArenaAllocator", &type_off) ||
       has_ident(decl, "Arena", &type_off)) &&
      type_off < before) {
    return Backing::kArena;
  }
  for (std::string_view heap_type :
       {"std::vector", "std::string", "std::deque", "std::map",
        "std::set"}) {
    // Boundary-aware: "std::string_view" must not match "std::string".
    std::size_t t = 0;
    if (has_ident(decl, heap_type, &t) && t < before) return Backing::kHeap;
  }
  return Backing::kUnknown;
}

/// Where does `receiver`'s storage come from? Resolution order:
///   1. declarations inside the function body,
///   2. fields of the function's own enclosing type (qualifier),
///   3. fields named `receiver` anywhere in the model — but only when
///      every such field agrees (names like `domains` recur across
///      unrelated structs with different backings; a disagreement means
///      we do not know which one this function touches, and kUnknown
///      never flags).
Backing resolve_receiver(const Ctx& ctx, const FunctionDef& fn,
                         const std::string& receiver) {
  std::istringstream body(fn.body);
  std::string line;
  while (std::getline(body, line)) {
    std::size_t recv_off = 0;
    if (!has_ident(line, receiver, &recv_off)) continue;
    const Backing b = backing_of_decl(line, recv_off);
    if (b != Backing::kUnknown) return b;
  }
  if (!fn.qualifier.empty()) {
    const auto it = ctx.model.structs.find(fn.qualifier);
    if (it != ctx.model.structs.end()) {
      for (const FieldDecl& field : it->second->fields) {
        if (field.name != receiver) continue;
        const Backing b = backing_of_decl(field.decl, field.decl.size());
        if (b != Backing::kUnknown) return b;
      }
    }
  }
  Backing agreed = Backing::kUnknown;
  for (const FileModel& file : ctx.model.files) {
    for (const StructModel& s : file.structs) {
      for (const FieldDecl& field : s.fields) {
        if (field.name != receiver) continue;
        const Backing b = backing_of_decl(field.decl, field.decl.size());
        if (b == Backing::kUnknown) continue;
        if (agreed == Backing::kUnknown) {
          agreed = b;
        } else if (agreed != b) {
          return Backing::kUnknown;
        }
      }
    }
  }
  return agreed;
}

void rule_hotpath_alloc(const Ctx& ctx, std::vector<Finding>& out) {
  constexpr std::string_view kHint =
      "allocate through the per-site arena (util::Arena / ArenaVector / "
      "the domain interner) or hoist the allocation out of the hot "
      "function; `h2r-lint: allow(hotpath.alloc) -- <why>` if it is "
      "genuinely cold";
  for (const FileModel& file : ctx.model.files) {
    for (const FunctionDef& fn : file.functions) {
      if (!fn.hotpath) continue;
      if (fn.hotpath_missing_reason) {
        add(out, "allow.reason", fn.path, fn.hotpath_line, Severity::kError,
            "hotpath annotation without a reason; write \"h2r-lint: "
            "hotpath -- why this function is per-site hot\"",
            "", "");
      }
      std::istringstream body(fn.body);
      std::string line;
      int line_no = fn.body_begin_line - 1;
      while (std::getline(body, line)) {
        ++line_no;
        if (has_ident(line, "new") && !has_ident(line, "delete")) {
          add(out, "hotpath.alloc", fn.path, line_no, Severity::kWarning,
              "operator new inside hot-path function '" + fn.name +
                  "' — PR 7's arena pass exists to keep this loop "
                  "allocation-free",
              line, std::string(kHint));
          continue;
        }
        // has_ident, not has_call: the explicit template argument list
        // (make_unique<T>(...)) separates the name from its '('.
        if (has_ident(line, "make_unique") || has_ident(line, "make_shared")) {
          add(out, "hotpath.alloc", fn.path, line_no, Severity::kWarning,
              "heap-owning smart-pointer construction inside hot-path "
              "function '" +
                  fn.name + "'",
              line, std::string(kHint));
          continue;
        }
        // A by-value std::string / std::vector local: construction (and
        // growth) allocates. References and pointers bind, they do not.
        for (std::string_view owner : {"std::string", "std::vector"}) {
          std::size_t pos = 0;
          if (!has_ident(line, owner, &pos)) continue;
          std::size_t i = pos + owner.size();
          if (i < line.size() && line[i] == '<') {
            int depth = 0;
            for (; i < line.size(); ++i) {
              if (line[i] == '<') ++depth;
              if (line[i] == '>' && --depth == 0) {
                ++i;
                break;
              }
            }
          }
          while (i < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[i]))) {
            ++i;
          }
          if (i < line.size() && ident_char(line[i])) {
            add(out, "hotpath.alloc", fn.path, line_no, Severity::kWarning,
                "by-value " + std::string(owner) +
                    " declared inside hot-path function '" + fn.name +
                    "' — its buffer is a per-site heap allocation",
                line, std::string(kHint));
            break;
          }
        }
        // Growth on a known heap-backed container.
        for (std::string_view grower : {"push_back", "emplace_back"}) {
          std::size_t pos = 0;
          std::size_t search = 0;
          bool flagged = false;
          while (!flagged &&
                 (pos = line.find(grower, search)) != std::string::npos) {
            search = pos + grower.size();
            if (pos == 0 || (line[pos - 1] != '.' &&
                             !(pos >= 2 && line[pos - 2] == '-' &&
                               line[pos - 1] == '>'))) {
              continue;
            }
            std::size_t recv_end = pos - 1;
            if (line[recv_end] == '>') recv_end -= 1;  // '->'
            std::size_t recv_begin = recv_end;
            while (recv_begin > 0 && ident_char(line[recv_begin - 1])) {
              --recv_begin;
            }
            if (recv_begin == recv_end) continue;
            const std::string receiver(
                line.substr(recv_begin, recv_end - recv_begin));
            if (resolve_receiver(ctx, fn, receiver) == Backing::kHeap) {
              add(out, "hotpath.alloc", fn.path, line_no,
                  Severity::kWarning,
                  "'" + receiver + "." + std::string(grower) +
                      "' grows a heap-backed container inside hot-path "
                      "function '" +
                      fn.name + "'",
                  line, std::string(kHint));
              flagged = true;
            }
          }
          if (flagged) break;
        }
      }
    }
  }
}

void rule_annotation_issues(const Ctx& ctx, std::vector<Finding>& out) {
  for (const FileModel& file : ctx.model.files) {
    for (const AnnotationIssue& issue : file.annotation_issues) {
      add(out, "allow.reason", issue.path, issue.line, Severity::kError,
          "contract annotation is malformed or missing its reason; write "
          "\"contract: exclude(merge|eq|codec) -- why\" or \"contract: "
          "diagnostic -- why\"",
          issue.text, "");
    }
  }
}

}  // namespace

std::vector<Finding> contract_findings(const Model& model,
                                       const Options& options) {
  (void)options;
  Ctx ctx(model);
  std::vector<Finding> out;
  rule_merge_coverage(ctx, out);
  rule_eq_coverage(ctx, out);
  rule_codec_coverage(ctx, out);
  rule_lock_order(ctx, out);
  rule_hotpath_alloc(ctx, out);
  rule_annotation_issues(ctx, out);
  return out;
}

}  // namespace h2r::lint
