#include "model.hpp"

#include <algorithm>
#include <cctype>

namespace h2r::lint {

namespace {

constexpr std::string_view kControlKeywords[] = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignof", "decltype", "static_assert", "new", "delete",
    "throw", "co_await", "co_return", "co_yield", "and", "or", "not",
    "assert",
};

bool is_control_keyword(std::string_view name) {
  return std::find(std::begin(kControlKeywords), std::end(kControlKeywords),
                   name) != std::end(kControlKeywords);
}

/// Position of the first `c` at parenthesis/angle depth zero; npos if none.
std::size_t find_top_level(std::string_view s, char c) {
  int paren = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char cur = s[i];
    // Compare before adjusting depth so the first top-level '(' itself
    // is findable.
    if (paren == 0 && cur == c) {
      // `<=>` and `<=` / `>=` / `==` / `!=` are operators, not the
      // initializer `=` a field declaration pivots on.
      if (c == '=' &&
          ((i > 0 && (s[i - 1] == '<' || s[i - 1] == '>' || s[i - 1] == '=' ||
                      s[i - 1] == '!' || s[i - 1] == '+' || s[i - 1] == '-' ||
                      s[i - 1] == '*' || s[i - 1] == '/' || s[i - 1] == '|' ||
                      s[i - 1] == '&' || s[i - 1] == '^' ||
                      s[i - 1] == '%')) ||
           (i + 1 < s.size() && s[i + 1] == '='))) {
        continue;
      }
      return i;
    }
    if (cur == '(' || cur == '[') ++paren;
    if (cur == ')' || cur == ']') --paren;
  }
  return std::string_view::npos;
}

/// Last identifier in `s` (empty if none).
std::string last_ident(std::string_view s) {
  std::size_t end = s.size();
  while (end > 0 && !ident_char(s[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && ident_char(s[begin - 1])) --begin;
  return std::string(s.substr(begin, end - begin));
}

/// First identifier token of `s` (empty if none).
std::string first_ident(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && !ident_char(s[begin])) ++begin;
  std::size_t end = begin;
  while (end < s.size() && ident_char(s[end])) ++end;
  return std::string(s.substr(begin, end - begin));
}

/// Strips a leading `template <...>` clause (balanced angle brackets).
std::string_view strip_template(std::string_view s, bool* templated) {
  std::string_view t = trim(s);
  if (t.rfind("template", 0) != 0) return t;
  if (templated != nullptr) *templated = true;
  std::size_t i = 8;
  while (i < t.size() && t[i] != '<') ++i;
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i] == '<') ++depth;
    if (t[i] == '>' && --depth == 0) {
      ++i;
      break;
    }
  }
  return trim(t.substr(i));
}

/// Strips leading access-specifier labels ("public:", friend-free).
std::string_view strip_labels(std::string_view s) {
  std::string_view t = trim(s);
  for (std::string_view label : {"public", "protected", "private"}) {
    if (t.rfind(label, 0) == 0) {
      std::string_view rest = trim(t.substr(label.size()));
      if (!rest.empty() && rest.front() == ':') {
        t = trim(rest.substr(1));
      }
    }
  }
  return t;
}

constexpr std::string_view kMutexTypes[] = {
    "std::mutex", "std::shared_mutex", "std::recursive_mutex",
    "std::timed_mutex"};

/// If `decl` declares a mutex variable, returns its name.
std::string mutex_decl_name(std::string_view decl) {
  for (std::string_view type : kMutexTypes) {
    std::size_t p = decl.find(type);
    while (p != std::string_view::npos) {
      const std::size_t end = p + type.size();
      const bool left_ok = p == 0 || (decl[p - 1] != '<');
      const bool right_ok = end >= decl.size() ||
                            (decl[end] != '>' && !ident_char(decl[end]) &&
                             decl[end] != ':');
      if (left_ok && right_ok) {
        std::string_view rest = trim(decl.substr(end));
        if (!rest.empty() && ident_char(rest.front())) {
          std::size_t name_end = 0;
          while (name_end < rest.size() && ident_char(rest[name_end])) {
            ++name_end;
          }
          return std::string(rest.substr(0, name_end));
        }
      }
      p = decl.find(type, p + 1);
    }
  }
  return {};
}

/// One entry of the scope stack the statement scanner maintains.
struct Scope {
  enum class Kind { kNamespace, kType, kFunction, kInit, kBlock };
  Kind kind = Kind::kBlock;
  int open_depth = 0;      // brace depth BEFORE this scope's '{'
  bool is_struct = false;  // kType: struct (modeled) vs class (mutex-only)
  bool templated = false;
  std::string type_name;   // kType
  std::size_t function_index = 0;  // kFunction: index into functions
  std::string table_name;  // kInit at namespace scope: table to record
  std::string table_text;  // captured initializer text
  bool keep_stmt = false;  // kInit for brace initializers: statement
                           // continues after the closing '}'
};

/// Comment text attached to a statement: the comments on its own lines
/// plus any directly preceding comment-only lines.
std::string gather_comments(const std::vector<Line>& lines, int first_line,
                            int last_line) {
  std::string out;
  int back = first_line - 1;  // 1-based line above the statement
  while (back >= 1) {
    const Line& line = lines[static_cast<std::size_t>(back) - 1];
    if (!trim(line.code).empty() || trim(line.comment).empty()) break;
    --back;
  }
  for (int l = back + 1; l <= last_line && l <= static_cast<int>(lines.size());
       ++l) {
    const Line& line = lines[static_cast<std::size_t>(l) - 1];
    if (!line.comment.empty()) {
      out += line.comment;
      out += '\n';
    }
  }
  return out;
}

/// Parses `// contract: diagnostic -- why` / `// contract: exclude(a, b)
/// -- why` out of a field's comments. Returns the excluded rule set;
/// flags a malformed annotation through `issue`.
std::set<std::string> parse_field_contract(std::string_view comments,
                                           bool* malformed,
                                           std::string* issue_text) {
  std::set<std::string> excluded;
  std::size_t tag = comments.find("contract:");
  if (tag == std::string_view::npos) return excluded;
  std::string_view rest = trim(comments.substr(tag + 9));
  std::set<std::string> rules;
  bool ok = false;
  if (rest.rfind("diagnostic", 0) == 0) {
    rules = {"merge", "eq", "codec"};
    rest.remove_prefix(10);
    ok = true;
  } else if (rest.rfind("exclude(", 0) == 0) {
    rest.remove_prefix(8);
    const std::size_t close = rest.find(')');
    if (close != std::string_view::npos) {
      std::string_view list = rest.substr(0, close);
      rest.remove_prefix(close + 1);
      ok = true;
      while (!list.empty()) {
        const std::size_t comma = list.find(',');
        const std::string rule{trim(list.substr(0, comma))};
        if (rule != "merge" && rule != "eq" && rule != "codec") {
          ok = false;
          break;
        }
        rules.insert(rule);
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
      }
    }
  } else {
    // Some other "contract:" prose; not an annotation.
    return excluded;
  }
  // The reason clause is mandatory, exactly like allow(rule) -- reason.
  bool has_reason = false;
  std::string_view tail = trim(rest);
  if (tail.rfind("--", 0) == 0) {
    has_reason = !trim(tail.substr(2)).empty();
  } else if (tail.rfind("\xE2\x80\x94", 0) == 0) {
    has_reason = !trim(tail.substr(3)).empty();
  }
  if (!ok || !has_reason) {
    *malformed = true;
    *issue_text = std::string(trim(comments.substr(tag)));
    // Cut at the first newline so the issue reads as one annotation.
    const std::size_t nl = issue_text->find('\n');
    if (nl != std::string::npos) issue_text->resize(nl);
    return excluded;
  }
  return rules;
}

/// Whether the comments carry the hotpath function annotation (grammar
/// in lint.hpp); `missing_reason` set when the mandatory reason clause
/// is absent.
bool parse_hotpath(std::string_view comments, bool* missing_reason) {
  const std::size_t tag = comments.find("h2r-lint: hotpath");
  if (tag == std::string_view::npos) return false;
  std::string_view rest = trim(comments.substr(tag + 17));
  bool has_reason = false;
  if (rest.rfind("--", 0) == 0) {
    has_reason = !trim(rest.substr(2)).empty();
  } else if (rest.rfind("\xE2\x80\x94", 0) == 0) {
    has_reason = !trim(rest.substr(3)).empty();
  }
  *missing_reason = !has_reason;
  return true;
}

int line_of_offset(std::string_view body, std::size_t offset, int begin_line) {
  return begin_line +
         static_cast<int>(std::count(body.begin(),
                                     body.begin() + static_cast<std::ptrdiff_t>(
                                                        offset),
                                     '\n'));
}

/// Post-processes a function body: lock acquisitions and call sites in
/// body order.
void index_function_body(FunctionDef& fn) {
  const std::string_view body = fn.body;
  // Guard-object acquisitions: std::lock_guard<...> g(m); scoped_lock
  // over several mutexes; unique/shared_lock.
  for (std::string_view guard :
       {"lock_guard", "scoped_lock", "unique_lock", "shared_lock"}) {
    std::size_t pos = 0;
    while ((pos = body.find(guard, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += guard.size();
      const bool left_ok = start == 0 || !ident_char(body[start - 1]);
      if (!left_ok) continue;
      std::size_t i = pos;
      // Optional template argument list.
      while (i < body.size() && std::isspace(static_cast<unsigned char>(
                                    body[i]))) {
        ++i;
      }
      if (i < body.size() && body[i] == '<') {
        int depth = 0;
        for (; i < body.size(); ++i) {
          if (body[i] == '<') ++depth;
          if (body[i] == '>' && --depth == 0) {
            ++i;
            break;
          }
        }
      }
      // Guard variable name.
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      std::size_t name_end = i;
      while (name_end < body.size() && ident_char(body[name_end])) ++name_end;
      if (name_end == i) continue;
      i = name_end;
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      if (i >= body.size() || (body[i] != '(' && body[i] != '{')) continue;
      const char open = body[i];
      const char close = open == '(' ? ')' : '}';
      int depth = 0;
      std::size_t args_begin = i + 1;
      std::size_t args_end = args_begin;
      for (; i < body.size(); ++i) {
        if (body[i] == open) ++depth;
        if (body[i] == close && --depth == 0) {
          args_end = i;
          break;
        }
      }
      std::string_view args = body.substr(args_begin, args_end - args_begin);
      // Split top-level commas; each plain identifier is a mutex operand.
      int pdepth = 0;
      std::size_t item_begin = 0;
      for (std::size_t j = 0; j <= args.size(); ++j) {
        const char c = j < args.size() ? args[j] : ',';
        if (c == '(' || c == '<' || c == '[') ++pdepth;
        if (c == ')' || c == '>' || c == ']') --pdepth;
        if (c == ',' && pdepth <= 0) {
          std::string_view item = trim(args.substr(item_begin, j - item_begin));
          while (!item.empty() && (item.front() == '&' || item.front() == '*')) {
            item.remove_prefix(1);
          }
          if (item.rfind("this->", 0) == 0) item.remove_prefix(6);
          bool plain = !item.empty();
          for (char ic : item) {
            if (!ident_char(ic)) {
              plain = false;
              break;
            }
          }
          if (plain && item != "std") {
            fn.locks.push_back(
                {std::string(item), start,
                 line_of_offset(body, start, fn.body_begin_line)});
          }
          item_begin = j + 1;
        }
      }
    }
  }
  // Direct .lock() calls: receiver identifier right before the dot.
  std::size_t pos = 0;
  while ((pos = body.find(".lock()", pos)) != std::string_view::npos) {
    std::size_t end = pos;
    std::size_t begin = end;
    while (begin > 0 && ident_char(body[begin - 1])) --begin;
    if (begin != end) {
      fn.locks.push_back(
          {std::string(body.substr(begin, end - begin)), begin,
           line_of_offset(body, begin, fn.body_begin_line)});
    }
    pos += 7;
  }
  std::sort(fn.locks.begin(), fn.locks.end(),
            [](const LockUse& a, const LockUse& b) {
              return a.offset < b.offset;
            });
  // Call sites: every identifier directly followed by '('.
  pos = 0;
  while (pos < body.size()) {
    if (!ident_char(body[pos])) {
      ++pos;
      continue;
    }
    std::size_t end = pos;
    while (end < body.size() && ident_char(body[end])) ++end;
    const std::string_view name = body.substr(pos, end - pos);
    std::size_t after = end;
    while (after < body.size() &&
           std::isspace(static_cast<unsigned char>(body[after]))) {
      ++after;
    }
    if (after < body.size() && body[after] == '(' &&
        !is_control_keyword(name) &&
        !(std::isdigit(static_cast<unsigned char>(name.front())) != 0)) {
      fn.calls.push_back({std::string(name), pos,
                          line_of_offset(body, pos, fn.body_begin_line)});
    }
    pos = end;
  }
}

/// The statement-level scanner: walks the blanked code of every line,
/// tracking brace depth and a scope stack, and materializes the file's
/// structs, functions, tables and mutexes.
class FileParser {
 public:
  FileParser(std::string_view path, const std::vector<Line>& lines)
      : path_(path), lines_(lines) {
    file_.path = std::string(path);
  }

  FileModel run() {
    bool prev_preprocessor_continues = false;
    for (std::size_t idx = 0; idx < lines_.size(); ++idx) {
      cur_line_ = static_cast<int>(idx) + 1;
      const std::string& code = lines_[idx].code;
      const std::string_view trimmed = trim(code);
      if (prev_preprocessor_continues || trimmed.rfind('#', 0) == 0) {
        prev_preprocessor_continues =
            !trimmed.empty() && trimmed.back() == '\\';
        append_to_function('\n');
        continue;
      }
      for (const char c : code) consume(c);
      consume_newline();
    }
    // Close any function left open by unbalanced braces (defensively).
    for (FunctionDef& fn : file_.functions) index_function_body(fn);
    return std::move(file_);
  }

 private:
  void append_to_function(char c) {
    // Every enclosing function scope receives the char: a lambda's body
    // also belongs to the function it sits in, so field mentions inside
    // lambdas still count toward coverage.
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) {
        file_.functions[it->function_index].body += c;
      }
    }
  }

  void append_to_capture(char c) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kInit && !it->table_name.empty()) {
        it->table_text += c;
        return;
      }
    }
  }

  bool inside_capture() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kInit && !it->table_name.empty()) {
        return true;
      }
    }
    return false;
  }

  Scope* innermost_type() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kType) return &*it;
      if (it->kind == Scope::Kind::kFunction) break;
    }
    return nullptr;
  }

  bool in_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return true;
    }
    return false;
  }

  /// True when the scanner sits directly in a type's member list.
  bool at_member_level() {
    if (scopes_.empty()) return false;
    const Scope& top = scopes_.back();
    return top.kind == Scope::Kind::kType && depth_ == top.open_depth + 1;
  }

  void consume_newline() {
    append_to_function('\n');
    if (inside_capture()) append_to_capture('\n');
    if (!trim(stmt_).empty() && stmt_.back() != ' ') stmt_ += ' ';
  }

  void consume(char c) {
    append_to_function(c);
    if (c == '{') {
      if (inside_capture()) {
        append_to_capture(c);
        ++depth_;
        return;
      }
      open_brace();
      ++depth_;
      return;
    }
    if (c == '}') {
      --depth_;
      if (!scopes_.empty() && scopes_.back().open_depth == depth_) {
        close_scope();
      } else if (inside_capture()) {
        append_to_capture(c);
      }
      return;
    }
    if (inside_capture()) {
      append_to_capture(c);
      return;
    }
    if (c == ';' && stmt_paren_depth_ <= 0) {
      end_statement();
      stmt_paren_depth_ = 0;
      return;
    }
    if (trim(stmt_).empty() && !std::isspace(static_cast<unsigned char>(c))) {
      stmt_start_line_ = cur_line_;
      stmt_paren_depth_ = 0;
    }
    if (c == '(') ++stmt_paren_depth_;
    if (c == ')' && stmt_paren_depth_ > 0) --stmt_paren_depth_;
    stmt_ += c;
  }

  void open_brace() {
    Scope scope;
    scope.open_depth = depth_;
    bool templated = false;
    const std::string_view stmt = strip_labels(strip_template(stmt_, &templated));
    const std::string head = first_ident(stmt);
    if (stmt_paren_depth_ > 0) {
      // '{' inside an unclosed argument list: a braced init or lambda
      // body, never a definition header. Keep the statement alive.
      scope.kind = Scope::Kind::kInit;
      scope.keep_stmt = true;
    } else if (head == "namespace") {
      scope.kind = Scope::Kind::kNamespace;
    } else if (head == "struct" || head == "class" ||
               ((head == "typedef" || head == "mutable" ||
                 head == "static") &&
                false)) {
      scope.kind = Scope::Kind::kType;
      scope.is_struct = head == "struct";
      scope.templated = templated;
      scope.type_name = first_ident(stmt.substr(stmt.find(head) + head.size()));
      if (scope.type_name == "alignas" || scope.type_name.empty()) {
        scope.kind = Scope::Kind::kBlock;
      }
    } else if (head == "enum" || head == "union" || head == "extern") {
      scope.kind = Scope::Kind::kBlock;
    } else if (find_top_level(stmt, '=') != std::string_view::npos) {
      // Initializer: a namespace-scope `constexpr T kName[] = {...}`
      // becomes a recorded table; any other brace init keeps its
      // statement alive across the braces (field default initializers).
      scope.kind = Scope::Kind::kInit;
      scope.keep_stmt = true;
      if (!in_function() && innermost_type() == nullptr) {
        std::string_view before_eq =
            stmt.substr(0, find_top_level(stmt, '='));
        while (!before_eq.empty() &&
               (before_eq.back() == '[' || before_eq.back() == ']' ||
                std::isspace(static_cast<unsigned char>(before_eq.back())))) {
          before_eq.remove_suffix(1);
        }
        scope.table_name = last_ident(before_eq);
      }
    } else if (function_head(stmt, templated, &scope)) {
      // scope filled in by function_head.
    } else if (!trim(stmt).empty() &&
               (at_member_level() || innermost_type() == nullptr) &&
               !in_function()) {
      // Brace initializer without '=': `std::array<...> rates{};`
      scope.kind = Scope::Kind::kInit;
      scope.keep_stmt = true;
    } else {
      scope.kind = Scope::Kind::kBlock;
    }
    if (!scope.keep_stmt) stmt_.clear();
    scopes_.push_back(std::move(scope));
  }

  /// Tries to parse `stmt` as a function definition header; fills `scope`
  /// and registers the FunctionDef when it is one.
  bool function_head(std::string_view stmt, bool templated, Scope* scope) {
    // `operator==` / `operator<=>` need special carving (their '=' and
    // '<' would confuse the generic scan).
    std::size_t paren = std::string_view::npos;
    std::string name;
    std::size_t op = stmt.find("operator");
    if (op != std::string_view::npos &&
        (op == 0 || !ident_char(stmt[op - 1]))) {
      std::size_t p = op + 8;
      while (p < stmt.size() && stmt[p] != '(') ++p;
      if (p < stmt.size()) {
        paren = p;
        name = std::string(trim(stmt.substr(op, p - op)));
        // Normalize "operator ==" -> "operator==".
        name.erase(std::remove(name.begin(), name.end(), ' '), name.end());
      }
    }
    if (paren == std::string_view::npos) {
      paren = find_top_level(stmt, '(');
      if (paren == std::string_view::npos) return false;
      name = last_ident(stmt.substr(0, paren));
    }
    if (name.empty() || is_control_keyword(name)) return false;
    if (std::isdigit(static_cast<unsigned char>(name.front())) != 0) {
      return false;
    }
    // An '=' before the parameter list means this is an initializer with
    // a function-call default, not a definition header.
    const std::size_t eq = find_top_level(stmt.substr(0, paren), '=');
    if (eq != std::string_view::npos && stmt.find("operator") == std::string_view::npos) {
      return false;
    }

    FunctionDef fn;
    fn.name = name;
    fn.templated = templated;
    fn.path = std::string(path_);
    fn.header_line = stmt_start_line_;
    fn.body_begin_line = cur_line_;
    // Out-of-line qualifier: the identifier before the trailing `::`.
    std::string_view before_name = stmt.substr(0, stmt.rfind(name, paren));
    before_name = trim(before_name);
    if (before_name.size() >= 2 &&
        before_name.substr(before_name.size() - 2) == "::") {
      fn.qualifier = last_ident(before_name.substr(0, before_name.size() - 2));
      before_name = before_name.substr(0, before_name.size() - 2);
      // Drop the qualifier chain from the return text.
      while (!before_name.empty() &&
             (ident_char(before_name.back()) || before_name.back() == ':')) {
        before_name.remove_suffix(1);
      }
    } else if (Scope* type = innermost_type(); type != nullptr) {
      fn.qualifier = type->type_name;
      fn.templated = fn.templated || type->templated;
    }
    fn.return_text = std::string(before_name);
    // Parameter text: the balanced group starting at `paren`.
    int depth = 0;
    std::size_t params_end = paren;
    for (std::size_t i = paren; i < stmt.size(); ++i) {
      if (stmt[i] == '(') ++depth;
      if (stmt[i] == ')' && --depth == 0) {
        params_end = i;
        break;
      }
    }
    fn.params = std::string(stmt.substr(paren + 1, params_end - paren - 1));

    const std::string comments =
        gather_comments(lines_, stmt_start_line_, cur_line_);
    bool missing_reason = false;
    if (parse_hotpath(comments, &missing_reason)) {
      fn.hotpath = true;
      fn.hotpath_missing_reason = missing_reason;
      fn.hotpath_line = stmt_start_line_;
    }

    scope->kind = Scope::Kind::kFunction;
    scope->function_index = file_.functions.size();
    file_.functions.push_back(std::move(fn));
    return true;
  }

  void close_scope() {
    Scope scope = std::move(scopes_.back());
    scopes_.pop_back();
    switch (scope.kind) {
      case Scope::Kind::kType:
        if (scope.is_struct && pending_struct_ != nullptr) {
          // finalized below through pending_structs_ stack
        }
        finalize_type(scope);
        stmt_.clear();
        break;
      case Scope::Kind::kInit:
        if (!scope.table_name.empty()) {
          file_.tables[scope.table_name] = std::move(scope.table_text);
        }
        if (scope.keep_stmt) {
          stmt_ += " {} ";  // stand-in so the tail still ends in ';'
        } else {
          stmt_.clear();
        }
        break;
      case Scope::Kind::kFunction:
      case Scope::Kind::kNamespace:
      case Scope::Kind::kBlock:
        stmt_.clear();
        break;
    }
  }

  void finalize_type(const Scope& scope) {
    auto it = open_structs_.find(scope_key(scope));
    if (it == open_structs_.end()) return;
    if (scope.is_struct) file_.structs.push_back(std::move(it->second));
    open_structs_.erase(it);
  }

  std::string scope_key(const Scope& scope) const {
    return scope.type_name + "@" + std::to_string(scope.open_depth);
  }

  /// The StructModel being filled for the innermost open type (created
  /// lazily at the first member).
  StructModel& open_struct(const Scope& type) {
    const std::string key = scope_key(type);
    auto it = open_structs_.find(key);
    if (it == open_structs_.end()) {
      StructModel model;
      model.name = type.type_name;
      model.path = std::string(path_);
      model.line = cur_line_;
      model.templated = type.templated;
      it = open_structs_.emplace(key, std::move(model)).first;
    }
    return it->second;
  }

  void end_statement() {
    const std::string_view raw = trim(stmt_);
    if (raw.empty()) {
      stmt_.clear();
      return;
    }
    if (at_member_level()) {
      member_statement(raw);
    } else {
      // Namespace-scope and function-local (incl. static) mutex
      // declarations share the file-scoped identity path::name.
      const std::string name = mutex_decl_name(raw);
      if (!name.empty()) {
        file_.mutexes.push_back({std::string(path_) + "::" + name, name,
                                 std::string(path_), cur_line_});
      }
    }
    stmt_.clear();
  }

  void member_statement(std::string_view raw) {
    Scope* type = innermost_type();
    if (type == nullptr) return;
    bool templated = false;
    std::string_view stmt = strip_labels(strip_template(raw, &templated));
    if (stmt.empty()) return;
    StructModel& model = open_struct(*type);
    model.templated = model.templated || type->templated;

    // Defaulted equality: operator== or operator<=> ... = default.
    if ((stmt.find("operator==") != std::string_view::npos ||
         stmt.find("operator ==") != std::string_view::npos ||
         stmt.find("operator<=>") != std::string_view::npos)) {
      model.declares_eq = true;
      if (stmt.find("default") != std::string_view::npos) {
        model.defaulted_eq = true;
      }
      return;
    }

    const std::string head = first_ident(stmt);
    if (head == "using" || head == "typedef" || head == "friend" ||
        head == "static" || head == "enum" || head == "struct" ||
        head == "class" || head == "template" || head == "explicit" ||
        head == "virtual" || head == "operator") {
      return;
    }

    // Member mutexes get identity Type::name and are not value state.
    const std::string mutex_name = mutex_decl_name(stmt);
    if (!mutex_name.empty()) {
      file_.mutexes.push_back({type->type_name + "::" + mutex_name,
                               mutex_name, std::string(path_), cur_line_});
      return;
    }

    // A '(' before any top-level '=' means a member-function declaration.
    std::size_t eq = find_top_level(stmt, '=');
    std::string_view decl_part =
        eq == std::string_view::npos ? stmt : stmt.substr(0, eq);
    if (decl_part.find('(') != std::string_view::npos) return;
    // Strip the brace-init stand-in the kInit close appends.
    while (!decl_part.empty() &&
           (decl_part.back() == '{' || decl_part.back() == '}' ||
            std::isspace(static_cast<unsigned char>(decl_part.back())))) {
      decl_part.remove_suffix(1);
    }
    const std::string name = last_ident(decl_part);
    if (name.empty()) return;
    // `std::atomic<...>` members and bare references are not mergeable
    // value state either, but they ARE fields the contract covers — a
    // struct holding them next to merged counters is already suspect.

    FieldDecl field;
    field.name = name;
    field.path = std::string(path_);
    field.line = cur_line_;
    field.decl = std::string(trim(raw));
    const std::string comments =
        gather_comments(lines_, stmt_start_line_, cur_line_);
    bool malformed = false;
    std::string issue_text;
    field.excluded = parse_field_contract(comments, &malformed, &issue_text);
    if (malformed) {
      file_.annotation_issues.push_back(
          {std::string(path_), stmt_start_line_, issue_text});
    }
    model.fields.push_back(std::move(field));
  }

  std::string_view path_;
  const std::vector<Line>& lines_;
  FileModel file_;
  std::vector<Scope> scopes_;
  std::map<std::string, StructModel> open_structs_;
  StructModel* pending_struct_ = nullptr;
  std::string stmt_;
  int stmt_paren_depth_ = 0;  // ';' inside for(..;..;..) is not a terminator
  int stmt_start_line_ = 1;
  int cur_line_ = 1;
  int depth_ = 0;
};

}  // namespace

FileModel parse_file(std::string_view path, const std::vector<Line>& lines) {
  return FileParser(path, lines).run();
}

const std::string* Model::find_table(const FileModel& file,
                                     const std::string& name) const {
  const auto it = file.tables.find(name);
  if (it != file.tables.end()) return &it->second;
  return nullptr;
}

Model build_model(const std::vector<FileModel>& files) {
  Model model;
  model.files = files;
  for (const FileModel& file : model.files) {
    for (const StructModel& s : file.structs) {
      if (s.templated) continue;
      model.structs.emplace(s.name, &s);  // first definition wins
    }
    for (const FunctionDef& fn : file.functions) {
      model.functions_by_name[fn.name].push_back(&fn);
    }
    for (const MutexDecl& mutex : file.mutexes) {
      model.mutexes.push_back(&mutex);
    }
  }
  return model;
}

}  // namespace h2r::lint
