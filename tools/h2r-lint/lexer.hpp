// h2r-lint's lexing layer: the shared text substrate under both passes.
//
// The per-TU token rules (lint.cpp) and the cross-TU contract analyzer
// (model.cpp / contract.cpp) look at the same prepared view of a source
// file: physical lines whose comments and string/char-literal contents
// have been blanked to spaces (columns preserved) with the comment text
// kept alongside, so annotation grammars can be parsed without ever
// confusing a comment for code. Hand-rolled in the spirit of src/json —
// no libclang, no external deps.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace h2r::lint {

/// One physical line after lexing: `code` has comments and the contents
/// of string/char literals blanked to spaces (column positions are
/// preserved), `comment` holds the text of any comment on the line.
struct Line {
  std::string code;
  std::string comment;
};

/// Splits `text` into lines, blanking comments and literals. Handles //
/// and block comments, escaped quotes, digit separators (1'000) and raw
/// strings.
std::vector<Line> lex(std::string_view text);

bool ident_char(char c) noexcept;

std::string_view trim(std::string_view s);

/// True when `code` contains `name` as a standalone identifier (both
/// neighbours are non-identifier characters). `offset` receives the
/// match position.
bool has_ident(std::string_view code, std::string_view name,
               std::size_t* offset = nullptr);

/// True when `code` calls `name` (identifier directly followed by an
/// opening parenthesis, modulo whitespace).
bool has_call(std::string_view code, std::string_view name);

}  // namespace h2r::lint
