// h2r — the command-line front end of the library.
//
//   h2r audit <page.har> [--json]  audit a HAR file for redundant conns
//   h2r study [--threads N]      run the full two-population study
//   h2r crawl <config.json> <landing-domain> [resources...]
//                                 build an ecosystem from JSON, load a page
//                                 against it and audit the result
//   h2r replay [--proxy shared|worker|both]
//                                 replay crawl traffic through the
//                                 edge-proxy upstream pool architectures
//   h2r optimize [--sites N]      rank counterfactual policy interventions
//                                 (ORIGIN frames, DNS sync, cert merges,
//                                 credential relaxation) by measured
//                                 connections recovered — no re-crawl
//   h2r dns-overlap               run the Figure 3 resolver-overlap study
//   h2r snapshot <out.json> [N]   crawl N universe sites, save the exact
//                                 connection records as a dataset
//   h2r analyze <dataset.json>    re-analyze a saved dataset (no crawl)
//
// Everything the subcommands do is plain library API — the tool exists so
// operators can audit a deployment without writing C++.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "browser/crawl.hpp"
#include "core/advisor.hpp"
#include "core/observation_json.hpp"
#include "core/report_json.hpp"
#include "core/dns_study.hpp"
#include "experiments/study.hpp"
#include "fault/fault.hpp"
#include "journal/checkpoint.hpp"
#include "har/import.hpp"
#include "obs/metrics.hpp"
#include "optimize/optimize.hpp"
#include "pool/pool.hpp"
#include "pool/replay.hpp"
#include "stats/table.hpp"
#include "util/format.hpp"
#include "web/catalog.hpp"
#include "web/config.hpp"
#include "web/sitegen.hpp"

using namespace h2r;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  h2r audit <page.har> [--json]\n"
               "  h2r study [--journal <path>] [--resume] [--json <out>]\n"
               "            [--metrics <out>] [--stream] [--spill <dir>]\n"
               "            [--hist-budget <n>]\n"
               "  h2r replay [--proxy shared|worker|both] [--sites N]\n"
               "            [--json <out>] [--metrics <out>]\n"
               "  h2r optimize [--sites N] [--json <out>] [--stream]\n"
               "            [--spill <dir>]\n"
               "  h2r crawl <config.json> <landing-domain> [resource-domain...]\n"
               "  h2r dns-overlap <config.json> <domain-a> <domain-b>\n"
               "  h2r snapshot <out.json> [site-count]\n"
               "  h2r analyze <dataset.json>\n"
               "\nstudy scale: H2R_HAR_SITES / H2R_ALEXA_SITES / H2R_SEED / "
               "H2R_THREADS\n"
               "chaos mode:  H2R_FAULT_RATE (0..1) / H2R_FAULT_SEED / "
               "H2R_FAULT_RETRIES / H2R_FAULT_BACKOFF_MS\n"
               "durability:  H2R_JOURNAL (or --journal) / H2R_RESUME (or "
               "--resume) / H2R_SITE_DEADLINE_MS\n"
               "metrics:     H2R_METRICS (or --metrics) — write the "
               "deterministic metric snapshot as JSON\n"
               "scale:       H2R_STREAM (or --stream) — bounded-memory "
               "streaming crawl, bit-identical results\n"
               "             H2R_SPILL (or --spill) — spill report windows "
               "to <dir> and merge at the end (needs --stream/--journal)\n"
               "             H2R_HIST_BUDGET (or --hist-budget) — cap every "
               "duration histogram at <n> bins\n"
               "optimize:    H2R_POLICY_DURATION (endless|immediate|exact) / "
               "H2R_POLICY_ORIGIN_FRAME / H2R_POLICY_SYNC_DNS /\n"
               "             H2R_POLICY_CERT_CONSOLIDATION / "
               "H2R_POLICY_IGNORE_CREDENTIALS — restrict the swept knobs\n");
  return 2;
}

util::Expected<std::string> read_file(const char* path) {
  std::ifstream file(path);
  if (!file) {
    return util::unexpected(util::Error{std::string("cannot open ") + path});
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

int cmd_audit(const char* path, bool as_json) {
  const auto text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "%s\n", text.error().message.c_str());
    return 1;
  }
  const auto log = har::parse(*text);
  if (!log) {
    std::fprintf(stderr, "HAR parse error: %s (offset %zu)\n",
                 log.error().message.c_str(), log.error().offset);
    return 1;
  }
  har::ImportStats stats;
  const core::SiteObservation site = har::import_site(log.value(), &stats);
  const auto cls =
      core::classify_site(site, {core::DurationModel::kEndless});
  if (as_json) {
    json::Object root;
    root.set("classification", core::to_json(cls));
    root.set("audit",
             core::to_json(core::audit_site(
                 site, cls, core::Policy{core::DurationModel::kEndless})));
    json::WriteOptions opts;
    opts.pretty = true;
    std::printf("%s\n", json::write(json::Value{std::move(root)}, opts).c_str());
    return 0;
  }
  std::printf("%llu entries, %llu usable HTTP/2 requests (%llu filtered, "
              "%llu h1, %llu h3)\n\n",
              static_cast<unsigned long long>(stats.total_entries),
              static_cast<unsigned long long>(stats.used_entries),
              static_cast<unsigned long long>(stats.dropped()),
              static_cast<unsigned long long>(stats.h1_entries),
              static_cast<unsigned long long>(stats.h3_entries));
  std::printf("%s",
              core::render(
                  core::audit_site(
                      site, cls, core::Policy{core::DurationModel::kEndless}))
                  .c_str());
  return 0;
}

/// The full study as one deterministic JSON document (full-fidelity
/// reports, diagnostics-free summaries) — byte-identical across thread
/// counts and across kill/resume, which is exactly what the CI
/// crash-recovery job diffs.
json::Value study_to_json(const experiments::StudyResults& r) {
  json::Object root;
  json::Object reports;
  reports.set("har_endless", core::to_json_full(r.har_endless));
  reports.set("har_immediate", core::to_json_full(r.har_immediate));
  reports.set("alexa_exact", core::to_json_full(r.alexa_exact));
  reports.set("alexa_endless", core::to_json_full(r.alexa_endless));
  reports.set("nofetch_exact", core::to_json_full(r.nofetch_exact));
  reports.set("overlap_har_endless", core::to_json_full(r.overlap_har_endless));
  reports.set("overlap_alexa_endless",
              core::to_json_full(r.overlap_alexa_endless));
  root.set("reports", std::move(reports));
  json::Object summaries;
  summaries.set("har", journal::to_json(r.har_summary));
  summaries.set("alexa", journal::to_json(r.alexa_summary));
  summaries.set("nofetch", journal::to_json(r.nofetch_summary));
  root.set("summaries", std::move(summaries));
  root.set("overlap_sites", static_cast<std::int64_t>(r.overlap_sites));
  return json::Value{std::move(root)};
}

int cmd_study(int argc, char** argv) {
  experiments::StudyConfig config = experiments::StudyConfig::from_env();
  const char* json_out = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      config.journal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      config.resume = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      config.metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      config.stream = true;
    } else if (std::strcmp(argv[i], "--spill") == 0 && i + 1 < argc) {
      config.spill_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--hist-budget") == 0 && i + 1 < argc) {
      config.hist_budget =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      return usage();
    }
  }
  if (config.resume && config.journal_path.empty()) {
    std::fprintf(stderr, "--resume needs a journal (--journal/H2R_JOURNAL)\n");
    return 2;
  }
  std::printf("running study: %zu HAR-like + %zu Alexa-like sites, seed %llu, "
              "%u thread(s)\n",
              config.har_sites, config.alexa_sites,
              static_cast<unsigned long long>(config.seed), config.threads);
  if (!config.journal_path.empty()) {
    std::printf("journal: %s%s\n", config.journal_path.c_str(),
                config.resume ? " (resuming)" : "");
  }
  if (config.stream) {
    std::printf("streaming: bounded-memory crawl (results bit-identical to "
                "materialized mode)\n");
  }
  if (!config.spill_dir.empty()) {
    std::printf("spill: report windows spill to %s\n",
                config.spill_dir.c_str());
  }
  if (config.hist_budget > 0) {
    std::printf("histograms: budgeted to %u bins\n", config.hist_budget);
  }
  std::printf("\n");
  experiments::StudyResults r;
  try {
    r = experiments::run_study(config);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "study failed: %s\n", error.what());
    return 1;
  }
  auto row = [](const char* name, const core::AggregateReport& report) {
    std::printf("%-18s %7s sites (%s redundant)  %9s conns (%s redundant)\n",
                name, util::human_count(report.h2_sites).c_str(),
                util::percent(static_cast<double>(report.redundant_sites),
                              static_cast<double>(report.h2_sites))
                    .c_str(),
                util::human_count(report.total_connections).c_str(),
                util::percent(
                    static_cast<double>(report.redundant_connections),
                    static_cast<double>(report.total_connections))
                    .c_str());
  };
  row("HAR endless", r.har_endless);
  row("HAR immediate", r.har_immediate);
  row("Alexa", r.alexa_exact);
  row("Alexa w/o Fetch", r.nofetch_exact);

  if (config.faults.enabled()) {
    std::printf("\nfault injection (%s), all campaigns:\n%s",
                config.faults.signature().c_str(),
                fault::describe(r.total_failures()).c_str());
  }

  auto workers = [](const char* name, const browser::CrawlSummary& summary) {
    if (summary.per_worker.empty()) return;
    std::printf("\n%s crawl workers:\n%s", name,
                browser::describe_workers(summary).c_str());
  };
  workers("Alexa", r.alexa_summary);
  workers("Alexa w/o Fetch", r.nofetch_summary);
  workers("HAR", r.har_summary);

  if (!config.journal_path.empty()) {
    std::printf("\njournal: %llu bytes in %llu fsynced commits",
                static_cast<unsigned long long>(r.journal_bytes),
                static_cast<unsigned long long>(r.journal_fsyncs));
    if (r.resumed_chunks > 0) {
      std::printf("; resumed %llu chunk(s) covering %llu site(s)",
                  static_cast<unsigned long long>(r.resumed_chunks),
                  static_cast<unsigned long long>(r.resumed_sites));
    }
    std::printf("\n");
  }
  if (!config.spill_dir.empty()) {
    std::printf("\nspill: %llu bytes of report windows framed to %s\n",
                static_cast<unsigned long long>(r.spill_bytes),
                config.spill_dir.c_str());
  }

  if (!r.metrics.empty()) {
    std::printf("\nmetrics:\n%s", obs::render_table(r.metrics).c_str());
  }
  if (!config.metrics_path.empty()) {
    std::ofstream out(config.metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", config.metrics_path.c_str());
      return 1;
    }
    json::WriteOptions opts;
    opts.pretty = true;
    out << json::write(obs::to_json(r.metrics), opts) << "\n";
    std::printf("wrote metric snapshot to %s\n", config.metrics_path.c_str());
  }

  if (json_out != nullptr) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_out);
      return 1;
    }
    json::WriteOptions opts;
    opts.pretty = true;
    out << json::write(study_to_json(r), opts) << "\n";
    std::printf("wrote study report to %s\n", json_out);
  }
  return 0;
}

int cmd_optimize(int argc, char** argv) {
  optimize::OptimizeConfig config = optimize::OptimizeConfig::from_env();
  const char* json_out = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sites") == 0 && i + 1 < argc) {
      config.sites = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
      if (config.sites == 0) return usage();
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      config.stream = true;
    } else if (std::strcmp(argv[i], "--spill") == 0 && i + 1 < argc) {
      config.spill_dir = argv[++i];
    } else {
      return usage();
    }
  }
  std::printf("optimizing reuse over %zu sites, seed %llu, %u thread(s), "
              "knob mask 0x%x (%zu policies)\n\n",
              config.sites, static_cast<unsigned long long>(config.seed),
              config.threads, config.knob_mask,
              static_cast<std::size_t>(1)
                  << core::Policy::with_mask(config.knob_mask).knob_count());
  optimize::OptimizeResults r;
  try {
    r = optimize::run_optimize(config);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "optimize failed: %s\n", error.what());
    return 1;
  }
  std::printf("%s", optimize::render(r).c_str());
  if (json_out != nullptr) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_out);
      return 1;
    }
    json::WriteOptions opts;
    opts.pretty = true;
    out << json::write(optimize::to_json(r), opts) << "\n";
    std::printf("\nwrote intervention ranking to %s\n", json_out);
  }
  return 0;
}

int cmd_replay(int argc, char** argv) {
  const experiments::StudyConfig study = experiments::StudyConfig::from_env();
  proxy::ReplayOptions options;
  options.pool = pool::PoolConfig::from_env();
  options.crawl.seed = study.seed;
  options.crawl.threads = study.threads;
  options.threads = study.threads;
  std::size_t sites = study.alexa_sites;
  bool want_shared = true;
  bool want_worker = true;
  switch (options.pool.arch) {
    case pool::Architecture::kShared: want_worker = false; break;
    case pool::Architecture::kWorker: want_shared = false; break;
  }
  const char* json_out = nullptr;
  const char* metrics_out = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--proxy") == 0 && i + 1 < argc) {
      const char* arch = argv[++i];
      if (std::strcmp(arch, "shared") == 0) {
        want_shared = true;
        want_worker = false;
      } else if (std::strcmp(arch, "worker") == 0) {
        want_shared = false;
        want_worker = true;
      } else if (std::strcmp(arch, "both") == 0) {
        want_shared = true;
        want_worker = true;
      } else {
        std::fprintf(stderr, "--proxy wants shared|worker|both, got %s\n",
                     arch);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--sites") == 0 && i + 1 < argc) {
      sites = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      return usage();
    }
  }

  std::printf("replaying %zu site(s) x %zu visit(s) through the edge proxy "
              "(%s), seed %llu, %u thread(s)\n",
              sites, options.pool.visits, options.pool.signature().c_str(),
              static_cast<unsigned long long>(study.seed), study.threads);

  web::Ecosystem eco{study.seed};
  web::ServiceCatalog catalog{eco, study.seed};
  web::UniverseConfig universe_config = web::UniverseConfig::defaults();
  universe_config.seed = study.seed;
  web::SiteUniverse universe{eco, catalog, universe_config};
  const std::vector<proxy::SiteTrace> traces =
      proxy::collect_traces(universe, 0, sites, options.crawl);

  json::Object json_root;
  json::Object metrics_root;
  const pool::Architecture archs[] = {pool::Architecture::kWorker,
                                      pool::Architecture::kShared};
  for (const pool::Architecture arch : archs) {
    if (arch == pool::Architecture::kShared ? !want_shared : !want_worker) {
      continue;
    }
    options.pool.arch = arch;
    const proxy::ReplayReport report = proxy::replay_traces(traces, options);
    std::printf("\n%s", proxy::render(report).c_str());
    const std::string name = pool::to_string(arch);
    json_root.set(name, proxy::to_json(report));
    metrics_root.set(name, obs::to_json(report.metrics));
  }

  if (metrics_out != nullptr) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out);
      return 1;
    }
    json::WriteOptions opts;
    opts.pretty = true;
    out << json::write(json::Value{std::move(metrics_root)}, opts) << "\n";
    std::printf("\nwrote metric snapshot to %s\n", metrics_out);
  }
  if (json_out != nullptr) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_out);
      return 1;
    }
    json::WriteOptions opts;
    opts.pretty = true;
    out << json::write(json::Value{std::move(json_root)}, opts) << "\n";
    std::printf("\nwrote replay report to %s\n", json_out);
  }
  return 0;
}

int cmd_crawl(int argc, char** argv) {
  const auto text = read_file(argv[0]);
  if (!text) {
    std::fprintf(stderr, "%s\n", text.error().message.c_str());
    return 1;
  }
  web::Ecosystem eco{1};
  const auto loaded = web::load_ecosystem(eco, *text);
  if (!loaded) {
    std::fprintf(stderr, "config error: %s\n", loaded.error().message.c_str());
    return 1;
  }
  std::printf("loaded %zu cluster(s) from %s\n", *loaded, argv[0]);

  web::Website site;
  site.landing_domain = argv[1];
  site.url = std::string("https://") + argv[1];
  util::Rng rng{7};
  for (int i = 2; i < argc; ++i) {
    web::Resource r;
    r.domain = argv[i];
    r.path = std::string("/");  // dodges GCC 12 -Wrestrict FP (PR 105651)
    r.destination = fetch::Destination::kScript;
    r.start_delay = web::jitter(rng, 20, 300);
    site.resources.push_back(std::move(r));
  }

  dns::RecursiveResolver resolver{dns::standard_vantage_points()[0],
                                  &eco.authority()};
  browser::Browser chrome{eco, resolver, browser::BrowserOptions{}, 1};
  const browser::PageLoadResult page = chrome.load(site, util::days(1));
  if (page.failed_fetches > 0) {
    std::printf("note: %llu fetches failed (unresolvable or TLS mismatch)\n",
                static_cast<unsigned long long>(page.failed_fetches));
  }
  std::printf("%s", core::render(core::audit_site(page.observation)).c_str());
  return 0;
}

int cmd_dns_overlap(int argc, char** argv) {
  (void)argc;
  const auto text = read_file(argv[0]);
  if (!text) {
    std::fprintf(stderr, "%s\n", text.error().message.c_str());
    return 1;
  }
  web::Ecosystem eco{1};
  const auto loaded = web::load_ecosystem(eco, *text);
  if (!loaded) {
    std::fprintf(stderr, "config error: %s\n", loaded.error().message.c_str());
    return 1;
  }
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {argv[1], argv[2]}};
  core::DnsOverlapConfig config;
  config.duration = util::days(1);
  const auto series = core::run_dns_overlap_study(
      eco.authority(), pairs, dns::standard_vantage_points(), config);
  std::printf("%s / %s: answers overlap in %.0f%% of 6-minute slots "
              "(mean %.2f of 14 resolvers)\n",
              argv[1], argv[2], 100.0 * series[0].any_overlap_share(),
              series[0].mean_overlap());
  std::printf(series[0].mean_overlap() > 7
                  ? "-> connection reuse mostly works for this pair\n"
                  : "-> expect IP-cause redundant connections for this pair\n");
  return 0;
}

int cmd_snapshot(const char* path, std::size_t count) {
  web::Ecosystem eco{42};
  web::ServiceCatalog catalog{eco, 42};
  web::SiteUniverse universe{eco, catalog};
  browser::CrawlOptions options;
  std::vector<core::SiteObservation> observations;
  browser::crawl_range(universe, 0, count, options,
                       [&](const browser::SiteResult& site) {
                         if (site.reachable) {
                           observations.push_back(site.netlog_observation);
                         }
                       });
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << json::write(core::dataset_to_json(observations));
  std::printf("wrote %zu site observations to %s\n", observations.size(),
              path);
  return 0;
}

int cmd_analyze(const char* path) {
  const auto text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "%s\n", text.error().message.c_str());
    return 1;
  }
  const auto parsed = json::parse(*text);
  if (!parsed) {
    std::fprintf(stderr, "JSON error: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const auto dataset = core::dataset_from_json(parsed.value());
  if (!dataset) {
    std::fprintf(stderr, "dataset error: %s\n",
                 dataset.error().message.c_str());
    return 1;
  }
  core::Aggregator agg;
  for (const core::SiteObservation& site : *dataset) {
    agg.add_site(site,
                 core::classify_site(site, {core::DurationModel::kExact}));
  }
  const core::AggregateReport& r = agg.report();
  std::printf("%zu sites, %s connections, %s redundant (%s)\n",
              dataset->size(),
              util::human_count(r.total_connections).c_str(),
              util::human_count(r.redundant_connections).c_str(),
              util::percent(static_cast<double>(r.redundant_connections),
                            static_cast<double>(r.total_connections))
                  .c_str());
  for (core::Cause cause : core::kAllCauses) {
    const auto it = r.by_cause.find(cause);
    if (it == r.by_cause.end()) continue;
    std::printf("  %-5s %6s sites  %8s connections\n",
                core::to_string(cause).c_str(),
                util::human_count(it->second.sites).c_str(),
                util::human_count(it->second.connections).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "audit") == 0 && (argc == 3 || argc == 4)) {
    const bool as_json = argc == 4 && std::strcmp(argv[3], "--json") == 0;
    return cmd_audit(argv[2], as_json);
  }
  if (std::strcmp(cmd, "study") == 0) return cmd_study(argc - 2, argv + 2);
  if (std::strcmp(cmd, "optimize") == 0) {
    return cmd_optimize(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "replay") == 0) return cmd_replay(argc - 2, argv + 2);
  if (std::strcmp(cmd, "crawl") == 0 && argc >= 4) {
    return cmd_crawl(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "dns-overlap") == 0 && argc == 5) {
    return cmd_dns_overlap(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "snapshot") == 0 && (argc == 3 || argc == 4)) {
    const std::size_t count =
        argc == 4 ? std::strtoull(argv[3], nullptr, 10) : 100;
    return cmd_snapshot(argv[2], count);
  }
  if (std::strcmp(cmd, "analyze") == 0 && argc == 3) {
    return cmd_analyze(argv[2]);
  }
  return usage();
}
