// Property tests for the deterministic string interner (core/intern.hpp):
// ids are a pure function of first-seen order, the canonical shard-merge
// remap makes any worker count emit byte-identical JSON, and id<->string
// round-trips survive randomized workloads (seeded like json_fuzz_test —
// fixed seeds, reproducible failures).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/intern.hpp"
#include "json/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace h2r::core {
namespace {

/// Deterministic domain-ish corpus: repeats dominate (like a crawl's
/// shared CDN domains) with a long unique tail.
std::vector<std::string> corpus(util::Rng& rng, std::size_t size) {
  static const char* kTlds[] = {"com", "net", "org", "io", "dev"};
  std::vector<std::string> out;
  out.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (!out.empty() && rng.index(100) < 40) {
      out.push_back(out[rng.index(out.size())]);  // repeat
      continue;
    }
    std::string host;
    const std::size_t labels = 1 + rng.index(3);
    for (std::size_t l = 0; l < labels; ++l) {
      const std::size_t len = 1 + rng.index(10);
      for (std::size_t c = 0; c < len; ++c) {
        // Mixed case: interning must fold deterministically.
        const char base = rng.index(2) == 0 ? 'a' : 'A';
        host.push_back(static_cast<char>(base + rng.index(26)));
      }
      host.push_back('.');
    }
    host += kTlds[rng.index(5)];
    out.push_back(std::move(host));
  }
  return out;
}

TEST(Interner, IdsAreFirstSeenOrder) {
  Interner interner;
  EXPECT_EQ(interner.intern("a.example"), 0u);
  EXPECT_EQ(interner.intern("b.example"), 1u);
  EXPECT_EQ(interner.intern("a.example"), 0u);  // repeat keeps its id
  EXPECT_EQ(interner.intern("c.example"), 2u);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.str(1), "b.example");
  EXPECT_EQ(interner.find("c.example"), 2u);
  EXPECT_EQ(interner.find("missing"), Interner::kNpos);
}

TEST(Interner, LowerFoldsBeforeInterning) {
  Interner interner;
  const std::uint32_t id = interner.intern_lower("CDN.Example.COM");
  EXPECT_EQ(interner.str(id), "cdn.example.com");
  EXPECT_EQ(interner.intern_lower("cdn.EXAMPLE.com"), id);
  EXPECT_EQ(interner.intern("cdn.example.com"), id);
  // Raw interning of the cased form is a DIFFERENT string.
  EXPECT_NE(interner.intern("CDN.Example.COM"), id);
}

class InternerSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InternerSeeds, IdsArePureFunctionOfFirstSeenOrder) {
  util::Rng rng{GetParam()};
  const auto strings = corpus(rng, 2000);

  // Interning the same sequence twice — into fresh interners — must
  // assign identical ids at every step (no hidden hashing/pointer order).
  Interner a;
  Interner b;
  for (const std::string& s : strings) {
    EXPECT_EQ(a.intern(s), b.intern(s));
  }
  EXPECT_EQ(a.size(), b.size());
  for (std::uint32_t id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.str(id), b.str(id));
  }
}

TEST_P(InternerSeeds, RoundTripIdString) {
  util::Rng rng{GetParam() ^ 0x1237abcdull};
  const auto strings = corpus(rng, 3000);
  Interner interner;
  std::vector<std::pair<std::string, std::uint32_t>> seen;
  for (const std::string& s : strings) {
    const std::uint32_t id = interner.intern(s);
    ASSERT_LT(id, interner.size());
    EXPECT_EQ(interner.str(id), s);  // id -> string
    EXPECT_EQ(interner.find(s), id);  // string -> id
    EXPECT_EQ(interner.intern(s), id);
    // Lower-interning agrees with interning the lowered copy.
    EXPECT_EQ(interner.intern_lower(s), interner.intern(util::to_lower(s)));
    seen.emplace_back(s, id);
  }
  // Growth/rehash along the way must not have moved ANY earlier id.
  for (const auto& [s, id] : seen) {
    EXPECT_EQ(interner.find(s), id);
    EXPECT_EQ(interner.str(id), s);
  }
}

/// Shard-merge model of a study: workers tally id-keyed counts in their
/// own id spaces; the canonical remap folds the shards into one
/// thread-count-invariant JSON report.
std::string sharded_report(const std::vector<std::string>& stream,
                           unsigned threads) {
  std::vector<Interner> interners(threads);
  std::vector<std::vector<std::uint64_t>> counts(threads);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    // Deterministic round-robin sharding: which worker sees a string —
    // and hence its shard-local id — depends on the thread count.
    const unsigned worker = static_cast<unsigned>(i % threads);
    const std::uint32_t id = interners[worker].intern_lower(stream[i]);
    if (counts[worker].size() <= id) counts[worker].resize(id + 1, 0);
    ++counts[worker][id];
  }

  std::vector<const Interner*> shards;
  for (const Interner& interner : interners) shards.push_back(&interner);
  const CanonicalRemap remap{shards};

  std::vector<std::uint64_t> merged(remap.size(), 0);
  for (unsigned t = 0; t < threads; ++t) {
    for (std::uint32_t id = 0; id < interners[t].size(); ++id) {
      merged[remap.remap(t, id)] += counts[t][id];
    }
  }

  json::Array rows;
  for (std::uint32_t c = 0; c < remap.size(); ++c) {
    json::Object row;
    row.set("domain", std::string(remap.str(c)));
    row.set("count", static_cast<std::int64_t>(merged[c]));
    rows.emplace_back(std::move(row));
  }
  json::Object root;
  root.set("domains", std::move(rows));
  return json::write(json::Value{std::move(root)});
}

TEST_P(InternerSeeds, CanonicalRemapIsThreadCountInvariant) {
  util::Rng rng{GetParam() ^ 0x7151ull};
  const auto stream = corpus(rng, 4000);
  const std::string one = sharded_report(stream, 1);
  EXPECT_EQ(one, sharded_report(stream, 2));
  EXPECT_EQ(one, sharded_report(stream, 7));
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternerSeeds,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(CanonicalRemap, AssignsLexicographicIds) {
  Interner a;
  Interner b;
  a.intern("zebra.example");
  a.intern("alpha.example");
  b.intern("mid.example");
  b.intern("alpha.example");  // shared with shard a
  const CanonicalRemap remap{{&a, &b}};
  ASSERT_EQ(remap.size(), 3u);
  EXPECT_EQ(remap.str(0), "alpha.example");
  EXPECT_EQ(remap.str(1), "mid.example");
  EXPECT_EQ(remap.str(2), "zebra.example");
  EXPECT_EQ(remap.remap(0, 0), 2u);  // zebra
  EXPECT_EQ(remap.remap(0, 1), 0u);  // alpha
  EXPECT_EQ(remap.remap(1, 0), 1u);  // mid
  EXPECT_EQ(remap.remap(1, 1), 0u);  // alpha, same canonical id as shard a's
}

TEST(Interner, ClearResetsIdSpace) {
  Interner interner;
  interner.intern("a");
  interner.intern("b");
  EXPECT_GT(interner.pool_bytes(), 0u);
  interner.clear();
  EXPECT_EQ(interner.size(), 0u);
  EXPECT_EQ(interner.find("a"), Interner::kNpos);
  EXPECT_EQ(interner.intern("b"), 0u);  // fresh first-seen order
}

}  // namespace
}  // namespace h2r::core
