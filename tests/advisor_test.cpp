#include <gtest/gtest.h>

#include "core/advisor.hpp"

namespace h2r::core {
namespace {

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s).value(); }

ConnectionRecord conn(std::uint64_t id, const char* address,
                      const char* domain, std::vector<std::string> sans,
                      util::SimTime opened_at) {
  ConnectionRecord rec;
  rec.id = id;
  rec.endpoint = net::Endpoint{ip(address), 443};
  rec.initial_domain = domain;
  rec.san_dns_names = std::move(sans);
  rec.issuer_organization = "CA";
  rec.has_certificate = !rec.san_dns_names.empty();
  rec.opened_at = opened_at;
  RequestRecord req;
  req.started_at = opened_at;
  req.finished_at = opened_at + 40;
  req.domain = domain;
  rec.requests.push_back(req);
  return rec;
}

SiteObservation site(std::vector<ConnectionRecord> conns) {
  SiteObservation s;
  s.site_url = "https://audit.example";
  s.connections = std::move(conns);
  return s;
}

TEST(Advisor, CleanSiteHasNoAdvice) {
  const AuditReport report = audit_site(site({
      conn(1, "10.0.0.1", "a.one.example", {"a.one.example"}, 0),
      conn(2, "10.0.0.2", "b.two.example", {"b.two.example"}, 50),
  }));
  EXPECT_TRUE(report.advice.empty());
  EXPECT_EQ(report.redundant_connections, 0u);
  EXPECT_NE(render(report).find("nothing to do"), std::string::npos);
}

TEST(Advisor, IpWithinOneOperatorSuggestsDnsSync) {
  // Same registrable domain -> the GT/GA pattern -> DNS sync advice.
  const AuditReport report = audit_site(site({
      conn(1, "10.0.0.1", "tag.metrics.example", {"*.metrics.example"}, 0),
      conn(2, "10.0.0.2", "collect.metrics.example", {"*.metrics.example"},
           50),
  }));
  ASSERT_EQ(report.advice.size(), 1u);
  EXPECT_EQ(report.advice[0].cause, Cause::kIp);
  EXPECT_EQ(report.advice[0].remedy, RemedyKind::kSyncDnsLoadBalancing);
  EXPECT_EQ(report.advice[0].domain, "collect.metrics.example");
  EXPECT_EQ(report.advice[0].reusable_domain, "tag.metrics.example");
}

TEST(Advisor, IpAcrossOperatorsSuggestsOriginFrame) {
  const AuditReport report = audit_site(site({
      conn(1, "10.0.0.1", "cdn.one.example", {"*.one.example", "*.two.example"},
           0),
      conn(2, "10.0.0.2", "app.two.example", {"*.two.example"}, 50),
  }));
  ASSERT_EQ(report.advice.size(), 1u);
  EXPECT_EQ(report.advice[0].remedy, RemedyKind::kDeployOriginFrame);
}

TEST(Advisor, CertSuggestsMerge) {
  const AuditReport report = audit_site(site({
      conn(1, "10.0.0.1", "static.shop.example", {"static.shop.example"}, 0),
      conn(2, "10.0.0.1", "img.shop.example", {"img.shop.example"}, 50),
  }));
  ASSERT_EQ(report.advice.size(), 1u);
  EXPECT_EQ(report.advice[0].cause, Cause::kCert);
  EXPECT_EQ(report.advice[0].remedy, RemedyKind::kMergeCertificates);
  EXPECT_EQ(report.non_ip_redundant, 1u);
}

TEST(Advisor, CredSameDomainSuggestsCrossoriginFix) {
  const AuditReport report = audit_site(site({
      conn(1, "10.0.0.1", "fonts.cdn.example", {"*.cdn.example"}, 0),
      conn(2, "10.0.0.1", "fonts.cdn.example", {"*.cdn.example"}, 50),
  }));
  ASSERT_EQ(report.advice.size(), 1u);
  EXPECT_EQ(report.advice[0].cause, Cause::kCred);
  EXPECT_EQ(report.advice[0].remedy, RemedyKind::kAlignCrossoriginUsage);
}

TEST(Advisor, CredCrossDomainSuggestsFetchRelaxation) {
  const AuditReport report = audit_site(site({
      conn(1, "10.0.0.1", "a.cdn.example", {"*.cdn.example"}, 0),
      conn(2, "10.0.0.1", "b.cdn.example", {"*.cdn.example"}, 50),
  }));
  ASSERT_EQ(report.advice.size(), 1u);
  EXPECT_EQ(report.advice[0].remedy, RemedyKind::kRelaxFetchCredentials);
}

TEST(Advisor, GroupsAndSortsByVolume) {
  // Three klaviyo-style CERT conns vs one IP conn: CERT item first.
  const AuditReport report = audit_site(site({
      conn(1, "10.0.0.1", "static.shop.example", {"static.shop.example"}, 0),
      conn(2, "10.0.0.1", "fast.shop.example", {"fast.shop.example"}, 10),
      conn(3, "10.0.0.1", "fast.shop.example", {"fast.shop.example"}, 20),
      conn(4, "10.0.0.1", "fast.shop.example", {"fast.shop.example"}, 30),
  }));
  ASSERT_GE(report.advice.size(), 2u);
  EXPECT_EQ(report.advice[0].domain, "fast.shop.example");
  EXPECT_GE(report.advice[0].connections, 2u);
}

TEST(Advisor, RenderMentionsEveryAdviceLine) {
  const AuditReport report = audit_site(site({
      conn(1, "10.0.0.1", "static.shop.example", {"static.shop.example"}, 0),
      conn(2, "10.0.0.1", "img.shop.example", {"img.shop.example"}, 50),
  }));
  const std::string text = render(report);
  EXPECT_NE(text.find("CERT"), std::string::npos);
  EXPECT_NE(text.find("img.shop.example"), std::string::npos);
  EXPECT_NE(text.find("merge the domains"), std::string::npos);
}

TEST(Advisor, MeasuresPerRemedyRecovery) {
  // Same endpoint, disjoint certificates -> CERT. Only the certificate
  // consolidation replay can recover it; the other knobs leave it
  // redundant.
  const AuditReport report = audit_site(site({
      conn(1, "10.0.0.1", "static.shop.example", {"static.shop.example"}, 0),
      conn(2, "10.0.0.1", "img.shop.example", {"img.shop.example"}, 50),
  }));
  ASSERT_EQ(report.advice.size(), 1u);
  EXPECT_EQ(report.advice[0].remedy, RemedyKind::kMergeCertificates);
  EXPECT_EQ(report.advice[0].recovered, 1u);
  EXPECT_EQ(report.remaining_redundant.at(RemedyKind::kMergeCertificates),
            0u);
  EXPECT_EQ(report.remaining_redundant.at(RemedyKind::kDeployOriginFrame),
            1u);
  EXPECT_EQ(report.remaining_redundant.at(RemedyKind::kSyncDnsLoadBalancing),
            1u);
  const std::string text = render(report);
  EXPECT_NE(text.find("measured by policy replay"), std::string::npos);
  EXPECT_NE(text.find("replay recovers 1 to img.shop.example"),
            std::string::npos);
}

TEST(Advisor, EqualVolumeAdviceSortsByDomain) {
  const AuditReport report = audit_site(site({
      conn(1, "10.0.0.1", "a.shop.example", {"a.shop.example"}, 0),
      conn(2, "10.0.0.1", "c.shop.example", {"c.shop.example"}, 50),
      conn(3, "10.0.0.1", "b.shop.example", {"b.shop.example"}, 100),
  }));
  ASSERT_EQ(report.advice.size(), 2u);
  EXPECT_EQ(report.advice[0].connections, report.advice[1].connections);
  EXPECT_EQ(report.advice[0].domain, "b.shop.example");
  EXPECT_EQ(report.advice[1].domain, "c.shop.example");
}

TEST(Advisor, RemedyKnobsCoverEveryRemedy) {
  for (RemedyKind kind : kAllRemedies) {
    const std::uint8_t bit = static_cast<std::uint8_t>(remedy_knob(kind));
    EXPECT_NE(bit & kAllPolicyKnobs, 0);
    EXPECT_FALSE(remedy_slug(kind).empty());
  }
}

TEST(Advisor, RemedyNames) {
  EXPECT_FALSE(to_string(RemedyKind::kSyncDnsLoadBalancing).empty());
  EXPECT_FALSE(to_string(RemedyKind::kDeployOriginFrame).empty());
  EXPECT_FALSE(to_string(RemedyKind::kMergeCertificates).empty());
  EXPECT_FALSE(to_string(RemedyKind::kAlignCrossoriginUsage).empty());
  EXPECT_FALSE(to_string(RemedyKind::kRelaxFetchCredentials).empty());
}

}  // namespace
}  // namespace h2r::core
