// Pins the typed env-parsing semantics of util/env.hpp: fallback on
// unset/empty/garbage/overflow/out-of-range values, strict whole-string
// parsing, minimum clamping. StudyConfig::from_env, FaultConfig::from_env
// and the bench banners all read their knobs through these helpers, so
// this is the one place the "invalid env never crashes a study" rule is
// proven.
#include <gtest/gtest.h>

#include "test_env_guard.hpp"
#include "util/env.hpp"

namespace h2r::util {
namespace {

using h2r::testing::EnvGuard;

constexpr const char* kVar = "H2R_ENV_TEST_VARIABLE";

TEST(EnvU64, UnsetAndEmptyFallBack) {
  {
    EnvGuard guard(kVar, nullptr);
    EXPECT_EQ(env_u64(kVar, 42), 42u);
  }
  {
    EnvGuard guard(kVar, "");
    EXPECT_EQ(env_u64(kVar, 42), 42u);
  }
}

TEST(EnvU64, ParsesPlainDecimals) {
  EnvGuard guard(kVar, "12345");
  EXPECT_EQ(env_u64(kVar, 1), 12345u);
}

TEST(EnvU64, RejectsGarbageAndPartialParses) {
  const char* bad[] = {"abc", "12abc", "-4", "+2", " 7", "7 ", "0x10", ""};
  for (const char* value : bad) {
    EnvGuard guard(kVar, value);
    EXPECT_EQ(env_u64(kVar, 9), 9u) << "value: '" << value << "'";
  }
}

TEST(EnvU64, RejectsOverflow) {
  // One past UINT64_MAX; strtoull saturates with ERANGE -> fallback.
  EnvGuard guard(kVar, "18446744073709551616");
  EXPECT_EQ(env_u64(kVar, 7), 7u);
}

TEST(EnvU64, AcceptsExactlyUint64Max) {
  EnvGuard guard(kVar, "18446744073709551615");
  EXPECT_EQ(env_u64(kVar, 7), 18446744073709551615ull);
}

TEST(EnvU64, EnforcesMinimum) {
  {
    EnvGuard guard(kVar, "0");
    EXPECT_EQ(env_u64(kVar, 5, 1), 5u);  // below minimum -> fallback
  }
  {
    EnvGuard guard(kVar, "0");
    EXPECT_EQ(env_u64(kVar, 5, 0), 0u);  // minimum 0 admits zero
  }
  {
    EnvGuard guard(kVar, "3");
    EXPECT_EQ(env_u64(kVar, 5, 4), 5u);
  }
}

TEST(EnvDouble, ParsesInRangeValues) {
  {
    EnvGuard guard(kVar, "0.25");
    EXPECT_DOUBLE_EQ(env_double(kVar, 0.0), 0.25);
  }
  {
    EnvGuard guard(kVar, "1");
    EXPECT_DOUBLE_EQ(env_double(kVar, 0.0), 1.0);
  }
  {
    EnvGuard guard(kVar, "0");
    EXPECT_DOUBLE_EQ(env_double(kVar, 0.5), 0.0);
  }
}

TEST(EnvDouble, RejectsOutOfRangeGarbageAndNan) {
  const char* bad[] = {"1.5", "-0.1", "chaos", "0.5x", "nan", "inf", ""};
  for (const char* value : bad) {
    EnvGuard guard(kVar, value);
    EXPECT_DOUBLE_EQ(env_double(kVar, 0.125), 0.125)
        << "value: '" << value << "'";
  }
}

TEST(EnvDouble, HonorsCustomRange) {
  {
    EnvGuard guard(kVar, "250");
    EXPECT_DOUBLE_EQ(env_double(kVar, 1.0, 0.0, 1000.0), 250.0);
  }
  {
    EnvGuard guard(kVar, "1001");
    EXPECT_DOUBLE_EQ(env_double(kVar, 1.0, 0.0, 1000.0), 1.0);
  }
}

TEST(EnvFlag, UnsetEmptyAndZeroAreFalse) {
  {
    EnvGuard guard(kVar, nullptr);
    EXPECT_FALSE(env_flag(kVar));
  }
  {
    EnvGuard guard(kVar, "");
    EXPECT_FALSE(env_flag(kVar));
  }
  {
    EnvGuard guard(kVar, "0");
    EXPECT_FALSE(env_flag(kVar));
  }
}

TEST(EnvFlag, AnythingElseIsTrue) {
  const char* truthy[] = {"1", "yes", "true", "00", "no"};
  for (const char* value : truthy) {
    EnvGuard guard(kVar, value);
    EXPECT_TRUE(env_flag(kVar)) << "value: '" << value << "'";
  }
}

TEST(EnvString, FallsBackWhenUnsetOrEmpty) {
  {
    EnvGuard guard(kVar, nullptr);
    EXPECT_EQ(env_string(kVar, "dflt"), "dflt");
    EXPECT_EQ(env_string(kVar), "");
  }
  {
    EnvGuard guard(kVar, "");
    EXPECT_EQ(env_string(kVar, "dflt"), "dflt");
  }
  {
    EnvGuard guard(kVar, "/tmp/x.json");
    EXPECT_EQ(env_string(kVar, "dflt"), "/tmp/x.json");
  }
}

}  // namespace
}  // namespace h2r::util
