#include <gtest/gtest.h>

#include "http2/hpack.hpp"
#include "util/rng.hpp"

namespace h2r::http2 {
namespace {

// ----------------------------------------------------------- static table

TEST(HpackStaticTable, KnownEntries) {
  EXPECT_EQ(hpack_static_entry(1), (HeaderField{":authority", ""}));
  EXPECT_EQ(hpack_static_entry(2), (HeaderField{":method", "GET"}));
  EXPECT_EQ(hpack_static_entry(7), (HeaderField{":scheme", "https"}));
  EXPECT_EQ(hpack_static_entry(8), (HeaderField{":status", "200"}));
  EXPECT_EQ(hpack_static_entry(32), (HeaderField{"cookie", ""}));
  EXPECT_EQ(hpack_static_entry(61), (HeaderField{"www-authenticate", ""}));
}

TEST(HpackEntrySize, Rfc7541Overhead) {
  EXPECT_EQ(hpack_entry_size({"custom-key", "custom-value"}),
            10u + 12u + 32u);
}

// ---------------------------------------------------------- dynamic table

TEST(HpackDynamicTable, InsertAndFind) {
  HpackDynamicTable table{4096};
  table.insert({"a", "1"});
  table.insert({"b", "2"});
  // Newest entry has index 0.
  EXPECT_EQ(table.at(0), (HeaderField{"b", "2"}));
  EXPECT_EQ(table.at(1), (HeaderField{"a", "1"}));
  EXPECT_EQ(table.find({"a", "1"}), std::optional<std::size_t>{1});
  EXPECT_EQ(table.find_name("b"), std::optional<std::size_t>{0});
  EXPECT_FALSE(table.find({"a", "2"}).has_value());
}

TEST(HpackDynamicTable, EvictsOldestWhenFull) {
  // Each {x,y} entry is 1+1+32 = 34 bytes; cap at two entries.
  HpackDynamicTable table{68};
  table.insert({"a", "1"});
  table.insert({"b", "2"});
  table.insert({"c", "3"});
  EXPECT_EQ(table.entry_count(), 2u);
  EXPECT_FALSE(table.find({"a", "1"}).has_value());
  EXPECT_TRUE(table.find({"c", "3"}).has_value());
}

TEST(HpackDynamicTable, OversizedEntryClearsTable) {
  HpackDynamicTable table{40};
  table.insert({"a", "1"});
  table.insert({"name", std::string(100, 'x')});  // > max -> clears
  EXPECT_EQ(table.entry_count(), 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(HpackDynamicTable, ResizeEvicts) {
  HpackDynamicTable table{4096};
  table.insert({"a", "1"});
  table.insert({"b", "2"});
  table.set_max_size(34);
  EXPECT_EQ(table.entry_count(), 1u);
  EXPECT_TRUE(table.find({"b", "2"}).has_value());
}

// ------------------------------------------------------------ round trips

TEST(Hpack, StaticIndexedFieldIsOneByte) {
  HpackEncoder encoder;
  const auto block = encoder.encode({{":method", "GET"}});
  ASSERT_EQ(block.size(), 1u);
  EXPECT_EQ(block[0], 0x82);  // indexed, static index 2
}

TEST(Hpack, RoundTripBasicRequest) {
  HpackEncoder encoder;
  HpackDecoder decoder;
  const HeaderList headers =
      make_request_headers("GET", "www.example.com", "/index", true);
  const auto block = encoder.encode(headers);
  const auto decoded = decoder.decode(block);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, headers);
}

TEST(Hpack, SecondEncodingIsSmaller) {
  // The core compression effect: repeated headers hit the dynamic table.
  HpackEncoder encoder;
  const HeaderList headers =
      make_request_headers("GET", "cdn.example.com", "/a.js", true);
  const auto first = encoder.encode(headers);
  const auto second = encoder.encode(headers);
  EXPECT_LT(second.size(), first.size() / 2);
}

TEST(Hpack, SeparateEncodersBootstrapSeparately) {
  // The paper's §2.2.1 point: splitting requests across connections resets
  // the dictionary.
  const HeaderList headers =
      make_request_headers("GET", "cdn.example.com", "/a.js", true);
  HpackEncoder one;
  std::size_t single = 0;
  for (int i = 0; i < 4; ++i) single += one.encode(headers).size();

  std::size_t split = 0;
  for (int i = 0; i < 4; ++i) {
    HpackEncoder fresh;
    split += fresh.encode(headers).size();
  }
  EXPECT_LT(single, split);
}

TEST(Hpack, DecoderTracksDynamicTable) {
  HpackEncoder encoder;
  HpackDecoder decoder;
  const HeaderList headers = {{"x-custom", "value"}};
  const auto block1 = encoder.encode(headers);
  ASSERT_TRUE(decoder.decode(block1).has_value());
  const auto block2 = encoder.encode(headers);
  EXPECT_LT(block2.size(), block1.size());
  const auto decoded = decoder.decode(block2);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, headers);
}

TEST(Hpack, TableSizeUpdateRoundTrips) {
  HpackEncoder encoder;
  HpackDecoder decoder;
  encoder.resize_table(128);
  const auto block = encoder.encode({{"a", "b"}});
  ASSERT_TRUE(decoder.decode(block).has_value());
  EXPECT_EQ(decoder.table().max_size(), 128u);
  EXPECT_EQ(encoder.table().max_size(), 128u);
}

TEST(Hpack, SensitiveHeadersAreNeverIndexed) {
  HpackEncoder encoder;
  encoder.add_sensitive_name("authorization");
  const HeaderList headers = {{"authorization", "Bearer secret"}};
  const auto block1 = encoder.encode(headers);
  const auto block2 = encoder.encode(headers);
  // Never indexed: no dynamic-table hit, both encodings identical size.
  EXPECT_EQ(block1.size(), block2.size());
  EXPECT_EQ(encoder.table().entry_count(), 0u);
  // First octet of the field must be 0001xxxx (never-indexed).
  EXPECT_EQ(block1[0] & 0xF0, 0x10);
  HpackDecoder decoder;
  const auto decoded = decoder.decode(block1);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, headers);
}

TEST(Hpack, LongValuesUseMultiByteIntegers) {
  HpackEncoder encoder;
  HpackDecoder decoder;
  const HeaderList headers = {{"x-long", std::string(500, 'v')}};
  const auto block = encoder.encode(headers);
  const auto decoded = decoder.decode(block);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, headers);
}

TEST(HpackDecoder, RejectsTruncatedInput) {
  HpackEncoder encoder;
  const auto block =
      encoder.encode(make_request_headers("GET", "a.example", "/", false));
  for (std::size_t cut = 1; cut < std::min<std::size_t>(block.size(), 20);
       ++cut) {
    HpackDecoder decoder;
    std::vector<std::uint8_t> truncated(block.begin(),
                                        block.end() - static_cast<long>(cut));
    const auto decoded = decoder.decode(truncated);
    if (decoded.has_value()) {
      // A truncation can fall on a field boundary; then it decodes fewer
      // fields but must not invent data.
      EXPECT_LT(decoded->size(), 8u);
    }
  }
}

TEST(HpackDecoder, RejectsInvalidIndex) {
  // Indexed field referencing index 0 is invalid.
  HpackDecoder decoder;
  EXPECT_FALSE(decoder.decode(std::vector<std::uint8_t>{0x80}).has_value());
  // Reference far beyond both tables.
  HpackEncoder enc;
  std::vector<std::uint8_t> block;
  // 0xFF 0xE0 0x07 => indexed, value 127 + ... large
  EXPECT_FALSE(
      decoder.decode(std::vector<std::uint8_t>{0xFF, 0xE0, 0x07}).has_value());
}

TEST(HpackDecoder, RejectsHuffmanStrings) {
  // H-bit set: our decoder deliberately refuses (encoder never emits it).
  // 0x40 (literal w/ indexing, new name), then H=1 len=1.
  EXPECT_FALSE(HpackDecoder{}
                   .decode(std::vector<std::uint8_t>{0x40, 0x81, 0xFF})
                   .has_value());
}

// Property-style sweep: random header lists round-trip through a shared
// encoder/decoder pair in sequence (dynamic tables must stay in sync).
class HpackRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(HpackRandomRoundTrip, SequenceStaysInSync) {
  util::Rng rng{static_cast<std::uint64_t>(GetParam())};
  HpackEncoder encoder;
  HpackDecoder decoder;
  for (int block_i = 0; block_i < 20; ++block_i) {
    HeaderList headers;
    const std::size_t n = 1 + rng.index(10);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.3)) {
        headers.push_back(hpack_static_entry(1 + rng.index(61)));
        if (headers.back().value.empty()) {
          headers.back().value = "v" + std::to_string(rng.index(5));
        }
      } else {
        headers.push_back(
            {"x-h" + std::to_string(rng.index(6)),
             std::string(rng.index(40), 'a' + static_cast<char>(rng.index(26)))});
      }
    }
    const auto block = encoder.encode(headers);
    const auto decoded = decoder.decode(block);
    ASSERT_TRUE(decoded.has_value()) << "block " << block_i;
    ASSERT_EQ(*decoded, headers) << "block " << block_i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HpackRandomRoundTrip,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace h2r::http2
