// Pins the browser's resilience policy for injected faults: the exact
// exponential backoff schedule, the retry cap, retry-on-a-new-connection,
// recovery accounting, and two invariants the retry path must NOT break —
// 421 classification (CERT/IP/CRED) and graceful degradation of failed
// sub-resources (the seed's site-abort bug).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "browser/browser.hpp"
#include "core/classify.hpp"
#include "core/observation_json.hpp"
#include "dns/vantage.hpp"
#include "fault/fault.hpp"
#include "json/json.hpp"
#include "netlog/netlog.hpp"
#include "web/ecosystem.hpp"

namespace h2r::browser {
namespace {

net::Prefix pfx(const char* s) { return net::Prefix::parse(s).value(); }

/// Same fixture world as browser_test, plus a cluster whose certificate
/// expired long before the load (a NATURAL failure, never retried).
class RetryBackoffTest : public ::testing::Test {
 protected:
  RetryBackoffTest() : eco_(5) {
    eco_.register_as("T-AS", 64501, pfx("10.20.0.0/16"));

    web::ClusterSpec svc;
    svc.operator_name = "svc";
    svc.as_name = "T-AS";
    svc.ip_count = 4;
    svc.certs = {{"CA", {"*.svc.test"}}};
    for (const char* name : {"a.svc.test", "b.svc.test"}) {
      web::DomainSpec d;
      d.name = name;
      d.lb.policy = dns::LbPolicy::kStatic;
      d.lb.answer_count = 2;
      svc.domains.push_back(d);
    }
    eco_.add_cluster(svc);

    web::ClusterSpec site;
    site.operator_name = "site";
    site.as_name = "T-AS";
    site.ip_count = 1;
    site.certs = {{"CA", {"www.site.test", "site.test"}}};
    web::DomainSpec www;
    www.name = "www.site.test";
    site.domains.push_back(www);
    eco_.add_cluster(site);

    web::ClusterSpec stale;
    stale.operator_name = "stale";
    stale.as_name = "T-AS";
    stale.ip_count = 1;
    stale.certs = {{"CA", {"www.stale.test"}, 0, util::hours(1)}};
    web::DomainSpec d;
    d.name = "www.stale.test";
    stale.domains.push_back(d);
    eco_.add_cluster(stale);
  }

  web::Website site_with(std::vector<web::Resource> resources) {
    web::Website site;
    site.url = "https://www.site.test";
    site.landing_domain = "www.site.test";
    site.resources = std::move(resources);
    return site;
  }

  web::Resource res(const char* domain, fetch::Destination dest,
                    bool anonymous = false, util::SimTime delay = 10) {
    web::Resource r;
    r.domain = domain;
    r.path = "/r";
    r.destination = dest;
    r.crossorigin_anonymous = anonymous;
    r.start_delay = delay;
    return r;
  }

  PageLoadResult load(const web::Website& site, BrowserOptions options = {},
                      std::uint64_t browser_seed = 11) {
    dns::RecursiveResolver resolver{dns::standard_vantage_points()[0],
                                    &eco_.authority()};
    Browser chrome{eco_, resolver, options, browser_seed};
    return chrome.load(site, util::days(1));
  }

  static std::vector<const netlog::Event*> retries_of(
      const PageLoadResult& page) {
    std::vector<const netlog::Event*> out;
    for (const auto& event : page.log.events()) {
      if (event.type == netlog::EventType::kFetchRetry) out.push_back(&event);
    }
    return out;
  }

  web::Ecosystem eco_;
};

TEST_F(RetryBackoffTest, BackoffSchedulePinnedExactly) {
  // connect refused at rate 1: every attempt fails instantly, so the k-th
  // retry fires backoff_base << k after the previous one:
  //   T+100, T+300 (=+100+200), T+700 (=+300+400).
  BrowserOptions options;
  options.faults.set_rate(fault::FaultKind::kConnectRefused, 1.0);
  const auto page = load(site_with({}), options);

  const util::SimTime t0 = util::days(1);
  const auto retries = retries_of(page);
  ASSERT_EQ(retries.size(), 3u);
  EXPECT_EQ(retries[0]->time, t0 + 100);
  EXPECT_EQ(retries[1]->time, t0 + 300);
  EXPECT_EQ(retries[2]->time, t0 + 700);
  for (std::size_t i = 0; i < retries.size(); ++i) {
    EXPECT_EQ(retries[i]->param("host"), "www.site.test");
    EXPECT_EQ(retries[i]->param("attempt"), std::to_string(i + 1));
    EXPECT_EQ(retries[i]->param("backoff_ms"), std::to_string(100 << i));
  }

  // 1 document fetch, 3 retries, all refused -> 4 injections, 0 successes.
  EXPECT_FALSE(page.reachable);
  EXPECT_EQ(page.failures.fetch_attempts, 1u);
  EXPECT_EQ(page.failures.retries, 3u);
  EXPECT_EQ(page.failures.retry_successes, 0u);
  EXPECT_EQ(page.failures.failed_fetches, 1u);
  EXPECT_EQ(page.failures.successful_fetches, 0u);
  EXPECT_EQ(page.failures.connect_refused, 4u);
  EXPECT_EQ(page.failed_fetches, page.failures.failed_fetches);
}

TEST_F(RetryBackoffTest, RetryCapIsRespected) {
  BrowserOptions options;
  options.faults.set_rate(fault::FaultKind::kConnectRefused, 1.0);
  options.faults.max_retries = 1;
  const auto page = load(site_with({}), options);
  EXPECT_EQ(retries_of(page).size(), 1u);
  EXPECT_EQ(page.failures.retries, 1u);
  EXPECT_EQ(page.failures.connect_refused, 2u);
  EXPECT_EQ(page.failures.failed_fetches, 1u);

  BrowserOptions no_retries;
  no_retries.faults.set_rate(fault::FaultKind::kConnectRefused, 1.0);
  no_retries.faults.max_retries = 0;
  const auto page0 = load(site_with({}), no_retries);
  EXPECT_TRUE(retries_of(page0).empty());
  EXPECT_EQ(page0.failures.connect_refused, 1u);
}

TEST_F(RetryBackoffTest, BackoffBaseIsConfigurable) {
  BrowserOptions options;
  options.faults.set_rate(fault::FaultKind::kConnectRefused, 1.0);
  options.faults.backoff_base = util::milliseconds(40);
  const auto page = load(site_with({}), options);
  const auto retries = retries_of(page);
  ASSERT_EQ(retries.size(), 3u);
  const util::SimTime t0 = util::days(1);
  EXPECT_EQ(retries[0]->time, t0 + 40);
  EXPECT_EQ(retries[1]->time, t0 + 120);
  EXPECT_EQ(retries[2]->time, t0 + 280);
}

TEST_F(RetryBackoffTest, GoawayRetriesOpenFreshConnections) {
  // GOAWAY at rate 1: every attempt gets a session, loses it mid-stream
  // and retries on a brand-new connection -> 1 + max_retries sessions.
  BrowserOptions options;
  options.faults.set_rate(fault::FaultKind::kGoaway, 1.0);
  const auto page = load(site_with({}), options);
  EXPECT_FALSE(page.reachable);
  EXPECT_EQ(page.connections_opened, 4u);
  EXPECT_EQ(page.failures.goaways, 4u);
  EXPECT_EQ(page.failures.retries, 3u);
  EXPECT_EQ(page.group_reuses, 0u);
  EXPECT_EQ(page.alias_reuses, 0u);
  // Every session died to its GOAWAY: all closed in the netlog.
  std::uint64_t created = 0;
  std::uint64_t closed = 0;
  std::uint64_t goaways = 0;
  for (const auto& event : page.log.events()) {
    created += event.type == netlog::EventType::kSessionCreated;
    closed += event.type == netlog::EventType::kSessionClosed;
    goaways += event.type == netlog::EventType::kSessionGoaway;
  }
  EXPECT_EQ(created, 4u);
  EXPECT_EQ(closed, 4u);
  EXPECT_EQ(goaways, 4u);
}

TEST_F(RetryBackoffTest, RstStreamFailsFetchAndCountsReset) {
  BrowserOptions options;
  options.faults.set_rate(fault::FaultKind::kRstStream, 1.0);
  options.faults.max_retries = 2;
  const auto page = load(site_with({}), options);
  EXPECT_FALSE(page.reachable);
  EXPECT_EQ(page.failures.rst_streams, 3u);  // initial + 2 retries
  EXPECT_EQ(page.failures.retries, 2u);
  std::uint64_t resets = 0;
  for (const auto& event : page.log.events()) {
    resets += event.type == netlog::EventType::kStreamReset;
  }
  EXPECT_EQ(resets, 3u);
  // The reset requests must NOT stitch as successful responses.
  for (const auto& conn : page.observation.connections) {
    for (const auto& req : conn.requests) EXPECT_EQ(req.status, 0);
  }
}

TEST_F(RetryBackoffTest, RetryRescuesFetchUnderPartialFailure) {
  // At rate 0.5 some seed has a failing first attempt rescued by a retry;
  // scan a few deterministic fault seeds for one (each plan is a pure
  // function of its seed, so this never flakes).
  BrowserOptions options;
  options.faults.set_rate(fault::FaultKind::kConnectRefused, 0.5);
  bool rescued = false;
  for (std::uint64_t fault_seed = 1; fault_seed <= 64 && !rescued;
       ++fault_seed) {
    options.faults.seed = fault_seed;
    const auto page = load(site_with({}), options);
    EXPECT_EQ(page.failures.fetch_attempts,
              page.failures.successful_fetches + page.failures.failed_fetches);
    rescued = page.reachable && page.failures.retry_successes == 1 &&
              page.failures.retries > 0;
  }
  EXPECT_TRUE(rescued);
}

TEST_F(RetryBackoffTest, NaturalFailuresAreNeverRetried) {
  // Expired certificate = natural failure: no retry, even with the fault
  // layer armed (DNS answers shift over time, so retrying natural failures
  // would make results time- and retry-policy-dependent).
  BrowserOptions options;
  options.faults.set_rate(fault::FaultKind::kLatencySpike, 0.0);  // inert
  web::Website site;
  site.url = "https://www.stale.test";
  site.landing_domain = "www.stale.test";
  const auto page = load(site, options);
  EXPECT_FALSE(page.reachable);
  EXPECT_TRUE(retries_of(page).empty());
  EXPECT_EQ(page.failures.retries, 0u);
  EXPECT_EQ(page.failures.failed_fetches, 1u);
  EXPECT_EQ(page.failures.total_injected(), 0u);
}

TEST_F(RetryBackoffTest, FailedSubResourceDegradesInsteadOfAborting) {
  // Regression for the seed's site-abort bug: a naturally failing
  // sub-resource (expired cert) used to drop its children from the load.
  // Now the page degrades: the resource fails, its children still load.
  web::Resource broken = res("www.stale.test", fetch::Destination::kScript);
  broken.children.push_back(
      res("a.svc.test", fetch::Destination::kImage, false, 50));
  const auto page = load(site_with({broken}));

  EXPECT_TRUE(page.reachable);  // the document was fine
  EXPECT_EQ(page.failures.degraded_resources, 1u);
  EXPECT_EQ(page.failures.degraded_sites, 1u);
  EXPECT_EQ(page.failures.failed_fetches, 1u);
  EXPECT_EQ(page.failures.fetch_attempts, 3u);  // document + broken + child
  bool child_loaded = false;
  for (const auto& conn : page.observation.connections) {
    for (const auto& req : conn.requests) {
      if (req.domain == "a.svc.test") child_loaded = req.status == 200;
    }
  }
  EXPECT_TRUE(child_loaded);
}

TEST_F(RetryBackoffTest, MisdirectedRetryClassificationSurvivesFaultLayer) {
  // The 421 path (natural refusal -> retry on a dedicated connection with
  // pooling disabled) predates the fault layer. With a fault plan ACTIVE
  // but never firing (only kDnsStale armed, and nothing expires within a
  // load), the whole flow must be byte-identical to the pre-fault
  // behaviour: same exclusion, same CERT/IP/CRED verdicts.
  web::ClusterSpec svc;
  svc.operator_name = "svc2";
  svc.as_name = "T-AS";
  svc.ip_count = 2;
  svc.certs = {{"CA", {"*.svc2.test"}}};
  web::DomainSpec a;
  a.name = "a.svc2.test";
  a.dns_pool = {0};
  a.serves_on = {0};
  web::DomainSpec b;
  b.name = "b.svc2.test";
  b.dns_pool = {0, 1};
  b.serves_on = {1};  // NOT served on IP 0 -> pooled request gets a 421
  svc.domains = {a, b};
  eco_.add_cluster(svc);

  const web::Website site = site_with({
      res("a.svc2.test", fetch::Destination::kScript),
      res("b.svc2.test", fetch::Destination::kImage, false, 500),
  });

  BrowserOptions armed;
  armed.faults.set_rate(fault::FaultKind::kDnsStale, 1.0);
  const auto baseline = load(site);
  const auto page = load(site, armed);

  EXPECT_EQ(page.misdirected_retries, 1u);
  EXPECT_EQ(page.failures.retries, 0u);  // 421 is natural, not injected
  bool excluded = false;
  for (const auto& conn : page.observation.connections) {
    if (conn.initial_domain == "a.svc2.test") {
      excluded = conn.excludes("b.svc2.test");
    }
  }
  EXPECT_TRUE(excluded);
  const auto cls =
      core::classify_site(page.observation, {core::DurationModel::kExact});
  for (const auto& finding : cls.findings) {
    const auto& conn = page.observation.connections[finding.connection_index];
    EXPECT_NE(conn.initial_domain, "b.svc2.test");
  }
  // Bit-identical observation: the armed-but-silent plan changed nothing.
  EXPECT_EQ(json::write(core::to_json(page.observation)),
            json::write(core::to_json(baseline.observation)));
}

}  // namespace
}  // namespace h2r::browser
