// The edge-proxy pool's resilience-and-determinism contract:
//
//   * the circuit breaker's full transition table, pinned,
//   * idle eviction at EXACTLY idle_since + idle_timeout (off-by-one
//     probed from both sides),
//   * a connection that errored in-request is NEVER handed out again,
//   * stale handouts fall back to a fresh dial under the shared retry
//     budget (and abandon when the budget is spent),
//   * chaos differential: threads x fault-rate x architecture replay
//     reports are bit-identical; shard count is invisible; fault rate 0
//     is bit-identical to no injection at all,
//   * conservation identities — every injected pool-path fault lands in
//     exactly one coping bucket (see fault.hpp),
//   * the FailureSummary JSON codec round-trips the pool counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "browser/crawl.hpp"
#include "core/report_json.hpp"
#include "fault/fault.hpp"
#include "json/json.hpp"
#include "pool/breaker.hpp"
#include "pool/key.hpp"
#include "pool/pool.hpp"
#include "pool/replay.hpp"
#include "util/clock.hpp"
#include "web/catalog.hpp"
#include "web/ecosystem.hpp"
#include "web/sitegen.hpp"

namespace h2r::pool {
namespace {

fault::FaultPlan::EventSeed seed(std::uint64_t value) { return {value}; }

fault::FaultConfig only(fault::FaultKind kind, double rate) {
  fault::FaultConfig config;
  config.set_rate(kind, rate);
  return config;
}

TEST(CircuitBreakerTest, PinnedTransitionSequence) {
  CircuitBreaker breaker{BreakerPolicy{2, util::milliseconds(100)}};
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.admit(0), BreakerState::kClosed);
  EXPECT_FALSE(breaker.record_failure(0));  // 1 of 2
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.record_failure(1));  // threshold -> OPEN
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.admit(50), BreakerState::kOpen);    // cooling down
  EXPECT_EQ(breaker.admit(100), BreakerState::kOpen);   // until 1 + 100
  EXPECT_EQ(breaker.admit(101), BreakerState::kHalfOpen);  // the probe
  EXPECT_EQ(breaker.admit(101), BreakerState::kOpen);  // probe in flight
  EXPECT_TRUE(breaker.record_failure(101));  // probe failed -> reopen
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.admit(150), BreakerState::kOpen);  // new cooldown
  EXPECT_EQ(breaker.admit(201), BreakerState::kHalfOpen);
  breaker.record_success();  // probe succeeded -> closed, streak reset
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreakerTest, ThresholdZeroDisables) {
  CircuitBreaker breaker{BreakerPolicy{0, util::milliseconds(100)}};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(breaker.admit(i), BreakerState::kClosed);
    EXPECT_FALSE(breaker.record_failure(i));
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(PoolShardTest, IdleConnReusedOneTickBeforeTimeout) {
  PoolConfig config;
  config.idle_timeout = util::seconds(10);
  PoolShard shard{config, 0};
  fault::FaultPlan inert;
  const PoolKey key;
  const auto first = shard.acquire(0, key, 0, 1000, false, inert, nullptr);
  EXPECT_TRUE(first.fresh);
  EXPECT_EQ(first.cause, FreshCause::kCold);
  // Parked idle at t=1000; expires at 11000. One tick earlier: reused.
  const auto second =
      shard.acquire(0, key, 10999, 11500, false, inert, nullptr);
  EXPECT_TRUE(second.reused);
  EXPECT_EQ(second.conn, first.conn);
  EXPECT_EQ(shard.stats().failures.pool_idle_evictions, 0u);
}

TEST(PoolShardTest, IdleConnEvictedAtExactTimeoutTick) {
  PoolConfig config;
  config.idle_timeout = util::seconds(10);
  PoolShard shard{config, 0};
  fault::FaultPlan inert;
  const PoolKey key;
  const auto first = shard.acquire(0, key, 0, 1000, false, inert, nullptr);
  // Parked idle at t=1000; at exactly 1000 + 10000 the conn is gone.
  const auto second =
      shard.acquire(0, key, 11000, 11500, false, inert, nullptr);
  EXPECT_TRUE(second.fresh);
  EXPECT_NE(second.conn, first.conn);
  EXPECT_EQ(second.cause, FreshCause::kIdleExpired);
  EXPECT_EQ(shard.stats().failures.pool_idle_evictions, 1u);
  // The eviction is stamped with the expiry instant, not the sweep time.
  bool found = false;
  for (const OccupancyDelta& d : shard.deltas()) {
    if (d.delta == -1 && d.conn == first.conn) {
      EXPECT_EQ(d.at, 11000);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PoolShardTest, DeadConnectionNeverHandedOutAgain) {
  PoolConfig config;
  const fault::FaultConfig goaway = only(fault::FaultKind::kGoaway, 1.0);
  PoolShard shard{config, 0};
  const PoolKey key;
  fault::FaultPlan first_plan{goaway, seed(1)};
  const auto first = shard.acquire(0, key, 0, 100, false, first_plan, nullptr);
  EXPECT_TRUE(first.fresh);
  EXPECT_TRUE(first.failed);  // GOAWAY killed the request and the conn
  fault::FaultPlan second_plan{goaway, seed(2)};
  const auto second =
      shard.acquire(0, key, 10, 110, false, second_plan, nullptr);
  EXPECT_TRUE(second.fresh);
  EXPECT_NE(second.conn, first.conn);  // a NEW conn, never the dead one
  EXPECT_EQ(second.cause, FreshCause::kErrorReplace);
  EXPECT_EQ(shard.stats().dead_handouts, 0u);
  EXPECT_EQ(shard.stats().failures.pool_dead_discards, 2u);
  EXPECT_EQ(shard.stats().reuse_hits, 0u);
}

TEST(PoolShardTest, StaleHandoutAbandonsWhenBudgetIsZero) {
  PoolConfig config;
  config.faults.max_retries = 0;
  PoolShard shard{config, 0};
  fault::FaultPlan inert;
  const PoolKey key;
  ASSERT_TRUE(shard.acquire(0, key, 0, 100, false, inert, nullptr).fresh);
  // The parked conn turns out dead on handout; with no retry budget the
  // request is abandoned, not served on the dead conn.
  fault::FaultPlan stale{only(fault::FaultKind::kConnectReset, 1.0), seed(7)};
  const auto second = shard.acquire(0, key, 200, 300, false, stale, nullptr);
  EXPECT_TRUE(second.abandoned);
  EXPECT_FALSE(second.reused);
  const fault::FailureSummary& f = shard.stats().failures;
  EXPECT_EQ(f.pool_stale_handouts, 1u);
  EXPECT_EQ(f.pool_connect_abandoned, 1u);
  EXPECT_EQ(f.retries, 0u);
}

TEST(PoolShardTest, StaleFallbackConsumesTheSharedRetryBudget) {
  PoolConfig config;
  config.faults.max_retries = 3;
  PoolShard shard{config, 0};
  fault::FaultPlan inert;
  const PoolKey key;
  ASSERT_TRUE(shard.acquire(0, key, 0, 100, false, inert, nullptr).fresh);
  // Every handout and every dial fails: stale fallback burns retry #1,
  // then dials fail until the budget (3) is spent.
  fault::FaultPlan chaos{only(fault::FaultKind::kConnectReset, 1.0), seed(9)};
  const auto second = shard.acquire(0, key, 200, 300, false, chaos, nullptr);
  EXPECT_TRUE(second.abandoned);
  const fault::FailureSummary& f = shard.stats().failures;
  EXPECT_EQ(f.pool_stale_handouts, 1u);
  EXPECT_EQ(f.pool_connect_failures, 3u);
  EXPECT_EQ(f.retries, 3u);
  EXPECT_EQ(f.pool_connect_abandoned, 1u);
  // retries == stale + connect_failures - abandoned, by construction.
  EXPECT_EQ(f.retries, f.pool_stale_handouts + f.pool_connect_failures -
                           f.pool_connect_abandoned);
}

TEST(PoolShardTest, BreakerFailsFastThenProbesThenCloses) {
  PoolConfig config;
  config.breaker = BreakerPolicy{2, util::milliseconds(1000)};
  const fault::FaultConfig goaway = only(fault::FaultKind::kGoaway, 1.0);
  PoolShard shard{config, 0};
  const PoolKey key;
  fault::FaultPlan f1{goaway, seed(1)};
  fault::FaultPlan f2{goaway, seed(2)};
  EXPECT_TRUE(shard.acquire(0, key, 0, 50, false, f1, nullptr).failed);
  EXPECT_TRUE(shard.acquire(0, key, 1, 51, false, f2, nullptr).failed);
  EXPECT_EQ(shard.stats().failures.pool_breaker_opens, 1u);
  // Open: requests fail fast without touching the upstream.
  fault::FaultPlan inert;
  const auto rejected = shard.acquire(0, key, 2, 52, false, inert, nullptr);
  EXPECT_TRUE(rejected.rejected);
  EXPECT_EQ(shard.stats().failures.pool_breaker_rejected, 1u);
  // Cooldown over (opened at t=1, until t=1001): the probe goes through
  // and its success closes the breaker again.
  const auto probe = shard.acquire(0, key, 1001, 1100, false, inert, nullptr);
  EXPECT_TRUE(probe.fresh);
  EXPECT_EQ(probe.cause, FreshCause::kBreakerProbe);
  const auto after = shard.acquire(0, key, 1002, 1100, false, inert, nullptr);
  EXPECT_TRUE(after.reused);  // multiplexed onto the probe's conn
}

TEST(OccupancyPeakTest, SameTickReplaceDoesNotInflateThePeak) {
  std::vector<OccupancyDelta> deltas = {
      {0, 1, 0, 0, 0},
      {5, 1, 0, 0, 1},
      {10, -1, 0, 0, 0},  // close sorts before the open at t=10...
      {10, 1, 0, 0, 2},
  };
  EXPECT_EQ(occupancy_peak(deltas), 2u);  // ...so the peak stays 2
}

TEST(FailureSummaryJsonTest, PoolCountersRoundTrip) {
  fault::FailureSummary summary;
  std::uint64_t next = 1;
  summary.dns_servfail = next++;
  summary.dns_timeout = next++;
  summary.dns_stale = next++;
  summary.tls_handshake = next++;
  summary.tls_cert = next++;
  summary.connect_refused = next++;
  summary.connect_reset = next++;
  summary.latency_spikes = next++;
  summary.goaways = next++;
  summary.rst_streams = next++;
  summary.fetch_attempts = next++;
  summary.successful_fetches = next++;
  summary.failed_fetches = next++;
  summary.retries = next++;
  summary.retry_successes = next++;
  summary.degraded_resources = next++;
  summary.degraded_sites = next++;
  summary.deadline_exceeded = next++;
  summary.pool_stale_handouts = next++;
  summary.pool_connect_failures = next++;
  summary.pool_connect_abandoned = next++;
  summary.pool_dead_discards = next++;
  summary.pool_idle_evictions = next++;
  summary.pool_cap_evictions = next++;
  summary.pool_breaker_rejected = next++;
  summary.pool_breaker_opens = next++;
  const auto parsed = core::failure_summary_from_json(core::to_json(summary));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, summary);
}

// ---------------------------------------------------------------------------
// Replay-level chaos differential: the same traces, every knob swept.

constexpr std::size_t kSites = 20;

const std::vector<proxy::SiteTrace>& traces() {
  static const std::vector<proxy::SiteTrace>* cached = [] {
    web::Ecosystem eco{7};
    web::ServiceCatalog catalog{eco, 7};
    web::SiteUniverse universe{eco, catalog};
    browser::CrawlOptions crawl;
    crawl.seed = 11;
    crawl.threads = 2;
    return new std::vector<proxy::SiteTrace>(
        proxy::collect_traces(universe, 0, kSites, crawl));
  }();
  return *cached;
}

proxy::ReplayReport run(Architecture arch, double fault_rate, unsigned threads,
                        std::size_t shards = 8) {
  proxy::ReplayOptions options;
  options.pool.arch = arch;
  options.pool.shards = shards;
  options.pool.visits = 4;
  options.pool.faults = fault::FaultConfig::uniform(fault_rate);
  options.pool.faults.seed = 0xC0FFEE;
  options.threads = threads;
  return proxy::replay_traces(traces(), options);
}

TEST(PoolChaosTest, ReportsBitIdenticalAcrossThreadsFaultsAndArchitectures) {
  for (const Architecture arch : {Architecture::kWorker,
                                  Architecture::kShared}) {
    for (const double rate : {0.0, 0.05, 0.25}) {
      const proxy::ReplayReport base = run(arch, rate, 1);
      EXPECT_GT(base.stats.requests, 0u);
      for (const unsigned threads : {2u, 7u}) {
        EXPECT_EQ(base, run(arch, rate, threads))
            << to_string(arch) << " rate " << rate << " threads " << threads;
      }
    }
  }
}

TEST(PoolChaosTest, SharedReportInvariantToShardCount) {
  const proxy::ReplayReport base = run(Architecture::kShared, 0.25, 2, 8);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{13}}) {
    EXPECT_EQ(base, run(Architecture::kShared, 0.25, 2, shards))
        << "shards " << shards;
  }
}

TEST(PoolChaosTest, FaultRateZeroBitIdenticalToNoInjection) {
  proxy::ReplayOptions off;
  off.pool.visits = 4;
  off.threads = 2;  // faults default-constructed: injection disabled
  const proxy::ReplayReport clean = proxy::replay_traces(traces(), off);
  const proxy::ReplayReport zero = run(Architecture::kShared, 0.0, 2);
  EXPECT_EQ(clean, zero);
  EXPECT_EQ(zero.stats.failures.total_injected(), 0u);
}

TEST(PoolChaosTest, ConservationIdentitiesHoldUnderChaos) {
  for (const Architecture arch : {Architecture::kWorker,
                                  Architecture::kShared}) {
    const proxy::ReplayReport report = run(arch, 0.25, 2);
    const PoolStats& s = report.stats;
    const fault::FailureSummary& f = s.failures;
    EXPECT_GT(f.total_injected(), 0u);  // the chaos actually happened
    // Every injected pool-path fault lands in exactly one coping bucket.
    EXPECT_EQ(f.goaways + f.rst_streams, f.pool_dead_discards);
    EXPECT_EQ(f.connect_refused + f.connect_reset + f.tls_handshake +
                  f.tls_cert,
              f.pool_stale_handouts + f.pool_connect_failures);
    EXPECT_EQ(f.retries, f.pool_stale_handouts + f.pool_connect_failures -
                             f.pool_connect_abandoned);
    // Every request is accounted exactly once.
    EXPECT_EQ(f.fetch_attempts, f.successful_fetches + f.failed_fetches);
    EXPECT_EQ(f.fetch_attempts, s.requests);
    EXPECT_EQ(f.failed_fetches, f.pool_breaker_rejected +
                                    f.pool_connect_abandoned +
                                    f.pool_dead_discards + s.dead_natural);
    EXPECT_EQ(s.reuse_hits, s.reuse_busy + s.reuse_idle);
    std::uint64_t causes = 0;
    for (const std::uint64_t c : s.fresh_causes) causes += c;
    EXPECT_EQ(causes, s.fresh_connects);
    // The Pingora rule, asserted under 25% chaos: an errored connection
    // is NEVER handed out again.
    EXPECT_EQ(s.dead_handouts, 0u);
  }
}

}  // namespace
}  // namespace h2r::pool
