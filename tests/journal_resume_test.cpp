// End-to-end crash/resume tests for the journaled study engine.
//
// The contract under test: kill a journaled study after K committed
// chunks (possibly tearing the last frame), resume it — at ANY thread
// count, with or without fault injection — and the merged result is
// bit-identical to an uninterrupted run. This is the determinism contract
// (per-site state derived from (seed, site) alone; commutative merges)
// extended across a process boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "experiments/study.hpp"
#include "journal/journal.hpp"

namespace h2r::experiments {
namespace {

std::string temp_journal(const std::string& tag) {
  return std::string(::testing::TempDir()) + "/resume_" + tag + ".journal";
}

StudyConfig small_config(double fault_rate) {
  StudyConfig config;
  config.har_sites = 90;
  config.alexa_sites = 80;
  config.har_first_rank = 30;
  config.seed = 7;
  config.threads = 2;
  if (fault_rate > 0) config.faults = fault::FaultConfig::uniform(fault_rate);
  return config;
}

void expect_identical(const StudyResults& got, const StudyResults& want) {
  EXPECT_TRUE(got.har_endless == want.har_endless);
  EXPECT_TRUE(got.har_immediate == want.har_immediate);
  EXPECT_TRUE(got.alexa_exact == want.alexa_exact);
  EXPECT_TRUE(got.alexa_endless == want.alexa_endless);
  EXPECT_TRUE(got.nofetch_exact == want.nofetch_exact);
  EXPECT_TRUE(got.overlap_har_endless == want.overlap_har_endless);
  EXPECT_TRUE(got.overlap_alexa_endless == want.overlap_alexa_endless);
  EXPECT_TRUE(got.har_summary == want.har_summary);
  EXPECT_TRUE(got.alexa_summary == want.alexa_summary);
  EXPECT_TRUE(got.nofetch_summary == want.nofetch_summary);
  EXPECT_EQ(got.overlap_sites, want.overlap_sites);
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void dump(const std::string& path, const std::string& data) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::uint32_t frame_length(const std::string& data, std::size_t offset) {
  return static_cast<std::uint32_t>(
             static_cast<unsigned char>(data[offset])) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 1]))
          << 8) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 2]))
          << 16) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 3]))
          << 24);
}

/// Byte offset just past the header frame plus `entries` entry frames.
std::size_t offset_after(const std::string& data, std::size_t entries) {
  std::size_t offset = 0;
  for (std::size_t frame = 0; frame < entries + 1; ++frame) {
    offset += 8 + frame_length(data, offset);
  }
  return offset;
}

/// The crash/resume differential: clean run vs. journaled run killed
/// after half its chunks and resumed (optionally with a torn tail).
void crash_and_resume(double fault_rate, unsigned resume_threads,
                      bool torn_tail, const std::string& tag) {
  const StudyConfig clean_config = small_config(fault_rate);
  const StudyResults clean = run_study(clean_config);

  const std::string path = temp_journal(tag);
  StudyConfig journaled_config = clean_config;
  journaled_config.journal_path = path;
  const StudyResults journaled = run_study(journaled_config);
  expect_identical(journaled, clean);
  EXPECT_GT(journaled.journal_bytes, 0u);
  EXPECT_GT(journaled.journal_fsyncs, 1u);
  EXPECT_EQ(journaled.resumed_chunks, 0u);

  auto contents = journal::read_journal(path);
  ASSERT_TRUE(contents) << contents.error().message;
  ASSERT_GE(contents->entries.size(), 4u)
      << "config too small to test a mid-run crash";

  // "Crash": keep only the first half of the committed chunks...
  const std::size_t keep = contents->entries.size() / 2;
  const std::string data = slurp(path);
  std::size_t cut = offset_after(data, keep);
  if (torn_tail) {
    // ...and tear the next frame in half, as a real crash mid-append
    // would.
    const std::size_t next_end = cut + 8 + frame_length(data, cut);
    cut = (cut + next_end) / 2;
  }
  dump(path, data.substr(0, cut));

  StudyConfig resume_config = clean_config;
  resume_config.journal_path = path;
  resume_config.resume = true;
  resume_config.threads = resume_threads;
  const StudyResults resumed = run_study(resume_config);
  expect_identical(resumed, clean);
  EXPECT_EQ(resumed.resumed_chunks, keep);
  EXPECT_GT(resumed.resumed_sites, 0u);
}

TEST(JournalResume, CleanFaultFreeRunSurvivesCrashAtOneThread) {
  crash_and_resume(0.0, 1, false, "t1");
}

TEST(JournalResume, CleanFaultFreeRunSurvivesCrashAtTwoThreads) {
  crash_and_resume(0.0, 2, true, "t2");
}

TEST(JournalResume, CleanFaultFreeRunSurvivesCrashAtSevenThreads) {
  crash_and_resume(0.0, 7, true, "t7");
}

TEST(JournalResume, FaultyRunSurvivesCrashAtOneThread) {
  crash_and_resume(0.25, 1, true, "f1");
}

TEST(JournalResume, FaultyRunSurvivesCrashAtSevenThreads) {
  crash_and_resume(0.25, 7, false, "f7");
}

TEST(JournalResume, WatchdogDeadlineIsPartOfTheContract) {
  StudyConfig config = small_config(0.25);
  config.site_deadline = 2000;
  const StudyResults clean = run_study(config);

  const std::string path = temp_journal("watchdog");
  StudyConfig journaled_config = config;
  journaled_config.journal_path = path;
  const StudyResults journaled = run_study(journaled_config);
  expect_identical(journaled, clean);

  // A different deadline is a different experiment: resume must refuse.
  StudyConfig wrong = config;
  wrong.journal_path = path;
  wrong.resume = true;
  wrong.site_deadline = 0;
  EXPECT_THROW(run_study(wrong), std::runtime_error);

  // The matching deadline resumes (here: trivially, nothing to redo).
  StudyConfig right = config;
  right.journal_path = path;
  right.resume = true;
  const StudyResults resumed = run_study(right);
  expect_identical(resumed, clean);
}

TEST(JournalResume, ResumingACompleteJournalCrawlsNothing) {
  const StudyConfig config = small_config(0.0);
  const std::string path = temp_journal("complete");

  StudyConfig journaled_config = config;
  journaled_config.journal_path = path;
  const StudyResults journaled = run_study(journaled_config);

  StudyConfig resume_config = config;
  resume_config.journal_path = path;
  resume_config.resume = true;
  resume_config.threads = 3;
  const StudyResults resumed = run_study(resume_config);
  expect_identical(resumed, journaled);
  // Every site of every campaign came from the journal: 80 alexa + 80
  // nofetch + 90 har.
  EXPECT_EQ(resumed.resumed_sites, 250u);
}

TEST(JournalResume, FingerprintMismatchIsAHardError) {
  const StudyConfig config = small_config(0.0);
  const std::string path = temp_journal("mismatch");

  StudyConfig journaled_config = config;
  journaled_config.journal_path = path;
  run_study(journaled_config);

  StudyConfig wrong_seed = config;
  wrong_seed.journal_path = path;
  wrong_seed.resume = true;
  wrong_seed.seed = 8;
  EXPECT_THROW(run_study(wrong_seed), std::runtime_error);

  StudyConfig wrong_faults = config;
  wrong_faults.journal_path = path;
  wrong_faults.resume = true;
  wrong_faults.faults = fault::FaultConfig::uniform(0.5);
  EXPECT_THROW(run_study(wrong_faults), std::runtime_error);
}

TEST(JournalResume, ThreadCountIsNotPartOfTheFingerprint) {
  StudyConfig config = small_config(0.0);
  config.threads = 5;
  const std::string path = temp_journal("threads");

  StudyConfig journaled_config = config;
  journaled_config.journal_path = path;
  const StudyResults journaled = run_study(journaled_config);

  auto contents = journal::read_journal(path);
  ASSERT_TRUE(contents);
  const std::size_t keep = contents->entries.size() / 2;
  const std::string data = slurp(path);
  dump(path, data.substr(0, offset_after(data, keep)));

  StudyConfig resume_config = config;
  resume_config.journal_path = path;
  resume_config.resume = true;
  resume_config.threads = 1;
  const StudyResults resumed = run_study(resume_config);
  expect_identical(resumed, journaled);
}

}  // namespace
}  // namespace h2r::experiments
