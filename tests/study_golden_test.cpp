// Golden pin of the study's Table-1-style cause counts for a small fixed
// config. Guards against silent semantic drift in the crawl/classify/merge
// pipeline: any change to what the study MEASURES (as opposed to how fast
// it runs) must update these strings consciously. Because the crawl is
// thread-count invariant, the same goldens must hold for every
// StudyConfig::threads value — the test runs the study at threads=3.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/report.hpp"
#include "experiments/study.hpp"

namespace h2r::experiments {
namespace {

std::string cause_line(const core::AggregateReport& r) {
  auto tally = [&r](core::Cause cause) {
    const auto it = r.by_cause.find(cause);
    return it == r.by_cause.end() ? core::CauseTally{} : it->second;
  };
  const core::CauseTally cert = tally(core::Cause::kCert);
  const core::CauseTally ip = tally(core::Cause::kIp);
  const core::CauseTally cred = tally(core::Cause::kCred);
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "sites=%llu h2=%llu conns=%llu redundant=%llu/%llu "
      "CERT=%llu/%llu IP=%llu/%llu CRED=%llu/%llu",
      static_cast<unsigned long long>(r.analyzed_sites),
      static_cast<unsigned long long>(r.h2_sites),
      static_cast<unsigned long long>(r.total_connections),
      static_cast<unsigned long long>(r.redundant_sites),
      static_cast<unsigned long long>(r.redundant_connections),
      static_cast<unsigned long long>(cert.sites),
      static_cast<unsigned long long>(cert.connections),
      static_cast<unsigned long long>(ip.sites),
      static_cast<unsigned long long>(ip.connections),
      static_cast<unsigned long long>(cred.sites),
      static_cast<unsigned long long>(cred.connections));
  return buf;
}

const StudyResults& golden_study() {
  StudyConfig config;
  config.har_sites = 120;
  config.alexa_sites = 60;
  config.har_first_rank = 30;
  config.seed = 42;
  config.threads = 3;
  static const StudyResults results = run_study(config);
  return results;
}

TEST(StudyGolden, AlexaCauseCounts) {
  const StudyResults& r = golden_study();
  EXPECT_EQ(cause_line(r.alexa_exact), "sites=59 h2=57 conns=1041 redundant=57/335 CERT=16/20 IP=54/244 CRED=48/81");
  EXPECT_EQ(cause_line(r.alexa_endless), "sites=59 h2=57 conns=1041 redundant=57/335 CERT=16/20 IP=54/244 CRED=48/81");
  EXPECT_EQ(cause_line(r.nofetch_exact), "sites=59 h2=57 conns=976 redundant=55/273 CERT=20/23 IP=55/259 CRED=0/0");
}

TEST(StudyGolden, HarCauseCounts) {
  const StudyResults& r = golden_study();
  EXPECT_EQ(cause_line(r.har_endless), "sites=115 h2=108 conns=1366 redundant=100/393 CERT=24/32 IP=91/302 CRED=54/71");
  EXPECT_EQ(cause_line(r.har_immediate), "sites=115 h2=108 conns=1366 redundant=58/82 CERT=5/5 IP=45/61 CRED=16/16");
}

TEST(StudyGolden, OverlapCauseCounts) {
  const StudyResults& r = golden_study();
  EXPECT_EQ(cause_line(r.overlap_har_endless), "sites=29 h2=28 conns=461 redundant=28/139 CERT=6/8 IP=27/107 CRED=20/30");
  EXPECT_EQ(cause_line(r.overlap_alexa_endless), "sites=29 h2=28 conns=549 redundant=28/189 CERT=8/11 IP=27/136 CRED=26/48");
  EXPECT_EQ(r.overlap_sites, 29u);
}

TEST(StudyGolden, SummariesStayPinned) {
  const StudyResults& r = golden_study();
  auto summary_line = [](const browser::CrawlSummary& s) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "visited=%llu unreachable=%llu conns=%llu",
                  static_cast<unsigned long long>(s.sites_visited),
                  static_cast<unsigned long long>(s.sites_unreachable),
                  static_cast<unsigned long long>(s.connections_opened));
    return std::string(buf);
  };
  EXPECT_EQ(summary_line(r.alexa_summary), "visited=59 unreachable=1 conns=1041");
  EXPECT_EQ(summary_line(r.nofetch_summary), "visited=59 unreachable=1 conns=976");
  EXPECT_EQ(summary_line(r.har_summary), "visited=115 unreachable=5 conns=1652");
}

}  // namespace
}  // namespace h2r::experiments
