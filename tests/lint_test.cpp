// Fixture-driven tests for tools/h2r-lint: every rule id exercised in
// both directions (clean fixture -> zero findings; trip-wire fixture ->
// exactly the expected findings with rule id, path and line), the
// allow-annotation grammar, the baseline round trip, and the self-check
// that the real tree against the committed baseline is clean — which is
// what makes "un-annotating wall_now_ms breaks CI" a tested property
// rather than a promise.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "lint.hpp"

namespace h2r::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> scan_fixture(const std::string& name,
                                  const Options& options = {}) {
  const std::string path = std::string(H2R_LINT_FIXTURE_DIR) + "/" + name;
  return scan_source("tests/lint_fixtures/" + name, read_file(path),
                     options);
}

/// (rule, line) pairs for terse expectations.
std::vector<std::pair<std::string, int>> keys(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  return out;
}

using Keys = std::vector<std::pair<std::string, int>>;

TEST(LintRules, InventoryIsStableAndSorted) {
  const auto ids = rule_ids();
  const std::vector<std::string_view> expected = {
      "allow.reason", "ban.async",       "ban.clock",
      "ban.rand",     "ban.thread-id",   "ban.time",
      "env.getenv",   "lock.atomic-mix", "lock.guards",
      "order.unordered", "policy.alias",
  };
  EXPECT_EQ(ids, expected);
}

TEST(LintRules, PolicyAliasWarnsExceptWhereAllowed) {
  // Line 7 (the alias definition) carries an allow annotation; the plain
  // use in caller() trips.
  EXPECT_EQ(keys(scan_fixture("policy_alias.cpp")),
            (Keys{{"policy.alias", 10}}));
}

TEST(LintRules, CleanFixtureHasZeroFindings) {
  EXPECT_TRUE(scan_fixture("clean.cpp").empty());
}

TEST(LintRules, BanClockTripsOnChronoAndClockGettime) {
  EXPECT_EQ(keys(scan_fixture("ban_clock.cpp")),
            (Keys{{"ban.clock", 6}, {"ban.clock", 13}}));
}

TEST(LintRules, BanTimeTripsOnTimeCallButNotOnIdentifiersContainingTime) {
  EXPECT_EQ(keys(scan_fixture("ban_time.cpp")), (Keys{{"ban.time", 9}}));
}

TEST(LintRules, BanRandTripsOnRandAndRandomDevice) {
  EXPECT_EQ(keys(scan_fixture("ban_rand.cpp")),
            (Keys{{"ban.rand", 5}, {"ban.rand", 8}}));
}

TEST(LintRules, BanThreadIdTripsOnIdTypeAndGetId) {
  EXPECT_EQ(keys(scan_fixture("ban_thread_id.cpp")),
            (Keys{{"ban.thread-id", 4}, {"ban.thread-id", 7}}));
}

TEST(LintRules, BanAsyncTrips) {
  EXPECT_EQ(keys(scan_fixture("ban_async.cpp")), (Keys{{"ban.async", 6}}));
}

TEST(LintRules, EnvGetenvTripsOnReadAndWrite) {
  const auto findings = scan_fixture("env_getenv.cpp");
  EXPECT_EQ(keys(findings),
            (Keys{{"env.getenv", 5}, {"env.getenv", 7}}));
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kError);
    EXPECT_EQ(f.path, "tests/lint_fixtures/env_getenv.cpp");
  }
}

TEST(LintRules, EnvGetenvIsLegalInsideItsHomeModule) {
  // The same getenv calls are clean when the file IS the env module.
  const std::string body = read_file(std::string(H2R_LINT_REPO_ROOT) +
                                     "/src/util/env.cpp");
  EXPECT_TRUE(scan_source("src/util/env.cpp", body).empty());
  // ...and flagged anywhere else.
  EXPECT_FALSE(scan_source("src/dns/env.cpp", body).empty());
}

TEST(LintRules, OrderUnorderedTripsOnlyInSerializingUnits) {
  EXPECT_EQ(keys(scan_fixture("order_unordered.cpp")),
            (Keys{{"order.unordered", 12}}));
  EXPECT_TRUE(scan_fixture("order_unordered_clean.cpp").empty());
}

TEST(LintRules, LockGuardsWantsAGuardsComment) {
  const auto findings = scan_fixture("lock_guards.cpp");
  EXPECT_EQ(keys(findings), (Keys{{"lock.guards", 13}}));
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_TRUE(scan_fixture("lock_guards_clean.cpp").empty());
}

TEST(LintRules, AtomicMixWantsOneAccessDiscipline) {
  const auto findings = scan_fixture("lock_atomic_mix.cpp");
  EXPECT_EQ(keys(findings), (Keys{{"lock.atomic-mix", 13}}));
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_TRUE(scan_fixture("lock_atomic_clean.cpp").empty());
}

TEST(LintRules, StrictPromotesLockWarningsToErrors) {
  Options strict;
  strict.strict = true;
  const auto findings = scan_fixture("lock_guards.cpp", strict);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_TRUE(has_errors(findings));
}

TEST(LintLexer, StringsCommentsRawStringsAndDigitSeparatorsAreNotCode) {
  EXPECT_TRUE(scan_fixture("strings_and_comments.cpp").empty());
}

// ------------------------------------------------------------- allows

TEST(LintAllows, InlineAllowSuppressesNextCodeLineAndSameLine) {
  EXPECT_TRUE(scan_fixture("allow_inline.cpp").empty());
}

TEST(LintAllows, FileAllowSuppressesOnlyItsRules) {
  EXPECT_EQ(keys(scan_fixture("allow_file.cpp")),
            (Keys{{"ban.clock", 18}}));
}

TEST(LintAllows, AllowWithoutReasonIsItselfAFindingAndSuppressesNothing) {
  EXPECT_EQ(keys(scan_fixture("allow_missing_reason.cpp")),
            (Keys{{"allow.reason", 7}, {"ban.clock", 8}}));
}

// ------------------------------------------------------------ baseline

TEST(LintBaseline, FindingsRoundTripThroughJson) {
  const auto findings = scan_fixture("ban_clock.cpp");
  ASSERT_FALSE(findings.empty());
  const std::string text = json::write(findings_to_json(findings));
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value()) << doc.error().message;
  const auto back = findings_from_json(*doc);
  ASSERT_TRUE(back.has_value()) << back.error().message;
  EXPECT_EQ(*back, findings);
}

TEST(LintBaseline, BaselineSuppressesMatchedFindingsOnly) {
  const auto findings = scan_fixture("ban_clock.cpp");
  ASSERT_EQ(findings.size(), 2u);
  // Baseline the first finding only.
  std::size_t suppressed = 0;
  const auto rest =
      apply_baseline(findings, {findings[0]}, &suppressed);
  EXPECT_EQ(suppressed, 1u);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], findings[1]);
  // A full baseline silences the file; suppression is per-entry, so a
  // duplicate baseline entry does not hide a second new finding.
  suppressed = 0;
  EXPECT_TRUE(apply_baseline(findings, findings, &suppressed).empty());
  EXPECT_EQ(suppressed, 2u);
}

TEST(LintBaseline, MatchIsBySnippetNotLineNumber) {
  const auto findings = scan_fixture("ban_clock.cpp");
  ASSERT_FALSE(findings.empty());
  Finding entry = findings[0];
  entry.line = 9999;  // stale line from an older revision
  std::size_t suppressed = 0;
  const auto rest = apply_baseline(findings, {entry}, &suppressed);
  EXPECT_EQ(suppressed, 1u);
  EXPECT_EQ(rest.size(), findings.size() - 1);
}

TEST(LintBaseline, StrictParserRejectsMalformedEntries) {
  const char* bad[] = {
      "{}",                                                // not an array
      "[{\"rule\": \"ban.clock\"}]",                       // missing fields
      "[{\"rule\": 3, \"path\": \"a\", \"line\": 1, "
      "\"severity\": \"error\"}]",                         // mistyped rule
      "[{\"rule\": \"r\", \"path\": \"a\", \"line\": 0, "
      "\"severity\": \"error\"}]",                         // line < 1
      "[{\"rule\": \"r\", \"path\": \"a\", \"line\": 1, "
      "\"severity\": \"fatal\"}]",                         // unknown severity
      "[{\"rule\": \"r\", \"path\": \"a\", \"line\": 1, "
      "\"severity\": \"error\", \"extra\": true}]",        // unknown key
  };
  for (const char* text : bad) {
    const auto doc = json::parse(text);
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(findings_from_json(*doc).has_value()) << text;
  }
}

// ----------------------------------------------------------- self-check

TEST(LintSelfCheck, RealTreeAgainstCommittedBaselineIsClean) {
  Options strict;
  strict.strict = true;
  const std::string repo = H2R_LINT_REPO_ROOT;
  TreeReport report = scan_tree(repo, {"src", "bench", "tools"}, strict);
  EXPECT_GT(report.files_scanned, 100u);

  const std::string baseline_text =
      read_file(repo + "/tools/h2r-lint/baseline.json");
  const auto doc = json::parse(baseline_text);
  ASSERT_TRUE(doc.has_value()) << doc.error().message;
  const auto baseline = findings_from_json(*doc);
  ASSERT_TRUE(baseline.has_value()) << baseline.error().message;

  // The determinism contract (ISSUE 5 acceptance): no baselined
  // banned-API or env-hygiene findings in src/ — every surviving use
  // must be an inline audited allow.
  for (const Finding& entry : *baseline) {
    const bool hard_rule = entry.rule.rfind("ban.", 0) == 0 ||
                           entry.rule.rfind("env.", 0) == 0;
    EXPECT_FALSE(hard_rule && entry.path.rfind("src/", 0) == 0)
        << "baseline may not grandfather " << entry.rule << " in "
        << entry.path;
  }

  std::size_t suppressed = 0;
  const auto rest =
      apply_baseline(std::move(report.findings), *baseline, &suppressed);
  std::string dump;
  for (const Finding& f : rest) {
    dump += f.path + ":" + std::to_string(f.line) + " " + f.rule + "\n";
  }
  EXPECT_TRUE(rest.empty()) << dump;
}

TEST(LintSelfCheck, UnannotatingWallClockInCrawlBreaksTheBuildGate) {
  const std::string repo = H2R_LINT_REPO_ROOT;
  std::string body = read_file(repo + "/src/browser/crawl.cpp");
  // The audited allows must be present...
  ASSERT_NE(body.find("h2r-lint: allow(ban.clock)"), std::string::npos);
  EXPECT_TRUE(scan_source("src/browser/crawl.cpp", body).empty());
  // ...and stripping them reintroduces the ban.clock errors, which is
  // exactly what the lint CI job would fail on.
  std::string stripped = body;
  const std::string tag = "h2r-lint: allow(ban.clock)";
  for (std::size_t pos = stripped.find(tag); pos != std::string::npos;
       pos = stripped.find(tag, pos)) {
    stripped.replace(pos, tag.size(), "audited-clock-use (disabled)");
  }
  const auto findings = scan_source("src/browser/crawl.cpp", stripped);
  ASSERT_FALSE(findings.empty());
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "ban.clock");
    EXPECT_EQ(f.severity, Severity::kError);
  }
  EXPECT_TRUE(has_errors(findings));
}

}  // namespace
}  // namespace h2r::lint
