// Fixture-driven tests for tools/h2r-lint: every rule id exercised in
// both directions (clean fixture -> zero findings; trip-wire fixture ->
// exactly the expected findings with rule id, path and line), the
// allow-annotation grammar, the baseline round trip, and the self-check
// that the real tree against the committed baseline is clean — which is
// what makes "un-annotating wall_now_ms breaks CI" a tested property
// rather than a promise.
//
// The contract sections do the same for the cross-TU analyzer: fixtures
// under lint_fixtures/contract/ pin each rule both ways, and the
// mutation tests delete one real field-handling line from the live tree
// in memory (a merge +=, a codec entry, an operator== clause) and
// assert the analyzer names the struct, the field and the function —
// the acceptance criteria of the contract pass, as tested properties.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "lint.hpp"

namespace h2r::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> scan_fixture(const std::string& name,
                                  const Options& options = {}) {
  const std::string path = std::string(H2R_LINT_FIXTURE_DIR) + "/" + name;
  return scan_source("tests/lint_fixtures/" + name, read_file(path),
                     options);
}

/// (rule, line) pairs for terse expectations.
std::vector<std::pair<std::string, int>> keys(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  return out;
}

using Keys = std::vector<std::pair<std::string, int>>;

TEST(LintRules, InventoryIsStableAndSorted) {
  const auto ids = rule_ids();
  const std::vector<std::string_view> expected = {
      "allow.reason",          "ban.async",
      "ban.clock",             "ban.rand",
      "ban.thread-id",         "ban.time",
      "contract.codec-coverage", "contract.eq-coverage",
      "contract.merge-coverage", "env.getenv",
      "hotpath.alloc",         "lock.atomic-mix",
      "lock.guards",           "lock.order",
      "order.unordered",       "policy.alias",
  };
  EXPECT_EQ(ids, expected);
  // Every rule explains itself (--explain RULE is user-facing surface).
  for (const auto id : ids) {
    EXPECT_FALSE(explain_rule(id).empty()) << id;
  }
  EXPECT_TRUE(explain_rule("nonexistent.rule").empty());
}

TEST(LintRules, PolicyAliasWarnsExceptWhereAllowed) {
  // Line 7 (the alias definition) carries an allow annotation; the plain
  // use in caller() trips.
  EXPECT_EQ(keys(scan_fixture("policy_alias.cpp")),
            (Keys{{"policy.alias", 10}}));
}

TEST(LintRules, CleanFixtureHasZeroFindings) {
  EXPECT_TRUE(scan_fixture("clean.cpp").empty());
}

TEST(LintRules, BanClockTripsOnChronoAndClockGettime) {
  EXPECT_EQ(keys(scan_fixture("ban_clock.cpp")),
            (Keys{{"ban.clock", 6}, {"ban.clock", 13}}));
}

TEST(LintRules, BanTimeTripsOnTimeCallButNotOnIdentifiersContainingTime) {
  EXPECT_EQ(keys(scan_fixture("ban_time.cpp")), (Keys{{"ban.time", 9}}));
}

TEST(LintRules, BanRandTripsOnRandAndRandomDevice) {
  EXPECT_EQ(keys(scan_fixture("ban_rand.cpp")),
            (Keys{{"ban.rand", 5}, {"ban.rand", 8}}));
}

TEST(LintRules, BanThreadIdTripsOnIdTypeAndGetId) {
  EXPECT_EQ(keys(scan_fixture("ban_thread_id.cpp")),
            (Keys{{"ban.thread-id", 4}, {"ban.thread-id", 7}}));
}

TEST(LintRules, BanAsyncTrips) {
  EXPECT_EQ(keys(scan_fixture("ban_async.cpp")), (Keys{{"ban.async", 6}}));
}

TEST(LintRules, EnvGetenvTripsOnReadAndWrite) {
  const auto findings = scan_fixture("env_getenv.cpp");
  EXPECT_EQ(keys(findings),
            (Keys{{"env.getenv", 5}, {"env.getenv", 7}}));
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kError);
    EXPECT_EQ(f.path, "tests/lint_fixtures/env_getenv.cpp");
  }
}

TEST(LintRules, EnvGetenvIsLegalInsideItsHomeModule) {
  // The same getenv calls are clean when the file IS the env module.
  const std::string body = read_file(std::string(H2R_LINT_REPO_ROOT) +
                                     "/src/util/env.cpp");
  EXPECT_TRUE(scan_source("src/util/env.cpp", body).empty());
  // ...and flagged anywhere else.
  EXPECT_FALSE(scan_source("src/dns/env.cpp", body).empty());
}

TEST(LintRules, OrderUnorderedTripsOnlyInSerializingUnits) {
  EXPECT_EQ(keys(scan_fixture("order_unordered.cpp")),
            (Keys{{"order.unordered", 12}}));
  EXPECT_TRUE(scan_fixture("order_unordered_clean.cpp").empty());
}

TEST(LintRules, LockGuardsWantsAGuardsComment) {
  const auto findings = scan_fixture("lock_guards.cpp");
  EXPECT_EQ(keys(findings), (Keys{{"lock.guards", 13}}));
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_TRUE(scan_fixture("lock_guards_clean.cpp").empty());
}

TEST(LintRules, AtomicMixWantsOneAccessDiscipline) {
  const auto findings = scan_fixture("lock_atomic_mix.cpp");
  EXPECT_EQ(keys(findings), (Keys{{"lock.atomic-mix", 13}}));
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_TRUE(scan_fixture("lock_atomic_clean.cpp").empty());
}

TEST(LintRules, StrictPromotesLockWarningsToErrors) {
  Options strict;
  strict.strict = true;
  const auto findings = scan_fixture("lock_guards.cpp", strict);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_TRUE(has_errors(findings));
}

TEST(LintLexer, StringsCommentsRawStringsAndDigitSeparatorsAreNotCode) {
  EXPECT_TRUE(scan_fixture("strings_and_comments.cpp").empty());
}

// ------------------------------------------------------------- allows

TEST(LintAllows, InlineAllowSuppressesNextCodeLineAndSameLine) {
  EXPECT_TRUE(scan_fixture("allow_inline.cpp").empty());
}

TEST(LintAllows, FileAllowSuppressesOnlyItsRules) {
  EXPECT_EQ(keys(scan_fixture("allow_file.cpp")),
            (Keys{{"ban.clock", 18}}));
}

TEST(LintAllows, AllowWithoutReasonIsItselfAFindingAndSuppressesNothing) {
  EXPECT_EQ(keys(scan_fixture("allow_missing_reason.cpp")),
            (Keys{{"allow.reason", 7}, {"ban.clock", 8}}));
}

// ------------------------------------------------------------ baseline

TEST(LintBaseline, FindingsRoundTripThroughJson) {
  const auto findings = scan_fixture("ban_clock.cpp");
  ASSERT_FALSE(findings.empty());
  const std::string text = json::write(findings_to_json(findings));
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value()) << doc.error().message;
  const auto back = findings_from_json(*doc);
  ASSERT_TRUE(back.has_value()) << back.error().message;
  EXPECT_EQ(*back, findings);
}

TEST(LintBaseline, BaselineSuppressesMatchedFindingsOnly) {
  const auto findings = scan_fixture("ban_clock.cpp");
  ASSERT_EQ(findings.size(), 2u);
  // Baseline the first finding only.
  std::size_t suppressed = 0;
  const auto rest =
      apply_baseline(findings, {findings[0]}, &suppressed);
  EXPECT_EQ(suppressed, 1u);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], findings[1]);
  // A full baseline silences the file; suppression is per-entry, so a
  // duplicate baseline entry does not hide a second new finding.
  suppressed = 0;
  EXPECT_TRUE(apply_baseline(findings, findings, &suppressed).empty());
  EXPECT_EQ(suppressed, 2u);
}

TEST(LintBaseline, MatchIsBySnippetNotLineNumber) {
  const auto findings = scan_fixture("ban_clock.cpp");
  ASSERT_FALSE(findings.empty());
  Finding entry = findings[0];
  entry.line = 9999;  // stale line from an older revision
  std::size_t suppressed = 0;
  const auto rest = apply_baseline(findings, {entry}, &suppressed);
  EXPECT_EQ(suppressed, 1u);
  EXPECT_EQ(rest.size(), findings.size() - 1);
}

TEST(LintBaseline, StrictParserRejectsMalformedEntries) {
  const char* bad[] = {
      "{}",                                                // not an array
      "[{\"rule\": \"ban.clock\"}]",                       // missing fields
      "[{\"rule\": 3, \"path\": \"a\", \"line\": 1, "
      "\"severity\": \"error\"}]",                         // mistyped rule
      "[{\"rule\": \"r\", \"path\": \"a\", \"line\": 0, "
      "\"severity\": \"error\"}]",                         // line < 1
      "[{\"rule\": \"r\", \"path\": \"a\", \"line\": 1, "
      "\"severity\": \"fatal\"}]",                         // unknown severity
      "[{\"rule\": \"r\", \"path\": \"a\", \"line\": 1, "
      "\"severity\": \"error\", \"extra\": true}]",        // unknown key
  };
  for (const char* text : bad) {
    const auto doc = json::parse(text);
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(findings_from_json(*doc).has_value()) << text;
  }
}

// ------------------------------------------------- contract (fixtures)

TEST(LintContract, MergeGapNamesStructFieldAndFunction) {
  const auto findings = scan_fixture("contract/merge_gap.cpp");
  ASSERT_EQ(keys(findings), (Keys{{"contract.merge-coverage", 11}}));
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("ShardTally"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'hits'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("ShardTally::merge"), std::string::npos);
  EXPECT_FALSE(findings[0].fix_hint.empty());
}

TEST(LintContract, EqGapNamesTheMissingField) {
  const auto findings = scan_fixture("contract/eq_gap.cpp");
  ASSERT_EQ(keys(findings), (Keys{{"contract.eq-coverage", 11}}));
  EXPECT_NE(findings[0].message.find("'misses'"), std::string::npos);
}

TEST(LintContract, CodecGapIsCaughtInBothDirections) {
  const auto findings = scan_fixture("contract/codec_gap.cpp");
  ASSERT_EQ(keys(findings), (Keys{{"contract.codec-coverage", 13},
                                  {"contract.codec-coverage", 14}}));
  // dropped: encoded, never decoded -> lost on resume.
  EXPECT_NE(findings[0].message.find("'dropped'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("never parsed"), std::string::npos);
  // resumed: decoded, never encoded -> reads a key that is never there.
  EXPECT_NE(findings[1].message.find("'resumed'"), std::string::npos);
  EXPECT_NE(findings[1].message.find("never serialized"), std::string::npos);
}

TEST(LintContract, FullyCoveredStructWithDiagnosticFieldIsClean) {
  EXPECT_TRUE(scan_fixture("contract/contract_clean.cpp").empty());
}

TEST(LintContract, MalformedAnnotationsAreFindingsNotSilentNoOps) {
  EXPECT_EQ(keys(scan_fixture("contract/exclude_malformed.cpp")),
            (Keys{{"allow.reason", 11}, {"allow.reason", 13}}));
}

TEST(LintContract, LockOrderCycleIsFoundTransitively) {
  // refill() reaches stats_ through evict(): the cycle only exists in
  // the transitive lock sets, never inside one function body.
  const auto findings = scan_fixture("contract/lock_cycle.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock.order");
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("ShardedPool::pool_"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("ShardedPool::stats_"),
            std::string::npos);
}

TEST(LintContract, ConsistentLockOrderIsClean) {
  EXPECT_TRUE(scan_fixture("contract/lock_order_clean.cpp").empty());
}

TEST(LintContract, HotpathAllocFlagsOnlyTheAnnotatedFunction) {
  // Same allocations in classify_site (annotated) and cold_report
  // (not annotated): only the hot one trips, three ways.
  const auto findings = scan_fixture("contract/hotpath_alloc.cpp");
  EXPECT_EQ(keys(findings), (Keys{{"hotpath.alloc", 18},
                                  {"hotpath.alloc", 19},
                                  {"hotpath.alloc", 20}}));
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kWarning);
    EXPECT_NE(f.message.find("classify_site"), std::string::npos);
  }
}

TEST(LintContract, ArenaBackedHotFunctionIsClean) {
  EXPECT_TRUE(scan_fixture("contract/hotpath_clean.cpp").empty());
}

TEST(LintContract, StrictPromotesHotpathAllocToError) {
  Options strict;
  strict.strict = true;
  const auto findings = scan_fixture("contract/hotpath_alloc.cpp", strict);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].severity, Severity::kError);
}

TEST(LintContract, NoContractOptionDisablesTheCrossTuPass) {
  Options options;
  options.contract = false;
  EXPECT_TRUE(scan_fixture("contract/merge_gap.cpp", options).empty());
}

TEST(LintContract, ContractFindingsCarryFixHintsThroughJson) {
  const auto findings = scan_fixture("contract/merge_gap.cpp");
  ASSERT_FALSE(findings.empty());
  ASSERT_FALSE(findings[0].fix_hint.empty());
  const std::string text = json::write(findings_to_json(findings));
  EXPECT_NE(text.find("fix_hint"), std::string::npos);
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const auto back = findings_from_json(*doc);
  ASSERT_TRUE(back.has_value()) << back.error().message;
  EXPECT_EQ(*back, findings);
}

// ------------------------------------------------- contract (mutation)

/// Deletes the (single) line containing `needle` from `body`.
std::string drop_line(std::string body, std::string_view needle) {
  const std::size_t pos = body.find(needle);
  EXPECT_NE(pos, std::string::npos) << needle;
  if (pos == std::string::npos) return body;
  const std::size_t begin = body.rfind('\n', pos) + 1;
  const std::size_t end = body.find('\n', pos) + 1;
  return body.erase(begin, end - begin);
}

std::vector<Finding> scan_pair(const std::string& header_rel,
                               const std::string& source_rel,
                               std::string_view dropped) {
  const std::string repo = H2R_LINT_REPO_ROOT;
  const std::vector<SourceFile> files = {
      {header_rel, read_file(repo + "/" + header_rel)},
      {source_rel, drop_line(read_file(repo + "/" + source_rel), dropped)},
  };
  return scan_files(files, {}).findings;
}

TEST(LintMutation, DroppedPolicyTallyMergeLineFailsTheContract) {
  const auto findings =
      scan_pair("src/core/report.hpp", "src/core/report.cpp",
                "baseline_redundant += shard.baseline_redundant;");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "contract.merge-coverage");
  EXPECT_NE(findings[0].message.find("PolicyTally"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'baseline_redundant'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("PolicyTally::merge"),
            std::string::npos);
}

TEST(LintMutation, DroppedAggregateReportMergeLineFailsTheContract) {
  const auto findings =
      scan_pair("src/core/report.hpp", "src/core/report.cpp",
                "redundant_connections += shard.redundant_connections;");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "contract.merge-coverage");
  EXPECT_NE(findings[0].message.find("AggregateReport"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'redundant_connections'"),
            std::string::npos);
}

TEST(LintMutation, DroppedCodecEntryFailsTheContract) {
  // One side of the report codec: the from_json member-pointer table
  // entry for filtered_requests.
  const auto findings = scan_pair(
      "src/core/report.hpp", "src/core/report_json.cpp",
      "{\"filtered_requests\", &AggregateReport::filtered_requests},");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "contract.codec-coverage");
  EXPECT_NE(findings[0].message.find("'filtered_requests'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("never parsed"), std::string::npos);
}

TEST(LintMutation, DroppedEqualityClauseFailsTheContract) {
  const auto findings =
      scan_pair("src/browser/crawl.hpp", "src/browser/crawl.cpp",
                "alias_reuses == other.alias_reuses &&");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "contract.eq-coverage");
  EXPECT_NE(findings[0].message.find("CrawlSummary"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'alias_reuses'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("operator=="), std::string::npos);
}

TEST(LintMutation, UntouchedPairsPassTheContract) {
  // The same file pairs with nothing dropped are clean — the mutation
  // tests above fail because of the deletion, not the harness.
  const std::string repo = H2R_LINT_REPO_ROOT;
  for (const auto& [header, source] :
       std::vector<std::pair<std::string, std::string>>{
           {"src/core/report.hpp", "src/core/report.cpp"},
           {"src/core/report.hpp", "src/core/report_json.cpp"},
           {"src/browser/crawl.hpp", "src/browser/crawl.cpp"}}) {
    const std::vector<SourceFile> files = {
        {header, read_file(repo + "/" + header)},
        {source, read_file(repo + "/" + source)},
    };
    const auto findings = scan_files(files, {}).findings;
    EXPECT_TRUE(findings.empty())
        << header << " + " << source << ": " << findings.size()
        << " finding(s), first: "
        << (findings.empty() ? "" : findings[0].message);
  }
}

// --------------------------------------------------------------- cli

/// Runs the CLI entry point against an argv vector, capturing streams.
int cli(std::vector<std::string> args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::vector<const char*> argv = {"h2r-lint"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int code =
      run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

TEST(LintCli, ExplainKnownRuleExitsZeroWithProse) {
  std::string out;
  EXPECT_EQ(cli({"--explain", "contract.merge-coverage"}, &out), 0);
  EXPECT_NE(out.find("merge"), std::string::npos);
  EXPECT_NE(out.find("contract: exclude(merge)"), std::string::npos);
}

TEST(LintCli, ExplainUnknownRuleIsUsageErrorNotVerdict) {
  std::string err;
  EXPECT_EQ(cli({"--explain", "no.such-rule"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown rule"), std::string::npos);
}

TEST(LintCli, ZeroSourcesIsInternalErrorExitTwo) {
  // A repo root with no scannable sources means the gate did not run;
  // that must never be reported as "clean" (exit 0) or "findings"
  // (exit 1).
  const std::string empty_root = testing::TempDir() + "/h2r_lint_empty";
  std::filesystem::create_directories(empty_root + "/src");
  std::string err;
  EXPECT_EQ(cli({"--repo", empty_root}, nullptr, &err), 2);
  EXPECT_NE(err.find("h2r-lint: internal error:"), std::string::npos);
}

TEST(LintCli, FindingsExitOneAndCleanTreeExitsZero) {
  const std::string root = testing::TempDir() + "/h2r_lint_tree";
  std::filesystem::create_directories(root + "/src");
  {
    std::ofstream bad(root + "/src/bad.cpp", std::ios::binary);
    bad << "#include <chrono>\n"
           "auto now() { return std::chrono::steady_clock::now(); }\n";
  }
  std::string out;
  EXPECT_EQ(cli({"--repo", root}, &out), 1);
  EXPECT_NE(out.find("ban.clock"), std::string::npos);
  {
    std::ofstream good(root + "/src/bad.cpp", std::ios::binary);
    good << "int answer() { return 42; }\n";
  }
  EXPECT_EQ(cli({"--repo", root}), 0);
}

// ----------------------------------------------------------- self-check

TEST(LintSelfCheck, RealTreeAgainstCommittedBaselineIsClean) {
  Options strict;
  strict.strict = true;
  const std::string repo = H2R_LINT_REPO_ROOT;
  TreeReport report = scan_tree(repo, {"src", "bench", "tools"}, strict);
  EXPECT_GT(report.files_scanned, 100u);

  const std::string baseline_text =
      read_file(repo + "/tools/h2r-lint/baseline.json");
  const auto doc = json::parse(baseline_text);
  ASSERT_TRUE(doc.has_value()) << doc.error().message;
  const auto baseline = findings_from_json(*doc);
  ASSERT_TRUE(baseline.has_value()) << baseline.error().message;

  // The determinism contract (ISSUE 5 acceptance): no baselined
  // banned-API or env-hygiene findings in src/ — every surviving use
  // must be an inline audited allow. The contract rules are stricter
  // still: a coverage gap is provable, so it is fixed or annotated at
  // the field, never grandfathered anywhere.
  for (const Finding& entry : *baseline) {
    const bool hard_rule = entry.rule.rfind("ban.", 0) == 0 ||
                           entry.rule.rfind("env.", 0) == 0;
    EXPECT_FALSE(hard_rule && entry.path.rfind("src/", 0) == 0)
        << "baseline may not grandfather " << entry.rule << " in "
        << entry.path;
    EXPECT_FALSE(entry.rule.rfind("contract.", 0) == 0 ||
                 entry.rule == "lock.order" ||
                 entry.rule == "hotpath.alloc")
        << "baseline may not grandfather " << entry.rule << " in "
        << entry.path;
  }

  std::size_t suppressed = 0;
  const auto rest =
      apply_baseline(std::move(report.findings), *baseline, &suppressed);
  std::string dump;
  for (const Finding& f : rest) {
    dump += f.path + ":" + std::to_string(f.line) + " " + f.rule + "\n";
  }
  EXPECT_TRUE(rest.empty()) << dump;
}

TEST(LintSelfCheck, UnannotatingWallClockInCrawlBreaksTheBuildGate) {
  const std::string repo = H2R_LINT_REPO_ROOT;
  std::string body = read_file(repo + "/src/browser/crawl.cpp");
  // The audited allows must be present...
  ASSERT_NE(body.find("h2r-lint: allow(ban.clock)"), std::string::npos);
  EXPECT_TRUE(scan_source("src/browser/crawl.cpp", body).empty());
  // ...and stripping them reintroduces the ban.clock errors, which is
  // exactly what the lint CI job would fail on.
  std::string stripped = body;
  const std::string tag = "h2r-lint: allow(ban.clock)";
  for (std::size_t pos = stripped.find(tag); pos != std::string::npos;
       pos = stripped.find(tag, pos)) {
    stripped.replace(pos, tag.size(), "audited-clock-use (disabled)");
  }
  const auto findings = scan_source("src/browser/crawl.cpp", stripped);
  ASSERT_FALSE(findings.empty());
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "ban.clock");
    EXPECT_EQ(f.severity, Severity::kError);
  }
  EXPECT_TRUE(has_errors(findings));
}

}  // namespace
}  // namespace h2r::lint
