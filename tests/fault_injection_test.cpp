// Chaos + property tests for the deterministic fault-injection layer.
//
// The contract under test, in increasing order of scope:
//   * FaultPlan is a pure function of (config, browser seed, site url) —
//     and a zero-rate kind NEVER draws from the plan's RNG, so arming the
//     layer at rate 0 is bit-identical to not having it at all;
//   * the dns/tls/net hook points inject what the plan decides and count
//     what they injected;
//   * a whole crawl under injection never crashes, conserves
//     fetch_attempts == successful + failed, and at rate 0 reproduces the
//     uninjected crawl byte for byte.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "browser/crawl.hpp"
#include "core/observation_json.hpp"
#include "dns/resolver.hpp"
#include "dns/vantage.hpp"
#include "fault/fault.hpp"
#include "json/json.hpp"
#include "test_env_guard.hpp"
#include "web/catalog.hpp"
#include "web/ecosystem.hpp"
#include "web/sitegen.hpp"

namespace h2r {
namespace {

using fault::FaultConfig;
using fault::FaultKind;
using fault::FaultPlan;

// ---------------------------------------------------------------- plans

TEST(FaultPlan, DefaultConstructedPlanIsInert) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  for (int i = 0; i < 32; ++i) {
    for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
      EXPECT_FALSE(plan.fire(static_cast<FaultKind>(k)));
    }
    EXPECT_EQ(plan.latency_penalty(), 0);
  }
  EXPECT_TRUE(plan.injected() == fault::FailureSummary{});
}

TEST(FaultPlan, ZeroUniformRateMeansDisabled) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  EXPECT_FALSE(FaultConfig::uniform(0.0).enabled());
  EXPECT_TRUE(FaultConfig::uniform(0.01).enabled());
  EXPECT_EQ(FaultConfig{}.signature(), "off");
  EXPECT_NE(FaultConfig::uniform(0.25).signature(), "off");
  EXPECT_NE(FaultConfig::uniform(0.25).signature(),
            FaultConfig::uniform(0.05).signature());
}

TEST(FaultPlan, RateOneAlwaysFiresAndCounts) {
  FaultConfig config;
  config.set_rate(FaultKind::kGoaway, 1.0);
  FaultPlan plan{config, 11, "https://www.site.test"};
  ASSERT_TRUE(plan.active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan.fire(FaultKind::kGoaway));
    EXPECT_FALSE(plan.fire(FaultKind::kRstStream));  // rate 0
  }
  EXPECT_EQ(plan.injected().goaways, 100u);
  EXPECT_EQ(plan.injected().rst_streams, 0u);
  EXPECT_EQ(plan.injected().total_injected(), 100u);
}

TEST(FaultPlan, DecisionsAreAPureFunctionOfSeedAndSite) {
  const FaultConfig config = FaultConfig::uniform(0.5);
  FaultPlan a{config, 11, "https://www.site.test"};
  FaultPlan b{config, 11, "https://www.site.test"};
  FaultPlan other_site{config, 11, "https://www.other.test"};
  FaultPlan other_seed{config, 12, "https://www.site.test"};
  int site_diffs = 0;
  int seed_diffs = 0;
  for (int i = 0; i < 256; ++i) {
    const bool fired = a.fire(FaultKind::kConnectRefused);
    EXPECT_EQ(b.fire(FaultKind::kConnectRefused), fired);
    site_diffs += other_site.fire(FaultKind::kConnectRefused) != fired;
    seed_diffs += other_seed.fire(FaultKind::kConnectRefused) != fired;
  }
  EXPECT_TRUE(a.injected() == b.injected());
  EXPECT_GT(site_diffs, 0);  // distinct sites get distinct schedules
  EXPECT_GT(seed_diffs, 0);  // and so do distinct browser seeds
}

TEST(FaultPlan, ZeroRateKindsNeverDrawFromTheRng) {
  // Interleaving zero-rate queries must not perturb the decision stream —
  // this is what makes "rates all zero" literally bit-identical to "no
  // fault layer" in every consumer.
  FaultConfig config;
  config.set_rate(FaultKind::kGoaway, 0.5);
  FaultPlan clean{config, 7, "https://x.test"};
  FaultPlan noisy{config, 7, "https://x.test"};
  for (int i = 0; i < 128; ++i) {
    EXPECT_FALSE(noisy.fire(FaultKind::kRstStream));
    EXPECT_FALSE(noisy.fire(FaultKind::kDnsServfail));
    EXPECT_EQ(noisy.latency_penalty(), 0);  // kLatencySpike rate is 0 too
    EXPECT_EQ(noisy.fire(FaultKind::kGoaway),
              clean.fire(FaultKind::kGoaway));
  }
  EXPECT_TRUE(noisy.injected() == clean.injected());
}

TEST(FaultPlan, LatencyPenaltyStaysWithinConfiguredBounds) {
  FaultConfig config;
  config.set_rate(FaultKind::kLatencySpike, 1.0);
  FaultPlan plan{config, 3, "https://x.test"};
  for (int i = 0; i < 200; ++i) {
    const util::SimTime penalty = plan.latency_penalty();
    EXPECT_GE(penalty, config.latency_spike_min);
    EXPECT_LT(penalty, config.latency_spike_max);
  }
  EXPECT_EQ(plan.injected().latency_spikes, 200u);

  // A degenerate one-value window pins the penalty exactly.
  config.latency_spike_min = util::milliseconds(10);
  config.latency_spike_max = util::milliseconds(11);
  FaultPlan pinned{config, 3, "https://x.test"};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(pinned.latency_penalty(), util::milliseconds(10));
  }
}

// ------------------------------------------------------------------ env

// The CI chaos matrix drives these same vars through the smoke test
// below; the guard itself is shared with env_test.cpp.
using h2r::testing::EnvGuard;

TEST(FaultConfigEnv, ReadsTheChaosKnobs) {
  EnvGuard rate("H2R_FAULT_RATE", "0.25");
  EnvGuard seed("H2R_FAULT_SEED", "77");
  EnvGuard retries("H2R_FAULT_RETRIES", "5");
  EnvGuard backoff("H2R_FAULT_BACKOFF_MS", "250");
  const FaultConfig config = FaultConfig::from_env();
  EXPECT_TRUE(config.enabled());
  for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
    EXPECT_DOUBLE_EQ(config.rate(static_cast<FaultKind>(k)), 0.25);
  }
  EXPECT_EQ(config.seed, 77u);
  EXPECT_EQ(config.max_retries, 5);
  EXPECT_EQ(config.backoff_base, util::milliseconds(250));
}

TEST(FaultConfigEnv, RejectsOutOfRangeOrGarbageRates) {
  {
    EnvGuard rate("H2R_FAULT_RATE", "1.5");  // probabilities only
    EXPECT_FALSE(FaultConfig::from_env().enabled());
  }
  {
    EnvGuard rate("H2R_FAULT_RATE", "-0.1");
    EXPECT_FALSE(FaultConfig::from_env().enabled());
  }
  {
    EnvGuard rate("H2R_FAULT_RATE", "chaos");
    EXPECT_FALSE(FaultConfig::from_env().enabled());
  }
}

// ---------------------------------------------------------- dns hooks

net::Prefix pfx(const char* s) { return net::Prefix::parse(s).value(); }

web::Ecosystem make_world() {
  web::Ecosystem eco{5};
  eco.register_as("T-AS", 64501, pfx("10.20.0.0/16"));
  web::ClusterSpec svc;
  svc.operator_name = "svc";
  svc.as_name = "T-AS";
  svc.ip_count = 4;
  svc.certs = {{"CA", {"*.svc.test"}}};
  web::DomainSpec d;
  d.name = "a.svc.test";
  d.lb.policy = dns::LbPolicy::kStatic;
  d.lb.answer_count = 2;
  svc.domains.push_back(d);
  eco.add_cluster(svc);
  return eco;
}

TEST(DnsFaults, ServfailAndTimeoutFailTheLookupWithoutNegativeCaching) {
  const web::Ecosystem eco = make_world();
  dns::RecursiveResolver resolver{dns::standard_vantage_points()[0],
                                  &eco.authority()};
  FaultConfig config;
  config.set_rate(FaultKind::kDnsServfail, 1.0);
  FaultPlan plan{config, 1, "unit"};
  resolver.set_fault_injector(&plan);
  const dns::Resolution failed = resolver.resolve("a.svc.test", util::days(1));
  EXPECT_FALSE(failed.ok);
  EXPECT_TRUE(failed.injected_fault);
  EXPECT_EQ(plan.injected().dns_servfail, 1u);

  // Failures are not cached: the next (uninjected) query succeeds.
  resolver.set_fault_injector(nullptr);
  const dns::Resolution ok = resolver.resolve("a.svc.test", util::days(1));
  EXPECT_TRUE(ok.ok);
  EXPECT_FALSE(ok.injected_fault);
  ASSERT_FALSE(ok.addresses.empty());

  FaultConfig timeouts;
  timeouts.set_rate(FaultKind::kDnsTimeout, 1.0);
  FaultPlan timeout_plan{timeouts, 1, "unit"};
  dns::RecursiveResolver fresh{dns::standard_vantage_points()[0],
                               &eco.authority()};
  fresh.set_fault_injector(&timeout_plan);
  EXPECT_FALSE(fresh.resolve("a.svc.test", util::days(1)).ok);
  EXPECT_EQ(timeout_plan.injected().dns_timeout, 1u);
}

TEST(DnsFaults, StaleFaultServesTheExpiredCacheEntry) {
  const web::Ecosystem eco = make_world();
  dns::RecursiveResolver resolver{dns::standard_vantage_points()[0],
                                  &eco.authority()};
  const dns::Resolution first = resolver.resolve("a.svc.test", util::days(1));
  ASSERT_TRUE(first.ok);
  const util::SimTime after_expiry = first.expires_at + 1;

  FaultConfig config;
  config.set_rate(FaultKind::kDnsStale, 1.0);
  FaultPlan plan{config, 1, "unit"};
  resolver.set_fault_injector(&plan);
  const dns::Resolution stale = resolver.resolve("a.svc.test", after_expiry);
  EXPECT_TRUE(stale.ok);
  EXPECT_TRUE(stale.from_cache);
  EXPECT_TRUE(stale.injected_fault);
  EXPECT_EQ(stale.addresses, first.addresses);
  EXPECT_EQ(plan.injected().dns_stale, 1u);

  // Without the fault the same query re-resolves upstream.
  resolver.set_fault_injector(nullptr);
  const dns::Resolution refreshed =
      resolver.resolve("a.svc.test", after_expiry);
  EXPECT_TRUE(refreshed.ok);
  EXPECT_FALSE(refreshed.from_cache);
  EXPECT_FALSE(refreshed.injected_fault);
}

// --------------------------------------------------------- whole crawls

constexpr std::size_t kSites = 20;

struct ChaosOutput {
  browser::CrawlSummary summary;
  std::vector<std::string> netlog_json;
};

ChaosOutput run_chaos_crawl(unsigned threads, std::uint64_t seed,
                            const FaultConfig& faults) {
  web::Ecosystem eco{seed};
  web::ServiceCatalog catalog{eco, seed};
  web::SiteUniverse universe{eco, catalog};
  browser::CrawlOptions options;
  options.threads = threads;
  options.seed = seed + 100;
  options.browser.faults = faults;
  ChaosOutput out;
  out.summary = browser::crawl_range(
      universe, 0, kSites, options, [&](const browser::SiteResult& site) {
        out.netlog_json.push_back(
            json::write(core::to_json(site.netlog_observation)));
      });
  return out;
}

void expect_conserved(const fault::FailureSummary& failures) {
  EXPECT_EQ(failures.fetch_attempts,
            failures.successful_fetches + failures.failed_fetches);
  EXPECT_LE(failures.retry_successes, failures.retries);
  EXPECT_LE(failures.degraded_sites, kSites);
}

TEST(ChaosCrawl, SweepNeverCrashesAndConservesTheFetchLedger) {
  for (const double rate : {0.0, 0.05, 0.25}) {
    for (const std::uint64_t seed : {1ull, 42ull}) {
      SCOPED_TRACE("rate=" + std::to_string(rate) +
                   " seed=" + std::to_string(seed));
      const ChaosOutput out =
          run_chaos_crawl(1, seed, FaultConfig::uniform(rate));
      // Every site is accounted for: reachable or killed, never dropped.
      EXPECT_EQ(out.summary.sites_visited + out.summary.sites_unreachable,
                kSites);
      EXPECT_EQ(out.netlog_json.size(), kSites);
      expect_conserved(out.summary.failures);
      if (rate == 0.0) {
        EXPECT_EQ(out.summary.failures.total_injected(), 0u);
        EXPECT_EQ(out.summary.failures.retries, 0u);
      } else if (rate >= 0.25) {
        // 20 sites x dozens of decisions at 25%: something always fires,
        // and the browser always copes (deterministic, so never flaky).
        EXPECT_GT(out.summary.failures.total_injected(), 0u);
        EXPECT_GT(out.summary.failures.retries, 0u);
      }
    }
  }
}

TEST(ChaosCrawl, ZeroRateIsBitIdenticalToNoInjection) {
  // An armed-but-zero config (different fault seed, different retry
  // policy) must reproduce the default crawl byte for byte: no rate means
  // no RNG draws, no behavior change, nothing in the ledger.
  FaultConfig zero = FaultConfig::uniform(0.0);
  zero.seed = 999;
  zero.max_retries = 9;
  zero.backoff_base = util::milliseconds(1);
  const ChaosOutput base = run_chaos_crawl(1, 42, FaultConfig{});
  const ChaosOutput armed = run_chaos_crawl(1, 42, zero);
  EXPECT_TRUE(base.summary == armed.summary);
  ASSERT_EQ(base.netlog_json.size(), armed.netlog_json.size());
  for (std::size_t i = 0; i < base.netlog_json.size(); ++i) {
    EXPECT_EQ(base.netlog_json[i], armed.netlog_json[i]) << "rank " << i;
  }
}

TEST(ChaosCrawl, EnvConfiguredSmoke) {
  // The CI chaos job sweeps H2R_FAULT_RATE over {0, 0.05, 0.25} and runs
  // this under TSan: a parallel crawl with the env-selected fault regime
  // must stay race-free and keep its ledger consistent.
  const FaultConfig config = FaultConfig::from_env();
  const ChaosOutput out = run_chaos_crawl(3, 7, config);
  EXPECT_EQ(out.summary.sites_visited + out.summary.sites_unreachable, kSites);
  expect_conserved(out.summary.failures);
  if (!config.enabled()) {
    EXPECT_EQ(out.summary.failures.total_injected(), 0u);
  }
}

}  // namespace
}  // namespace h2r
