// Unit tests for the crash-safe journal layer and the checkpoint codecs.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "browser/crawl.hpp"
#include "core/report.hpp"
#include "journal/checkpoint.hpp"
#include "journal/journal.hpp"
#include "json/json.hpp"

namespace h2r::journal {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

json::Value fingerprint() {
  json::Object object;
  object.set("seed", std::int64_t{42});
  return json::Value{std::move(object)};
}

json::Value entry(int n) {
  json::Object object;
  object.set("n", std::int64_t{n});
  return json::Value{std::move(object)};
}

/// Rebuilds `value` (an object) without `key` — the json API is
/// immutable from the outside, so malformed-document tests copy.
json::Value without(const json::Value& value, const std::string& key) {
  json::Object out;
  for (const auto& [k, v] : value.as_object()) {
    if (k != key) out.set(k, v);
  }
  return json::Value{std::move(out)};
}

/// Rebuilds `value` with `key` replaced by `replacement`.
json::Value with(const json::Value& value, const std::string& key,
                 json::Value replacement) {
  json::Object out;
  for (const auto& [k, v] : value.as_object()) {
    out.set(k, k == key ? replacement : v);
  }
  if (value[key].is_null()) out.set(key, replacement);
  return json::Value{std::move(out)};
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void dump(const std::string& path, const std::string& data) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
}

TEST(Crc32, KnownVectors) {
  // The CRC32 "check" value from the IEEE 802.3 specification.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
}

TEST(Journal, WriteReadRoundTrip) {
  const std::string path = temp_path("roundtrip.journal");
  auto writer = JournalWriter::create(path, fingerprint());
  ASSERT_TRUE(writer) << writer.error().message;
  for (int n = 0; n < 5; ++n) {
    auto ok = (*writer)->append(entry(n));
    ASSERT_TRUE(ok) << ok.error().message;
  }
  EXPECT_EQ((*writer)->fsync_count(), 6u);  // header + 5 entries
  EXPECT_GT((*writer)->bytes_written(), 0u);
  writer->reset();

  auto contents = read_journal(path);
  ASSERT_TRUE(contents) << contents.error().message;
  EXPECT_FALSE(contents->torn_tail);
  ASSERT_EQ(contents->entries.size(), 5u);
  for (int n = 0; n < 5; ++n) {
    EXPECT_EQ(contents->entries[static_cast<std::size_t>(n)]["n"].as_int(),
              n);
  }
  auto fp = header_fingerprint(contents->header);
  ASSERT_TRUE(fp) << fp.error().message;
  EXPECT_EQ((*fp)["seed"].as_int(), 42);
}

TEST(Journal, TornTailIsDroppedNotFatal) {
  const std::string path = temp_path("torn.journal");
  {
    auto writer = JournalWriter::create(path, fingerprint());
    ASSERT_TRUE(writer);
    ASSERT_TRUE((*writer)->append(entry(1)));
    ASSERT_TRUE((*writer)->append(entry(2)));
  }
  // Crash simulation: the last frame loses its final 3 bytes.
  std::string data = slurp(path);
  dump(path, data.substr(0, data.size() - 3));

  auto contents = read_journal(path);
  ASSERT_TRUE(contents) << contents.error().message;
  EXPECT_TRUE(contents->torn_tail);
  ASSERT_EQ(contents->entries.size(), 1u);
  EXPECT_EQ(contents->entries[0]["n"].as_int(), 1);

  // Appending after recovery truncates the tail and continues cleanly.
  {
    auto writer = JournalWriter::append_to(path, contents->valid_bytes);
    ASSERT_TRUE(writer) << writer.error().message;
    ASSERT_TRUE((*writer)->append(entry(3)));
  }
  auto repaired = read_journal(path);
  ASSERT_TRUE(repaired);
  EXPECT_FALSE(repaired->torn_tail);
  ASSERT_EQ(repaired->entries.size(), 2u);
  EXPECT_EQ(repaired->entries[1]["n"].as_int(), 3);
}

TEST(Journal, CorruptPayloadIsATornTail) {
  const std::string path = temp_path("corrupt.journal");
  {
    auto writer = JournalWriter::create(path, fingerprint());
    ASSERT_TRUE(writer);
    ASSERT_TRUE((*writer)->append(entry(1)));
  }
  std::string data = slurp(path);
  data[data.size() - 2] ^= 0x40;  // bit flip inside the last payload
  dump(path, data);

  auto contents = read_journal(path);
  ASSERT_TRUE(contents) << contents.error().message;
  EXPECT_TRUE(contents->torn_tail);
  EXPECT_TRUE(contents->entries.empty());
}

TEST(Journal, RejectsFilesWithoutValidHeader) {
  const std::string path = temp_path("noheader.journal");
  dump(path, "this is not a journal at all");
  EXPECT_FALSE(read_journal(path));

  // A well-framed first record that is not a journal header also fails.
  const std::string payload = "{\"magic\":\"something-else\"}";
  std::string framed;
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);
  for (int shift = 0; shift < 32; shift += 8) {
    framed.push_back(static_cast<char>((length >> shift) & 0xFF));
  }
  for (int shift = 0; shift < 32; shift += 8) {
    framed.push_back(static_cast<char>((crc >> shift) & 0xFF));
  }
  framed += payload;
  dump(path, framed);
  EXPECT_FALSE(read_journal(path));
}

TEST(Journal, RefusesNullEntries) {
  const std::string path = temp_path("null.journal");
  auto writer = JournalWriter::create(path, fingerprint());
  ASSERT_TRUE(writer);
  EXPECT_FALSE((*writer)->append(json::Value{}));
}

TEST(Checkpoint, CrawlSummaryRoundTrip) {
  browser::CrawlSummary summary;
  summary.sites_visited = 100;
  summary.sites_unreachable = 3;
  summary.connections_opened = 1234;
  summary.group_reuses = 55;
  summary.alias_reuses = 7;
  summary.origin_frame_reuses = 2;
  summary.misdirected_retries = 1;
  summary.failures.dns_timeout = 5;
  summary.failures.retries = 2;
  summary.failures.deadline_exceeded = 7;
  summary.har_stats.total_entries = 900;
  summary.har_stats.h2_entries = 800;
  summary.har_stats.used_entries = 750;
  summary.har_stats.missing_ip = 9;
  // Diagnostics must NOT round-trip: they are scheduling artifacts.
  summary.per_worker.resize(3);
  summary.wall_ms = 123.5;

  auto round = crawl_summary_from_json(to_json(summary));
  ASSERT_TRUE(round) << round.error().message;
  EXPECT_TRUE(*round == summary);  // counters-only comparison
  EXPECT_TRUE(round->per_worker.empty());
  EXPECT_EQ(round->wall_ms, 0.0);
  EXPECT_EQ(round->failures.deadline_exceeded, 7u);
  EXPECT_EQ(round->har_stats.used_entries, 750u);
}

TEST(Checkpoint, CrawlSummaryRejectsMalformed) {
  browser::CrawlSummary summary;
  summary.sites_visited = 10;
  const json::Value good = to_json(summary);
  ASSERT_TRUE(crawl_summary_from_json(good));

  EXPECT_FALSE(crawl_summary_from_json(without(good, "sites_visited")));
  EXPECT_FALSE(crawl_summary_from_json(
      with(good, "connections_opened", json::Value{std::int64_t{-4}})));
  EXPECT_FALSE(
      crawl_summary_from_json(with(good, "group_reuses", json::Value{1.5})));
}

TEST(Checkpoint, ChunkRoundTrip) {
  ChunkCheckpoint chunk;
  chunk.campaign = "alexa";
  chunk.ranges = {{100, 25}, {130, 5}};
  chunk.summary.sites_visited = 30;
  chunk.summary.connections_opened = 77;
  chunk.overlap_sites = 12;

  // A real report from the aggregator, so every field family is covered.
  core::Aggregator aggregator;
  core::ConnectionRecord conn;
  conn.id = 1;
  conn.endpoint =
      net::Endpoint{net::IpAddress::parse("10.1.2.3").value(), 443};
  conn.initial_domain = "example.test";
  conn.san_dns_names = {"example.test"};
  conn.issuer_organization = "Test CA";
  core::RequestRecord req;
  req.started_at = 0;
  req.finished_at = 50;
  req.domain = "example.test";
  conn.requests.push_back(req);
  core::SiteObservation site;
  site.site_url = "https://example.test/";
  site.connections.push_back(conn);
  aggregator.add_site(site, core::classify_site(site, {}));
  chunk.reports.emplace_back("exact", aggregator.report());

  auto round = chunk_from_json(to_json(chunk));
  ASSERT_TRUE(round) << round.error().message;
  EXPECT_EQ(round->campaign, "alexa");
  EXPECT_EQ(round->ranges, chunk.ranges);
  EXPECT_EQ(round->site_count(), 30u);
  EXPECT_TRUE(round->summary == chunk.summary);
  ASSERT_EQ(round->reports.size(), 1u);
  EXPECT_EQ(round->reports[0].first, "exact");
  EXPECT_TRUE(round->reports[0].second == chunk.reports[0].second);
  EXPECT_EQ(round->overlap_sites, 12u);
}

TEST(Checkpoint, ChunkRejectsBadRanges) {
  ChunkCheckpoint chunk;
  chunk.campaign = "har";
  chunk.ranges = {{40, 10}};
  const json::Value good = to_json(chunk);
  ASSERT_TRUE(chunk_from_json(good)) << chunk_from_json(good).error().message;

  // Empty ranges array.
  EXPECT_FALSE(
      chunk_from_json(with(good, "ranges", json::Value{json::Array{}})));
  // Zero-length range.
  json::Array zero_range;
  zero_range.push_back(json::Value{std::int64_t{10}});
  zero_range.push_back(json::Value{std::int64_t{0}});
  json::Array ranges;
  ranges.push_back(json::Value{std::move(zero_range)});
  EXPECT_FALSE(
      chunk_from_json(with(good, "ranges", json::Value{std::move(ranges)})));
  // No campaign.
  EXPECT_FALSE(chunk_from_json(without(good, "campaign")));
}

}  // namespace
}  // namespace h2r::journal
