// Shard-merge correctness: AggregateReport::merge and CrawlSummary::merge
// must make "split the sites into shards, aggregate each shard, merge the
// partial reports in ANY order" indistinguishable from single-pass
// accumulation. This is what lets the parallel study engine aggregate
// inside workers instead of funnelling every observation through one sink.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "browser/crawl.hpp"
#include "core/report.hpp"
#include "stats/distribution.hpp"
#include "util/rng.hpp"

namespace h2r::core {
namespace {

net::IpAddress ip(const std::string& s) {
  return net::IpAddress::parse(s).value();
}

/// Deterministic synthetic site: a handful of connections over a small
/// pool of domains/IPs so that CERT / IP / CRED causes, previous-origin
/// attribution, issuer tables and lifetime histograms all get exercised.
SiteObservation random_site(util::Rng& rng, std::size_t index) {
  static const char* kDomains[] = {"cdn.ex", "ads.ex",  "img.ex",
                                   "api.ex", "tags.ex", "sso.ex"};
  static const char* kWildcards[] = {"*.ex", "cdn.ex", "ads.ex"};
  SiteObservation site;
  site.site_url = "https://site-" + std::to_string(index) + ".test";
  const std::size_t conns = rng.uniform(1, 5);
  for (std::size_t c = 0; c < conns; ++c) {
    ConnectionRecord rec;
    rec.id = c + 1;
    // 4 addresses -> frequent IP sharing, 6 domains -> frequent cert
    // sharing and occasional same-domain CRED duplicates.
    rec.endpoint =
        net::Endpoint{ip("10.0.0." + std::to_string(rng.uniform(1, 4))), 443};
    rec.initial_domain = kDomains[rng.index(6)];
    rec.san_dns_names = {kWildcards[rng.index(3)], rec.initial_domain};
    // One issuer per domain, like the simulated CA assignment — required
    // for OriginTally::issuer first-non-empty-wins merging.
    rec.issuer_organization =
        std::string("CA-") + std::string(1, rec.initial_domain[0]);
    rec.has_certificate = true;
    rec.opened_at = static_cast<util::SimTime>(rng.uniform(0, 4000));
    if (rng.chance(0.3)) {
      rec.closed_at = rec.opened_at +
                      static_cast<util::SimTime>(rng.uniform(100, 200000));
    }
    RequestRecord req;
    req.started_at = rec.opened_at;
    req.finished_at = rec.opened_at + 50;
    req.domain = rec.initial_domain;
    rec.requests.push_back(req);
    site.connections.push_back(std::move(rec));
  }
  return site;
}

AggregateReport aggregate(const std::vector<SiteObservation>& sites) {
  Aggregator agg;
  for (const SiteObservation& site : sites) {
    agg.add_site(site, classify_site(site, {DurationModel::kEndless}));
  }
  return agg.report();
}

TEST(ReportMerge, EmptyMergeIsIdentity) {
  std::vector<SiteObservation> sites;
  util::Rng rng{11};
  for (std::size_t i = 0; i < 10; ++i) sites.push_back(random_site(rng, i));
  const AggregateReport single = aggregate(sites);

  AggregateReport merged = aggregate(sites);
  merged.merge(AggregateReport{});
  EXPECT_EQ(merged, single);

  AggregateReport from_empty;
  from_empty.merge(single);
  EXPECT_EQ(from_empty, single);
}

TEST(ReportMerge, RandomPartitionsInShuffledOrderMatchSinglePass) {
  // Property: for random site sets, random shard assignments and random
  // merge orders, merged shards == one-pass aggregation. 20 trials.
  util::Rng rng{0xC0FFEE};
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    std::vector<SiteObservation> sites;
    const std::size_t n_sites = rng.uniform(5, 40);
    for (std::size_t i = 0; i < n_sites; ++i) {
      sites.push_back(random_site(rng, i));
    }
    const AggregateReport single = aggregate(sites);

    const std::size_t n_shards = rng.uniform(2, 7);
    std::vector<Aggregator> shards(n_shards);
    for (const SiteObservation& site : sites) {
      Aggregator& shard = shards[rng.index(n_shards)];
      shard.add_site(site, classify_site(site, {DurationModel::kEndless}));
    }

    std::vector<std::size_t> order(n_shards);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    AggregateReport merged;
    for (const std::size_t shard : order) {
      merged.merge(shards[shard].report());
    }
    EXPECT_EQ(merged, single);
  }
}

TEST(ReportMerge, MergePreservesDerivedStatistics) {
  util::Rng rng{7};
  std::vector<SiteObservation> sites;
  for (std::size_t i = 0; i < 30; ++i) sites.push_back(random_site(rng, i));
  const AggregateReport single = aggregate(sites);

  AggregateReport merged;
  Aggregator left;
  Aggregator right;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    Aggregator& half = i % 2 == 0 ? left : right;
    half.add_site(sites[i], classify_site(sites[i], {DurationModel::kEndless}));
  }
  merged.merge(right.report());  // deliberately out of crawl order
  merged.merge(left.report());

  EXPECT_EQ(merged.median_closed_lifetime(), single.median_closed_lifetime());
  EXPECT_EQ(merged.sites_with_at_least(1), single.sites_with_at_least(1));
  EXPECT_DOUBLE_EQ(merged.redundant_site_share(),
                   single.redundant_site_share());
  for (Cause cause : kAllCauses) {
    EXPECT_EQ(merged.median_open_offset(cause),
              single.median_open_offset(cause));
  }
}

TEST(ReportMerge, IssuerFirstNonEmptyWins) {
  AggregateReport a;
  a.cert_domains["d.ex"].connections = 1;  // shard that never saw the cert
  AggregateReport b;
  b.cert_domains["d.ex"].connections = 2;
  b.cert_domains["d.ex"].issuer = "CA-x";

  AggregateReport ab = a;
  ab.merge(b);
  AggregateReport ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.cert_domains.at("d.ex").issuer, "CA-x");
  EXPECT_EQ(ba.cert_domains.at("d.ex").issuer, "CA-x");
  EXPECT_EQ(ab.cert_domains.at("d.ex").connections, 3u);
  EXPECT_EQ(ab, ba);
}

TEST(CrawlSummaryMerge, SumsMeasurementCountersAndConcatenatesWorkers) {
  util::Rng rng{99};
  auto random_summary = [&rng](unsigned workers) {
    browser::CrawlSummary s;
    s.sites_visited = rng.uniform(0, 100);
    s.sites_unreachable = rng.uniform(0, 10);
    s.connections_opened = rng.uniform(0, 500);
    s.har_stats.total_entries = rng.uniform(0, 50);
    s.wall_ms = static_cast<double>(rng.uniform(1, 100));
    for (unsigned w = 0; w < workers; ++w) {
      browser::WorkerCounters counters;
      counters.sites_loaded = rng.uniform(0, 50);
      s.per_worker.push_back(counters);
    }
    return s;
  };

  const browser::CrawlSummary a = random_summary(2);
  const browser::CrawlSummary b = random_summary(3);
  browser::CrawlSummary merged = a;
  merged.merge(b);

  EXPECT_EQ(merged.sites_visited, a.sites_visited + b.sites_visited);
  EXPECT_EQ(merged.sites_unreachable,
            a.sites_unreachable + b.sites_unreachable);
  EXPECT_EQ(merged.connections_opened,
            a.connections_opened + b.connections_opened);
  EXPECT_EQ(merged.har_stats.total_entries,
            a.har_stats.total_entries + b.har_stats.total_entries);
  ASSERT_EQ(merged.per_worker.size(), 5u);
  EXPECT_EQ(merged.per_worker[2].sites_loaded, b.per_worker[0].sites_loaded);
}

TEST(CrawlSummaryMerge, EqualityIgnoresSchedulingDiagnostics) {
  // operator== is the determinism contract: it must compare measurement
  // counters only, never wall/CPU time or per-worker scheduling detail.
  browser::CrawlSummary a;
  a.sites_visited = 4;
  browser::CrawlSummary b = a;
  b.wall_ms = 123.0;
  b.per_worker.resize(8);
  EXPECT_TRUE(a == b);
  b.sites_visited = 5;
  EXPECT_FALSE(a == b);
}

// ------------------------------------------------- histogram plumbing

TEST(TimeHistogram, QuantileMatchesSortedSamples) {
  util::Rng rng{3};
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<util::SimTime> samples;
    stats::TimeHistogram histogram;
    const std::size_t n = rng.uniform(1, 200);
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = static_cast<util::SimTime>(rng.uniform(0, 50));
      samples.push_back(v);
      histogram.add(v);
    }
    std::sort(samples.begin(), samples.end());
    EXPECT_EQ(stats::histogram_count(histogram), samples.size());
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      const std::size_t rank = std::min(
          samples.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(samples.size())));
      ASSERT_TRUE(stats::histogram_quantile(histogram, q).has_value());
      EXPECT_EQ(*stats::histogram_quantile(histogram, q), samples[rank])
          << "q=" << q;
    }
  }
}

TEST(TimeHistogram, EmptyQuantileIsNullopt) {
  EXPECT_FALSE(stats::histogram_quantile({}, 0.5).has_value());
  EXPECT_EQ(stats::histogram_count({}), 0u);
}

}  // namespace
}  // namespace h2r::core
