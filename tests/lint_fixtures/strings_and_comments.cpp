// Lexer discipline: banned tokens inside comments, string literals, char
// literals and raw strings are NOT code. Zero findings expected.
//
// In a comment: std::chrono::steady_clock::now(), rand(), getenv("X").
#include <string>

namespace h2r::fixture {

/* block comment mentioning std::random_device and std::async */
std::string docs() {
  std::string a = "call std::chrono::system_clock::now() at midnight";
  std::string b = "rand() and srand() and getenv(\"H2R_SEED\")";
  std::string c = R"(raw: std::this_thread::get_id() and time(nullptr))";
  char quote = '"';
  int thousands = 1'000'000;  // digit separators must not open a char literal
  (void)quote;
  return a + b + c + std::to_string(thousands);
}

}  // namespace h2r::fixture
