// Trips ban.clock twice: a chrono clock read and a clock_gettime call.
#include <chrono>
#include <ctime>

double wall_ms() {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

double cpu_ms() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1000.0;
}
