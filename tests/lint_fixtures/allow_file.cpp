// File-scoped audited exception: every ban.rand use in this file is
// allowed by one annotation. The ban.clock use at the bottom is NOT
// covered and must still be reported.
// h2r-lint: allow-file(ban.rand) -- fixture standing in for a
// quarantined diagnostics module that may use ambient entropy.
#include <chrono>
#include <cstdlib>
#include <random>

int noise() { return rand() % 6; }

unsigned hardware_seed() {
  std::random_device device;
  return device();
}

double still_flagged() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}
