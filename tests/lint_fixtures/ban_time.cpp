// Trips ban.time: wall-clock date via the C time API. Note that
// first_request_time() below must NOT trip — "time" only matches as a
// whole identifier.
#include <ctime>

long stamp() {
  long first_request_time = 0;
  (void)first_request_time;
  return static_cast<long>(time(nullptr));
}
