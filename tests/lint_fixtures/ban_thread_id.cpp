// Trips ban.thread-id twice: the id type and the get_id() call.
#include <thread>

std::thread::id whoami_type();

bool same_worker() {
  return whoami_type() == std::this_thread::get_id();
}
