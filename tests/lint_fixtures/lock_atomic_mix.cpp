// Trips lock.atomic-mix: `pending_` is read with an explicit memory
// order in one place and assigned through the implicit seq_cst operator
// in another — the mixed discipline hides which ordering the algorithm
// needs.
#include <atomic>
#include <cstdint>

namespace h2r::fixture {

class Queue {
 public:
  bool drained() const { return pending_.load(std::memory_order_acquire) == 0; }
  void reset() { pending_ = 0; }

 private:
  std::atomic<std::uint64_t> pending_{0};
};

}  // namespace h2r::fixture
