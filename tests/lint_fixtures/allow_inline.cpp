// A correctly audited exception: the annotation names the rule and gives
// a reason, so the clock read on the next code line is allowed. The
// same-line form is exercised by the second function.
#include <chrono>

double diagnostic_wall_ms() {
  // h2r-lint: allow(ban.clock) -- diagnostic-only wall time, never
  // serialized (fixture mirror of browser/crawl.cpp).
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

double diagnostic_wall_ms_2() {
  auto now = std::chrono::steady_clock::now();  // h2r-lint: allow(ban.clock) -- same-line audited use.
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}
