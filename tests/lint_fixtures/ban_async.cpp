// Trips ban.async: completion order of std::async tasks is up to the
// scheduler.
#include <future>

int fanout() {
  auto task = std::async(std::launch::async, [] { return 7; });
  return task.get();
}
