// lock.atomic-mix stays quiet when every access states its ordering.
#include <atomic>
#include <cstdint>

namespace h2r::fixture {

class Queue {
 public:
  bool drained() const { return pending_.load(std::memory_order_acquire) == 0; }
  void reset() { pending_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t> pending_{0};
};

}  // namespace h2r::fixture
