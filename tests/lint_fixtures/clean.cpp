// A model citizen: simulated time, seeded RNG, ordered containers,
// documented locking. h2r-lint must report zero findings here.
#include <map>
#include <mutex>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace h2r::fixture {

struct Ledger {
  // guards: totals_ (workers add, the reporter reads after join)
  std::mutex mutex_;
  std::map<std::string, std::uint64_t> totals_;
};

util::SimTime next_deadline(util::SimTime now) {
  return now + util::seconds(30);
}

std::uint64_t draw(util::Rng& rng) { return rng.next(); }

}  // namespace h2r::fixture
