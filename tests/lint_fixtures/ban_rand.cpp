// Trips ban.rand twice: libc rand() and std::random_device.
#include <cstdlib>
#include <random>

int noise() { return rand() % 6; }

unsigned hardware_seed() {
  std::random_device device;
  return device();
}
