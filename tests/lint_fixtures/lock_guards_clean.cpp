// lock.guards satisfied: the comment names the protected state, and
// lock_guard<std::mutex> template uses never count as declarations.
#include <cstdint>
#include <mutex>

namespace h2r::fixture {

class Telemetry {
 public:
  void add(std::uint64_t n) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ += n;
  }

 private:
  std::mutex mutex_;  // guards: total_
  std::uint64_t total_ = 0;
};

}  // namespace h2r::fixture
