// Trips lock.order: refill() takes pool_ then (via evict()) stats_,
// while report() takes stats_ then pool_ — a cross-thread deadlock
// waiting for the right interleaving. The stats_ edge in refill() is
// TRANSITIVE (acquired inside a callee), which is exactly the case a
// per-function scan cannot see.
#include <cstdint>
#include <mutex>

namespace h2r::fixture {

class ShardedPool {
 public:
  void refill() {
    std::lock_guard<std::mutex> pool_lock(pool_);
    evict();
  }

  void evict() {
    std::lock_guard<std::mutex> stats_lock(stats_);
    evictions_ += 1;
  }

  void report() {
    std::lock_guard<std::mutex> stats_lock(stats_);
    std::lock_guard<std::mutex> pool_lock(pool_);
    snapshots_ += evictions_;
  }

 private:
  std::mutex pool_;   // guards: snapshots_
  std::mutex stats_;  // guards: evictions_
  std::uint64_t evictions_ = 0;
  std::uint64_t snapshots_ = 0;
};

}  // namespace h2r::fixture
