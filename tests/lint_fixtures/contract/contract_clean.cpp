// A struct that honors the full contract: every field is merged, every
// field participates in the defaulted operator==, the codec round-trips
// every field, and the one diagnostic is annotated out of all three
// surfaces. h2r-lint must report zero findings here.
#include <cstdint>

#include "json/json.hpp"

namespace h2r::fixture {

struct CleanTally {
  std::uint64_t sites = 0;
  std::uint64_t connections = 0;
  // contract: diagnostic -- wall-clock scheduling noise, never part of
  // the determinism contract
  double wall_ms = 0.0;

  void merge(const CleanTally& shard);
  bool operator==(const CleanTally&) const = default;
};

void CleanTally::merge(const CleanTally& shard) {
  sites += shard.sites;
  connections += shard.connections;
  wall_ms += shard.wall_ms;
}

json::Value clean_tally_to_json(const CleanTally& tally) {
  json::Object obj;
  obj.set("sites", static_cast<std::int64_t>(tally.sites));
  obj.set("connections", static_cast<std::int64_t>(tally.connections));
  return json::Value(std::move(obj));
}

CleanTally clean_tally_from_json(const json::Value& value) {
  CleanTally tally;
  tally.sites = static_cast<std::uint64_t>(value["sites"].as_int());
  tally.connections =
      static_cast<std::uint64_t>(value["connections"].as_int());
  return tally;
}

}  // namespace h2r::fixture
