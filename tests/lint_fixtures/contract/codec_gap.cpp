// Trips contract.codec-coverage in both directions: `dropped` is written
// by the encoder but never parsed back (lost on resume), and `resumed`
// is parsed by the decoder but never written (reads a key that is never
// there). `kept` round-trips and is fine.
#include <cstdint>

#include "json/json.hpp"

namespace h2r::fixture {

struct ChunkStats {
  std::uint64_t kept = 0;
  std::uint64_t dropped = 0;
  std::uint64_t resumed = 0;
};

json::Value chunk_stats_to_json(const ChunkStats& stats) {
  json::Object obj;
  obj.set("kept", static_cast<std::int64_t>(stats.kept));
  obj.set("dropped", static_cast<std::int64_t>(stats.dropped));
  return json::Value(std::move(obj));
}

ChunkStats chunk_stats_from_json(const json::Value& value) {
  ChunkStats stats;
  stats.kept = static_cast<std::uint64_t>(value["kept"].as_int());
  stats.resumed = static_cast<std::uint64_t>(value["resumed"].as_int());
  return stats;
}

}  // namespace h2r::fixture
