// Consistent lock order: every path that holds both mutexes acquires
// pool_ first, stats_ second — the acquisition graph is acyclic and
// lock.order stays quiet.
#include <cstdint>
#include <mutex>

namespace h2r::fixture {

class ShardedPool {
 public:
  void refill() {
    std::lock_guard<std::mutex> pool_lock(pool_);
    evict();
  }

  void evict() {
    std::lock_guard<std::mutex> stats_lock(stats_);
    evictions_ += 1;
  }

  void report() {
    std::lock_guard<std::mutex> pool_lock(pool_);
    std::lock_guard<std::mutex> stats_lock(stats_);
    snapshots_ += evictions_;
  }

 private:
  std::mutex pool_;   // guards: snapshots_
  std::mutex stats_;  // guards: evictions_
  std::uint64_t evictions_ = 0;
  std::uint64_t snapshots_ = 0;
};

}  // namespace h2r::fixture
