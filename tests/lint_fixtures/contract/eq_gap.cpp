// Trips contract.eq-coverage: the hand-written operator== compares two of
// the three fields, so a differential test comparing ReuseStats values
// would wave a divergence in misses straight through.
#include <cstdint>

namespace h2r::fixture {

struct ReuseStats {
  std::uint64_t lookups = 0;
  std::uint64_t reuses = 0;
  std::uint64_t misses = 0;
};

bool operator==(const ReuseStats& a, const ReuseStats& b) {
  return a.lookups == b.lookups && a.reuses == b.reuses;
}

}  // namespace h2r::fixture
