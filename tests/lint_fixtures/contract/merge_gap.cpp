// Trips contract.merge-coverage: ShardTally's merge() combines sites and
// connections but forgets hits — the exact "added a field, forgot the
// merge" gap that makes threads=N diverge from threads=1.
#include <cstdint>

namespace h2r::fixture {

struct ShardTally {
  std::uint64_t sites = 0;
  std::uint64_t connections = 0;
  std::uint64_t hits = 0;

  void merge(const ShardTally& shard);
  bool operator==(const ShardTally&) const = default;
};

void ShardTally::merge(const ShardTally& shard) {
  sites += shard.sites;
  connections += shard.connections;
}

}  // namespace h2r::fixture
