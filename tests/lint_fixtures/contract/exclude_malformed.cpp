// Malformed per-field contract annotations: an unknown rule key in the
// exclude list, and an exclusion without a reason. Both must surface as
// allow.reason findings — an annotation that silently did nothing would
// be worse than no annotation at all.
#include <cstdint>

namespace h2r::fixture {

struct BadAnnotations {
  // contract: exclude(frobnicate) -- no such contract surface
  std::uint64_t first = 0;
  // contract: exclude(merge)
  std::uint64_t second = 0;
};

}  // namespace h2r::fixture
