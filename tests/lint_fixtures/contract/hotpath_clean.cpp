// An annotated hot function that keeps its promise: scratch lives in
// arena-backed columns, string work binds by reference, and growth goes
// through an ArenaVector — zero hotpath.alloc findings.
#include <cstdint>
#include <string>

#include "util/arena.hpp"

namespace h2r::fixture {

struct ArenaSweep {
  util::ArenaVector<std::uint32_t> marks;

  // h2r-lint: hotpath -- per-site SoA sweep, arena-backed by design
  void classify_site(const std::string& host) {
    const std::string& needle = host;
    marks.push_back(static_cast<std::uint32_t>(needle.size()));
  }
};

}  // namespace h2r::fixture
