// Trips hotpath.alloc three ways inside the annotated per-site function:
// a by-value std::string local, growth on a heap-backed member vector,
// and a make_unique. The un-annotated helper below does all the same
// things and stays quiet — the rule fires only where the hotpath
// annotation promises allocation-freedom.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace h2r::fixture {

struct Sweep {
  std::vector<std::uint32_t> marks;

  // h2r-lint: hotpath -- runs once per connection pair per site
  void classify_site(const std::string& host) {
    std::string needle = host;
    marks.push_back(1);
    auto scratch = std::make_unique<std::uint64_t>(0);
    *scratch += needle.size();
  }

  void cold_report(const std::string& host) {
    std::string needle = host;
    marks.push_back(2);
    auto scratch = std::make_unique<std::uint64_t>(0);
    *scratch += needle.size();
  }
};

}  // namespace h2r::fixture
