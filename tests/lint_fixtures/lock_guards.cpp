// Trips lock.guards: a mutex member with no `guards:` comment saying
// what it protects.
#include <cstdint>
#include <mutex>

namespace h2r::fixture {

class Telemetry {
 public:
  void add(std::uint64_t n);

 private:
  std::mutex mutex_;
  std::uint64_t total_ = 0;
};

}  // namespace h2r::fixture
