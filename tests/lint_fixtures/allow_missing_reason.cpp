// An allow with no reason clause: the annotation itself becomes an
// allow.reason finding AND it suppresses nothing, so the clock read is
// still reported too.
#include <chrono>

double wall_ms() {
  // h2r-lint: allow(ban.clock)
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}
