// Trips policy.alias: ClassifyOptions is the deprecated spelling of
// core::Policy; an allow annotation suppresses it at the alias definition.
namespace core { struct Policy {}; }

void legacy(const core::Policy& p);

using ClassifyOptions = core::Policy;  // h2r-lint: allow(policy.alias) -- alias definition

void caller() {
  ClassifyOptions options{};
  legacy(options);
}
