// Trips order.unordered: an unordered_map declared in a translation unit
// that also serializes (to_json). Iterating the map feeds the document,
// so its seed-dependent bucket order would leak into the report.
#include <string>
#include <unordered_map>

#include "json/json.hpp"

namespace h2r::fixture {

struct Tally {
  std::unordered_map<std::string, int> by_cause;
};

json::Value to_json(const Tally& tally) {
  json::Object obj;
  for (const auto& [cause, count] : tally.by_cause) {
    obj.set(cause, count);
  }
  return json::Value(std::move(obj));
}

}  // namespace h2r::fixture
