// The other half of the order.unordered heuristic: an unordered_set in a
// translation unit with NO serializer/merge/operator== stays legal — a
// local membership probe cannot leak iteration order into a report.
#include <string>
#include <unordered_set>

namespace h2r::fixture {

bool seen_before(const std::string& url) {
  static std::unordered_set<std::string> seen;
  return !seen.insert(url).second;
}

}  // namespace h2r::fixture
