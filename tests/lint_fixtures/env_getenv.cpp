// Trips env.getenv twice: a raw read and a raw write. Config must flow
// through util::env_u64 and friends instead.
#include <cstdlib>

const char* threads_knob() { return std::getenv("H2R_THREADS"); }

void force_seed() { ::setenv("H2R_SEED", "42", 1); }
