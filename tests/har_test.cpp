#include <gtest/gtest.h>

#include "har/export.hpp"
#include "har/har.hpp"
#include "har/import.hpp"

namespace h2r::har {
namespace {

Entry h2_entry(std::int64_t conn, const char* url, util::SimTime started,
               const char* ip = "10.0.0.1") {
  Entry e;
  e.pageref = "page_1";
  e.request_id = "r" + std::to_string(started);
  e.started = started;
  e.time_ms = 40;
  e.method = "GET";
  e.url = url;
  e.http_version = "h2";
  e.status = 200;
  e.server_ip = ip;
  e.connection_id = conn;
  e.has_security_details = true;
  e.san_list = {"*.example.com"};
  e.issuer = "Test CA";
  e.cert_serial = 7;
  return e;
}

Log simple_log() {
  Log log;
  log.page.id = "page_1";
  log.page.url = "https://www.example.com";
  log.entries.push_back(h2_entry(11, "https://www.example.com/", 0));
  log.entries.push_back(h2_entry(11, "https://www.example.com/a.js", 30));
  log.entries.push_back(
      h2_entry(12, "https://img.example.com/x.png", 60, "10.0.0.2"));
  return log;
}

// ------------------------------------------------------------- URL helpers

TEST(UrlHelpers, HostAndPath) {
  EXPECT_EQ(url_host("https://www.example.com/a/b?c=d"), "www.example.com");
  EXPECT_EQ(url_host("https://example.com"), "example.com");
  EXPECT_EQ(url_host("https://example.com:8443/x"), "example.com");
  EXPECT_EQ(url_path("https://example.com/a/b"), "/a/b");
  EXPECT_EQ(url_path("https://example.com"), "/");
}

// ---------------------------------------------------------------- to_json

TEST(HarJson, RoundTrip) {
  const Log log = simple_log();
  const auto parsed = parse(to_string(log));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->page.url, log.page.url);
  ASSERT_EQ(parsed->entries.size(), 3u);
  const Entry& e = parsed->entries[0];
  EXPECT_EQ(e.url, "https://www.example.com/");
  EXPECT_EQ(e.http_version, "h2");
  EXPECT_EQ(e.connection_id, 11);
  EXPECT_EQ(e.server_ip, "10.0.0.1");
  ASSERT_TRUE(e.has_security_details);
  EXPECT_EQ(e.san_list, std::vector<std::string>{"*.example.com"});
  EXPECT_EQ(e.issuer, "Test CA");
  EXPECT_EQ(e.cert_serial, 7u);
}

TEST(HarJson, MissingLogObjectIsError) {
  EXPECT_FALSE(from_json(json::parse("{}").value()).has_value());
  EXPECT_FALSE(parse("[1,2,3]").has_value());
  EXPECT_FALSE(parse("not json").has_value());
}

TEST(HarJson, EntryWithoutOptionalsParses) {
  const char* text = R"({"log":{"pages":[{"id":"p","title":"u",
    "startedDateTime":0}],"entries":[{"pageref":"p","startedDateTime":5,
    "time":1.5,"request":{"method":"GET","url":"https://x/","httpVersion":"h2"},
    "response":{"status":200}}]}})";
  const auto log = parse(text);
  ASSERT_TRUE(log.has_value());
  const Entry& e = log->entries[0];
  EXPECT_EQ(e.connection_id, -1);
  EXPECT_FALSE(e.has_security_details);
  EXPECT_TRUE(e.server_ip.empty());
}

// ----------------------------------------------------------------- import

TEST(HarImport, GroupsRequestsByConnection) {
  ImportStats stats;
  const core::SiteObservation site = import_site(simple_log(), &stats);
  ASSERT_EQ(site.connections.size(), 2u);
  EXPECT_EQ(site.connections[0].requests.size(), 2u);
  EXPECT_EQ(site.connections[0].initial_domain, "www.example.com");
  EXPECT_EQ(site.connections[0].opened_at, 0);
  EXPECT_FALSE(site.connections[0].closed_at.has_value());
  EXPECT_EQ(site.connections[1].initial_domain, "img.example.com");
  EXPECT_EQ(stats.used_entries, 3u);
  EXPECT_EQ(stats.dropped(), 0u);
}

TEST(HarImport, ConnectionsSortedByFirstRequest) {
  Log log;
  log.page.url = "https://x";
  log.entries.push_back(h2_entry(20, "https://late.example.com/", 500, "10.0.0.5"));
  log.entries.push_back(h2_entry(10, "https://early.example.com/", 100, "10.0.0.4"));
  const auto site = import_site(log, nullptr);
  ASSERT_EQ(site.connections.size(), 2u);
  EXPECT_EQ(site.connections[0].initial_domain, "early.example.com");
}

struct FilterCase {
  const char* name;
  void (*mutate)(Entry&);
  std::uint64_t ImportStats::*counter;
};

class HarImportFilter : public ::testing::TestWithParam<FilterCase> {};

TEST_P(HarImportFilter, DropsAndCounts) {
  Log log;
  log.page.id = "page_1";
  log.page.url = "https://x";
  Entry bad = h2_entry(11, "https://a.example.com/", 0);
  GetParam().mutate(bad);
  log.entries.push_back(bad);
  log.entries.push_back(h2_entry(12, "https://b.example.com/", 10, "10.0.0.2"));

  ImportStats stats;
  const auto site = import_site(log, &stats);
  EXPECT_EQ(site.connections.size(), 1u) << GetParam().name;
  EXPECT_EQ(stats.*(GetParam().counter), 1u) << GetParam().name;
  EXPECT_EQ(site.filtered_requests + (stats.h1_entries + stats.h3_entries), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HarImportFilter,
    ::testing::Values(
        FilterCase{"socket_zero", [](Entry& e) { e.connection_id = 0; },
                   &ImportStats::socket_zero},
        FilterCase{"missing_conn", [](Entry& e) { e.connection_id = -1; },
                   &ImportStats::missing_ip},
        FilterCase{"missing_ip", [](Entry& e) { e.server_ip.clear(); },
                   &ImportStats::missing_ip},
        FilterCase{"bad_ip", [](Entry& e) { e.server_ip = "not-an-ip"; },
                   &ImportStats::missing_ip},
        FilterCase{"invalid_method", [](Entry& e) { e.method = "0"; },
                   &ImportStats::invalid_method},
        FilterCase{"invalid_version",
                   [](Entry& e) { e.http_version = "unknown"; },
                   &ImportStats::invalid_version},
        FilterCase{"invalid_status", [](Entry& e) { e.status = 0; },
                   &ImportStats::invalid_status},
        FilterCase{"wrong_pageref", [](Entry& e) { e.pageref = "page_2"; },
                   &ImportStats::wrong_pageref},
        FilterCase{"missing_request_id",
                   [](Entry& e) { e.request_id.clear(); },
                   &ImportStats::missing_request_id},
        FilterCase{"missing_cert",
                   [](Entry& e) {
                     e.has_security_details = false;
                     e.san_list.clear();
                   },
                   &ImportStats::missing_certificate},
        FilterCase{"h1", [](Entry& e) { e.http_version = "http/1.1"; },
                   &ImportStats::h1_entries},
        FilterCase{"h3", [](Entry& e) { e.http_version = "h3"; },
                   &ImportStats::h3_entries}),
    [](const auto& test_info) {
      return std::string(test_info.param.name);
    });

TEST(HarImport, InconsistentIpWithinConnectionDropsRequest) {
  Log log;
  log.page.url = "https://x";
  log.entries.push_back(h2_entry(11, "https://a.example.com/", 0, "10.0.0.1"));
  log.entries.push_back(h2_entry(11, "https://a.example.com/b", 10, "10.0.0.9"));
  ImportStats stats;
  const auto site = import_site(log, &stats);
  EXPECT_EQ(stats.inconsistent_ip, 1u);
  ASSERT_EQ(site.connections.size(), 1u);
  EXPECT_EQ(site.connections[0].requests.size(), 1u);
}

TEST(HarImport, Status421PopulatesExclusions) {
  Log log;
  log.page.url = "https://x";
  Entry misdirected = h2_entry(11, "https://alias.example.com/", 0);
  misdirected.status = 421;
  log.entries.push_back(misdirected);
  const auto site = import_site(log, nullptr);
  ASSERT_EQ(site.connections.size(), 1u);
  EXPECT_TRUE(site.connections[0].excludes("alias.example.com"));
}

TEST(HarImportStats, Accumulate) {
  ImportStats a;
  a.total_entries = 5;
  a.socket_zero = 2;
  ImportStats b;
  b.total_entries = 3;
  b.socket_zero = 1;
  a.add(b);
  EXPECT_EQ(a.total_entries, 8u);
  EXPECT_EQ(a.socket_zero, 3u);
}

TEST(HarMultiPage, SplitAssignsEntriesByPageref) {
  Log log;
  log.page = {"page_1", "https://one.example", 0};
  log.extra_pages.push_back({"page_2", "https://two.example", 5000});
  Entry first = h2_entry(11, "https://one.example/", 0);
  Entry second = h2_entry(12, "https://two.example/", 5000, "10.0.0.2");
  second.pageref = "page_2";
  Entry orphan = h2_entry(13, "https://lost.example/", 10, "10.0.0.3");
  orphan.pageref = "page_99";
  log.entries = {first, second, orphan};

  const auto pages = split_pages(log);
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0].page.url, "https://one.example");
  EXPECT_EQ(pages[0].entries.size(), 2u);  // own entry + orphan
  EXPECT_EQ(pages[1].entries.size(), 1u);
  EXPECT_EQ(pages[1].entries[0].url, "https://two.example/");

  // Importing the primary page drops the orphan via the pageref filter.
  ImportStats stats;
  const auto site = import_site(pages[0], &stats);
  EXPECT_EQ(stats.wrong_pageref, 1u);
  EXPECT_EQ(site.connections.size(), 1u);
  // The second page imports cleanly against its own page id.
  ImportStats stats2;
  const auto site2 = import_site(pages[1], &stats2);
  EXPECT_EQ(stats2.dropped(), 0u);
  EXPECT_EQ(site2.site_url, "https://two.example");
}

TEST(HarMultiPage, JsonRoundTripKeepsAllPages) {
  Log log;
  log.page = {"page_1", "https://one.example", 0};
  log.extra_pages.push_back({"page_2", "https://two.example", 5000});
  log.entries.push_back(h2_entry(11, "https://one.example/", 0));
  const auto parsed = parse(to_string(log));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->extra_pages.size(), 1u);
  EXPECT_EQ(parsed->extra_pages[0].id, "page_2");
  EXPECT_EQ(parsed->all_pages().size(), 2u);
}

// ----------------------------------------------------------------- export

core::SiteObservation sample_observation() {
  core::SiteObservation site;
  site.site_url = "https://www.example.com";
  core::ConnectionRecord rec;
  rec.id = 1;
  rec.endpoint =
      net::Endpoint{net::IpAddress::parse("10.0.0.1").value(), 443};
  rec.initial_domain = "www.example.com";
  rec.san_dns_names = {"*.example.com"};
  rec.issuer_organization = "Test CA";
  rec.has_certificate = true;
  rec.opened_at = 0;
  core::RequestRecord req;
  req.started_at = 0;
  req.finished_at = 40;
  req.domain = "www.example.com";
  rec.requests.push_back(req);
  site.connections.push_back(rec);
  return site;
}

TEST(HarExport, CleanExportReimportsLosslessly) {
  util::Rng rng{1};
  const Log log =
      export_site(sample_observation(), {}, ExportQuirks::none(), rng);
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_EQ(log.entries[0].http_version, "h2");
  ImportStats stats;
  const auto site = import_site(log, &stats);
  EXPECT_EQ(stats.dropped(), 0u);
  ASSERT_EQ(site.connections.size(), 1u);
  EXPECT_EQ(site.connections[0].initial_domain, "www.example.com");
  EXPECT_EQ(site.connections[0].san_dns_names,
            std::vector<std::string>{"*.example.com"});
}

TEST(HarExport, H1EntriesAreAppendedAndFiltered) {
  util::Rng rng{1};
  Entry h1;
  h1.url = "https://legacy.example.org/";
  h1.http_version = "http/1.1";
  h1.started = 5;
  h1.request_id = "h1-1";
  h1.connection_id = 1000;
  const Log log = export_site(sample_observation(), std::vector<Entry>{h1},
                              ExportQuirks::none(), rng);
  EXPECT_EQ(log.entries.size(), 2u);
  ImportStats stats;
  const auto site = import_site(log, &stats);
  EXPECT_EQ(stats.h1_entries, 1u);
  EXPECT_EQ(site.connections.size(), 1u);
}

TEST(HarExport, QuirksDegradeEntriesAtConfiguredRate) {
  // With p_invalid_method = 1 every entry must be dropped by the importer.
  ExportQuirks quirks = ExportQuirks::none();
  quirks.p_invalid_method = 1.0;
  util::Rng rng{2};
  const Log log = export_site(sample_observation(), {}, quirks, rng);
  ImportStats stats;
  const auto site = import_site(log, &stats);
  EXPECT_EQ(stats.invalid_method, 1u);
  EXPECT_TRUE(site.connections.empty());
}

TEST(HarExport, H3QuirkProducesSocketZero) {
  ExportQuirks quirks = ExportQuirks::none();
  quirks.p_h3 = 1.0;
  util::Rng rng{3};
  const Log log = export_site(sample_observation(), {}, quirks, rng);
  EXPECT_EQ(log.entries[0].http_version, "h3");
  EXPECT_EQ(log.entries[0].connection_id, 0);
  ImportStats stats;
  import_site(log, &stats);
  EXPECT_EQ(stats.h3_entries, 1u);
}

TEST(HarExport, EntriesSortedByStartTime) {
  core::SiteObservation site = sample_observation();
  core::ConnectionRecord late = site.connections[0];
  late.id = 2;
  late.opened_at = 100;
  late.requests[0].started_at = 100;
  late.requests[0].domain = "late.example.com";
  core::ConnectionRecord early = site.connections[0];
  early.id = 3;
  early.opened_at = 100;
  early.requests[0].started_at = 1;  // earlier request on later connection
  site.connections.push_back(late);
  site.connections.push_back(early);
  util::Rng rng{4};
  const Log log = export_site(site, {}, ExportQuirks::none(), rng);
  for (std::size_t i = 1; i < log.entries.size(); ++i) {
    EXPECT_LE(log.entries[i - 1].started, log.entries[i].started);
  }
}

}  // namespace
}  // namespace h2r::har
