// Shared RAII guard for environment-variable tests.
//
// env_test.cpp and fault_injection_test.cpp used to carry near-identical
// copies of this scaffolding (the env_test copy could unset, the fault
// copy could not); config_test-style suites need it too whenever they
// drive a *_from_env path. One audited copy lives here instead.
//
// This is test scaffolding, so it is allowed to touch the raw
// environment — that is the entire point: it sets up the process state
// that the strict parsers in src/util/env.hpp are then tested against.
// h2r-lint: allow-file(env.getenv) -- test scaffolding must read and
// mutate the raw environment to exercise the util::env_* parsers.
#pragma once

#include <cstdlib>
#include <string>

namespace h2r::testing {

/// Sets (or, with nullptr, unsets) an env var for one scope and restores
/// the previous state on exit. Guards nest: destroy in reverse order of
/// construction (automatic with block scoping).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

}  // namespace h2r::testing
