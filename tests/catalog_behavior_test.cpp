// End-to-end checks that every named catalog service produces exactly the
// redundancy cause the paper attributes to it. Each test builds a minimal
// page embedding ONE service, loads it through the Chromium-model browser
// from the Aachen vantage, and classifies the result.
#include <gtest/gtest.h>

#include "browser/browser.hpp"
#include "core/classify.hpp"
#include "dns/vantage.hpp"
#include "web/catalog.hpp"
#include "web/ecosystem.hpp"

namespace h2r {
namespace {

class CatalogBehavior : public ::testing::Test {
 protected:
  CatalogBehavior() : eco_(42), catalog_(eco_, 42), rng_(12345) {
    // A neutral first-party site to host the embeds.
    web::ClusterSpec site;
    site.operator_name = "host-site";
    site.as_name = "OVH";
    site.ip_count = 1;
    site.certs = {{"Let's Encrypt", {"www.host-site.example"}}};
    web::DomainSpec www;
    www.name = "www.host-site.example";
    site.domains.push_back(www);
    eco_.add_cluster(site);
  }

  core::SiteClassification load_and_classify(
      std::vector<web::Resource> embeds,
      util::SimTime when = util::days(1)) {
    web::Website site;
    site.url = "https://www.host-site.example";
    site.landing_domain = "www.host-site.example";
    site.resources = std::move(embeds);
    dns::RecursiveResolver resolver{dns::standard_vantage_points()[0],
                                    &eco_.authority()};
    browser::Browser chrome{eco_, resolver, browser::BrowserOptions{}, 3};
    last_page_ = chrome.load(site, when);
    return core::classify_site(last_page_.observation,
                               {core::DurationModel::kEndless});
  }

  /// Causes attached to connections whose initial domain is `domain`.
  std::set<core::Cause> causes_for(const core::SiteClassification& cls,
                                   std::string_view domain) {
    std::set<core::Cause> out;
    for (const auto& finding : cls.findings) {
      const auto& conn =
          last_page_.observation.connections[finding.connection_index];
      if (conn.initial_domain == domain) {
        out.insert(finding.causes.begin(), finding.causes.end());
      }
    }
    return out;
  }

  web::Ecosystem eco_;
  web::ServiceCatalog catalog_;
  util::Rng rng_;
  browser::PageLoadResult last_page_;
};

TEST_F(CatalogBehavior, TagManagerChainIsAlwaysIpRedundant) {
  // GT and GA pools are disjoint: whenever the chain loads, the GA
  // connection is IP-redundant to GT's (Table 2 #1). Sample several
  // builds to cover the direct-GA variant (no redundancy, single conn).
  int chains = 0;
  for (int i = 0; i < 20; ++i) {
    const auto cls = load_and_classify({catalog_.google_tag_manager(rng_)},
                                       util::days(1) + util::minutes(11 * i));
    const auto causes = causes_for(cls, "www.google-analytics.com");
    bool had_gtm = false;
    for (const auto& conn : last_page_.observation.connections) {
      had_gtm |= conn.initial_domain == "www.googletagmanager.com";
    }
    if (!had_gtm) continue;  // direct analytics.js include
    ++chains;
    EXPECT_TRUE(causes.count(core::Cause::kIp) > 0);
  }
  EXPECT_GT(chains, 5);
}

TEST_F(CatalogBehavior, FacebookPixelIsIpRedundant) {
  const auto cls = load_and_classify({catalog_.facebook_pixel(rng_)});
  const auto causes = causes_for(cls, "www.facebook.com");
  EXPECT_EQ(causes, std::set<core::Cause>{core::Cause::kIp});
}

TEST_F(CatalogBehavior, KlaviyoIsCertRedundant) {
  const auto cls = load_and_classify({catalog_.klaviyo(rng_)});
  const auto causes = causes_for(cls, "fast.a.klaviyo.com");
  EXPECT_EQ(causes, std::set<core::Cause>{core::Cause::kCert});
}

TEST_F(CatalogBehavior, SquarespaceIsCertRedundant) {
  const auto cls = load_and_classify({catalog_.squarespace_assets(rng_)});
  EXPECT_EQ(causes_for(cls, "images.squarespace-cdn.com"),
            std::set<core::Cause>{core::Cause::kCert});
}

TEST_F(CatalogBehavior, UnrulySyncIsCertRedundant) {
  const auto cls = load_and_classify({catalog_.unruly_sync(rng_)});
  EXPECT_EQ(causes_for(cls, "sync.targeting.unrulymedia.com"),
            std::set<core::Cause>{core::Cause::kCert});
}

TEST_F(CatalogBehavior, HotjarModulesAreIpRedundant) {
  const auto cls = load_and_classify({catalog_.hotjar(rng_)});
  // script/vars/in live on separate CloudFront distributions covered by
  // one *.hotjar.com certificate.
  EXPECT_TRUE(causes_for(cls, "script.hotjar.com")
                  .count(core::Cause::kIp) > 0);
  EXPECT_TRUE(causes_for(cls, "vars.hotjar.com").count(core::Cause::kIp) >
              0);
}

TEST_F(CatalogBehavior, WordpressStatsAreIpRedundant) {
  const auto cls = load_and_classify({catalog_.wordpress_stats(rng_)});
  EXPECT_TRUE(causes_for(cls, "stats.wp.com").count(core::Cause::kIp) > 0);
}

TEST_F(CatalogBehavior, FaultyPreconnectIsCredSameDomain) {
  // Sample until the faulty-preconnect variant includes the preconnect.
  const auto embeds = catalog_.google_fonts(rng_, /*faulty_preconnect=*/true);
  const auto cls = load_and_classify(embeds);
  const auto causes = causes_for(cls, "fonts.gstatic.com");
  EXPECT_TRUE(causes.count(core::Cause::kCred) > 0);
}

TEST_F(CatalogBehavior, CleanUtilitiesAreNeverRedundant) {
  const auto cls = load_and_classify({
      catalog_.js_cdn(rng_),
      catalog_.cookie_consent(rng_),
      catalog_.cloudflare_insights(rng_),
  });
  EXPECT_TRUE(cls.findings.empty());
}

TEST_F(CatalogBehavior, GenericPatternsMatchTheirDesign) {
  for (const auto& service : catalog_.generic_services()) {
    if (service.pattern == web::GenericPattern::kClean) {
      const auto cls =
          load_and_classify(catalog_.generic_embed(service, rng_));
      EXPECT_TRUE(cls.findings.empty()) << service.name;
      break;
    }
  }
  for (const auto& service : catalog_.generic_services()) {
    if (service.pattern == web::GenericPattern::kCertSharded) {
      const auto cls =
          load_and_classify(catalog_.generic_embed(service, rng_));
      EXPECT_TRUE(cls.has_cause(core::Cause::kCert)) << service.name;
      break;
    }
  }
  for (const auto& service : catalog_.generic_services()) {
    if (service.pattern == web::GenericPattern::kCredMix) {
      const auto cls =
          load_and_classify(catalog_.generic_embed(service, rng_));
      EXPECT_TRUE(cls.has_cause(core::Cause::kCred)) << service.name;
      break;
    }
  }
}

TEST_F(CatalogBehavior, GoogleAdsChainProducesIpRedundancy) {
  // The ads constellation always has covering-cert pairs on rotating
  // pools; over a few variants at least one IP-redundant conn appears.
  bool any_ip = false;
  for (int i = 0; i < 5 && !any_ip; ++i) {
    const auto cls = load_and_classify({catalog_.google_ads(rng_)},
                                       util::days(1) + util::minutes(7 * i));
    any_ip = cls.has_cause(core::Cause::kIp);
  }
  EXPECT_TRUE(any_ip);
}

TEST_F(CatalogBehavior, GeoVariantFollowsVantage) {
  // google_apis pings www.google.com; from the EU vantage it must hit
  // www.google.de instead (Table 2's rank flip).
  web::Website site;
  site.url = "https://www.host-site.example";
  site.landing_domain = "www.host-site.example";
  site.resources = {catalog_.google_apis(rng_)};

  dns::RecursiveResolver resolver{dns::standard_vantage_points()[0],
                                  &eco_.authority()};
  browser::BrowserOptions eu;
  eu.vantage_region = "eu";
  browser::Browser chrome_eu{eco_, resolver, eu, 3};
  const auto page_eu = chrome_eu.load(site, util::days(1));
  bool saw_de = false;
  bool saw_com = false;
  for (const auto& conn : page_eu.observation.connections) {
    for (const auto& req : conn.requests) {
      saw_de |= req.domain == "www.google.de";
      saw_com |= req.domain == "www.google.com";
    }
  }
  EXPECT_TRUE(saw_de);
  EXPECT_FALSE(saw_com);

  browser::BrowserOptions us;
  us.vantage_region = "us";
  browser::Browser chrome_us{eco_, resolver, us, 3};
  const auto page_us = chrome_us.load(site, util::days(1));
  saw_de = false;
  saw_com = false;
  for (const auto& conn : page_us.observation.connections) {
    for (const auto& req : conn.requests) {
      saw_de |= req.domain == "www.google.de";
      saw_com |= req.domain == "www.google.com";
    }
  }
  EXPECT_FALSE(saw_de);
  EXPECT_TRUE(saw_com);
}

}  // namespace
}  // namespace h2r
