#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/clock.hpp"
#include "util/expected.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace h2r::util {
namespace {

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformCoversFullRange) {
  Rng rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformSingleValue) {
  Rng rng{7};
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng{3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng{5};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng base{42};
  Rng fork1 = base.fork("alpha");
  Rng fork2 = base.fork("alpha");
  Rng fork3 = base.fork("beta");
  EXPECT_EQ(fork1.next(), fork2.next());
  EXPECT_NE(fork1.next(), fork3.next());
}

TEST(Rng, WeightedSelectsOnlyPositiveWeights) {
  Rng rng{9};
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weighted(weights), 1u);
  }
}

TEST(Rng, WeightedDistributionRoughlyProportional) {
  Rng rng{10};
  const std::vector<double> weights = {1.0, 3.0};
  int second = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted(weights) == 1) ++second;
  }
  EXPECT_NEAR(static_cast<double>(second) / n, 0.75, 0.02);
}

TEST(Rng, EscalatingRespectsBounds) {
  Rng rng{12};
  for (int i = 0; i < 1000; ++i) {
    const std::size_t k = rng.escalating(2, 0.5, 6);
    EXPECT_GE(k, 2u);
    EXPECT_LE(k, 6u);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{13};
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(HashSeed, SensitiveToNameAndBase) {
  EXPECT_NE(hash_seed(1, "a"), hash_seed(1, "b"));
  EXPECT_NE(hash_seed(1, "a"), hash_seed(2, "a"));
  EXPECT_EQ(hash_seed(1, "a"), hash_seed(1, "a"));
}

TEST(ZipfSampler, HeadIsMoreLikelyThanTail) {
  ZipfSampler zipf{100, 1.0};
  Rng rng{14};
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], 5 * std::max(counts[99], 1));
}

TEST(ZipfSampler, AllRanksInRange) {
  ZipfSampler zipf{10, 0.8};
  Rng rng{15};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.sample(rng), 10u);
  }
}

// ----------------------------------------------------------------- clock

TEST(SimClock, AdvanceAndAdvanceTo) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(seconds(3));
  EXPECT_EQ(clock.now(), 3000);
  clock.advance_to(2000);  // backwards: no-op
  EXPECT_EQ(clock.now(), 3000);
  clock.advance_to(5000);
  EXPECT_EQ(clock.now(), 5000);
}

TEST(SimTime, UnitHelpers) {
  EXPECT_EQ(seconds(1), 1000);
  EXPECT_EQ(minutes(2), 120000);
  EXPECT_EQ(hours(1), 3600000);
  EXPECT_EQ(days(1), 86400000);
}

// --------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleToken) {
  const auto parts = split("abc", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("WWW.Example.COM"), "www.example.com");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n x"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foobar", "bar"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("foobar", "foo"));
  EXPECT_FALSE(ends_with("x", "xx"));
}

TEST(Strings, BaseDomain) {
  EXPECT_EQ(base_domain("www.google-analytics.com"), "google-analytics.com");
  EXPECT_EQ(base_domain("a.b.c.example.org"), "example.org");
  EXPECT_EQ(base_domain("example.org"), "example.org");
  EXPECT_EQ(base_domain("localhost"), "localhost");
}

// ---------------------------------------------------------------- format

TEST(Format, HumanCount) {
  EXPECT_EQ(human_count(0), "0");
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(1000), "1.00 k");
  EXPECT_EQ(human_count(52310), "52.31 k");
  EXPECT_EQ(human_count(2250000), "2.25 M");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(76, 100), "76 %");
  EXPECT_EQ(percent(1, 3), "33 %");
  EXPECT_EQ(percent(1, 0), "- %");
}

TEST(Format, SecondsStr) {
  EXPECT_EQ(seconds_str(122200), "122.2s");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

// -------------------------------------------------------------- Expected

TEST(Expected, HoldsValue) {
  Expected<int> e{42};
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e = unexpected(Error{"boom", 3});
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().message, "boom");
  EXPECT_EQ(e.error().offset, 3u);
  EXPECT_EQ(e.value_or(7), 7);
}

}  // namespace
}  // namespace h2r::util
