#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "experiments/perf_model.hpp"
#include "experiments/study.hpp"

namespace h2r::experiments {
namespace {

StudyConfig tiny_config() {
  StudyConfig config;
  config.har_sites = 150;
  config.alexa_sites = 80;
  config.har_first_rank = 40;
  config.seed = 77;
  return config;
}

class StudyTest : public ::testing::Test {
 protected:
  static const StudyResults& results() {
    static const StudyResults r = run_study(tiny_config());
    return r;
  }
};

TEST_F(StudyTest, PopulationsAreVisited) {
  EXPECT_GT(results().alexa_exact.h2_sites, 50u);
  EXPECT_GT(results().har_endless.h2_sites, 100u);
  EXPECT_GT(results().alexa_exact.total_connections,
            results().alexa_exact.h2_sites);
}

TEST_F(StudyTest, PatchedRunHasZeroCred) {
  // §5.3.3: "the CRED cases vanish completely".
  const auto it = results().nofetch_exact.by_cause.find(core::Cause::kCred);
  if (it != results().nofetch_exact.by_cause.end()) {
    EXPECT_EQ(it->second.connections, 0u);
    EXPECT_EQ(it->second.sites, 0u);
  }
}

TEST_F(StudyTest, PatchedRunReducesTotalRedundancy) {
  EXPECT_LT(results().nofetch_exact.redundant_connections,
            results().alexa_exact.redundant_connections);
  EXPECT_LT(results().nofetch_exact.total_connections,
            results().alexa_exact.total_connections);
}

TEST_F(StudyTest, FetchRunHasSubstantialCred) {
  EXPECT_GT(results().alexa_exact.by_cause.at(core::Cause::kCred).sites, 0u);
}

TEST_F(StudyTest, ImmediateModelBoundsEndlessModel) {
  // Immediate closes connections earlier -> strictly fewer (or equal)
  // redundancies than endless, on the same crawl.
  EXPECT_LE(results().har_immediate.redundant_connections,
            results().har_endless.redundant_connections);
  EXPECT_LE(results().har_immediate.redundant_sites,
            results().har_endless.redundant_sites);
  EXPECT_EQ(results().har_immediate.total_connections,
            results().har_endless.total_connections);
}

TEST_F(StudyTest, IpDominatesConnectionwise) {
  // The paper's headline ordering: IP > CRED > CERT by connections.
  const auto& by_cause = results().alexa_exact.by_cause;
  EXPECT_GT(by_cause.at(core::Cause::kIp).connections,
            by_cause.at(core::Cause::kCred).connections);
  EXPECT_GT(by_cause.at(core::Cause::kCred).connections,
            by_cause.at(core::Cause::kCert).connections);
}

TEST_F(StudyTest, HarPipelineFiltersRequests) {
  EXPECT_GT(results().har_summary.har_stats.dropped(), 0u);
  EXPECT_GT(results().har_summary.har_stats.invalid_method, 0u);
  EXPECT_GT(results().har_summary.har_stats.h3_entries, 0u);
}

TEST_F(StudyTest, OverlapDatasetsCoverSameSites) {
  EXPECT_GT(results().overlap_sites, 0u);
  EXPECT_LE(results().overlap_har_endless.h2_sites,
            results().overlap_sites);
  // The HAR pipeline loses requests on the same sites; the NetLog side
  // must see at least as many connections (§A.3).
  EXPECT_GE(results().overlap_alexa_endless.total_connections,
            results().overlap_har_endless.total_connections);
}

TEST_F(StudyTest, GoogleAnalyticsTopsIpAttribution) {
  const auto top = core::top_k(results().alexa_exact.ip_origins, 3);
  ASSERT_FALSE(top.empty());
  bool ga_in_top3 = false;
  for (const auto& [origin, tally] : top) {
    (void)tally;
    if (origin == "www.google-analytics.com") ga_in_top3 = true;
  }
  EXPECT_TRUE(ga_in_top3);
}

TEST_F(StudyTest, SomeConnectionsCloseWithPlausibleLifetime) {
  EXPECT_GT(results().alexa_exact.closed_connections, 0u);
  const auto median = results().alexa_exact.median_closed_lifetime();
  ASSERT_TRUE(median.has_value());
  EXPECT_GT(*median, util::seconds(30));
  EXPECT_LT(*median, util::seconds(300));
}

TEST(StudyConfigTest, EnvOverrides) {
  setenv("H2R_HAR_SITES", "123", 1);
  setenv("H2R_ALEXA_SITES", "45", 1);
  setenv("H2R_SEED", "9", 1);
  const StudyConfig config = StudyConfig::from_env();
  EXPECT_EQ(config.har_sites, 123u);
  EXPECT_EQ(config.alexa_sites, 45u);
  EXPECT_EQ(config.seed, 9u);
  unsetenv("H2R_HAR_SITES");
  unsetenv("H2R_ALEXA_SITES");
  unsetenv("H2R_SEED");
  const StudyConfig defaults = StudyConfig::from_env();
  EXPECT_NE(defaults.har_sites, 123u);
}

TEST(StudyConfigTest, ThreadsEnvIsValidatedAndClamped) {
  // Regression: H2R_THREADS used to be trusted verbatim; garbage, zero,
  // negative and absurd values must now fall back / clamp to
  // hardware_concurrency so a bad env can't spawn 10k workers.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned fallback = StudyConfig{}.threads;
  auto threads_for = [](const char* value) {
    setenv("H2R_THREADS", value, 1);
    const unsigned threads = StudyConfig::from_env().threads;
    unsetenv("H2R_THREADS");
    return threads;
  };
  EXPECT_EQ(threads_for("0"), fallback);
  EXPECT_EQ(threads_for("-4"), fallback);
  EXPECT_EQ(threads_for("abc"), fallback);
  EXPECT_EQ(threads_for(""), fallback);
  EXPECT_EQ(threads_for("2"), std::min(2u, hw));
  EXPECT_EQ(threads_for("1000000"), hw);
  unsetenv("H2R_THREADS");
  EXPECT_EQ(StudyConfig::from_env().threads, fallback);
}

TEST(SharedStudy, CachesByConfig) {
  StudyConfig config = tiny_config();
  config.har_sites = 30;
  config.alexa_sites = 20;
  config.har_first_rank = 10;
  const StudyResults& a = shared_study(config);
  const StudyResults& b = shared_study(config);
  EXPECT_EQ(&a, &b);
}

// ----------------------------------------------------------- perf model

TEST(PerfModel, CleanLinkFavorsSingleConnection) {
  PerfParams params;
  params.loss_rate = 0.0;
  const double one = page_fetch_time_ms(1500 * 1024, 1, params);
  const double eight = page_fetch_time_ms(1500 * 1024, 8, params);
  EXPECT_LT(one, eight * 1.05);  // 1 conn at least as good
}

TEST(PerfModel, HighLossFavorsMultipleConnections) {
  PerfParams params;
  params.loss_rate = 0.05;
  params.seed = 3;
  const double one = page_fetch_time_ms(1500 * 1024, 1, params);
  const double eight = page_fetch_time_ms(1500 * 1024, 8, params);
  EXPECT_GT(one, eight);  // the Goel/Manzoor crossover
}

TEST(PerfModel, DeterministicForSeed) {
  PerfParams params;
  params.loss_rate = 0.02;
  EXPECT_EQ(page_fetch_time_ms(1000000, 4, params),
            page_fetch_time_ms(1000000, 4, params));
}

TEST(PerfModel, MoreBytesTakeLonger) {
  PerfParams params;
  EXPECT_LT(page_fetch_time_ms(100 * 1024, 1, params),
            page_fetch_time_ms(5000 * 1024, 1, params));
}

TEST(PerfModel, HandshakeCostScalesWithRtts) {
  PerfParams fast;
  fast.handshake_rtts = 1.0;
  PerfParams slow;
  slow.handshake_rtts = 3.0;
  EXPECT_LT(page_fetch_time_ms(100 * 1024, 1, fast),
            page_fetch_time_ms(100 * 1024, 1, slow));
}

TEST(PerfModel, CubicRecoversFasterUnderLoss) {
  PerfParams reno;
  reno.loss_rate = 0.02;
  reno.seed = 5;
  PerfParams cubic = reno;
  cubic.algorithm = CcAlgorithm::kCubicLike;
  const double reno_time = page_fetch_time_ms(1500 * 1024, 1, reno);
  const double cubic_time = page_fetch_time_ms(1500 * 1024, 1, cubic);
  EXPECT_LT(cubic_time, reno_time);
}

TEST(PerfModel, CubicShrinksMultiConnectionAdvantage) {
  PerfParams reno;
  reno.loss_rate = 0.02;
  reno.seed = 7;
  PerfParams cubic = reno;
  cubic.algorithm = CcAlgorithm::kCubicLike;
  const double reno_gap = page_fetch_time_ms(1500 * 1024, 1, reno) /
                          page_fetch_time_ms(1500 * 1024, 8, reno);
  const double cubic_gap = page_fetch_time_ms(1500 * 1024, 1, cubic) /
                           page_fetch_time_ms(1500 * 1024, 8, cubic);
  EXPECT_LT(cubic_gap, reno_gap);
}

TEST(PerfModel, HpackBytesGrowWithConnectionSplit) {
  // The Marx et al. effect: every extra connection bootstraps its own
  // dictionary.
  const auto workload = make_header_workload(96, 4);
  const auto one = hpack_bytes(workload, 1);
  const auto four = hpack_bytes(workload, 4);
  const auto eight = hpack_bytes(workload, 8);
  EXPECT_LT(one, four);
  EXPECT_LE(four, eight);
}

TEST(PerfModel, HeaderWorkloadShape) {
  const auto workload = make_header_workload(10, 3);
  ASSERT_EQ(workload.size(), 10u);
  for (const auto& headers : workload) {
    bool has_authority = false;
    bool has_cookie = false;
    for (const auto& field : headers) {
      has_authority |= field.name == ":authority";
      has_cookie |= field.name == "cookie";
    }
    EXPECT_TRUE(has_authority);
    EXPECT_TRUE(has_cookie);
  }
}

}  // namespace
}  // namespace h2r::experiments
