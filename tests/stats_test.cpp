#include <gtest/gtest.h>

#include "stats/distribution.hpp"
#include "stats/table.hpp"

namespace h2r::stats {
namespace {

TEST(Ccdf, EmptyHistogram) {
  EXPECT_TRUE(ccdf({}).empty());
}

TEST(Ccdf, SharesAreComplementaryCumulative) {
  // 4 sites: 0, 0, 2, 5 redundant connections.
  std::map<std::size_t, std::uint64_t> hist = {{0, 2}, {2, 1}, {5, 1}};
  const auto points = ccdf(hist);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].value, 0u);
  EXPECT_DOUBLE_EQ(points[0].share, 1.0);
  EXPECT_EQ(points[1].value, 2u);
  EXPECT_DOUBLE_EQ(points[1].share, 0.5);
  EXPECT_EQ(points[2].value, 5u);
  EXPECT_DOUBLE_EQ(points[2].share, 0.25);
}

TEST(Ccdf, CountsMatchShares) {
  std::map<std::size_t, std::uint64_t> hist = {{1, 3}, {4, 1}};
  const auto points = ccdf(hist);
  EXPECT_EQ(points[0].count, 4u);
  EXPECT_EQ(points[1].count, 1u);
}

TEST(ValueAtShare, PaperMedianReadings) {
  // "around 50% of all sites open at least two redundant connections"
  std::map<std::size_t, std::uint64_t> hist = {{0, 3}, {1, 2}, {2, 3}, {9, 2}};
  EXPECT_EQ(value_at_share(hist, 0.5), 2u);
  EXPECT_EQ(value_at_share(hist, 0.2), 9u);
  EXPECT_EQ(value_at_share(hist, 1.0), 0u);
}

TEST(Quantile, NearestRank) {
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(quantile(v, 0.5), 6);
  EXPECT_EQ(quantile(v, 0.0), 1);
  EXPECT_EQ(quantile(v, 0.99), 10);
  EXPECT_EQ(quantile(std::vector<int>{}, 0.5), 0);
}

TEST(CcdfCsv, RendersHeaderAndRows) {
  std::map<std::size_t, std::uint64_t> hist = {{0, 2}, {3, 2}};
  const std::string csv = ccdf_to_csv(hist);
  EXPECT_NE(csv.find("value,share,count\n"), std::string::npos);
  EXPECT_NE(csv.find("0,1.000000,4"), std::string::npos);
  EXPECT_NE(csv.find("3,0.500000,2"), std::string::npos);
}

TEST(Spearman, PerfectAgreementAndInversion) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> up = {10, 20, 30, 40, 50};
  const std::vector<double> down = {50, 40, 30, 20, 10};
  EXPECT_NEAR(spearman(a, up), 1.0, 1e-9);
  EXPECT_NEAR(spearman(a, down), -1.0, 1e-9);
}

TEST(Spearman, HandlesTiesAndDegenerateInputs) {
  EXPECT_EQ(spearman({1}, {2}), 0.0);
  EXPECT_EQ(spearman({}, {}), 0.0);
  EXPECT_EQ(spearman({1, 1, 1}, {2, 3, 4}), 0.0);  // zero variance in a
  const std::vector<double> a = {1, 2, 2, 4};
  const std::vector<double> b = {1, 3, 3, 9};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-9);  // monotone with ties
}

TEST(Spearman, PartialAgreement) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 1, 3, 4};  // one swap
  const double rho = spearman(a, b);
  EXPECT_GT(rho, 0.5);
  EXPECT_LT(rho, 1.0);
}

TEST(Table, RendersHeadersAndRows) {
  Table t({"Name", "Count"});
  t.add_row({"alpha", "10"});
  t.add_row({"b", "2"});
  const std::string out = t.render("Demo");
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Right-aligned numeric column (width of header "Count" = 5).
  EXPECT_NE(out.find("|    10"), std::string::npos);
  EXPECT_NE(out.find("|     2"), std::string::npos);
}

TEST(Table, MissingAndExtraCells) {
  Table t({"A", "B"});
  t.add_row({"only-a"});
  t.add_row({"a", "b", "dropped"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string out = t.render();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
}

TEST(Table, SeparatorRows) {
  Table t({"ABC"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  const std::string out = t.render();
  // Header rule + separator -> at least two dashed lines.
  std::size_t dashes = 0;
  for (std::size_t pos = out.find("--"); pos != std::string::npos;
       pos = out.find("--", pos + 2)) {
    ++dashes;
  }
  EXPECT_GE(dashes, 2u);
}

TEST(Table, FirstColumnLeftAligned) {
  Table t({"Origin", "Conns"}, {Align::kLeft});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a          "), std::string::npos);
}

}  // namespace
}  // namespace h2r::stats
