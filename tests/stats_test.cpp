#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "stats/distribution.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

namespace h2r::stats {
namespace {

TEST(Ccdf, EmptyHistogram) {
  EXPECT_TRUE(ccdf({}).empty());
}

TEST(Ccdf, SharesAreComplementaryCumulative) {
  // 4 sites: 0, 0, 2, 5 redundant connections.
  std::map<std::size_t, std::uint64_t> hist = {{0, 2}, {2, 1}, {5, 1}};
  const auto points = ccdf(hist);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].value, 0u);
  EXPECT_DOUBLE_EQ(points[0].share, 1.0);
  EXPECT_EQ(points[1].value, 2u);
  EXPECT_DOUBLE_EQ(points[1].share, 0.5);
  EXPECT_EQ(points[2].value, 5u);
  EXPECT_DOUBLE_EQ(points[2].share, 0.25);
}

TEST(Ccdf, CountsMatchShares) {
  std::map<std::size_t, std::uint64_t> hist = {{1, 3}, {4, 1}};
  const auto points = ccdf(hist);
  EXPECT_EQ(points[0].count, 4u);
  EXPECT_EQ(points[1].count, 1u);
}

TEST(ValueAtShare, PaperMedianReadings) {
  // "around 50% of all sites open at least two redundant connections"
  std::map<std::size_t, std::uint64_t> hist = {{0, 3}, {1, 2}, {2, 3}, {9, 2}};
  EXPECT_EQ(value_at_share(hist, 0.5), 2u);
  EXPECT_EQ(value_at_share(hist, 0.2), 9u);
  EXPECT_EQ(value_at_share(hist, 1.0), 0u);
}

TEST(Quantile, NearestRank) {
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(quantile(v, 0.5), 6);
  EXPECT_EQ(quantile(v, 0.0), 1);
  EXPECT_EQ(quantile(v, 0.99), 10);
  EXPECT_EQ(quantile(std::vector<int>{}, 0.5), 0);
}

TEST(CcdfCsv, RendersHeaderAndRows) {
  std::map<std::size_t, std::uint64_t> hist = {{0, 2}, {3, 2}};
  const std::string csv = ccdf_to_csv(hist);
  EXPECT_NE(csv.find("value,share,count\n"), std::string::npos);
  EXPECT_NE(csv.find("0,1.000000,4"), std::string::npos);
  EXPECT_NE(csv.find("3,0.500000,2"), std::string::npos);
}

TEST(Spearman, PerfectAgreementAndInversion) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> up = {10, 20, 30, 40, 50};
  const std::vector<double> down = {50, 40, 30, 20, 10};
  EXPECT_NEAR(spearman(a, up), 1.0, 1e-9);
  EXPECT_NEAR(spearman(a, down), -1.0, 1e-9);
}

TEST(Spearman, HandlesTiesAndDegenerateInputs) {
  EXPECT_EQ(spearman({1}, {2}), 0.0);
  EXPECT_EQ(spearman({}, {}), 0.0);
  EXPECT_EQ(spearman({1, 1, 1}, {2, 3, 4}), 0.0);  // zero variance in a
  const std::vector<double> a = {1, 2, 2, 4};
  const std::vector<double> b = {1, 3, 3, 9};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-9);  // monotone with ties
}

TEST(Spearman, PartialAgreement) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 1, 3, 4};  // one swap
  const double rho = spearman(a, b);
  EXPECT_GT(rho, 0.5);
  EXPECT_LT(rho, 1.0);
}

TEST(Table, RendersHeadersAndRows) {
  Table t({"Name", "Count"});
  t.add_row({"alpha", "10"});
  t.add_row({"b", "2"});
  const std::string out = t.render("Demo");
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Right-aligned numeric column (width of header "Count" = 5).
  EXPECT_NE(out.find("|    10"), std::string::npos);
  EXPECT_NE(out.find("|     2"), std::string::npos);
}

TEST(Table, MissingAndExtraCells) {
  Table t({"A", "B"});
  t.add_row({"only-a"});
  t.add_row({"a", "b", "dropped"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string out = t.render();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
}

TEST(Table, SeparatorRows) {
  Table t({"ABC"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  const std::string out = t.render();
  // Header rule + separator -> at least two dashed lines.
  std::size_t dashes = 0;
  for (std::size_t pos = out.find("--"); pos != std::string::npos;
       pos = out.find("--", pos + 2)) {
    ++dashes;
  }
  EXPECT_GE(dashes, 2u);
}

TEST(Table, FirstColumnLeftAligned) {
  Table t({"Origin", "Conns"}, {Align::kLeft});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a          "), std::string::npos);
}

// --------------------------------------- budgeted TimeHistogram sketch
//
// The confluence contract: the final (level, bins) state of a budgeted
// histogram is a pure function of the raw sample multiset — independent
// of add order, merge order and how the samples were sharded. That is
// what makes budgeted reports thread-count invariant.

/// Deterministic heavy-tailed sample set (distinct values force
/// coarsening under small budgets).
std::vector<util::SimTime> sketch_samples(std::uint64_t seed,
                                          std::size_t count) {
  util::Rng rng{seed};
  std::vector<util::SimTime> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t magnitude = rng.uniform(0, 1u << 16);
    samples.push_back(
        static_cast<util::SimTime>(magnitude * (1 + rng.uniform(0, 7))));
  }
  return samples;
}

TimeHistogram sketch_of(const std::vector<util::SimTime>& samples,
                        std::uint32_t budget) {
  TimeHistogram histogram{budget};
  for (const util::SimTime sample : samples) histogram.add(sample);
  return histogram;
}

TEST(TimeHistogramSketch, BudgetBoundsTheBinCount) {
  const auto samples = sketch_samples(1, 4000);
  for (const std::uint32_t budget : {1u, 2u, 8u, 64u, 512u}) {
    const TimeHistogram histogram = sketch_of(samples, budget);
    EXPECT_LE(histogram.size(), budget) << "budget=" << budget;
    EXPECT_EQ(histogram_count(histogram), 4000u);
  }
}

TEST(TimeHistogramSketch, MergeIsCommutative) {
  const TimeHistogram a = sketch_of(sketch_samples(2, 500), 32);
  const TimeHistogram b = sketch_of(sketch_samples(3, 700), 32);
  TimeHistogram ab = a;
  ab.merge(b);
  TimeHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
}

TEST(TimeHistogramSketch, MergeIsAssociative) {
  const TimeHistogram a = sketch_of(sketch_samples(4, 300), 16);
  const TimeHistogram b = sketch_of(sketch_samples(5, 400), 16);
  const TimeHistogram c = sketch_of(sketch_samples(6, 500), 16);
  TimeHistogram left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  TimeHistogram bc = b;     // a + (b + c)
  bc.merge(c);
  TimeHistogram right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);
}

TEST(TimeHistogramSketch, ShuffledShardsConvergeToSinglePassState) {
  // Property: split the samples into random shards, accumulate each
  // shard independently, merge in random order — identical (level, bins)
  // to one-pass accumulation. 20 trials across budgets.
  util::Rng rng{0x5EEDED};
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    const auto samples =
        sketch_samples(100 + static_cast<std::uint64_t>(trial),
                       200 + rng.index(2000));
    const std::uint32_t budget =
        static_cast<std::uint32_t>(1u << rng.uniform(0, 9));
    const TimeHistogram single = sketch_of(samples, budget);

    const std::size_t n_shards = rng.uniform(2, 7);
    std::vector<TimeHistogram> shards(n_shards, TimeHistogram{budget});
    for (const util::SimTime sample : samples) {
      shards[rng.index(n_shards)].add(sample);
    }
    std::vector<std::size_t> order(n_shards);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    TimeHistogram merged{budget};
    for (const std::size_t shard : order) merged.merge(shards[shard]);

    EXPECT_EQ(merged, single);
    EXPECT_LE(merged.size(), budget);
  }
}

TEST(TimeHistogramSketch, GoldenQuantilesArePinned) {
  // Pinned coarsened quantiles: any change to the quantization or merge
  // rules shows up here as a different value, not just a different shape.
  const auto samples = sketch_samples(7, 10000);
  const TimeHistogram exact = sketch_of(samples, 0);
  const TimeHistogram sketch = sketch_of(samples, 32);
  ASSERT_EQ(histogram_count(sketch), histogram_count(exact));

  EXPECT_EQ(histogram_quantile(exact, 0.5).value(), 116488);
  EXPECT_EQ(histogram_quantile(sketch, 0.5).value(), 114688);
  EXPECT_EQ(histogram_quantile(exact, 0.9).value(), 337728);
  EXPECT_EQ(histogram_quantile(sketch, 0.9).value(), 327680);
  EXPECT_EQ(sketch.level(), 14u);

  // The sketch floors values to multiples of 2^level, so a coarsened
  // quantile can undershoot the exact one by at most one quantum.
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const util::SimTime coarse = histogram_quantile(sketch, q).value();
    const util::SimTime fine = histogram_quantile(exact, q).value();
    EXPECT_LE(coarse, fine) << "q=" << q;
    EXPECT_GT(coarse + (util::SimTime{1} << sketch.level()), fine)
        << "q=" << q;
  }
}

TEST(TimeHistogramSketch, HugeBudgetEqualsExactHistogram) {
  // budget = "infinity" (larger than the number of distinct values) must
  // never coarsen: same bins, level 0, same quantiles as budget 0.
  const auto samples = sketch_samples(8, 3000);
  const TimeHistogram exact = sketch_of(samples, 0);
  const TimeHistogram huge = sketch_of(samples, 0xFFFFFFFFu);
  EXPECT_EQ(huge.level(), 0u);
  EXPECT_EQ(huge.bins(), exact.bins());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(histogram_quantile(huge, q), histogram_quantile(exact, q));
  }
}

}  // namespace
}  // namespace h2r::stats
