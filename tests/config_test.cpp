#include <gtest/gtest.h>

#include "web/config.hpp"

namespace h2r::web {
namespace {

constexpr const char* kValidConfig = R"({
  "ases": [
    {"name": "MY-AS", "asn": 64500, "prefix": "198.51.100.0/24"}
  ],
  "clusters": [
    {
      "operator": "my-cdn",
      "as": "MY-AS",
      "ips": 4,
      "h3": true,
      "idle_timeout_s": 120,
      "certs": [
        {"issuer": "Let's Encrypt", "sans": ["*.cdn.example"]},
        {"issuer": "Let's Encrypt", "sans": ["api.cdn.example"]}
      ],
      "domains": [
        {"name": "a.cdn.example", "lb": "shuffle", "answers": 2,
         "slot_minutes": 5, "ttl_s": 30, "pool": [0, 1]},
        {"name": "b.cdn.example", "lb": "static", "pool": [2, 3],
         "serves_on": [2, 3]},
        {"name": "api.cdn.example", "lb": "static", "cert_group": 1}
      ]
    }
  ]
})";

TEST(EcosystemConfig, LoadsValidDocument) {
  Ecosystem eco{1};
  const auto created = load_ecosystem(eco, kValidConfig);
  ASSERT_TRUE(created.has_value()) << created.error().message;
  EXPECT_EQ(*created, 1u);

  dns::QueryContext ctx;
  const auto answer_a = eco.authority().query("a.cdn.example", ctx);
  ASSERT_TRUE(answer_a.ok);
  EXPECT_EQ(answer_a.addresses.size(), 2u);
  EXPECT_EQ(answer_a.ttl_seconds, 30u);

  const auto answer_b = eco.authority().query("b.cdn.example", ctx);
  ASSERT_TRUE(answer_b.ok);
  const Server* server = eco.server_at(answer_b.addresses[0]);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->operator_name(), "my-cdn");
  EXPECT_TRUE(server->h3_enabled());
  EXPECT_EQ(server->idle_timeout(), util::seconds(120));
  // serves_on [2,3]: b is not a vhost on a's addresses.
  EXPECT_FALSE(eco.server_at(answer_a.addresses[0])->serves("b.cdn.example"));

  // cert_group override: api gets the narrow cert.
  const auto api_cert = eco.certificate_of("api.cdn.example");
  ASSERT_NE(api_cert, nullptr);
  EXPECT_FALSE(api_cert->covers("a.cdn.example"));
  const auto as_info = eco.as_database().lookup(answer_a.addresses[0]);
  ASSERT_TRUE(as_info.has_value());
  EXPECT_EQ(as_info->asn, 64500u);
}

TEST(EcosystemConfig, RejectsMalformedJson) {
  Ecosystem eco{1};
  EXPECT_FALSE(load_ecosystem(eco, "{not json").has_value());
  EXPECT_FALSE(load_ecosystem(eco, "[]").has_value());
}

TEST(EcosystemConfig, RejectsMissingFields) {
  Ecosystem eco{1};
  // Cluster without operator.
  EXPECT_FALSE(load_ecosystem(eco, R"({"clusters":[{"as":"X"}]})")
                   .has_value());
  // AS without prefix.
  EXPECT_FALSE(
      load_ecosystem(eco, R"({"ases":[{"name":"A","asn":1}]})").has_value());
  // Cert group without sans.
  EXPECT_FALSE(load_ecosystem(eco, R"({
    "ases": [{"name": "A", "asn": 1, "prefix": "10.0.0.0/8"}],
    "clusters": [{"operator": "x", "as": "A",
                  "certs": [{"issuer": "CA", "sans": []}],
                  "domains": [{"name": "d.example"}]}]})")
                   .has_value());
}

TEST(EcosystemConfig, RejectsUnknownLbPolicy) {
  Ecosystem eco{1};
  const auto result = load_ecosystem(eco, R"({
    "ases": [{"name": "A", "asn": 1, "prefix": "10.0.0.0/8"}],
    "clusters": [{"operator": "x", "as": "A",
                  "certs": [{"issuer": "CA", "sans": ["d.example"]}],
                  "domains": [{"name": "d.example", "lb": "chaotic"}]}]})");
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("lb policy"), std::string::npos);
}

TEST(EcosystemConfig, SurfacesEcosystemErrors) {
  Ecosystem eco{1};
  // Domain not covered by any cert group.
  const auto result = load_ecosystem(eco, R"({
    "ases": [{"name": "A", "asn": 1, "prefix": "10.0.0.0/8"}],
    "clusters": [{"operator": "x", "as": "A",
                  "certs": [{"issuer": "CA", "sans": ["other.example"]}],
                  "domains": [{"name": "d.example"}]}]})");
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("x"), std::string::npos);
}

TEST(EcosystemConfig, DefaultsApply) {
  Ecosystem eco{1};
  const auto created = load_ecosystem(eco, R"({
    "ases": [{"name": "A", "asn": 1, "prefix": "10.0.0.0/8"}],
    "clusters": [{"operator": "x", "as": "A",
                  "certs": [{"issuer": "CA", "sans": ["d.example"]}],
                  "domains": [{"name": "d.example"}]}]})");
  ASSERT_TRUE(created.has_value()) << created.error().message;
  dns::QueryContext ctx;
  const auto answer = eco.authority().query("d.example", ctx);
  ASSERT_TRUE(answer.ok);
  EXPECT_EQ(answer.addresses.size(), 1u);  // answers default 1
  EXPECT_EQ(answer.ttl_seconds, 60u);      // ttl default
  const Server* server = eco.server_at(answer.addresses[0]);
  EXPECT_TRUE(server->h2_enabled());
  EXPECT_FALSE(server->h3_enabled());
  EXPECT_FALSE(server->idle_timeout().has_value());
}

}  // namespace
}  // namespace h2r::web
