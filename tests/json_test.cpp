#include <gtest/gtest.h>

#include "json/json.hpp"
#include <limits>
#include <cmath>

namespace h2r::json {
namespace {

TEST(JsonParse, Primitives) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_EQ(parse("true")->as_bool(), true);
  EXPECT_EQ(parse("false")->as_bool(true), false);
  EXPECT_EQ(parse("42")->as_int(), 42);
  EXPECT_EQ(parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(parse("3.5")->as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, IntegerVsDouble) {
  EXPECT_TRUE(parse("42")->is_int());
  EXPECT_TRUE(parse("42.0")->is_double());
  EXPECT_TRUE(parse("4e2")->is_double());
  // Int64 overflow falls back to double.
  EXPECT_TRUE(parse("99999999999999999999999")->is_double());
}

TEST(JsonParse, NegativeZeroAndLeadingZeroRules) {
  EXPECT_TRUE(parse("0")->is_int());
  EXPECT_FALSE(parse("01").has_value());
  EXPECT_FALSE(parse("-").has_value());
  EXPECT_FALSE(parse(".5").has_value());
  EXPECT_FALSE(parse("1.").has_value());
  EXPECT_FALSE(parse("1e").has_value());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")")->as_string(), "a\"b");
  EXPECT_EQ(parse(R"("a\\b")")->as_string(), "a\\b");
  EXPECT_EQ(parse(R"("a\nb")")->as_string(), "a\nb");
  EXPECT_EQ(parse(R"("a\tb")")->as_string(), "a\tb");
  EXPECT_EQ(parse(R"("a\/b")")->as_string(), "a/b");
  EXPECT_EQ(parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(parse(R"("é")")->as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(parse(R"("€")")->as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, SurrogatePairs) {
  // U+1F600 as 😀.
  EXPECT_EQ(parse(R"("😀")")->as_string(), "\xF0\x9F\x98\x80");
  EXPECT_FALSE(parse(R"("\uD83D")").has_value());       // lone high
  EXPECT_FALSE(parse(R"("\uDE00")").has_value());       // lone low
  EXPECT_FALSE(parse(R"("\uD83Dx")").has_value());      // not followed by \u
  EXPECT_FALSE(parse(R"("\uD83DA")").has_value()); // invalid low
}

TEST(JsonParse, RejectsControlCharactersInStrings) {
  EXPECT_FALSE(parse("\"a\nb\"").has_value());
  EXPECT_FALSE(parse("\"a\tb\"").has_value());
}

TEST(JsonParse, ArraysAndObjects) {
  const auto v = parse(R"({"a": [1, 2, {"b": null}], "c": "d"})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)["a"].at(0).as_int(), 1);
  EXPECT_EQ((*v)["a"].at(2)["b"].type(), Type::kNull);
  EXPECT_EQ((*v)["c"].as_string(), "d");
  EXPECT_TRUE((*v)["missing"].is_null());
  EXPECT_TRUE((*v)["a"].at(99).is_null());
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("[]")->as_array().empty());
  EXPECT_TRUE(parse("{}")->as_object().empty());
  EXPECT_TRUE(parse("[ ]")->as_array().empty());
  EXPECT_TRUE(parse("{ }")->as_object().empty());
}

TEST(JsonParse, TrailingContentIsError) {
  EXPECT_FALSE(parse("1 2").has_value());
  EXPECT_FALSE(parse("{} x").has_value());
  EXPECT_TRUE(parse(" 1 ").has_value());
}

TEST(JsonParse, MalformedDocuments) {
  for (const char* bad :
       {"", "{", "}", "[", "[1,", "[1,]", "{\"a\"}", "{\"a\":}", "{a:1}",
        "tru", "nul", "\"unterminated", "{\"a\":1,}", "[1 2]",
        "{\"a\":1 \"b\":2}"}) {
    EXPECT_FALSE(parse(bad).has_value()) << bad;
  }
}

TEST(JsonParse, DeepNestingIsBounded) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(parse(deep).has_value());
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_TRUE(parse(ok).has_value());
}

TEST(JsonObject, PreservesInsertionOrder) {
  Object obj;
  obj.set("z", Value{1});
  obj.set("a", Value{2});
  obj.set("m", Value{3});
  std::vector<std::string> keys;
  for (const auto& [key, value] : obj) {
    (void)value;
    keys.push_back(key);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonObject, SetOverwritesInPlace) {
  Object obj;
  obj.set("a", Value{1});
  obj.set("b", Value{2});
  obj.set("a", Value{9});
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.find("a")->as_int(), 9);
}

TEST(JsonObject, CopyKeepsIndexConsistent) {
  Object obj;
  obj.set("a", Value{1});
  Object copy = obj;
  copy.set("b", Value{2});
  EXPECT_EQ(copy.find("b")->as_int(), 2);
  EXPECT_EQ(obj.find("b"), nullptr);
}

TEST(JsonWrite, Compact) {
  Object obj;
  obj.set("a", Value{1});
  Array arr;
  arr.emplace_back(true);
  arr.emplace_back("x");
  obj.set("b", Value{std::move(arr)});
  EXPECT_EQ(write(Value{obj}), R"({"a":1,"b":[true,"x"]})");
}

TEST(JsonWrite, EscapesSpecials) {
  EXPECT_EQ(write(Value{"a\"b\\c\nd"}), R"("a\"b\\c\nd")");
  EXPECT_EQ(write(Value{std::string("\x01", 1)}), "\"\\u0001\"");
}

TEST(JsonWrite, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(write(Value{std::numeric_limits<double>::infinity()}), "null");
  EXPECT_EQ(write(Value{std::numeric_limits<double>::quiet_NaN()}), "null");
}

TEST(JsonWrite, PrettyPrint) {
  Object obj;
  obj.set("a", Value{1});
  WriteOptions opts;
  opts.pretty = true;
  const std::string out = write(Value{obj}, opts);
  EXPECT_NE(out.find("\n"), std::string::npos);
  EXPECT_NE(out.find("  \"a\": 1"), std::string::npos);
}

TEST(JsonEquality, NumericCrossTypeComparison) {
  EXPECT_EQ(*parse("1"), *parse("1.0"));
  EXPECT_EQ(*parse("[1,2]"), *parse("[1,2]"));
  EXPECT_NE(*parse("[1,2]") == *parse("[2,1]"), true);
}

// Round-trip property: parse(write(v)) == v for a corpus of documents.
class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseWriteParse) {
  const auto v1 = parse(GetParam());
  ASSERT_TRUE(v1.has_value()) << GetParam();
  const std::string text = write(*v1);
  const auto v2 = parse(text);
  ASSERT_TRUE(v2.has_value()) << text;
  EXPECT_EQ(*v1, *v2);
  // Second write must be identical (stable serialization).
  EXPECT_EQ(write(*v2), text);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, JsonRoundTrip,
    ::testing::Values(
        "null", "true", "false", "0", "-1", "123456789", "0.5", "-2.25",
        "1e-7", R"("")", R"("plain")", R"("es\"caped\\\n")", "[]", "[1]",
        "[[[]]]", R"([1,"two",3.0,null,true])", "{}", R"({"a":1})",
        R"({"nested":{"arr":[{"deep":true}]}})",
        R"({"log":{"entries":[{"request":{"url":"https://x/"}}]}})",
        R"("é€")"));

}  // namespace
}  // namespace h2r::json
