// Robustness sweep for the JSON parser: pseudo-random byte soup and
// systematic mutations of valid documents must never crash, hang or
// produce a value that fails to re-serialize. (Deterministic "fuzzing" —
// seeds are fixed so failures reproduce.)
#include <gtest/gtest.h>

#include <string>

#include "json/json.hpp"
#include "util/rng.hpp"

namespace h2r::json {
namespace {

class RandomBytes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBytes, ParserNeverCrashes) {
  util::Rng rng{GetParam()};
  for (int doc = 0; doc < 200; ++doc) {
    std::string text;
    const std::size_t len = rng.index(128);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(rng.uniform(0, 255)));
    }
    const auto parsed = parse(text);
    if (parsed.has_value()) {
      // Whatever parsed must re-serialize into parseable JSON.
      const auto again = parse(write(*parsed));
      EXPECT_TRUE(again.has_value());
    }
  }
}

TEST_P(RandomBytes, JsonLikeSoup) {
  // Biased alphabet: structural characters dominate, which reaches much
  // deeper into the parser than uniform bytes.
  static const char kAlphabet[] = "{}[]\",:0123456789.eE+-truefalsnl \\/\n";
  util::Rng rng{GetParam() ^ 0x5eedull};
  for (int doc = 0; doc < 400; ++doc) {
    std::string text;
    const std::size_t len = rng.index(96);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(kAlphabet[rng.index(sizeof(kAlphabet) - 1)]);
    }
    const auto parsed = parse(text);
    if (parsed.has_value()) {
      EXPECT_TRUE(parse(write(*parsed)).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBytes,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Mutations, TruncationsOfValidDocument) {
  const std::string doc =
      R"({"log":{"pages":[{"id":"p","title":"u"}],"entries":[)"
      R"({"request":{"url":"https://x/é"},"time":1.5e2,"ok":true}]}})";
  ASSERT_TRUE(parse(doc).has_value());
  for (std::size_t cut = 0; cut < doc.size(); ++cut) {
    const auto parsed = parse(doc.substr(0, cut));
    // Every strict prefix is incomplete -> must be an error, never a crash.
    EXPECT_FALSE(parsed.has_value()) << cut;
  }
}

TEST(Mutations, SingleByteCorruptions) {
  const std::string doc = R"({"a":[1,2.5,"x\n",null,true],"b":{"c":false}})";
  ASSERT_TRUE(parse(doc).has_value());
  util::Rng rng{99};
  for (std::size_t pos = 0; pos < doc.size(); ++pos) {
    for (int variant = 0; variant < 3; ++variant) {
      std::string mutated = doc;
      mutated[pos] = static_cast<char>(rng.uniform(0, 255));
      const auto parsed = parse(mutated);
      if (parsed.has_value()) {
        EXPECT_TRUE(parse(write(*parsed)).has_value());
      }
    }
  }
}

TEST(Mutations, DeeplyNestedMixedContainers) {
  std::string doc;
  for (int i = 0; i < 120; ++i) doc += R"({"a":[)";
  doc += "1";
  for (int i = 0; i < 120; ++i) doc += "]}";
  const auto parsed = parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parse(write(*parsed)).has_value());
}

}  // namespace
}  // namespace h2r::json
