// HTTP/3 model tests: Alt-Svc'd servers, protocol propagation through
// NetLog stitching and HAR export, and the paper's socket-id-0 blind spot.
#include <gtest/gtest.h>

#include "browser/browser.hpp"
#include "core/classify.hpp"
#include "dns/vantage.hpp"
#include "har/export.hpp"
#include "har/import.hpp"
#include "util/strings.hpp"
#include "web/ecosystem.hpp"

namespace h2r {
namespace {

class H3Test : public ::testing::Test {
 protected:
  H3Test() : eco_(9) {
    eco_.register_as("T-AS", 64501, net::Prefix::parse("10.30.0.0/16").value());

    web::ClusterSpec quic;
    quic.operator_name = "quic-op";
    quic.as_name = "T-AS";
    quic.ip_count = 2;
    quic.h3_enabled = true;
    quic.certs = {{"CA", {"*.quic.test"}}};
    for (const char* name : {"a.quic.test", "b.quic.test"}) {
      web::DomainSpec d;
      d.name = name;
      d.dns_pool = {name[0] == 'a' ? std::size_t{0} : std::size_t{1}};
      quic.domains.push_back(d);
    }
    eco_.add_cluster(quic);

    web::ClusterSpec site;
    site.operator_name = "site";
    site.as_name = "T-AS";
    site.ip_count = 1;
    site.certs = {{"CA", {"www.site.test"}}};
    web::DomainSpec www;
    www.name = "www.site.test";
    site.domains.push_back(www);
    eco_.add_cluster(site);
  }

  browser::PageLoadResult load(bool enable_http3) {
    web::Website site;
    site.url = "https://www.site.test";
    site.landing_domain = "www.site.test";
    web::Resource script;
    script.domain = "a.quic.test";
    script.destination = fetch::Destination::kScript;
    script.start_delay = 20;
    web::Resource img;
    img.domain = "b.quic.test";
    img.destination = fetch::Destination::kImage;
    img.start_delay = 400;
    site.resources = {script, img};

    dns::RecursiveResolver resolver{dns::standard_vantage_points()[0],
                                    &eco_.authority()};
    browser::BrowserOptions options;
    options.enable_http3 = enable_http3;
    browser::Browser chrome{eco_, resolver, options, 4};
    return chrome.load(site, util::days(1));
  }

  web::Ecosystem eco_;
};

TEST_F(H3Test, DisabledByDefaultEverythingIsH2) {
  const auto page = load(false);
  for (const auto& conn : page.observation.connections) {
    EXPECT_EQ(conn.protocol, "h2");
  }
}

TEST_F(H3Test, AltSvcServersGetH3Sessions) {
  const auto page = load(true);
  int h3 = 0;
  int h2 = 0;
  for (const auto& conn : page.observation.connections) {
    if (conn.protocol == "h3") {
      ++h3;
      EXPECT_EQ(util::base_domain(conn.initial_domain), "quic.test");
    } else {
      ++h2;
    }
  }
  EXPECT_EQ(h3, 2);  // a + b on the QUIC operator
  EXPECT_EQ(h2, 1);  // the landing page
}

TEST_F(H3Test, RedundancyIsProtocolAgnostic) {
  // a and b are on different IPs with a covering cert: cause IP for both
  // the h2-only and the h3 run (the paper's §6 conclusion).
  const auto h2_page = load(false);
  const auto h3_page = load(true);
  const auto cls_h2 = core::classify_site(h2_page.observation,
                                          {core::DurationModel::kExact});
  const auto cls_h3 = core::classify_site(h3_page.observation,
                                          {core::DurationModel::kExact});
  EXPECT_EQ(cls_h2.count_cause(core::Cause::kIp), 1u);
  EXPECT_EQ(cls_h3.count_cause(core::Cause::kIp), 1u);
}

TEST_F(H3Test, HarExportGivesH3SocketZero) {
  const auto page = load(true);
  util::Rng rng{1};
  const har::Log log = har::export_site(page.observation, {},
                                        har::ExportQuirks::none(), rng);
  int h3_entries = 0;
  for (const auto& entry : log.entries) {
    if (entry.http_version == "h3") {
      ++h3_entries;
      EXPECT_EQ(entry.connection_id, 0);  // the paper's §4.2.1 blind spot
    }
  }
  EXPECT_EQ(h3_entries, 2);

  // The importer must drop them (indistinguishable sockets).
  har::ImportStats stats;
  const auto imported = har::import_site(log, &stats);
  EXPECT_EQ(stats.h3_entries, 2u);
  for (const auto& conn : imported.connections) {
    EXPECT_EQ(conn.protocol, "h2");
  }
}

TEST_F(H3Test, QuicHandshakeIsFaster) {
  // QUIC saves one RTT: the h3 session becomes available earlier.
  const auto h2_page = load(false);
  const auto h3_page = load(true);
  auto first_finish = [](const browser::PageLoadResult& page,
                         const char* domain) -> util::SimTime {
    for (const auto& conn : page.observation.connections) {
      if (conn.initial_domain == domain && !conn.requests.empty()) {
        return conn.requests.front().finished_at;
      }
    }
    return 0;
  };
  EXPECT_LT(first_finish(h3_page, "a.quic.test"),
            first_finish(h2_page, "a.quic.test"));
}

TEST_F(H3Test, NetlogCarriesProtocolParam) {
  const auto page = load(true);
  bool saw_h3_param = false;
  for (const auto& event : page.log.events()) {
    if (event.type == netlog::EventType::kSessionCreated &&
        event.param("protocol") == "h3") {
      saw_h3_param = true;
    }
  }
  EXPECT_TRUE(saw_h3_param);
}

}  // namespace
}  // namespace h2r
