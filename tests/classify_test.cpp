#include <gtest/gtest.h>

#include "core/classify.hpp"

namespace h2r::core {
namespace {

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s).value(); }

ConnectionRecord conn(std::uint64_t id, const char* address,
                      const char* domain,
                      std::vector<std::string> sans,
                      util::SimTime opened_at,
                      const char* issuer = "Test CA") {
  ConnectionRecord rec;
  rec.id = id;
  rec.endpoint = net::Endpoint{ip(address), 443};
  rec.initial_domain = domain;
  rec.san_dns_names = std::move(sans);
  rec.issuer_organization = issuer;
  rec.has_certificate = !rec.san_dns_names.empty();
  rec.opened_at = opened_at;
  RequestRecord req;
  req.started_at = opened_at;
  req.finished_at = opened_at + 50;
  req.domain = domain;
  rec.requests.push_back(req);
  return rec;
}

SiteObservation site(std::vector<ConnectionRecord> conns) {
  SiteObservation s;
  s.site_url = "https://test.example";
  s.connections = std::move(conns);
  return s;
}

SiteClassification classify(std::vector<ConnectionRecord> conns,
                            DurationModel model = DurationModel::kEndless) {
  return classify_site(site(std::move(conns)), {model});
}

// ------------------------------------------------------------ base cases

TEST(Classify, SingleConnectionIsNeverRedundant) {
  const auto cls = classify({conn(1, "10.0.0.1", "a.example", {"a.example"}, 0)});
  EXPECT_TRUE(cls.findings.empty());
  EXPECT_EQ(cls.total_connections, 1u);
}

TEST(Classify, UnknownThirdPartyIsNotRedundant) {
  // Different IP, certificate does not cover: a fresh third party.
  const auto cls = classify({
      conn(1, "10.0.0.1", "a.example", {"a.example"}, 0),
      conn(2, "10.0.0.2", "b.other", {"b.other"}, 100),
  });
  EXPECT_TRUE(cls.findings.empty());
}

TEST(Classify, CertCause) {
  // Same IP, previous certificate does not include the new domain.
  const auto cls = classify({
      conn(1, "10.0.0.1", "static.klaviyo.com", {"static.klaviyo.com"}, 0),
      conn(2, "10.0.0.1", "fast.a.klaviyo.com", {"fast.a.klaviyo.com"}, 100),
  });
  ASSERT_EQ(cls.findings.size(), 1u);
  EXPECT_EQ(cls.findings[0].connection_index, 1u);
  EXPECT_EQ(cls.findings[0].causes, std::set<Cause>{Cause::kCert});
  EXPECT_EQ(cls.findings[0].reusable_previous_domains.at(Cause::kCert),
            std::set<std::string>{"static.klaviyo.com"});
}

TEST(Classify, IpCause) {
  // Different IP, previous certificate covers the new domain.
  const auto cls = classify({
      conn(1, "10.0.0.1", "www.googletagmanager.com",
           {"*.googletagmanager.com", "*.google-analytics.com"}, 0),
      conn(2, "10.0.0.2", "www.google-analytics.com",
           {"*.google-analytics.com"}, 100),
  });
  ASSERT_EQ(cls.findings.size(), 1u);
  EXPECT_EQ(cls.findings[0].causes, std::set<Cause>{Cause::kIp});
  EXPECT_EQ(cls.findings[0].reusable_previous_domains.at(Cause::kIp),
            std::set<std::string>{"www.googletagmanager.com"});
}

TEST(Classify, CredCause) {
  // Same IP, covering certificate: reuse was possible -> CRED.
  const auto cls = classify({
      conn(1, "10.0.0.1", "track.example", {"*.example"}, 0),
      conn(2, "10.0.0.1", "track.example", {"*.example"}, 100),
  });
  ASSERT_EQ(cls.findings.size(), 1u);
  EXPECT_EQ(cls.findings[0].causes, std::set<Cause>{Cause::kCred});
}

TEST(Classify, CornerCaseSameDomainDifferentIpIsCred) {
  // §4.1: would otherwise be misclassified as IP.
  const auto cls = classify({
      conn(1, "10.0.0.1", "track.example", {"*.example"}, 0),
      conn(2, "10.0.0.2", "track.example", {"*.example"}, 100),
  });
  ASSERT_EQ(cls.findings.size(), 1u);
  EXPECT_EQ(cls.findings[0].causes, std::set<Cause>{Cause::kCred});
}

TEST(Classify, PortMustMatchForSameEndpoint) {
  auto first = conn(1, "10.0.0.1", "a.example", {"*.example"}, 0);
  auto second = conn(2, "10.0.0.1", "b.example", {"*.example"}, 100);
  second.endpoint.port = 8443;
  // Different port -> not the same endpoint; but the cert covers and the
  // IP "differs" (endpoint inequality with same address): per RFC 7540 the
  // IP must match AND the port; we classify by endpoint, so this is IP.
  const auto cls = classify({first, second});
  ASSERT_EQ(cls.findings.size(), 1u);
  EXPECT_EQ(cls.findings[0].causes, std::set<Cause>{Cause::kIp});
}

// ------------------------------------------------------ paper §4.1 example

TEST(Classify, PaperFourConnectionExample) {
  // Four successively opened same-IP connections: #1 and #3 use cert A,
  // #2 and #4 use cert B. The paper counts three redundant connections,
  // 3x CERT (#2 vs #1, #3 vs #2, #4 vs #1/#3) and 2x CRED (#3 vs #1,
  // #4 vs #2).
  const auto cls = classify({
      conn(1, "10.0.0.1", "a.example", {"a.example"}, 0),
      conn(2, "10.0.0.1", "b.example", {"b.example"}, 100),
      conn(3, "10.0.0.1", "a.example", {"a.example"}, 200),
      conn(4, "10.0.0.1", "b.example", {"b.example"}, 300),
  });
  EXPECT_EQ(cls.redundant_connections(), 3u);
  EXPECT_EQ(cls.count_cause(Cause::kCert), 3u);
  EXPECT_EQ(cls.count_cause(Cause::kCred), 2u);
  EXPECT_EQ(cls.count_cause(Cause::kIp), 0u);
  // Connection #3 (index 2) is redundant to #1 (CRED) and #2 (CERT).
  const ConnectionFinding& third = cls.findings[1];
  EXPECT_EQ(third.connection_index, 2u);
  EXPECT_EQ(third.causes, (std::set<Cause>{Cause::kCert, Cause::kCred}));
}

// ---------------------------------------------------------- 421 exclusion

TEST(Classify, ExcludedDomainsAreIgnored) {
  auto first = conn(1, "10.0.0.1", "a.example", {"*.example"}, 0);
  first.excluded_domains.push_back("b.example");  // 421 for b.example
  const auto cls = classify({
      first,
      conn(2, "10.0.0.1", "b.example", {"*.example"}, 100),
  });
  EXPECT_TRUE(cls.findings.empty());
}

TEST(Classify, ExclusionIsPerDomain) {
  auto first = conn(1, "10.0.0.1", "a.example", {"*.example"}, 0);
  first.excluded_domains.push_back("b.example");
  const auto cls = classify({
      first,
      conn(2, "10.0.0.1", "c.example", {"*.example"}, 100),
  });
  EXPECT_EQ(cls.count_cause(Cause::kCred), 1u);
}

TEST(Classify, OriginSetActsAsExclusion) {
  auto first = conn(1, "10.0.0.1", "a.example", {"*.example"}, 0);
  first.origin_set = std::vector<std::string>{"a.example", "c.example"};
  const auto cls = classify({
      first,
      conn(2, "10.0.0.1", "b.example", {"*.example"}, 100),  // not in set
      conn(3, "10.0.0.1", "c.example", {"*.example"}, 200),  // in set
  });
  // b.example: excluded by the origin set -> only redundant vs conn #2's
  // own causes; c.example: CRED vs #1 (and vs #2 which has no origin set).
  ASSERT_EQ(cls.findings.size(), 1u);
  EXPECT_EQ(cls.findings[0].connection_index, 2u);
  EXPECT_TRUE(cls.findings[0].causes.count(Cause::kCred) > 0);
}

// ------------------------------------------------------- duration models

TEST(Classify, ImmediateModelMissesIdleConnections) {
  // Second connection opens after the first one's last request finished:
  // redundant under "endless", invisible under "immediate".
  auto first = conn(1, "10.0.0.1", "a.example", {"*.example"}, 0);
  first.requests[0].finished_at = 60;
  const auto second = conn(2, "10.0.0.1", "b.example", {"*.example"}, 500);
  EXPECT_EQ(classify({first, second}, DurationModel::kEndless)
                .redundant_connections(),
            1u);
  EXPECT_EQ(classify({first, second}, DurationModel::kImmediate)
                .redundant_connections(),
            0u);
}

TEST(Classify, ImmediateModelSeesOverlappingConnections) {
  auto first = conn(1, "10.0.0.1", "a.example", {"*.example"}, 0);
  first.requests[0].finished_at = 1000;  // still busy at t=500
  const auto second = conn(2, "10.0.0.1", "b.example", {"*.example"}, 500);
  EXPECT_EQ(classify({first, second}, DurationModel::kImmediate)
                .redundant_connections(),
            1u);
}

TEST(Classify, ExactModelUsesCloseTimes) {
  auto first = conn(1, "10.0.0.1", "a.example", {"*.example"}, 0);
  first.closed_at = 300;
  const auto second = conn(2, "10.0.0.1", "b.example", {"*.example"}, 500);
  EXPECT_EQ(classify({first, second}, DurationModel::kExact)
                .redundant_connections(),
            0u);
  auto open_first = conn(1, "10.0.0.1", "a.example", {"*.example"}, 0);
  EXPECT_EQ(classify({open_first, second}, DurationModel::kExact)
                .redundant_connections(),
            1u);
}

TEST(Availability, IntervalsPerModel) {
  auto rec = conn(1, "10.0.0.1", "a.example", {"a.example"}, 100);
  rec.requests[0].finished_at = 180;
  rec.closed_at = 500;
  EXPECT_EQ(availability(rec, DurationModel::kEndless).end, util::kSimTimeMax);
  EXPECT_EQ(availability(rec, DurationModel::kImmediate).end, 181);
  EXPECT_EQ(availability(rec, DurationModel::kExact).end, 500);
  EXPECT_EQ(availability(rec, DurationModel::kEndless).start, 100);
}

// --------------------------------------------------------- multi findings

TEST(Classify, MultipleCausesAcrossDifferentPrevs) {
  // prev #1: same IP, not covering -> CERT. prev #2: different IP,
  // covering -> IP. Both attach to connection #3.
  const auto cls = classify({
      conn(1, "10.0.0.1", "x.other", {"x.other"}, 0),
      conn(2, "10.0.0.2", "a.example", {"*.example"}, 50),
      conn(3, "10.0.0.1", "b.example", {"*.example"}, 100),
  });
  ASSERT_EQ(cls.findings.size(), 1u);
  EXPECT_EQ(cls.findings[0].causes,
            (std::set<Cause>{Cause::kCert, Cause::kIp}));
}

TEST(Classify, MissingCertificateNeverCovers) {
  auto first = conn(1, "10.0.0.1", "a.example", {}, 0);
  first.has_certificate = false;
  const auto cls = classify({
      first,
      conn(2, "10.0.0.1", "b.example", {"*.example"}, 100),
  });
  // Same IP, prev has no cert -> CERT (cannot cover).
  ASSERT_EQ(cls.findings.size(), 1u);
  EXPECT_EQ(cls.findings[0].causes, std::set<Cause>{Cause::kCert});
}

TEST(Classify, CaseInsensitiveDomains) {
  const auto cls = classify({
      conn(1, "10.0.0.1", "Track.Example", {"*.example"}, 0),
      conn(2, "10.0.0.2", "TRACK.EXAMPLE", {"*.example"}, 100),
  });
  ASSERT_EQ(cls.findings.size(), 1u);
  EXPECT_EQ(cls.findings[0].causes, std::set<Cause>{Cause::kCred});
}

TEST(Classify, HasCauseAndCounts) {
  const auto cls = classify({
      conn(1, "10.0.0.1", "a.example", {"a.example"}, 0),
      conn(2, "10.0.0.1", "b.example", {"b.example"}, 100),
      conn(3, "10.0.0.2", "c.other", {"c.other"}, 200),
  });
  EXPECT_TRUE(cls.has_cause(Cause::kCert));
  EXPECT_FALSE(cls.has_cause(Cause::kIp));
  EXPECT_FALSE(cls.has_cause(Cause::kCred));
  EXPECT_EQ(cls.count_cause(Cause::kCert), 1u);
  EXPECT_EQ(cls.redundant_connections(), 1u);
  EXPECT_EQ(cls.total_connections, 3u);
}

TEST(ToString, Names) {
  EXPECT_EQ(to_string(Cause::kCert), "CERT");
  EXPECT_EQ(to_string(Cause::kIp), "IP");
  EXPECT_EQ(to_string(Cause::kCred), "CRED");
  EXPECT_EQ(to_string(DurationModel::kEndless), "endless");
  EXPECT_EQ(to_string(DurationModel::kImmediate), "immediate");
  EXPECT_EQ(to_string(DurationModel::kExact), "exact");
}

// Regression for the eq-coverage gap h2r-lint's contract pass caught:
// operator== used to compare mask() alone, so policies differing only in
// duration or horizon (neither is a knob bit) compared equal — a cache
// keyed on Policy equality would have conflated distinct policy points.
TEST(Policy, EqualityCoversEveryFieldNotJustTheKnobMask) {
  const Policy base;
  EXPECT_EQ(base, Policy{});

  Policy duration = base;
  duration.duration = DurationModel::kImmediate;
  EXPECT_FALSE(duration == base);

  Policy horizon = base;
  horizon.horizon = util::seconds(30);
  EXPECT_FALSE(horizon == base);

  Policy origin_frame = base;
  origin_frame.origin_frame = true;
  EXPECT_FALSE(origin_frame == base);

  Policy sync_dns = base;
  sync_dns.sync_dns = true;
  EXPECT_FALSE(sync_dns == base);

  Policy cert = base;
  cert.cert_consolidation = true;
  EXPECT_FALSE(cert == base);

  Policy credentials = base;
  credentials.ignore_credentials = true;
  EXPECT_FALSE(credentials == base);
}

}  // namespace
}  // namespace h2r::core
