#include <gtest/gtest.h>

#include "core/advisor.hpp"
#include "core/observation_json.hpp"
#include "core/report_json.hpp"
#include "netlog/netlog.hpp"
#include "util/rng.hpp"

namespace h2r::core {
namespace {

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s).value(); }

ConnectionRecord conn(std::uint64_t id, const char* address,
                      const char* domain, std::vector<std::string> sans,
                      util::SimTime opened_at) {
  ConnectionRecord rec;
  rec.id = id;
  rec.endpoint = net::Endpoint{ip(address), 443};
  rec.initial_domain = domain;
  rec.san_dns_names = std::move(sans);
  rec.issuer_organization = "CA";
  rec.has_certificate = true;
  rec.opened_at = opened_at;
  RequestRecord req;
  req.started_at = opened_at;
  req.finished_at = opened_at + 40;
  req.domain = domain;
  rec.requests.push_back(req);
  return rec;
}

SiteObservation redundant_site() {
  SiteObservation site;
  site.site_url = "https://x.example";
  site.connections = {
      conn(1, "10.0.0.1", "gtm.metrics.example", {"*.metrics.example"}, 0),
      conn(2, "10.0.0.2", "ga.metrics.example", {"*.metrics.example"}, 100),
  };
  return site;
}

TEST(ReportJson, AggregateReportSerializes) {
  Aggregator agg;
  const SiteObservation site = redundant_site();
  agg.add_site(site, classify_site(site, {DurationModel::kEndless}));
  const json::Value v = to_json(agg.report());
  EXPECT_EQ(v["h2_sites"].as_int(), 1);
  EXPECT_EQ(v["total_connections"].as_int(), 2);
  EXPECT_EQ(v["redundant_connections"].as_int(), 1);
  EXPECT_EQ(v["causes"]["IP"]["connections"].as_int(), 1);
  EXPECT_EQ(v["causes"]["CERT"]["connections"].as_int(), 0);
  const json::Value& origins = v["ip_origins"];
  ASSERT_EQ(origins.as_array().size(), 1u);
  EXPECT_EQ(origins.at(0)["origin"].as_string(), "ga.metrics.example");
  EXPECT_EQ(origins.at(0)["top_previous"]["origin"].as_string(),
            "gtm.metrics.example");
  // Must be valid JSON end-to-end.
  EXPECT_TRUE(json::parse(json::write(v)).has_value());
}

TEST(ReportJson, ClassificationSerializes) {
  const SiteObservation site = redundant_site();
  const json::Value v =
      to_json(classify_site(site, {DurationModel::kEndless}));
  EXPECT_EQ(v["redundant_connections"].as_int(), 1);
  ASSERT_EQ(v["findings"].as_array().size(), 1u);
  EXPECT_EQ(v["findings"].at(0)["connection_index"].as_int(), 1);
  EXPECT_EQ(v["findings"].at(0)["causes"].at(0).as_string(), "IP");
  EXPECT_EQ(v["findings"]
                .at(0)["reusable_previous"]["IP"]
                .at(0)
                .as_string(),
            "gtm.metrics.example");
}

TEST(ReportJson, AuditReportSerializes) {
  const json::Value v = to_json(audit_site(redundant_site()));
  EXPECT_EQ(v["site"].as_string(), "https://x.example");
  ASSERT_EQ(v["advice"].as_array().size(), 1u);
  EXPECT_EQ(v["advice"].at(0)["cause"].as_string(), "IP");
  EXPECT_FALSE(v["advice"].at(0)["remedy"].as_string().empty());
}

TEST(ReportJson, HistogramBucketsAccountForAllSites) {
  Aggregator agg;
  const SiteObservation site = redundant_site();
  agg.add_site(site, classify_site(site, {DurationModel::kEndless}));
  SiteObservation clean;
  clean.site_url = "https://clean.example";
  clean.connections = {conn(1, "10.0.0.9", "a.one", {"a.one"}, 0)};
  agg.add_site(clean, classify_site(clean, {DurationModel::kEndless}));

  const json::Value v = to_json(agg.report());
  std::int64_t sites = 0;
  for (const json::Value& bucket : v["redundant_per_site"].as_array()) {
    sites += bucket["sites"].as_int();
  }
  EXPECT_EQ(sites, v["h2_sites"].as_int());
}

TEST(ObservationJson, FullRoundTrip) {
  SiteObservation site = redundant_site();
  site.connections[0].closed_at = 5000;
  site.connections[0].excluded_domains.push_back("rejected.example");
  site.connections[1].origin_set =
      std::vector<std::string>{"ga.metrics.example"};
  site.connections[1].protocol = "h3";
  site.filtered_requests = 3;

  const auto parsed = observation_from_json(to_json(site));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  const SiteObservation& round = parsed.value();
  EXPECT_EQ(round.site_url, site.site_url);
  EXPECT_EQ(round.filtered_requests, 3u);
  ASSERT_EQ(round.connections.size(), 2u);
  EXPECT_EQ(round.connections[0].endpoint, site.connections[0].endpoint);
  EXPECT_EQ(round.connections[0].closed_at, site.connections[0].closed_at);
  EXPECT_TRUE(round.connections[0].excludes("rejected.example"));
  EXPECT_EQ(round.connections[1].protocol, "h3");
  ASSERT_TRUE(round.connections[1].origin_set.has_value());
  EXPECT_EQ(round.connections[1].requests.size(), 1u);
  EXPECT_EQ(round.connections[1].requests[0].status, 200);

  // The classification of the round-tripped observation is identical.
  const auto cls_a = classify_site(site, {DurationModel::kEndless});
  const auto cls_b = classify_site(round, {DurationModel::kEndless});
  EXPECT_EQ(cls_a.redundant_connections(), cls_b.redundant_connections());
  EXPECT_EQ(cls_a.count_cause(Cause::kIp), cls_b.count_cause(Cause::kIp));
}

TEST(ObservationJson, DatasetRoundTrip) {
  std::vector<SiteObservation> sites = {redundant_site(), redundant_site()};
  sites[1].site_url = "https://y.example";
  const auto parsed = dataset_from_json(dataset_to_json(sites));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[1].site_url, "https://y.example");
}

TEST(ObservationJson, RejectsGarbage) {
  EXPECT_FALSE(dataset_from_json(json::parse("{}").value()).has_value());
  EXPECT_FALSE(observation_from_json(
                   json::parse(R"({"connections":[{"ip":"junk"}]})").value())
                   .has_value());
}

// ------------------- full-fidelity round trip (the journal's substrate)

/// Randomized report with every field populated — including attribution
/// tables far larger than the human-facing top-20 cut.
AggregateReport random_report(util::Rng& rng) {
  AggregateReport r;
  auto count = [&rng](std::uint64_t hi) { return rng.uniform(0, hi); };
  r.analyzed_sites = count(5000);
  r.h2_sites = count(4000);
  r.redundant_sites = count(3000);
  r.total_connections = count(100000);
  r.redundant_connections = count(50000);
  r.filtered_requests = count(9999);
  r.closed_connections = count(1234);
  r.cred_same_domain_connections = count(77);
  for (Cause cause : kAllCauses) {
    if (rng.uniform01() < 0.8) {
      r.by_cause[cause] = CauseTally{count(100), count(1000)};
    }
    if (rng.uniform01() < 0.7) {
      TimeHistogram& offsets = r.redundant_open_offsets[cause];
      for (std::uint64_t i = count(6); i > 0; --i) {
        offsets.add(static_cast<util::SimTime>(count(90000)), count(5) + 1);
      }
    }
  }
  for (std::uint64_t i = count(8); i > 0; --i) {
    r.redundant_per_site_histogram[count(40)] += count(200) + 1;
  }
  for (std::uint64_t i = count(30); i > 0; --i) {
    OriginTally tally;
    tally.connections = count(500);
    for (std::uint64_t j = count(4); j > 0; --j) {
      tally.previous_origins["prev" + std::to_string(count(50))] +=
          count(20) + 1;
    }
    if (rng.uniform01() < 0.5) tally.issuer = "CA" + std::to_string(count(9));
    r.ip_origins["origin" + std::to_string(i)] = tally;
    r.cert_domains["domain" + std::to_string(i)] = tally;
  }
  for (std::uint64_t i = count(25); i > 0; --i) {
    IssuerTally tally;
    tally.connections = count(800);
    for (std::uint64_t j = count(5); j > 0; --j) {
      // std::string("d") +: dodges GCC 12's -Wrestrict false positive
      // (PR 105651) on const char* + string&&.
      tally.domains.insert(std::string("d") + std::to_string(count(60)));
    }
    r.cert_issuers["issuer" + std::to_string(i)] = tally;
    r.all_issuers["issuer" + std::to_string(i)] = tally;
    AsTally as_tally;
    as_tally.connections = tally.connections;
    as_tally.domains = tally.domains;
    r.ip_ases["AS" + std::to_string(i)] = as_tally;
  }
  for (std::uint64_t i = count(12); i > 0; --i) {
    r.closed_lifetimes_ms.add(static_cast<util::SimTime>(count(600000)),
                              count(9) + 1);
  }
  return r;
}

TEST(ReportJsonFull, RandomizedRoundTripIsExact) {
  util::Rng rng{0xFEEDF00Du};
  for (int iteration = 0; iteration < 50; ++iteration) {
    const AggregateReport report = random_report(rng);
    const json::Value serialized = to_json_full(report);
    const auto round = report_from_json(serialized);
    ASSERT_TRUE(round.has_value()) << round.error().message;
    EXPECT_TRUE(*round == report) << "iteration " << iteration;
    // Through bytes too (the journal stores text, not Values).
    const auto reparsed = json::parse(json::write(serialized));
    ASSERT_TRUE(reparsed.has_value());
    const auto round2 = report_from_json(reparsed.value());
    ASSERT_TRUE(round2.has_value()) << round2.error().message;
    EXPECT_TRUE(*round2 == report) << "iteration " << iteration;
  }
}

TEST(ReportJsonFull, FullViewIsUntruncated) {
  util::Rng rng{0xABCDu};
  AggregateReport report;
  // More rows than the human-facing top-20 cut in every table.
  for (int i = 0; i < 40; ++i) {
    OriginTally tally;
    tally.connections = static_cast<std::uint64_t>(100 + i);
    tally.previous_origins[std::string("p") + std::to_string(i)] = 2;
    report.ip_origins[std::string("o") + std::to_string(i)] = tally;
  }
  const json::Value summary_view = to_json(report);
  const json::Value full_view = to_json_full(report);
  EXPECT_EQ(summary_view["ip_origins"].as_array().size(), 20u);
  EXPECT_EQ(full_view["ip_origins"].as_object().size(), 40u);
  // And kAllRows lifts the truncation on the summary view as well.
  EXPECT_EQ(to_json(report, kAllRows)["ip_origins"].as_array().size(), 40u);
  const auto round = report_from_json(full_view);
  ASSERT_TRUE(round.has_value());
  EXPECT_TRUE(*round == report);
}

json::Value full_with(const json::Value& base, const std::string& key,
                      json::Value replacement) {
  json::Object out = base.as_object();
  out.set(key, std::move(replacement));
  return json::Value{std::move(out)};
}

TEST(ReportJsonFull, RejectsMalformedDocuments) {
  util::Rng rng{0x5151u};
  const json::Value good = to_json_full(random_report(rng));
  ASSERT_TRUE(report_from_json(good).has_value());

  // Wrong root type.
  EXPECT_FALSE(report_from_json(json::Value{json::Array{}}).has_value());
  // Missing counter.
  {
    json::Object out;
    for (const auto& [k, v] : good.as_object()) {
      if (k != "h2_sites") out.set(k, v);
    }
    EXPECT_FALSE(report_from_json(json::Value{std::move(out)}).has_value());
  }
  // Negative counter.
  EXPECT_FALSE(report_from_json(
                   full_with(good, "total_connections",
                             json::Value{static_cast<std::int64_t>(-1)}))
                   .has_value());
  // Double where an integer is required.
  EXPECT_FALSE(
      report_from_json(full_with(good, "analyzed_sites", json::Value{3.25}))
          .has_value());
  // NaN / overflow never even parse into an int: out-of-int64 literals
  // become doubles, which the strict parser then rejects.
  const auto huge = json::parse(R"({"x": 99999999999999999999999999})");
  ASSERT_TRUE(huge.has_value());
  EXPECT_FALSE((*huge)["x"].is_int());
  EXPECT_FALSE(report_from_json(
                   full_with(good, "redundant_connections", (*huge)["x"]))
                   .has_value());
  // Unknown cause key.
  {
    json::Object causes = good["causes"].as_object();
    json::Object bogus;
    bogus.set("sites", static_cast<std::int64_t>(1));
    bogus.set("connections", static_cast<std::int64_t>(1));
    causes.set("GREMLINS", json::Value{std::move(bogus)});
    EXPECT_FALSE(
        report_from_json(full_with(good, "causes",
                                   json::Value{std::move(causes)}))
            .has_value());
  }
}

TEST(HistogramJson, RoundTripAndStrictness) {
  stats::TimeHistogram histogram;
  histogram.add(0, 3);
  histogram.add(122200, 1);
  histogram.add(600000, 7);
  const json::Value v = histogram_to_json(histogram);
  const auto round = histogram_from_json(v);
  ASSERT_TRUE(round.has_value()) << round.error().message;
  EXPECT_EQ(*round, histogram);

  EXPECT_TRUE(histogram_from_json(json::Value{json::Array{}})->empty());
  // Zero counts, non-integers and unsorted pairs are rejected.
  EXPECT_FALSE(histogram_from_json(json::parse("[[5,0]]").value()).has_value());
  EXPECT_FALSE(
      histogram_from_json(json::parse("[[5.5,1]]").value()).has_value());
  EXPECT_FALSE(
      histogram_from_json(json::parse("[[9,1],[3,1]]").value()).has_value());
  EXPECT_FALSE(
      histogram_from_json(json::parse("[[3,1],[3,1]]").value()).has_value());
}

TEST(FailureSummaryJson, RoundTripIncludesWatchdog) {
  fault::FailureSummary summary;
  summary.tls_handshake = 4;
  summary.goaways = 2;
  summary.fetch_attempts = 40;
  summary.successful_fetches = 37;
  summary.failed_fetches = 3;
  summary.retries = 5;
  summary.retry_successes = 4;
  summary.degraded_resources = 9;
  summary.degraded_sites = 2;
  summary.deadline_exceeded = 11;
  const auto round = failure_summary_from_json(to_json(summary));
  ASSERT_TRUE(round.has_value()) << round.error().message;
  EXPECT_TRUE(*round == summary);
  EXPECT_EQ(round->deadline_exceeded, 11u);

  // A ledger missing a fault kind (old writer, new reader) is rejected
  // rather than silently zero-filled.
  json::Object trimmed = to_json(summary).as_object();
  json::Object injected;
  injected.set("dns-timeout", static_cast<std::int64_t>(1));
  trimmed.set("injected", json::Value{std::move(injected)});
  EXPECT_FALSE(
      failure_summary_from_json(json::Value{std::move(trimmed)}).has_value());
}

}  // namespace
}  // namespace h2r::core

namespace h2r::netlog {
namespace {

TEST(NetLogJson, RoundTrip) {
  NetLog log;
  log.record(EventType::kSessionCreated, 100, 7,
             {{"ip", "10.0.0.5"}, {"domain", "a.example"}});
  log.record(EventType::kRequestFinished, 200, 7,
             {{"stream", "1"}, {"status", "200"}});
  const auto parsed = NetLog::from_json(log.to_json());
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->events()[0].type, EventType::kSessionCreated);
  EXPECT_EQ(parsed->events()[0].time, 100);
  EXPECT_EQ(parsed->events()[0].source_id, 7u);
  EXPECT_EQ(parsed->events()[0].param("domain"), "a.example");
  EXPECT_EQ(parsed->events()[1].param("status"), "200");
}

TEST(NetLogJson, RejectsUnknownEventTypes) {
  const auto bad = json::parse(
      R"({"events":[{"type":"NOT_A_THING","time":1,"source":1,"params":{}}]})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(NetLog::from_json(bad.value()).has_value());
}

TEST(NetLogJson, RejectsMissingEvents) {
  EXPECT_FALSE(NetLog::from_json(json::parse("{}").value()).has_value());
}

}  // namespace
}  // namespace h2r::netlog
