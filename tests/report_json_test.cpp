#include <gtest/gtest.h>

#include "core/advisor.hpp"
#include "core/observation_json.hpp"
#include "core/report_json.hpp"
#include "netlog/netlog.hpp"

namespace h2r::core {
namespace {

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s).value(); }

ConnectionRecord conn(std::uint64_t id, const char* address,
                      const char* domain, std::vector<std::string> sans,
                      util::SimTime opened_at) {
  ConnectionRecord rec;
  rec.id = id;
  rec.endpoint = net::Endpoint{ip(address), 443};
  rec.initial_domain = domain;
  rec.san_dns_names = std::move(sans);
  rec.issuer_organization = "CA";
  rec.has_certificate = true;
  rec.opened_at = opened_at;
  RequestRecord req;
  req.started_at = opened_at;
  req.finished_at = opened_at + 40;
  req.domain = domain;
  rec.requests.push_back(req);
  return rec;
}

SiteObservation redundant_site() {
  SiteObservation site;
  site.site_url = "https://x.example";
  site.connections = {
      conn(1, "10.0.0.1", "gtm.metrics.example", {"*.metrics.example"}, 0),
      conn(2, "10.0.0.2", "ga.metrics.example", {"*.metrics.example"}, 100),
  };
  return site;
}

TEST(ReportJson, AggregateReportSerializes) {
  Aggregator agg;
  const SiteObservation site = redundant_site();
  agg.add_site(site, classify_site(site, {DurationModel::kEndless}));
  const json::Value v = to_json(agg.report());
  EXPECT_EQ(v["h2_sites"].as_int(), 1);
  EXPECT_EQ(v["total_connections"].as_int(), 2);
  EXPECT_EQ(v["redundant_connections"].as_int(), 1);
  EXPECT_EQ(v["causes"]["IP"]["connections"].as_int(), 1);
  EXPECT_EQ(v["causes"]["CERT"]["connections"].as_int(), 0);
  const json::Value& origins = v["ip_origins"];
  ASSERT_EQ(origins.as_array().size(), 1u);
  EXPECT_EQ(origins.at(0)["origin"].as_string(), "ga.metrics.example");
  EXPECT_EQ(origins.at(0)["top_previous"]["origin"].as_string(),
            "gtm.metrics.example");
  // Must be valid JSON end-to-end.
  EXPECT_TRUE(json::parse(json::write(v)).has_value());
}

TEST(ReportJson, ClassificationSerializes) {
  const SiteObservation site = redundant_site();
  const json::Value v =
      to_json(classify_site(site, {DurationModel::kEndless}));
  EXPECT_EQ(v["redundant_connections"].as_int(), 1);
  ASSERT_EQ(v["findings"].as_array().size(), 1u);
  EXPECT_EQ(v["findings"].at(0)["connection_index"].as_int(), 1);
  EXPECT_EQ(v["findings"].at(0)["causes"].at(0).as_string(), "IP");
  EXPECT_EQ(v["findings"]
                .at(0)["reusable_previous"]["IP"]
                .at(0)
                .as_string(),
            "gtm.metrics.example");
}

TEST(ReportJson, AuditReportSerializes) {
  const json::Value v = to_json(audit_site(redundant_site()));
  EXPECT_EQ(v["site"].as_string(), "https://x.example");
  ASSERT_EQ(v["advice"].as_array().size(), 1u);
  EXPECT_EQ(v["advice"].at(0)["cause"].as_string(), "IP");
  EXPECT_FALSE(v["advice"].at(0)["remedy"].as_string().empty());
}

TEST(ReportJson, HistogramBucketsAccountForAllSites) {
  Aggregator agg;
  const SiteObservation site = redundant_site();
  agg.add_site(site, classify_site(site, {DurationModel::kEndless}));
  SiteObservation clean;
  clean.site_url = "https://clean.example";
  clean.connections = {conn(1, "10.0.0.9", "a.one", {"a.one"}, 0)};
  agg.add_site(clean, classify_site(clean, {DurationModel::kEndless}));

  const json::Value v = to_json(agg.report());
  std::int64_t sites = 0;
  for (const json::Value& bucket : v["redundant_per_site"].as_array()) {
    sites += bucket["sites"].as_int();
  }
  EXPECT_EQ(sites, v["h2_sites"].as_int());
}

TEST(ObservationJson, FullRoundTrip) {
  SiteObservation site = redundant_site();
  site.connections[0].closed_at = 5000;
  site.connections[0].excluded_domains.push_back("rejected.example");
  site.connections[1].origin_set =
      std::vector<std::string>{"ga.metrics.example"};
  site.connections[1].protocol = "h3";
  site.filtered_requests = 3;

  const auto parsed = observation_from_json(to_json(site));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  const SiteObservation& round = parsed.value();
  EXPECT_EQ(round.site_url, site.site_url);
  EXPECT_EQ(round.filtered_requests, 3u);
  ASSERT_EQ(round.connections.size(), 2u);
  EXPECT_EQ(round.connections[0].endpoint, site.connections[0].endpoint);
  EXPECT_EQ(round.connections[0].closed_at, site.connections[0].closed_at);
  EXPECT_TRUE(round.connections[0].excludes("rejected.example"));
  EXPECT_EQ(round.connections[1].protocol, "h3");
  ASSERT_TRUE(round.connections[1].origin_set.has_value());
  EXPECT_EQ(round.connections[1].requests.size(), 1u);
  EXPECT_EQ(round.connections[1].requests[0].status, 200);

  // The classification of the round-tripped observation is identical.
  const auto cls_a = classify_site(site, {DurationModel::kEndless});
  const auto cls_b = classify_site(round, {DurationModel::kEndless});
  EXPECT_EQ(cls_a.redundant_connections(), cls_b.redundant_connections());
  EXPECT_EQ(cls_a.count_cause(Cause::kIp), cls_b.count_cause(Cause::kIp));
}

TEST(ObservationJson, DatasetRoundTrip) {
  std::vector<SiteObservation> sites = {redundant_site(), redundant_site()};
  sites[1].site_url = "https://y.example";
  const auto parsed = dataset_from_json(dataset_to_json(sites));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[1].site_url, "https://y.example");
}

TEST(ObservationJson, RejectsGarbage) {
  EXPECT_FALSE(dataset_from_json(json::parse("{}").value()).has_value());
  EXPECT_FALSE(observation_from_json(
                   json::parse(R"({"connections":[{"ip":"junk"}]})").value())
                   .has_value());
}

}  // namespace
}  // namespace h2r::core

namespace h2r::netlog {
namespace {

TEST(NetLogJson, RoundTrip) {
  NetLog log;
  log.record(EventType::kSessionCreated, 100, 7,
             {{"ip", "10.0.0.5"}, {"domain", "a.example"}});
  log.record(EventType::kRequestFinished, 200, 7,
             {{"stream", "1"}, {"status", "200"}});
  const auto parsed = NetLog::from_json(log.to_json());
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->events()[0].type, EventType::kSessionCreated);
  EXPECT_EQ(parsed->events()[0].time, 100);
  EXPECT_EQ(parsed->events()[0].source_id, 7u);
  EXPECT_EQ(parsed->events()[0].param("domain"), "a.example");
  EXPECT_EQ(parsed->events()[1].param("status"), "200");
}

TEST(NetLogJson, RejectsUnknownEventTypes) {
  const auto bad = json::parse(
      R"({"events":[{"type":"NOT_A_THING","time":1,"source":1,"params":{}}]})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(NetLog::from_json(bad.value()).has_value());
}

TEST(NetLogJson, RejectsMissingEvents) {
  EXPECT_FALSE(NetLog::from_json(json::parse("{}").value()).has_value());
}

}  // namespace
}  // namespace h2r::netlog
