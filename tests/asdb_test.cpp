#include <gtest/gtest.h>

#include "asdb/asdb.hpp"

namespace h2r::asdb {
namespace {

net::Prefix pfx(const char* s) { return net::Prefix::parse(s).value(); }
net::IpAddress ip(const char* s) { return net::IpAddress::parse(s).value(); }

TEST(AsDatabase, EmptyLookupIsNull) {
  AsDatabase db;
  EXPECT_FALSE(db.lookup(ip("8.8.8.8")).has_value());
  EXPECT_EQ(db.size(), 0u);
}

TEST(AsDatabase, ExactPrefixMatch) {
  AsDatabase db;
  db.add(pfx("15.0.0.0/8"), {15169, "GOOGLE"});
  const auto hit = db.lookup(ip("15.1.2.3"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->asn, 15169u);
  EXPECT_EQ(hit->name, "GOOGLE");
  EXPECT_FALSE(db.lookup(ip("16.0.0.1")).has_value());
}

TEST(AsDatabase, LongestPrefixWins) {
  AsDatabase db;
  db.add(pfx("10.0.0.0/8"), {1, "BIG"});
  db.add(pfx("10.128.0.0/9"), {2, "MID"});
  db.add(pfx("10.128.64.0/18"), {3, "SMALL"});
  EXPECT_EQ(db.lookup(ip("10.1.1.1"))->name, "BIG");
  EXPECT_EQ(db.lookup(ip("10.200.1.1"))->name, "MID");
  EXPECT_EQ(db.lookup(ip("10.128.65.1"))->name, "SMALL");
}

TEST(AsDatabase, OverwriteSamePrefix) {
  AsDatabase db;
  db.add(pfx("10.0.0.0/8"), {1, "OLD"});
  db.add(pfx("10.0.0.0/8"), {2, "NEW"});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.lookup(ip("10.0.0.1"))->name, "NEW");
}

TEST(AsDatabase, DefaultRouteMatchesEverythingV4) {
  AsDatabase db;
  db.add(pfx("0.0.0.0/0"), {64512, "DEFAULT"});
  EXPECT_EQ(db.lookup(ip("1.1.1.1"))->name, "DEFAULT");
  EXPECT_EQ(db.lookup(ip("255.255.255.255"))->name, "DEFAULT");
  // v6 addresses do not match the v4 default route.
  EXPECT_FALSE(db.lookup(ip("::1")).has_value());
}

TEST(AsDatabase, V6Prefixes) {
  AsDatabase db;
  db.add(pfx("2001:db8::/32"), {64496, "DOC"});
  EXPECT_EQ(db.lookup(ip("2001:db8::1234"))->name, "DOC");
  EXPECT_FALSE(db.lookup(ip("2001:db9::1")).has_value());
}

TEST(AsDatabase, HostRoutes) {
  AsDatabase db;
  db.add(pfx("10.0.0.0/8"), {1, "NET"});
  db.add(pfx("10.0.0.7/32"), {2, "HOST"});
  EXPECT_EQ(db.lookup(ip("10.0.0.7"))->name, "HOST");
  EXPECT_EQ(db.lookup(ip("10.0.0.8"))->name, "NET");
}

TEST(AsDatabase, PrefixEnumeration) {
  AsDatabase db;
  db.add(pfx("10.0.0.0/8"), {1, "A"});
  db.add(pfx("192.168.0.0/16"), {2, "B"});
  db.add(pfx("2001:db8::/32"), {3, "C"});
  const auto prefixes = db.prefixes();
  EXPECT_EQ(prefixes.size(), 3u);
  EXPECT_EQ(db.size(), 3u);
}

TEST(AsDatabase, PaperTable6Shape) {
  // The attribution path used by Table 6: every redundant connection's IP
  // maps to the AS announcing its covering prefix.
  AsDatabase db;
  db.add(pfx("142.250.0.0/15"), {15169, "GOOGLE"});
  db.add(pfx("157.240.0.0/16"), {32934, "FACEBOOK"});
  db.add(pfx("13.32.0.0/14"), {16509, "AMAZON-02"});
  EXPECT_EQ(db.lookup(ip("142.251.33.14"))->name, "GOOGLE");
  EXPECT_EQ(db.lookup(ip("157.240.20.35"))->name, "FACEBOOK");
  EXPECT_EQ(db.lookup(ip("13.35.7.1"))->name, "AMAZON-02");
}

}  // namespace
}  // namespace h2r::asdb
