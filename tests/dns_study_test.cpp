#include <gtest/gtest.h>

#include "core/dns_study.hpp"
#include "dns/vantage.hpp"

namespace h2r::core {
namespace {

dns::RecordSet record(const char* name, int pool_from, int pool_to,
                      dns::LbPolicy policy, std::size_t answers = 1) {
  dns::RecordSet rs;
  rs.name = name;
  for (int i = pool_from; i <= pool_to; ++i) {
    rs.pool.push_back(net::IpAddress::v4(10, 0, 0, static_cast<std::uint8_t>(i)));
  }
  rs.lb.policy = policy;
  rs.lb.answer_count = answers;
  rs.lb.slot_duration = util::minutes(5);
  rs.lb.seed_salt = static_cast<std::uint64_t>(pool_from) * 131 + 7;
  return rs;
}

TEST(DnsOverlapStudy, StaticSamePoolAlwaysOverlaps) {
  dns::AuthoritativeServer authority;
  authority.add_record_set(record("a.x", 1, 4, dns::LbPolicy::kStatic, 2));
  authority.add_record_set(record("b.x", 1, 4, dns::LbPolicy::kStatic, 2));
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"a.x", "b.x"}};
  DnsOverlapConfig config;
  config.duration = util::hours(2);
  const auto series = run_dns_overlap_study(
      authority, pairs, dns::standard_vantage_points(), config);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].any_overlap_share(), 1.0);
  EXPECT_EQ(series[0].mean_overlap(), 14.0);  // every vantage point
}

TEST(DnsOverlapStudy, DisjointPoolsNeverOverlap) {
  dns::AuthoritativeServer authority;
  authority.add_record_set(
      record("gtm.x", 1, 4, dns::LbPolicy::kPerResolverShuffle, 2));
  authority.add_record_set(
      record("ga.x", 10, 14, dns::LbPolicy::kPerResolverShuffle, 2));
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"gtm.x", "ga.x"}};
  DnsOverlapConfig config;
  config.duration = util::hours(6);
  const auto series = run_dns_overlap_study(
      authority, pairs, dns::standard_vantage_points(), config);
  EXPECT_EQ(series[0].any_overlap_share(), 0.0);
  EXPECT_EQ(series[0].mean_overlap(), 0.0);
}

TEST(DnsOverlapStudy, SharedShuffledPoolOverlapsSometimes) {
  // The paper's "fluctuating" pairs (fonts.gstatic.com / gstatic.com).
  dns::AuthoritativeServer authority;
  authority.add_record_set(
      record("fonts.x", 1, 8, dns::LbPolicy::kPerResolverShuffle, 1));
  auto other = record("www.x", 1, 8, dns::LbPolicy::kPerResolverShuffle, 1);
  other.lb.seed_salt = 999;
  authority.add_record_set(other);
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"fonts.x", "www.x"}};
  DnsOverlapConfig config;
  config.duration = util::days(1);
  const auto series = run_dns_overlap_study(
      authority, pairs, dns::standard_vantage_points(), config);
  EXPECT_GT(series[0].mean_overlap(), 0.2);
  EXPECT_LT(series[0].mean_overlap(), 8.0);
  EXPECT_GT(series[0].any_overlap_share(), 0.1);
  EXPECT_LT(series[0].any_overlap_share(), 1.0);
}

TEST(DnsOverlapStudy, SlotTimingAndCount) {
  dns::AuthoritativeServer authority;
  authority.add_record_set(record("a.x", 1, 2, dns::LbPolicy::kStatic));
  authority.add_record_set(record("b.x", 1, 2, dns::LbPolicy::kStatic));
  DnsOverlapConfig config;
  config.start = util::days(2);
  config.duration = util::hours(1);
  config.step = util::minutes(6);  // the paper's interval
  const auto series = run_dns_overlap_study(
      authority, std::vector<std::pair<std::string, std::string>>{{"a.x", "b.x"}},
      dns::standard_vantage_points(), config);
  ASSERT_EQ(series[0].slots.size(), 10u);
  EXPECT_EQ(series[0].slots[0].time, util::days(2));
  EXPECT_EQ(series[0].slots[1].time, util::days(2) + util::minutes(6));
}

TEST(DnsOverlapStudy, UnresolvableDomainsYieldZero) {
  dns::AuthoritativeServer authority;
  authority.add_record_set(record("a.x", 1, 2, dns::LbPolicy::kStatic));
  DnsOverlapConfig config;
  config.duration = util::hours(1);
  const auto series = run_dns_overlap_study(
      authority,
      std::vector<std::pair<std::string, std::string>>{{"a.x", "missing.x"}},
      dns::standard_vantage_points(), config);
  EXPECT_EQ(series[0].mean_overlap(), 0.0);
}

TEST(DnsOverlapStudy, EmptySeriesStats) {
  DnsOverlapSeries s;
  EXPECT_EQ(s.any_overlap_share(), 0.0);
  EXPECT_EQ(s.mean_overlap(), 0.0);
}

}  // namespace
}  // namespace h2r::core
