// The observability substrate: metric accumulators and their commutative
// merge, the strict JSON snapshot round trip, the human renderings, and
// the golden span trace of one pinned site (seed 42 / crawl seed 1234,
// rank 0) — the trace is simulated-time-stamped, so its bytes are part of
// the determinism contract.
#include <gtest/gtest.h>

#include <string>

#include "browser/crawl.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/span.hpp"
#include "web/catalog.hpp"
#include "web/ecosystem.hpp"
#include "web/sitegen.hpp"

namespace h2r::obs {
namespace {

TEST(Metrics, CountersGaugesHistogramsAccumulate) {
  Metrics m;
  EXPECT_TRUE(m.empty());
  m.add("dns.queries");
  m.add("dns.queries", 4);
  m.gauge_max("browser.max_sessions_per_page", 3);
  m.gauge_max("browser.max_sessions_per_page", 7);
  m.gauge_max("browser.max_sessions_per_page", 5);
  m.observe("browser.page_load_ms", 120);
  m.observe("browser.page_load_ms", 120);
  m.observe("browser.page_load_ms", 480, 3);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.counter("dns.queries"), 5u);
  EXPECT_EQ(m.counter("never.recorded"), 0u);
  EXPECT_EQ(m.gauge("browser.max_sessions_per_page"), 7);
  EXPECT_EQ(m.gauge("never.recorded"), 0);
  const stats::TimeHistogram& h = m.histogram("browser.page_load_ms");
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h.at(120), 2u);
  EXPECT_EQ(h.at(480), 3u);
  EXPECT_TRUE(m.histogram("never.recorded").empty());
}

TEST(Metrics, MergeIsCommutative) {
  Metrics a;
  a.add("c", 2);
  a.gauge_max("g", 10);
  a.observe("h", 5);
  a.add_diag("d", 1);
  Metrics b;
  b.add("c", 3);
  b.add("only_b");
  b.gauge_max("g", 4);
  b.observe("h", 5, 2);
  b.observe("h", 9);

  Metrics ab = a;
  ab.merge(b);
  Metrics ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.counter("c"), 5u);
  EXPECT_EQ(ab.counter("only_b"), 1u);
  EXPECT_EQ(ab.gauge("g"), 10);
  EXPECT_EQ(ab.histogram("h").at(5), 3u);
  EXPECT_EQ(ab.histogram("h").at(9), 1u);
  EXPECT_EQ(ab.diag_counter("d"), 1u);
}

TEST(Metrics, DiagnosticsInvisibleToEqualityAndJson) {
  Metrics a;
  a.add("c");
  Metrics b;
  b.add("c");
  b.add_diag("crawl.chunks_claimed", 9);
  EXPECT_EQ(a, b);  // diag domain excluded, like WorkerCounters
  EXPECT_EQ(json::write(to_json(a)), json::write(to_json(b)));
}

TEST(MetricRegistry, ShardsMergeInAnyOrder) {
  MetricRegistry registry;
  registry.shard(0).add("c", 1);
  registry.shard(2).add("c", 4);  // creates shard 1 implicitly
  registry.shard(1).observe("h", 7);
  EXPECT_EQ(registry.shard_count(), 3u);
  const Metrics merged = registry.merged();
  EXPECT_EQ(merged.counter("c"), 5u);
  EXPECT_EQ(merged.histogram("h").at(7), 1u);
}

Metrics sample_metrics() {
  Metrics m;
  m.add("dns.queries", 123);
  m.add("tls.handshakes", 45);
  m.gauge_max("browser.max_sessions_per_page", 11);
  m.observe("browser.page_load_ms", 250, 2);
  m.observe("browser.page_load_ms", 900);
  m.add_diag("journal.bytes", 4096);
  return m;
}

TEST(MetricsJson, RoundTripsExactly) {
  const Metrics m = sample_metrics();
  const json::Value doc = to_json(m);
  const auto parsed = metrics_from_json(doc);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(*parsed, m);
  // And the re-serialized bytes match — what CI diffs.
  EXPECT_EQ(json::write(to_json(*parsed)), json::write(doc));
}

TEST(MetricsJson, ParserRejectsMalformedDocuments) {
  auto reject = [](const char* text, const char* why) {
    const auto doc = json::parse(text);
    ASSERT_TRUE(doc.has_value()) << text;
    const auto parsed = metrics_from_json(doc.value());
    EXPECT_FALSE(parsed.has_value()) << why;
  };
  reject("[]", "not an object");
  reject(R"({"counters":{},"gauges":{},"histograms":{},"bonus":{}})",
         "unknown top-level key");
  reject(R"({"counters":[],"gauges":{},"histograms":{}})",
         "counters section not an object");
  reject(R"({"counters":{"c":-1},"gauges":{},"histograms":{}})",
         "negative counter");
  reject(R"({"counters":{"c":1.5},"gauges":{},"histograms":{}})",
         "non-integer counter");
  reject(R"({"counters":{},"gauges":{"g":"x"},"histograms":{}})",
         "non-integer gauge");
  reject(R"({"counters":{},"gauges":{},"histograms":{"h":[[1]]}})",
         "histogram entry not a pair");
  reject(R"({"counters":{},"gauges":{},"histograms":{"h":[[1,0]]}})",
         "non-positive histogram count");
  reject(R"({"counters":{},"gauges":{},"histograms":{"h":[[5,1],[5,2]]}})",
         "unsorted/duplicate histogram samples");
}

TEST(MetricsRender, TableListsEveryDomain) {
  const std::string table = render_table(sample_metrics());
  EXPECT_NE(table.find("dns.queries"), std::string::npos);
  EXPECT_NE(table.find("browser.max_sessions_per_page"), std::string::npos);
  EXPECT_NE(table.find("browser.page_load_ms"), std::string::npos);
  EXPECT_NE(table.find("p50="), std::string::npos);
  EXPECT_NE(table.find("(diagnostic)"), std::string::npos);
  EXPECT_EQ(render_table(Metrics{}), "");
}

// ------------------------------------------------------------- span trees

TEST(Trace, BuildsParentChildStructure) {
  Trace trace;
  trace.site = "https://example.org";
  const int root = trace.begin_span("page.load", 100);
  const int child = trace.begin_span("dns.resolve", 100, root);
  trace.end_span(child, 100);
  trace.end_span(root, 250);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[0].parent, -1);
  EXPECT_EQ(trace.spans[1].parent, root);
  EXPECT_EQ(trace.spans[0].end, 250);
  const json::Value doc = to_json(trace);
  EXPECT_EQ(doc["site"].as_string(), "https://example.org");
  EXPECT_EQ(doc["spans"].as_array().size(), 2u);
}

Trace crawl_pinned_trace() {
  web::Ecosystem eco{42};
  web::ServiceCatalog catalog{eco, 42};
  web::SiteUniverse universe{eco, catalog};
  browser::CrawlOptions options;
  options.seed = 1234;
  options.browser.record_trace = true;
  Trace trace;
  browser::crawl_range(universe, 0, 1, options,
                       [&](const browser::SiteResult& site) {
                         trace = site.page.trace;
                       });
  return trace;
}

// The golden render of site rank 0 under universe seed 42 / crawl seed
// 1234. Every timestamp is simulated, so this string is stable across
// machines, thread counts and runs; it changes only when the browser
// model itself changes (then re-pin deliberately).
constexpr const char* kGoldenTrace =
    "https://www.site0.com\n"
    "  page.load [86400000 .. 86402419]\n"
    "    dns.resolve [86400000 .. 86400000] from_cache=0 host=www.site0.com\n"
    "    h2.session [86400000 .. 86402419] host=www.site0.com "
    "ip=104.21.26.71 protocol=h2\n"
    "      tls.handshake [86400000 .. 86400095]\n"
    "    dns.resolve [86400197 .. 86400197] from_cache=0 host=fonts.gstatic.com\n"
    "    h2.session [86400197 .. 86402419] host=fonts.gstatic.com "
    "ip=142.250.0.4 protocol=h2\n"
    "      tls.handshake [86400197 .. 86400262]\n"
    "    dns.resolve [86400299 .. 86400299] from_cache=0 "
    "host=fonts.googleapis.com\n"
    "    h2.session [86400299 .. 86402419] host=fonts.googleapis.com "
    "ip=142.250.0.14 protocol=h2\n"
    "      tls.handshake [86400299 .. 86400366]\n"
    "    dns.resolve [86400324 .. 86400324] from_cache=0 host=img.site0.com\n"
    "    h2.session [86400324 .. 86402419] host=img.site0.com "
    "ip=104.21.26.71 protocol=h2\n"
    "      tls.handshake [86400324 .. 86400415]\n"
    "    dns.resolve [86400424 .. 86400424] from_cache=1 host=fonts.gstatic.com\n"
    "    h2.session [86400424 .. 86402419] host=fonts.gstatic.com "
    "ip=142.250.0.6 protocol=h2\n"
    "      tls.handshake [86400424 .. 86400490]\n"
    "    dns.resolve [86400465 .. 86400465] from_cache=0 host=www.gstatic.com\n"
    "    h2.session [86400465 .. 86402419] host=www.gstatic.com "
    "ip=142.250.0.3 protocol=h2\n"
    "      tls.handshake [86400465 .. 86400533]\n"
    "    dns.resolve [86400506 .. 86400506] from_cache=0 "
    "host=www.googletagmanager.com\n"
    "    h2.session [86400506 .. 86402419] host=www.googletagmanager.com "
    "ip=142.250.0.7 protocol=h2\n"
    "      tls.handshake [86400506 .. 86400576]\n"
    "    dns.resolve [86400607 .. 86400607] from_cache=0 "
    "host=cdn.svc36.example-cdn.net\n"
    "    h2.session [86400607 .. 86402419] host=cdn.svc36.example-cdn.net "
    "ip=152.195.0.2 protocol=h2\n"
    "      tls.handshake [86400607 .. 86400679]\n"
    "    dns.resolve [86400671 .. 86400671] from_cache=0 "
    "host=www.google-analytics.com\n"
    "    h2.session [86400671 .. 86402419] host=www.google-analytics.com "
    "ip=142.250.0.9 protocol=h2\n"
    "      tls.handshake [86400671 .. 86400738]\n"
    "    dns.resolve [86400716 .. 86400716] from_cache=0 host=apis.google.com\n"
    "    h2.session [86400716 .. 86402419] host=apis.google.com "
    "ip=142.250.0.16 protocol=h2\n"
    "      tls.handshake [86400716 .. 86400780]\n"
    "    dns.resolve [86400829 .. 86400829] from_cache=0 "
    "host=cdn.svc47.example-cdn.net\n"
    "    h2.session [86400829 .. 86402419] host=cdn.svc47.example-cdn.net "
    "ip=13.32.0.47 protocol=h2\n"
    "      tls.handshake [86400829 .. 86400865]\n"
    "    dns.resolve [86400889 .. 86400889] from_cache=0 "
    "host=cdn.svc140.example-cdn.net\n"
    "    h2.session [86400889 .. 86402419] host=cdn.svc140.example-cdn.net "
    "ip=13.32.0.125 protocol=h2\n"
    "      tls.handshake [86400889 .. 86400922]\n"
    "    dns.resolve [86400949 .. 86400949] from_cache=0 "
    "host=cdn.svc24.example-cdn.net\n"
    "    h2.session [86400949 .. 86402419] host=cdn.svc24.example-cdn.net "
    "ip=54.144.0.9 protocol=h2\n"
    "      tls.handshake [86400949 .. 86401002]\n"
    "    dns.resolve [86401013 .. 86401013] from_cache=0 "
    "host=app.svc140.example-cdn.net\n"
    "    dns.resolve [86401133 .. 86401133] from_cache=0 host=ogs.google.com\n"
    "    dns.resolve [86401212 .. 86401212] from_cache=0 host=www.google.de\n"
    "    dns.resolve [86401385 .. 86401385] from_cache=0 "
    "host=stats.g.doubleclick.net\n"
    "    h2.session [86401385 .. 86402419] host=stats.g.doubleclick.net "
    "ip=142.250.0.21 protocol=h2\n"
    "      tls.handshake [86401385 .. 86401454]\n"
    "    site.classify [86402419 .. 86402419]\n";

TEST(TraceGolden, PinnedSiteRendersExactly) {
  const Trace trace = crawl_pinned_trace();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.site, "https://www.site0.com");
  EXPECT_EQ(trace.spans[0].name, "page.load");
  EXPECT_EQ(trace.spans[0].parent, -1);
  for (std::size_t i = 1; i < trace.spans.size(); ++i) {
    // Pre-order invariant: every child follows its parent.
    ASSERT_GE(trace.spans[i].parent, 0) << "span " << i;
    ASSERT_LT(trace.spans[i].parent, static_cast<int>(i)) << "span " << i;
  }
  EXPECT_EQ(render(trace), kGoldenTrace);
}

TEST(TraceGolden, RerunIsBitIdentical) {
  EXPECT_EQ(render(crawl_pinned_trace()), render(crawl_pinned_trace()));
}

TEST(TraceOffByDefault, StudyPathAllocatesNoSpans) {
  web::Ecosystem eco{42};
  web::ServiceCatalog catalog{eco, 42};
  web::SiteUniverse universe{eco, catalog};
  browser::CrawlOptions options;
  options.seed = 1234;  // record_trace left off
  bool saw_site = false;
  browser::crawl_range(universe, 0, 1, options,
                       [&](const browser::SiteResult& site) {
                         saw_site = true;
                         EXPECT_TRUE(site.page.trace.empty());
                       });
  EXPECT_TRUE(saw_site);
}

}  // namespace
}  // namespace h2r::obs
