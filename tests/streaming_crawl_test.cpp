// Differential scale suite for the streaming study engine.
//
// The contract under test: a streaming study (lazy per-rank site
// regeneration through bounded per-worker caches, chunk-windowed report
// folding) is BIT-IDENTICAL to the materialized study — same report
// JSON, same metric snapshot — at every thread count and fault rate,
// survives a mid-campaign crash/resume like the materialized engine, and
// keeps the process's peak RSS under an externally imposed budget.
//
// Identity is asserted on serialized bytes, not just operator==: the
// full-fidelity report codec and the deterministic metric snapshot are
// what CI diffs byte-for-byte, so that is what this suite pins.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/classify.hpp"
#include "core/report_json.hpp"
#include "experiments/study.hpp"
#include "journal/journal.hpp"
#include "journal/spill.hpp"
#include "obs/metrics.hpp"
#include "obs/process.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "web/catalog.hpp"
#include "web/ecosystem.hpp"
#include "web/sitegen.hpp"

namespace h2r::experiments {
namespace {

StudyConfig small_config(double fault_rate) {
  StudyConfig config;
  config.har_sites = 90;
  config.alexa_sites = 80;
  config.har_first_rank = 30;
  config.seed = 7;
  config.threads = 3;
  if (fault_rate > 0) config.faults = fault::FaultConfig::uniform(fault_rate);
  return config;
}

/// Every report of the study, serialized through the full-fidelity codec —
/// the byte stream the differential contract is about.
std::string report_bytes(const StudyResults& results) {
  std::string bytes;
  for (const core::AggregateReport* report :
       {&results.har_endless, &results.har_immediate, &results.alexa_exact,
        &results.alexa_endless, &results.nofetch_exact,
        &results.overlap_har_endless, &results.overlap_alexa_endless}) {
    bytes += json::write(core::to_json_full(*report));
    bytes += '\n';
  }
  bytes += std::to_string(results.overlap_sites);
  return bytes;
}

/// The deterministic metric snapshot, serialized exactly like
/// H2R_METRICS / `h2r study --metrics` writes it.
std::string metric_bytes(const StudyResults& results) {
  json::WriteOptions opts;
  opts.pretty = true;
  return json::write(obs::to_json(results.metrics), opts);
}

/// Measurement identity: summaries and full-fidelity report bytes. This
/// is the part that survives a resume (metrics deliberately cover only
/// the sites crawled THIS run — see StudyResults::metrics).
void expect_identical_measurements(const StudyResults& got,
                                   const StudyResults& want) {
  EXPECT_TRUE(got.har_summary == want.har_summary);
  EXPECT_TRUE(got.alexa_summary == want.alexa_summary);
  EXPECT_TRUE(got.nofetch_summary == want.nofetch_summary);
  EXPECT_EQ(report_bytes(got), report_bytes(want));
}

/// Full identity, metric snapshot included — what uninterrupted streaming
/// runs owe the materialized baseline.
void expect_identical(const StudyResults& got, const StudyResults& want) {
  expect_identical_measurements(got, want);
  EXPECT_EQ(metric_bytes(got), metric_bytes(want));
}

/// The tentpole differential: one materialized baseline per fault rate,
/// then streaming runs across thread counts must reproduce its bytes.
void streaming_matches_materialized(double fault_rate) {
  const StudyResults baseline = run_study(small_config(fault_rate));
  for (const unsigned threads : {1u, 2u, 7u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StudyConfig config = small_config(fault_rate);
    config.stream = true;
    config.threads = threads;
    const StudyResults streamed = run_study(config);
    expect_identical(streamed, baseline);
  }
}

TEST(StreamingCrawl, FaultFreeStreamingIsBitIdenticalAcrossThreadCounts) {
  streaming_matches_materialized(0.0);
}

TEST(StreamingCrawl, FaultyStreamingIsBitIdenticalAcrossThreadCounts) {
  streaming_matches_materialized(0.25);
}

TEST(StreamingCrawl, SpillingStudyIsBitIdenticalToResidentStreaming) {
  // The study-level spill differential: --stream with ReportFold spill
  // files must reproduce the resident streaming run's bytes exactly —
  // the spill file is a framed detour, not a different aggregation.
  StudyConfig resident_config = small_config(0.0);
  resident_config.stream = true;
  resident_config.threads = 2;
  const StudyResults resident = run_study(resident_config);

  for (const unsigned threads : {1u, 3u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StudyConfig config = small_config(0.0);
    config.stream = true;
    config.threads = threads;
    config.spill_dir = ::testing::TempDir();
    const StudyResults spilled = run_study(config);
    expect_identical(spilled, resident);
    // The spill actually happened: every fold wrote frames.
    EXPECT_GT(spilled.spill_bytes, 0u);
  }
}

TEST(StreamingCrawl, SpillWithoutWindowedModeIsAHardError) {
  // A spilling fold outside stream/journal mode would silently fold
  // nothing and return empty reports — run_study must refuse instead.
  StudyConfig config = small_config(0.0);
  config.spill_dir = ::testing::TempDir();
  EXPECT_THROW(run_study(config), std::runtime_error);
}

TEST(StreamingCrawl, HistogramBudgetIsModeIndependent) {
  // A budgeted streaming run must equal a budgeted materialized run —
  // the sketch coarsens identically on both paths.
  StudyConfig materialized = small_config(0.0);
  materialized.hist_budget = 8;
  const StudyResults baseline = run_study(materialized);

  StudyConfig streamed_config = materialized;
  streamed_config.stream = true;
  streamed_config.threads = 2;
  const StudyResults streamed = run_study(streamed_config);
  expect_identical(streamed, baseline);
}

// ------------------------------------------------- crash/resume parity

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void dump(const std::string& path, const std::string& data) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::uint32_t frame_length(const std::string& data, std::size_t offset) {
  return static_cast<std::uint32_t>(
             static_cast<unsigned char>(data[offset])) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 1]))
          << 8) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 2]))
          << 16) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 3]))
          << 24);
}

std::size_t offset_after(const std::string& data, std::size_t entries) {
  std::size_t offset = 0;
  for (std::size_t frame = 0; frame < entries + 1; ++frame) {
    offset += 8 + frame_length(data, offset);
  }
  return offset;
}

TEST(StreamingCrawl, StreamingStudySurvivesMidCampaignCrashAndResume) {
  // Same kill-and-resume drill as journal_resume_test, but with the
  // streaming engine on BOTH sides of the crash: the journaled windows a
  // streaming run commits must recover into the same bytes a
  // materialized, uninterrupted run produces.
  const StudyResults clean = run_study(small_config(0.0));

  const std::string path =
      std::string(::testing::TempDir()) + "/streaming_resume.journal";
  StudyConfig journaled_config = small_config(0.0);
  journaled_config.stream = true;
  journaled_config.journal_path = path;
  const StudyResults journaled = run_study(journaled_config);
  expect_identical(journaled, clean);
  EXPECT_GT(journaled.journal_bytes, 0u);

  auto contents = journal::read_journal(path);
  ASSERT_TRUE(contents) << contents.error().message;
  ASSERT_GE(contents->entries.size(), 4u)
      << "config too small to test a mid-run crash";

  // "Crash" after half the committed chunks, tearing the next frame.
  const std::size_t keep = contents->entries.size() / 2;
  const std::string data = slurp(path);
  std::size_t cut = offset_after(data, keep);
  const std::size_t next_end = cut + 8 + frame_length(data, cut);
  cut = (cut + next_end) / 2;
  dump(path, data.substr(0, cut));

  StudyConfig resume_config = small_config(0.0);
  resume_config.stream = true;
  resume_config.journal_path = path;
  resume_config.resume = true;
  resume_config.threads = 5;
  const StudyResults resumed = run_study(resume_config);
  expect_identical_measurements(resumed, clean);
  EXPECT_EQ(resumed.resumed_chunks, keep);
  EXPECT_GT(resumed.resumed_sites, 0u);
}

TEST(StreamingCrawl, MaterializedJournalResumesIntoStreamingRun) {
  // `stream` is absent from the journal fingerprint on purpose: the two
  // modes produce identical bytes, so a journal written materialized must
  // resume under the streaming engine (and vice versa).
  const StudyResults clean = run_study(small_config(0.0));

  const std::string path =
      std::string(::testing::TempDir()) + "/streaming_crossmode.journal";
  StudyConfig journaled_config = small_config(0.0);
  journaled_config.journal_path = path;
  const StudyResults journaled = run_study(journaled_config);
  expect_identical(journaled, clean);

  auto contents = journal::read_journal(path);
  ASSERT_TRUE(contents) << contents.error().message;
  const std::size_t keep = contents->entries.size() / 2;
  const std::string data = slurp(path);
  dump(path, data.substr(0, offset_after(data, keep)));

  StudyConfig resume_config = small_config(0.0);
  resume_config.stream = true;  // journal was written materialized
  resume_config.journal_path = path;
  resume_config.resume = true;
  const StudyResults resumed = run_study(resume_config);
  expect_identical_measurements(resumed, clean);
  EXPECT_EQ(resumed.resumed_chunks, keep);
}

// ------------------------------------------------ ReportFold spill path

net::IpAddress ip(const std::string& s) {
  return net::IpAddress::parse(s).value();
}

/// Synthetic site in the report_merge_test mold: enough connection
/// variety to populate cause tallies, origin tables and histograms.
core::SiteObservation random_site(util::Rng& rng, std::size_t index) {
  static const char* kDomains[] = {"cdn.ex", "ads.ex",  "img.ex",
                                   "api.ex", "tags.ex", "sso.ex"};
  core::SiteObservation site;
  site.site_url = "https://site-" + std::to_string(index) + ".test";
  const std::size_t conns = rng.uniform(1, 5);
  for (std::size_t c = 0; c < conns; ++c) {
    core::ConnectionRecord rec;
    rec.id = c + 1;
    rec.endpoint =
        net::Endpoint{ip("10.0.0." + std::to_string(rng.uniform(1, 4))), 443};
    rec.initial_domain = kDomains[rng.index(6)];
    rec.san_dns_names = {"*.ex", rec.initial_domain};
    rec.issuer_organization =
        std::string("CA-") + std::string(1, rec.initial_domain[0]);
    rec.has_certificate = true;
    rec.opened_at = static_cast<util::SimTime>(rng.uniform(0, 4000));
    if (rng.chance(0.3)) {
      rec.closed_at = rec.opened_at +
                      static_cast<util::SimTime>(rng.uniform(100, 200000));
    }
    core::RequestRecord req;
    req.started_at = rec.opened_at;
    req.finished_at = rec.opened_at + 50;
    req.domain = rec.initial_domain;
    rec.requests.push_back(req);
    site.connections.push_back(std::move(rec));
  }
  return site;
}

journal::ChunkCheckpoint random_window(util::Rng& rng, std::size_t index) {
  journal::ChunkCheckpoint window;
  window.campaign = "alexa";
  const std::size_t sites = rng.uniform(2, 6);
  window.ranges.emplace_back(index * 10, sites);
  core::Aggregator agg;
  for (std::size_t s = 0; s < sites; ++s) {
    const core::SiteObservation site = random_site(rng, index * 10 + s);
    agg.add_site(site,
                 core::classify_site(site, {core::DurationModel::kEndless}));
    ++window.summary.sites_visited;
    window.summary.connections_opened += site.connections.size();
  }
  window.reports.emplace_back("exact", agg.report());
  window.overlap_sites = rng.uniform(0, 3);
  return window;
}

TEST(ReportFold, SpillingFoldReplaysToResidentTotals) {
  // The spill file round-trips windows through the journal codec; because
  // merges are commutative and the codec is full fidelity, the replayed
  // totals must equal a resident fold of the same windows — in any
  // arrival order.
  util::Rng rng{0xF01D};
  std::vector<journal::ChunkCheckpoint> windows;
  for (std::size_t i = 0; i < 8; ++i) windows.push_back(random_window(rng, i));

  journal::ReportFold resident;
  for (const auto& window : windows) {
    auto folded = resident.fold(window);
    ASSERT_TRUE(folded);
  }

  const std::string path =
      std::string(::testing::TempDir()) + "/report_fold.spill";
  auto spilling = journal::ReportFold::spilling(path);
  ASSERT_TRUE(spilling) << spilling.error().message;
  std::vector<std::size_t> order(windows.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (const std::size_t i : order) {
    auto folded = (*spilling)->fold(windows[i]);
    ASSERT_TRUE(folded) << folded.error().message;
  }
  EXPECT_EQ((*spilling)->windows(), windows.size());

  auto resident_totals = resident.finish();
  ASSERT_TRUE(resident_totals);
  auto spilled_totals = (*spilling)->finish();
  ASSERT_TRUE(spilled_totals) << spilled_totals.error().message;

  EXPECT_EQ(spilled_totals->windows, resident_totals->windows);
  EXPECT_EQ(spilled_totals->overlap_sites, resident_totals->overlap_sites);
  EXPECT_TRUE(spilled_totals->summary == resident_totals->summary);
  ASSERT_EQ(spilled_totals->reports.size(), resident_totals->reports.size());
  for (const auto& [name, report] : resident_totals->reports) {
    ASSERT_TRUE(spilled_totals->reports.count(name));
    EXPECT_EQ(spilled_totals->reports.at(name), report) << name;
  }
  EXPECT_GT(spilled_totals->spill_bytes, 0u);
}

TEST(ReportFold, TornSpillTailIsAHardError) {
  const std::string path =
      std::string(::testing::TempDir()) + "/report_fold_torn.spill";
  auto fold = journal::ReportFold::spilling(path);
  ASSERT_TRUE(fold) << fold.error().message;
  util::Rng rng{0xBAD};
  for (std::size_t i = 0; i < 3; ++i) {
    auto folded = (*fold)->fold(random_window(rng, i));
    ASSERT_TRUE(folded);
  }
  // Tear the last frame in half before finish() replays the file. A torn
  // SPILL tail means this process lost a window — unlike the crash
  // journal, that is corruption, not recoverable progress.
  const std::string data = slurp(path);
  dump(path, data.substr(0, offset_after(data, 2) + 4));
  auto totals = (*fold)->finish();
  ASSERT_FALSE(totals);
  EXPECT_NE(totals.error().message.find("torn"), std::string::npos)
      << totals.error().message;
}

// --------------------------------------------------- peak-RSS budgeting

TEST(StreamingScale, PeakRssStaysWithinBudget) {
  // Opt-in memory gate (the CI scale job sets the env): a streaming
  // study over H2R_SCALE_SITES sites must keep the process's VmHWM under
  // H2R_RSS_BUDGET_MB. Run it in isolation — the high-water mark is
  // process-wide, so other tests in the same process inflate it.
  const std::uint64_t budget_mb = util::env_u64("H2R_RSS_BUDGET_MB", 0, 1);
  if (budget_mb == 0) {
    GTEST_SKIP() << "set H2R_RSS_BUDGET_MB (and optionally H2R_SCALE_SITES) "
                    "to enable the memory gate";
  }
  const std::size_t scale_sites = static_cast<std::size_t>(
      util::env_u64("H2R_SCALE_SITES", 100'000, 1));

  StudyConfig config;
  config.alexa_sites = scale_sites;
  config.har_sites = std::max<std::size_t>(scale_sites / 10, 1);
  config.har_first_rank = scale_sites / 2;
  config.run_har = false;       // one campaign is enough to hit the scale
  config.run_no_fetch = false;
  config.seed = 42;
  config.threads = 4;
  config.stream = true;
  config.hist_budget = 64;
  const StudyResults results = run_study(config);
  EXPECT_EQ(results.alexa_summary.sites_visited +
                results.alexa_summary.sites_unreachable,
            scale_sites);

  const std::uint64_t rss_kib = obs::peak_rss_kib();
  if (rss_kib == 0) GTEST_SKIP() << "peak RSS unavailable on this platform";
  EXPECT_LE(rss_kib, budget_mb * 1024)
      << "streaming study peaked at " << rss_kib / 1024 << " MiB, budget is "
      << budget_mb << " MiB";
}

}  // namespace
}  // namespace h2r::experiments
