#include <gtest/gtest.h>

#include <set>

#include "dns/authoritative.hpp"
#include "dns/resolver.hpp"
#include "dns/vantage.hpp"

namespace h2r::dns {
namespace {

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s).value(); }

std::vector<net::IpAddress> pool(int n) {
  std::vector<net::IpAddress> out;
  for (int i = 1; i <= n; ++i) {
    out.push_back(net::IpAddress::v4(10, 0, 0, static_cast<std::uint8_t>(i)));
  }
  return out;
}

QueryContext ctx_at(util::SimTime now, std::uint64_t resolver = 0,
                    std::string region = "eu") {
  QueryContext ctx;
  ctx.resolver_id = resolver;
  ctx.region = std::move(region);
  ctx.now = now;
  return ctx;
}

TEST(Zone, AddAndFind) {
  Zone zone{"example.com"};
  zone.add_addresses("www.Example.COM", pool(2), {});
  zone.add_cname("alias.example.com", "www.example.com");
  EXPECT_EQ(zone.size(), 2u);
  ASSERT_NE(zone.find("www.example.com"), nullptr);
  EXPECT_EQ(zone.find("www.example.com")->type, RecordType::kA);
  EXPECT_EQ(zone.find("alias.example.com")->cname_target, "www.example.com");
  EXPECT_EQ(zone.find("nope.example.com"), nullptr);
}

TEST(Authority, NxDomain) {
  AuthoritativeServer authority;
  const Answer a = authority.query("unknown.example", ctx_at(0));
  EXPECT_FALSE(a.ok);
  EXPECT_TRUE(a.addresses.empty());
}

TEST(Authority, StaticPolicyReturnsPoolPrefix) {
  AuthoritativeServer authority;
  RecordSet rs;
  rs.name = "static.example";
  rs.pool = pool(4);
  rs.lb.policy = LbPolicy::kStatic;
  rs.lb.answer_count = 2;
  authority.add_record_set(rs);

  const Answer a = authority.query("static.example", ctx_at(0));
  ASSERT_TRUE(a.ok);
  ASSERT_EQ(a.addresses.size(), 2u);
  EXPECT_EQ(a.addresses[0], ip("10.0.0.1"));
  EXPECT_EQ(a.addresses[1], ip("10.0.0.2"));
  // Same answer at any time, for any resolver.
  EXPECT_EQ(authority.query("static.example", ctx_at(util::days(2), 7)).addresses,
            a.addresses);
}

TEST(Authority, AnswerCountClampedToPool) {
  AuthoritativeServer authority;
  RecordSet rs;
  rs.name = "small.example";
  rs.pool = pool(2);
  rs.lb.answer_count = 10;
  authority.add_record_set(rs);
  EXPECT_EQ(authority.query("small.example", ctx_at(0)).addresses.size(), 2u);
}

TEST(Authority, RoundRobinRotatesWithSlots) {
  AuthoritativeServer authority;
  RecordSet rs;
  rs.name = "rr.example";
  rs.pool = pool(4);
  rs.lb.policy = LbPolicy::kRoundRobin;
  rs.lb.answer_count = 1;
  rs.lb.slot_duration = util::minutes(10);
  authority.add_record_set(rs);

  const Answer slot0 = authority.query("rr.example", ctx_at(0));
  const Answer slot1 =
      authority.query("rr.example", ctx_at(util::minutes(10)));
  const Answer slot4 =
      authority.query("rr.example", ctx_at(util::minutes(40)));
  EXPECT_NE(slot0.addresses[0], slot1.addresses[0]);
  EXPECT_EQ(slot0.addresses[0], slot4.addresses[0]);  // wraps around
  // Synchronized: identical for all resolvers.
  EXPECT_EQ(authority.query("rr.example", ctx_at(0, 9)).addresses,
            slot0.addresses);
}

TEST(Authority, PerResolverShuffleDiffersAcrossResolversAndNames) {
  AuthoritativeServer authority{1};
  for (const char* name : {"a.example", "b.example"}) {
    RecordSet rs;
    rs.name = name;
    rs.pool = pool(8);
    rs.lb.policy = LbPolicy::kPerResolverShuffle;
    rs.lb.answer_count = 1;
    rs.lb.slot_duration = util::minutes(5);
    rs.lb.seed_salt = 42;
    authority.add_record_set(rs);
  }
  // Deterministic per (resolver, slot).
  EXPECT_EQ(authority.query("a.example", ctx_at(0, 1)).addresses,
            authority.query("a.example", ctx_at(0, 1)).addresses);
  // Different resolvers usually see different answers; over 14 resolvers
  // at least two must disagree (pool of 8).
  std::set<net::IpAddress> seen;
  for (std::uint64_t r = 0; r < 14; ++r) {
    seen.insert(authority.query("a.example", ctx_at(0, r)).addresses[0]);
  }
  EXPECT_GT(seen.size(), 1u);
  // Same pool, same salt, different NAME -> independent rotation
  // (the paper's "unsynchronized" load balancing).
  int diff = 0;
  for (std::uint64_t r = 0; r < 14; ++r) {
    if (authority.query("a.example", ctx_at(0, r)).addresses !=
        authority.query("b.example", ctx_at(0, r)).addresses) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 5);
}

TEST(Authority, ShuffleChangesAcrossSlots) {
  AuthoritativeServer authority{1};
  RecordSet rs;
  rs.name = "rot.example";
  rs.pool = pool(16);
  rs.lb.policy = LbPolicy::kPerResolverShuffle;
  rs.lb.answer_count = 1;
  rs.lb.slot_duration = util::minutes(5);
  authority.add_record_set(rs);
  std::set<net::IpAddress> seen;
  for (int slot = 0; slot < 20; ++slot) {
    seen.insert(
        authority.query("rot.example", ctx_at(util::minutes(5) * slot, 3))
            .addresses[0]);
  }
  EXPECT_GT(seen.size(), 4u);
}

TEST(Authority, GeoPolicyStablePerRegion) {
  AuthoritativeServer authority{1};
  RecordSet rs;
  rs.name = "geo.example";
  rs.pool = pool(8);
  rs.lb.policy = LbPolicy::kGeo;
  rs.lb.answer_count = 1;
  authority.add_record_set(rs);

  const auto eu0 = authority.query("geo.example", ctx_at(0, 0, "eu"));
  const auto eu_later =
      authority.query("geo.example", ctx_at(util::days(5), 3, "eu"));
  EXPECT_EQ(eu0.addresses, eu_later.addresses);  // time/resolver invariant
  // Different regions generally map elsewhere; check at least one of a few
  // regions differs.
  bool differs = false;
  for (const char* region : {"us", "apac", "sa"}) {
    if (authority.query("geo.example", ctx_at(0, 0, region)).addresses !=
        eu0.addresses) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Authority, CnameChainsAreFollowed) {
  AuthoritativeServer authority;
  Zone zone{"example.com"};
  zone.add_cname("a.example.com", "b.example.com");
  zone.add_cname("b.example.com", "c.example.com");
  zone.add_addresses("c.example.com", pool(1), {}, 60);
  authority.add_zone(std::move(zone));

  const Answer a = authority.query("a.example.com", ctx_at(0));
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.cname_chain,
            (std::vector<std::string>{"b.example.com", "c.example.com"}));
  EXPECT_EQ(a.addresses[0], ip("10.0.0.1"));
}

TEST(Authority, CnameLoopIsBounded) {
  AuthoritativeServer authority;
  Zone zone{"loop"};
  zone.add_cname("x.loop", "y.loop");
  zone.add_cname("y.loop", "x.loop");
  authority.add_zone(std::move(zone));
  const Answer a = authority.query("x.loop", ctx_at(0));
  EXPECT_FALSE(a.ok);
}

TEST(Authority, MinimumTtlAlongChain) {
  AuthoritativeServer authority;
  Zone zone{"ttl"};
  zone.add_cname("a.ttl", "b.ttl", 300);
  zone.add_addresses("b.ttl", pool(1), {}, 60);
  authority.add_zone(std::move(zone));
  EXPECT_EQ(authority.query("a.ttl", ctx_at(0)).ttl_seconds, 60u);
}

// ------------------------------------------------------------- resolver

TEST(Resolver, CachesWithinTtl) {
  AuthoritativeServer authority;
  RecordSet rs;
  rs.name = "cache.example";
  rs.pool = pool(4);
  rs.ttl_seconds = 60;
  rs.lb.policy = LbPolicy::kRoundRobin;
  rs.lb.answer_count = 1;
  rs.lb.slot_duration = util::seconds(10);
  authority.add_record_set(rs);

  RecursiveResolver resolver{{"test", "DE", "eu", 1, false}, &authority};
  const Resolution r1 = resolver.resolve("cache.example", 0);
  ASSERT_TRUE(r1.ok);
  EXPECT_FALSE(r1.from_cache);
  // The authority would rotate at t=10s, but the cached answer is served.
  const Resolution r2 = resolver.resolve("cache.example", util::seconds(30));
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(r2.addresses, r1.addresses);
  EXPECT_EQ(resolver.upstream_queries(), 1u);
  EXPECT_EQ(resolver.cache_hits(), 1u);
}

TEST(Resolver, ExpiresAfterTtl) {
  AuthoritativeServer authority;
  RecordSet rs;
  rs.name = "exp.example";
  rs.pool = pool(8);
  rs.ttl_seconds = 60;
  rs.lb.policy = LbPolicy::kRoundRobin;
  rs.lb.answer_count = 1;
  rs.lb.slot_duration = util::seconds(61);
  authority.add_record_set(rs);

  RecursiveResolver resolver{{"test", "DE", "eu", 1, false}, &authority};
  const Resolution r1 = resolver.resolve("exp.example", 0);
  const Resolution r2 = resolver.resolve("exp.example", util::seconds(61));
  EXPECT_FALSE(r2.from_cache);
  EXPECT_NE(r1.addresses, r2.addresses);
  EXPECT_EQ(resolver.upstream_queries(), 2u);
}

TEST(Resolver, NegativeAnswersAreNotCached) {
  AuthoritativeServer authority;
  RecursiveResolver resolver{{"test", "DE", "eu", 1, false}, &authority};
  EXPECT_FALSE(resolver.resolve("missing.example", 0).ok);
  EXPECT_EQ(resolver.cache_size(), 0u);
  EXPECT_FALSE(resolver.resolve("missing.example", 1).ok);
  EXPECT_EQ(resolver.upstream_queries(), 2u);
}

TEST(Resolver, FlushCache) {
  AuthoritativeServer authority;
  RecordSet rs;
  rs.name = "f.example";
  rs.pool = pool(1);
  authority.add_record_set(rs);
  RecursiveResolver resolver{{"test", "DE", "eu", 1, false}, &authority};
  resolver.resolve("f.example", 0);
  EXPECT_EQ(resolver.cache_size(), 1u);
  resolver.flush_cache();
  EXPECT_EQ(resolver.cache_size(), 0u);
}

TEST(Resolver, CaseInsensitiveNames) {
  AuthoritativeServer authority;
  RecordSet rs;
  rs.name = "Case.Example";
  rs.pool = pool(1);
  authority.add_record_set(rs);
  RecursiveResolver resolver{{"test", "DE", "eu", 1, false}, &authority};
  EXPECT_TRUE(resolver.resolve("case.example", 0).ok);
  EXPECT_TRUE(resolver.resolve("CASE.EXAMPLE", 1).from_cache);
}

TEST(Resolver, EcsForwardsClientRegionOnlyWhenSupported) {
  AuthoritativeServer authority{1};
  RecordSet rs;
  rs.name = "geo.example";
  rs.pool = pool(8);
  rs.lb.policy = LbPolicy::kGeo;
  rs.lb.answer_count = 1;
  authority.add_record_set(rs);

  RecursiveResolver plain{{"plain", "DE", "eu", 1, false}, &authority};
  RecursiveResolver ecs{{"ecs", "DE", "eu", 1, true}, &authority};

  // Find a client region whose geo answer differs from the resolver's.
  std::string other_region;
  const auto eu_answer = authority.query("geo.example", ctx_at(0, 1, "eu"));
  for (const char* region : {"us", "apac", "sa"}) {
    if (authority.query("geo.example", ctx_at(0, 1, region)).addresses !=
        eu_answer.addresses) {
      other_region = region;
      break;
    }
  }
  ASSERT_FALSE(other_region.empty());

  // ECS-less resolver: client region ignored -> resolver-local answer.
  EXPECT_EQ(plain.resolve("geo.example", 0, other_region).addresses,
            eu_answer.addresses);
  // ECS resolver: the client's region drives the geo answer (RFC 7871).
  EXPECT_NE(ecs.resolve("geo.example", 0, other_region).addresses,
            eu_answer.addresses);
}

TEST(Vantage, PaperResolverList) {
  const auto points = standard_vantage_points();
  ASSERT_EQ(points.size(), 14u);  // Table 11
  EXPECT_EQ(points[0].name, "RWTH Aachen University");
  EXPECT_EQ(points[0].region, "eu");
  std::set<std::uint64_t> ids;
  for (const auto& p : points) {
    ids.insert(p.id);
    EXPECT_FALSE(p.ecs_supported);  // the paper checked ECS is unsupported
  }
  EXPECT_EQ(ids.size(), 14u);
}

}  // namespace
}  // namespace h2r::dns
