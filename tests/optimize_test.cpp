// Tests for the counterfactual reuse maximizer (`h2r optimize`, DESIGN
// §14): the pinned golden ranking, the determinism contract (bit-identical
// JSON across thread counts and stream/materialized/spilled modes), the
// rate-0 fault differential, and the cross-validation that anchors the
// whole replay design — the ORIGIN-frame policy replay must reproduce a
// REAL ORIGIN-enabled re-crawl connection-for-connection.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "browser/crawl.hpp"
#include "core/classify.hpp"
#include "core/policy.hpp"
#include "json/json.hpp"
#include "optimize/optimize.hpp"
#include "web/catalog.hpp"
#include "web/sitegen.hpp"

namespace h2r {
namespace {

optimize::OptimizeConfig small_config() {
  optimize::OptimizeConfig config;
  config.sites = 120;
  config.seed = 42;
  config.threads = 3;
  return config;
}

/// The golden run is shared between the pinned tests; computing it once
/// keeps the suite at one crawl instead of one per TEST.
const optimize::OptimizeResults& golden_optimize() {
  static const optimize::OptimizeResults results =
      optimize::run_optimize(small_config());
  return results;
}

/// One line per policy point, best first. Everything a ranking consumer
/// reads is on the line, so a regression anywhere in the sweep shows up
/// as a readable diff.
std::string ranking_lines(const optimize::OptimizeResults& results) {
  std::string out;
  int rank = 1;
  for (const optimize::PolicyOutcome& outcome : results.ranked) {
    char line[192];
    std::snprintf(line, sizeof line,
                  "#%02d mask=%02u recovered=%llu remaining=%llu %s\n", rank++,
                  static_cast<unsigned>(outcome.policy.mask()),
                  static_cast<unsigned long long>(outcome.tally.recovered),
                  static_cast<unsigned long long>(
                      outcome.tally.remaining_redundant),
                  outcome.policy.label().c_str());
    out += line;
  }
  return out;
}

// ------------------------------------------------------------------
// Pinned golden ranking (sites=120, seed=42).

TEST(OptimizeGolden, PinnedRanking) {
  const optimize::OptimizeResults& results = golden_optimize();
  ASSERT_EQ(results.ranked.size(), 16u) << "2^4 policy points";

  const std::string expected =
      "#01 mask=13 recovered=774 remaining=0 "
      "+origin_frame+cert_consolidation+ignore_credentials\n"
      "#02 mask=14 recovered=774 remaining=41 "
      "+sync_dns+cert_consolidation+ignore_credentials\n"
      "#03 mask=15 recovered=774 remaining=0 "
      "+origin_frame+sync_dns+cert_consolidation+ignore_credentials\n"
      "#04 mask=05 recovered=606 remaining=168 "
      "+origin_frame+cert_consolidation\n"
      "#05 mask=06 recovered=606 remaining=209 "
      "+sync_dns+cert_consolidation\n"
      "#06 mask=07 recovered=606 remaining=168 "
      "+origin_frame+sync_dns+cert_consolidation\n"
      "#07 mask=09 recovered=524 remaining=27 "
      "+origin_frame+ignore_credentials\n"
      "#08 mask=10 recovered=524 remaining=68 "
      "+sync_dns+ignore_credentials\n"
      "#09 mask=11 recovered=524 remaining=27 "
      "+origin_frame+sync_dns+ignore_credentials\n"
      "#10 mask=01 recovered=376 remaining=177 +origin_frame\n"
      "#11 mask=02 recovered=376 remaining=218 +sync_dns\n"
      "#12 mask=03 recovered=376 remaining=177 +origin_frame+sync_dns\n"
      "#13 mask=12 recovered=179 remaining=636 "
      "+cert_consolidation+ignore_credentials\n"
      "#14 mask=08 recovered=145 remaining=453 +ignore_credentials\n"
      "#15 mask=04 recovered=33 remaining=782 +cert_consolidation\n"
      "#16 mask=00 recovered=0 remaining=598 baseline\n";
  EXPECT_EQ(ranking_lines(results), expected);
}

TEST(OptimizeGolden, PinnedBaselineAndSummary) {
  const optimize::OptimizeResults& results = golden_optimize();
  EXPECT_EQ(results.summary.sites_visited, 117u);
  EXPECT_EQ(results.summary.sites_unreachable, 3u);

  ASSERT_FALSE(results.ranked.empty());
  const core::PolicyTally& best = results.ranked.front().tally;
  EXPECT_EQ(best.sites, 117u);
  EXPECT_EQ(best.baseline_connections, 1812u);
  EXPECT_EQ(best.baseline_redundant, 598u);

  // The baseline policy point and the baseline aggregate agree.
  const optimize::PolicyOutcome& baseline = results.ranked.back();
  EXPECT_EQ(baseline.policy.mask(), 0u);
  EXPECT_EQ(baseline.tally.recovered, 0u);
  EXPECT_EQ(baseline.tally.remaining_redundant, 598u);
}

TEST(OptimizeGolden, OperatorCreditNamesTheConsolidators) {
  // The recovered-connection credit singles out the operators whose
  // deployment choices the interventions counteract; google's sharded
  // clusters dominate by construction of the universe.
  const optimize::OptimizeResults& results = golden_optimize();
  const core::PolicyTally& best = results.ranked.front().tally;
  ASSERT_FALSE(best.recovered_by_operator.empty());
  auto top = best.recovered_by_operator.begin();
  for (auto it = best.recovered_by_operator.begin();
       it != best.recovered_by_operator.end(); ++it) {
    if (it->second > top->second) top = it;
  }
  EXPECT_EQ(top->first, "google");
  EXPECT_EQ(top->second, 551u);
}

TEST(OptimizeGolden, RankingOrderIsRecoveredThenCheapest) {
  const optimize::OptimizeResults& results = golden_optimize();
  for (std::size_t i = 1; i < results.ranked.size(); ++i) {
    const optimize::PolicyOutcome& a = results.ranked[i - 1];
    const optimize::PolicyOutcome& b = results.ranked[i];
    if (a.tally.recovered != b.tally.recovered) {
      EXPECT_GT(a.tally.recovered, b.tally.recovered);
    } else if (a.policy.knob_count() != b.policy.knob_count()) {
      EXPECT_LT(a.policy.knob_count(), b.policy.knob_count());
    } else {
      EXPECT_LT(a.policy.mask(), b.policy.mask());
    }
  }
}

// ------------------------------------------------------------------
// Determinism contract: the JSON document is bit-identical across
// thread counts and stream/materialized/spilled modes.

optimize::OptimizeConfig determinism_config() {
  optimize::OptimizeConfig config;
  config.sites = 40;
  config.seed = 42;
  return config;
}

TEST(OptimizeDeterminism, JsonIdenticalAcrossThreadsAndStreaming) {
  std::string reference;
  for (unsigned threads : {1u, 2u, 7u}) {
    for (bool stream : {false, true}) {
      optimize::OptimizeConfig config = determinism_config();
      config.threads = threads;
      config.stream = stream;
      const std::string doc =
          json::write(optimize::to_json(optimize::run_optimize(config)));
      if (reference.empty()) {
        reference = doc;
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(doc, reference)
            << "threads=" << threads << " stream=" << stream;
      }
    }
  }
}

TEST(OptimizeDeterminism, SpilledFoldMatchesResident) {
  optimize::OptimizeConfig resident = determinism_config();
  resident.stream = true;
  const optimize::OptimizeResults base = optimize::run_optimize(resident);

  optimize::OptimizeConfig spilled = resident;
  spilled.spill_dir = ::testing::TempDir();
  const optimize::OptimizeResults folded = optimize::run_optimize(spilled);
  EXPECT_GT(folded.spill_bytes, 0u);
  EXPECT_EQ(json::write(optimize::to_json(folded)),
            json::write(optimize::to_json(base)));
}

TEST(OptimizeDeterminism, SpillWithoutStreamingThrows) {
  optimize::OptimizeConfig config = determinism_config();
  config.spill_dir = ::testing::TempDir();
  EXPECT_THROW(optimize::run_optimize(config), std::runtime_error);
}

TEST(OptimizeDeterminism, RateZeroFaultsMatchNoFaults) {
  // The replay is only exact at fault rate 0 (fresh-connection fault
  // retries are not identifiable in the cached records) — but a rate-0
  // FaultConfig must be indistinguishable from no fault config at all.
  const optimize::OptimizeConfig plain = determinism_config();
  optimize::OptimizeConfig zeroed = determinism_config();
  zeroed.faults = fault::FaultConfig::uniform(0.0);
  EXPECT_EQ(json::write(optimize::to_json(optimize::run_optimize(zeroed))),
            json::write(optimize::to_json(optimize::run_optimize(plain))));
}

// ------------------------------------------------------------------
// Cross-validation: the ORIGIN-frame replay against a REAL re-crawl.

struct SiteStat {
  bool reachable = false;
  std::uint64_t total_connections = 0;
  std::uint64_t redundant_connections = 0;
};

/// Crawls an announce-on universe (every cluster deploys RFC 8336 ORIGIN
/// frames). With `support_origin_frame` off the browser ignores them
/// (Chromium behavior) and the per-site stats come from the policy
/// replay; with it on the browser coalesces for real and the stats are
/// the plain exact classification.
std::vector<SiteStat> crawl_origin_universe(std::size_t sites,
                                            bool support_origin_frame) {
  constexpr std::uint64_t kSeed = 42;
  web::Ecosystem eco{kSeed};
  web::ServiceCatalog catalog{eco, kSeed, 160,
                              /*announce_origin_frames=*/true};
  web::UniverseConfig config = web::UniverseConfig::defaults();
  config.seed = kSeed;
  config.announce_origin_frames = true;
  web::SiteUniverse universe{eco, catalog, config};

  browser::CrawlOptions crawl;
  crawl.browser.follow_fetch_credentials = true;
  crawl.browser.support_origin_frame = support_origin_frame;
  crawl.browser.vantage_region = "eu";
  crawl.seed = kSeed + 1;

  core::ClassifyContext ctx;
  const core::Policy origin = core::Policy::with_mask(core::kKnobOriginFrame);
  std::vector<SiteStat> stats;
  browser::crawl_range(universe, 0, sites, crawl,
                       [&](const browser::SiteResult& site) {
                         SiteStat stat;
                         stat.reachable = site.reachable;
                         if (site.reachable) {
                           ctx.prepare(site.netlog_observation);
                           const core::SiteClassification& cls = ctx.classify(
                               support_origin_frame
                                   ? core::Policy{core::DurationModel::kExact}
                                   : origin);
                           stat.total_connections = cls.total_connections;
                           stat.redundant_connections =
                               cls.redundant_connections();
                         }
                         stats.push_back(stat);
                       });
  return stats;
}

TEST(OptimizeCrossValidation, OriginReplayMatchesRealRecrawl) {
  constexpr std::size_t kSites = 40;
  const std::vector<SiteStat> replayed =
      crawl_origin_universe(kSites, /*support_origin_frame=*/false);
  const std::vector<SiteStat> real =
      crawl_origin_universe(kSites, /*support_origin_frame=*/true);
  ASSERT_EQ(replayed.size(), real.size());

  std::uint64_t replay_total = 0;
  std::uint64_t real_total = 0;
  for (std::size_t rank = 0; rank < replayed.size(); ++rank) {
    ASSERT_EQ(replayed[rank].reachable, real[rank].reachable)
        << "rank " << rank;
    EXPECT_EQ(replayed[rank].total_connections,
              real[rank].total_connections)
        << "rank " << rank;
    EXPECT_EQ(replayed[rank].redundant_connections,
              real[rank].redundant_connections)
        << "rank " << rank;
    replay_total += replayed[rank].total_connections;
    real_total += real[rank].total_connections;
  }
  EXPECT_EQ(replay_total, real_total);
  EXPECT_GT(real_total, 0u);
}

}  // namespace
}  // namespace h2r
