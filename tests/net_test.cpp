#include <gtest/gtest.h>

#include <unordered_set>

#include "net/ip.hpp"

namespace h2r::net {
namespace {

TEST(IpV4, ParseAndFormat) {
  const auto ip = IpAddress::parse("192.168.1.42");
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ip->is_v4());
  EXPECT_EQ(ip->to_string(), "192.168.1.42");
  EXPECT_EQ(ip->v4_value(), 0xC0A8012Au);
}

TEST(IpV4, FromOctetsAndValue) {
  const IpAddress a = IpAddress::v4(10, 0, 0, 1);
  const IpAddress b = IpAddress::v4(0x0A000001u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_string(), "10.0.0.1");
}

class BadV4 : public ::testing::TestWithParam<const char*> {};

TEST_P(BadV4, Rejected) {
  EXPECT_FALSE(IpAddress::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cases, BadV4,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1",
                                           "1.2.3.x", "1..2.3", "-1.2.3.4",
                                           "1.2.3.1000", "a.b.c.d"));

TEST(IpV6, ParseFull) {
  const auto ip = IpAddress::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ip->is_v6());
  EXPECT_EQ(ip->to_string(), "2001:db8::1");
}

TEST(IpV6, ParseCompressed) {
  EXPECT_EQ(IpAddress::parse("::")->to_string(), "::");
  EXPECT_EQ(IpAddress::parse("::1")->to_string(), "::1");
  EXPECT_EQ(IpAddress::parse("fe80::")->to_string(), "fe80::");
  EXPECT_EQ(IpAddress::parse("2001:db8::8:800:200c:417a")->to_string(),
            "2001:db8::8:800:200c:417a");
}

TEST(IpV6, CanonicalCompressionPicksLongestRun) {
  // Two zero runs: the longer one is compressed.
  EXPECT_EQ(IpAddress::parse("1:0:0:2:0:0:0:3")->to_string(), "1:0:0:2::3");
  // A single zero group is not compressed.
  EXPECT_EQ(IpAddress::parse("1:0:2:3:4:5:6:7")->to_string(),
            "1:0:2:3:4:5:6:7");
}

class BadV6 : public ::testing::TestWithParam<const char*> {};

TEST_P(BadV6, Rejected) {
  EXPECT_FALSE(IpAddress::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cases, BadV6,
                         ::testing::Values("::1::2", "1:2:3:4:5:6:7",
                                           "1:2:3:4:5:6:7:8:9", "g::1",
                                           "12345::", "1:2:3:4:5:6:7::8"));

TEST(IpAddress, BitAccess) {
  const IpAddress ip = IpAddress::v4(0x80000001u);  // 128.0.0.1
  EXPECT_TRUE(ip.bit(0));
  EXPECT_FALSE(ip.bit(1));
  EXPECT_TRUE(ip.bit(31));
}

TEST(IpAddress, Masking) {
  const IpAddress ip = IpAddress::v4(192, 168, 31, 201);
  EXPECT_EQ(ip.masked(24).to_string(), "192.168.31.0");
  EXPECT_EQ(ip.masked(16).to_string(), "192.168.0.0");
  EXPECT_EQ(ip.masked(20).to_string(), "192.168.16.0");
  EXPECT_EQ(ip.masked(0).to_string(), "0.0.0.0");
  EXPECT_EQ(ip.masked(32), ip);
}

TEST(IpAddress, Slash24GroupsLikeThePaper) {
  const auto a = IpAddress::parse("142.250.180.3").value();
  const auto b = IpAddress::parse("142.250.180.77").value();
  const auto c = IpAddress::parse("142.250.181.3").value();
  EXPECT_EQ(a.slash24(), b.slash24());
  EXPECT_NE(a.slash24(), c.slash24());
}

TEST(IpAddress, OrderingAndEquality) {
  const IpAddress a = IpAddress::v4(1, 2, 3, 4);
  const IpAddress b = IpAddress::v4(1, 2, 3, 5);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, IpAddress::v4(1, 2, 3, 4));
  // v4 sorts before v6.
  EXPECT_LT(a, IpAddress::parse("::1").value());
}

TEST(IpAddress, Hashable) {
  std::unordered_set<IpAddress> set;
  set.insert(IpAddress::v4(1, 2, 3, 4));
  set.insert(IpAddress::v4(1, 2, 3, 4));
  set.insert(IpAddress::v4(1, 2, 3, 5));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Prefix, ParseAndContains) {
  const auto p = Prefix::parse("10.1.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.1.0.0/16");
  EXPECT_TRUE(p->contains(IpAddress::v4(10, 1, 200, 3)));
  EXPECT_FALSE(p->contains(IpAddress::v4(10, 2, 0, 1)));
  EXPECT_FALSE(p->contains(IpAddress::parse("::1").value()));
}

TEST(Prefix, BaseIsMasked) {
  const Prefix p{IpAddress::v4(10, 1, 2, 3), 8};
  EXPECT_EQ(p.base().to_string(), "10.0.0.0");
}

TEST(Prefix, ParseErrors) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/x").has_value());
  EXPECT_TRUE(Prefix::parse("::/0").has_value());
  EXPECT_FALSE(Prefix::parse("::/129").has_value());
}

TEST(Endpoint, FormattingAndOrdering) {
  const Endpoint a{IpAddress::v4(1, 2, 3, 4), 443};
  const Endpoint b{IpAddress::v4(1, 2, 3, 4), 8443};
  EXPECT_EQ(a.to_string(), "1.2.3.4:443");
  EXPECT_EQ((Endpoint{IpAddress::parse("::1").value(), 443}).to_string(),
            "[::1]:443");
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace h2r::net
