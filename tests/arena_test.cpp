// The hot-path memory model, pinned (DESIGN §12).
//
// Unit half: util::Arena bump/reset/chunk-reuse semantics and the
// ArenaAllocator's heap fallback.
//
// Differential half: the per-site arena + interner + SoA classifier
// sweep is a pure OPTIMIZATION — H2R_ARENA=0 (plain heap allocation)
// and H2R_ARENA=1 (arena) must produce byte-identical report JSON,
// metric snapshots and journal frames at every thread count and fault
// rate, and ClassifyContext must reproduce classify_site() exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/classify.hpp"
#include "core/report_json.hpp"
#include "experiments/study.hpp"
#include "journal/journal.hpp"
#include "json/json.hpp"
#include "net/ip.hpp"
#include "obs/metrics.hpp"
#include "test_env_guard.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace h2r {
namespace {

// ------------------------------------------------------------ unit half

TEST(Arena, BumpAllocatesAligned) {
  util::Arena arena{1024};
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_GE(arena.bytes_used(), 11u);
}

TEST(Arena, ResetRewindsWithoutReleasingChunks) {
  util::Arena arena{512};
  for (int i = 0; i < 64; ++i) (void)arena.allocate(64, 8);
  const std::size_t chunks = arena.chunk_count();
  EXPECT_GT(chunks, 1u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // A same-shaped second "site" must fit in the chunks already owned.
  for (int i = 0; i < 64; ++i) (void)arena.allocate(64, 8);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  util::Arena arena{256};
  void* big = arena.allocate(64 * 1024, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 16, 0u);
  // And the arena keeps serving small allocations afterwards.
  EXPECT_NE(arena.allocate(16, 8), nullptr);
}

TEST(Arena, VectorsGrowInsideTheArena) {
  util::Arena arena;
  util::ArenaVector<std::uint32_t> v{util::ArenaAllocator<std::uint32_t>(
      &arena)};
  for (std::uint32_t i = 0; i < 10000; ++i) v.push_back(i);
  for (std::uint32_t i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i);
  EXPECT_GT(arena.bytes_used(), 10000u * sizeof(std::uint32_t));
}

TEST(ArenaAllocator, NullArenaFallsBackToHeap) {
  // The H2R_ARENA=0 mode: same container type, plain new/delete.
  util::ArenaVector<int> v{util::ArenaAllocator<int>(nullptr)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 999);
}

TEST(Arena, EnvKnobDefaultsOn) {
  {
    h2r::testing::EnvGuard guard{"H2R_ARENA", nullptr};
    EXPECT_TRUE(util::arena_enabled());
  }
  {
    h2r::testing::EnvGuard guard{"H2R_ARENA", "0"};
    EXPECT_FALSE(util::arena_enabled());
  }
  {
    h2r::testing::EnvGuard guard{"H2R_ARENA", "1"};
    EXPECT_TRUE(util::arena_enabled());
  }
}

// ----------------------------------- classifier context equivalence

net::IpAddress ip(const std::string& s) {
  return net::IpAddress::parse(s).value();
}

/// Random site with enough structural variety (wildcards, exclusions,
/// origin sets, close times, shared endpoints) to exercise every branch
/// of the sweep.
core::SiteObservation random_site(util::Rng& rng, std::size_t index) {
  static const char* kDomains[] = {"cdn.ex",     "ads.ex",  "img.Ex",
                                   "api.ex",     "tags.ex", "SSO.ex",
                                   "static.two", "two"};
  core::SiteObservation site;
  site.site_url = "https://site-" + std::to_string(index) + ".test";
  const std::size_t conns = rng.uniform(0, 7);
  util::SimTime open = 10;
  for (std::size_t c = 0; c < conns; ++c) {
    core::ConnectionRecord rec;
    rec.id = c + 1;
    rec.endpoint =
        net::Endpoint{ip("10.0.0." + std::to_string(rng.uniform(1, 4))),
                      static_cast<std::uint16_t>(443)};
    rec.initial_domain = kDomains[rng.index(8)];
    rec.has_certificate = rng.chance(0.9);
    switch (rng.index(4)) {
      case 0: rec.san_dns_names = {"*.ex", "two"}; break;
      case 1: rec.san_dns_names = {rec.initial_domain}; break;
      case 2: rec.san_dns_names = {"*.Two", "CDN.EX"}; break;
      default: rec.san_dns_names = {}; break;
    }
    rec.issuer_organization = "CA";
    open += static_cast<util::SimTime>(rng.uniform(0, 50));
    rec.opened_at = open;
    if (rng.chance(0.4)) {
      rec.closed_at =
          rec.opened_at + static_cast<util::SimTime>(rng.uniform(1, 300));
    }
    core::RequestRecord req;
    req.started_at = rec.opened_at;
    req.finished_at = rec.opened_at + static_cast<util::SimTime>(
                                          rng.uniform(1, 100));
    req.domain = rec.initial_domain;
    rec.requests.push_back(req);
    if (rng.chance(0.2)) rec.excluded_domains.push_back(kDomains[rng.index(8)]);
    if (rng.chance(0.2)) {
      rec.origin_set = std::vector<std::string>{"cdn.ex", "two", "img.ex"};
    }
    site.connections.push_back(std::move(rec));
  }
  return site;
}

void expect_same_classification(const core::SiteClassification& got,
                                const core::SiteClassification& want) {
  EXPECT_EQ(got.site_url, want.site_url);
  EXPECT_EQ(got.total_connections, want.total_connections);
  ASSERT_EQ(got.findings.size(), want.findings.size());
  for (std::size_t i = 0; i < got.findings.size(); ++i) {
    EXPECT_EQ(got.findings[i].connection_index,
              want.findings[i].connection_index);
    EXPECT_EQ(got.findings[i].causes, want.findings[i].causes);
    EXPECT_EQ(got.findings[i].reusable_previous_domains,
              want.findings[i].reusable_previous_domains);
  }
}

/// Reference implementation: the pre-table sweep, kept verbatim so the
/// SoA path has an executable spec to diff against.
core::SiteClassification classify_reference(
    const core::SiteObservation& site, const core::Policy& options) {
  core::SiteClassification result;
  result.site_url = site.site_url;
  result.total_connections = site.connections.size();
  const auto& conns = site.connections;
  for (std::size_t i = 0; i < conns.size(); ++i) {
    const core::ConnectionRecord& current = conns[i];
    const std::string domain = util::to_lower(current.initial_domain);
    core::ConnectionFinding finding;
    finding.connection_index = i;
    for (std::size_t j = 0; j < i; ++j) {
      const core::ConnectionRecord& prev = conns[j];
      if (!availability(prev, options.duration).contains(current.opened_at)) {
        continue;
      }
      if (prev.excludes(domain)) continue;
      const bool same_endpoint = prev.endpoint == current.endpoint;
      const bool covers = prev.certificate_covers(domain);
      const bool same_initial_domain =
          util::to_lower(prev.initial_domain) == domain;
      core::Cause cause;
      if (same_endpoint) {
        cause = covers ? core::Cause::kCred : core::Cause::kCert;
      } else if (same_initial_domain) {
        cause = core::Cause::kCred;
      } else if (covers) {
        cause = core::Cause::kIp;
      } else {
        continue;
      }
      finding.causes.insert(cause);
      finding.reusable_previous_domains[cause].insert(
          util::to_lower(prev.initial_domain));
    }
    if (!finding.causes.empty()) result.findings.push_back(std::move(finding));
  }
  return result;
}

class ArenaSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaSeeds, ContextMatchesReferenceWithArenaOnAndOff) {
  util::Rng rng{GetParam()};
  core::ClassifyContext with_arena{/*use_arena=*/true};
  core::ClassifyContext without_arena{/*use_arena=*/false};
  for (std::size_t s = 0; s < 200; ++s) {
    const core::SiteObservation site = random_site(rng, s);
    with_arena.prepare(site);
    without_arena.prepare(site);
    for (const core::DurationModel model :
         {core::DurationModel::kExact, core::DurationModel::kEndless,
          core::DurationModel::kImmediate}) {
      const core::SiteClassification want = classify_reference(site, {model});
      SCOPED_TRACE("site=" + std::to_string(s) + " model=" +
                   core::to_string(model));
      expect_same_classification(with_arena.classify({model}), want);
      expect_same_classification(without_arena.classify({model}), want);
      expect_same_classification(core::classify_site(site, {model}), want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaSeeds,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// -------------------------------------------- hot-path differential

using experiments::StudyConfig;
using experiments::StudyResults;

StudyConfig small_config(double fault_rate, unsigned threads) {
  StudyConfig config;
  config.har_sites = 60;
  config.alexa_sites = 50;
  config.har_first_rank = 20;
  config.seed = 7;
  config.threads = threads;
  if (fault_rate > 0) config.faults = fault::FaultConfig::uniform(fault_rate);
  return config;
}

std::string report_bytes(const StudyResults& results) {
  std::string bytes;
  for (const core::AggregateReport* report :
       {&results.har_endless, &results.har_immediate, &results.alexa_exact,
        &results.alexa_endless, &results.nofetch_exact,
        &results.overlap_har_endless, &results.overlap_alexa_endless}) {
    bytes += json::write(core::to_json_full(*report));
    bytes += '\n';
  }
  return bytes;
}

std::string metric_bytes(const StudyResults& results) {
  json::WriteOptions opts;
  opts.pretty = true;
  return json::write(obs::to_json(results.metrics), opts);
}

/// Journal identity, robust to worker commit interleaving: the HEADER
/// must match byte-for-byte; the frame payloads must match as a sorted
/// multiset (at threads>1 the order chunks reach the writer is
/// scheduling, not measurement).
std::vector<std::string> journal_frames(const std::string& path) {
  auto contents = journal::read_journal(path);
  EXPECT_TRUE(contents) << (contents ? "" : contents.error().message);
  std::vector<std::string> frames;
  if (!contents) return frames;
  frames.push_back(json::write(contents->header));
  std::vector<std::string> entries;
  for (const json::Value& entry : contents->entries) {
    entries.push_back(json::write(entry));
  }
  std::sort(entries.begin(), entries.end());
  frames.insert(frames.end(), entries.begin(), entries.end());
  return frames;
}

TEST(ArenaDifferential, StudyBytesAreAllocatorIndependent) {
  // The satellite contract: crawl the same universe with H2R_ARENA=0/1
  // across threads {1,2,7} x fault rates {0, 0.25} and diff report JSON,
  // metric snapshots and journal frames.
  for (const double fault_rate : {0.0, 0.25}) {
    for (const unsigned threads : {1u, 2u, 7u}) {
      SCOPED_TRACE("fault=" + std::to_string(fault_rate) +
                   " threads=" + std::to_string(threads));
      const std::string tag = std::to_string(threads) + "_" +
                              std::to_string(fault_rate > 0 ? 25 : 0);
      StudyConfig config = small_config(fault_rate, threads);

      const std::string arena_journal = std::string(::testing::TempDir()) +
                                        "/arena_on_" + tag + ".journal";
      config.journal_path = arena_journal;
      StudyResults with_arena;
      {
        h2r::testing::EnvGuard guard{"H2R_ARENA", "1"};
        with_arena = experiments::run_study(config);
      }

      const std::string heap_journal = std::string(::testing::TempDir()) +
                                       "/arena_off_" + tag + ".journal";
      config.journal_path = heap_journal;
      StudyResults without_arena;
      {
        h2r::testing::EnvGuard guard{"H2R_ARENA", "0"};
        without_arena = experiments::run_study(config);
      }

      EXPECT_EQ(report_bytes(with_arena), report_bytes(without_arena));
      EXPECT_EQ(metric_bytes(with_arena), metric_bytes(without_arena));
      EXPECT_EQ(with_arena.overlap_sites, without_arena.overlap_sites);
      EXPECT_TRUE(with_arena.har_summary == without_arena.har_summary);
      EXPECT_TRUE(with_arena.alexa_summary == without_arena.alexa_summary);
      EXPECT_TRUE(with_arena.nofetch_summary ==
                  without_arena.nofetch_summary);
      EXPECT_EQ(journal_frames(arena_journal), journal_frames(heap_journal));
    }
  }
}

}  // namespace
}  // namespace h2r
