// Differential proof that metric snapshots obey the crawl's determinism
// contract: the DETERMINISTIC domain (dns.* / net.* / tls.* / h2.* /
// browser.* / crawl.* counters, gauges and simulated-time histograms) is
// bit-identical for every thread count and fault regime pairing — the
// serialized JSON bytes match, which is exactly what the CI metrics job
// diffs on full study runs. Diagnostic metrics (chunks claimed, journal
// telemetry) ARE thread-count dependent and are excluded from the
// snapshot; this test also pins that exclusion.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "browser/crawl.hpp"
#include "experiments/study.hpp"
#include "fault/fault.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "web/catalog.hpp"
#include "web/ecosystem.hpp"
#include "web/sitegen.hpp"

namespace h2r::obs {
namespace {

constexpr std::size_t kSites = 30;

Metrics crawl_metrics(unsigned threads, double fault_rate, bool chunked) {
  web::Ecosystem eco{42};
  web::ServiceCatalog catalog{eco, 42};
  web::SiteUniverse universe{eco, catalog};

  browser::CrawlOptions options;
  options.threads = threads;
  options.seed = 4321;
  options.har_path = true;
  if (fault_rate > 0.0) {
    options.browser.faults = fault::FaultConfig::uniform(fault_rate);
  }
  MetricsObserver observer;
  options.observer = &observer;
  std::vector<std::size_t> targets;
  if (chunked) {
    for (std::size_t i = 0; i < kSites; ++i) targets.push_back(i);
    options.chunked = true;
    options.targets = &targets;
  }
  browser::crawl(universe, 0, kSites, options);
  return observer.merged();
}

TEST(MetricsDeterminism, SnapshotsIdenticalAcrossThreadCounts) {
  for (const double rate : {0.0, 0.25}) {
    SCOPED_TRACE("fault_rate=" + std::to_string(rate));
    const Metrics baseline = crawl_metrics(1, rate, false);
    EXPECT_GT(baseline.counter("crawl.sites_visited"), 0u);
    EXPECT_GT(baseline.counter("dns.queries"), 0u);
    EXPECT_GT(baseline.counter("tls.handshakes"), 0u);
    EXPECT_GT(baseline.counter("h2.requests"), 0u);
    EXPECT_FALSE(baseline.histogram("browser.page_load_ms").empty());
    const std::string baseline_json = json::write(to_json(baseline));
    for (const unsigned threads : {2u, 7u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const Metrics run = crawl_metrics(threads, rate, false);
      EXPECT_EQ(run, baseline);
      EXPECT_EQ(json::write(to_json(run)), baseline_json);
    }
  }
}

TEST(MetricsDeterminism, ChunkedModeMatchesPlainCrawl) {
  // The checkpointed path (chunk-local accounting, uniform worker pool)
  // must record the same deterministic metrics as the plain crawl.
  const std::string plain = json::write(to_json(crawl_metrics(1, 0.25, false)));
  for (const unsigned threads : {1u, 3u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(json::write(to_json(crawl_metrics(threads, 0.25, true))), plain);
  }
}

TEST(MetricsDeterminism, DiagnosticsMayDifferButStayInvisible) {
  const Metrics a = crawl_metrics(1, 0.0, false);
  const Metrics b = crawl_metrics(7, 0.0, false);
  // Equal snapshots even though the chunk accounting differs (1 chunk
  // sequentially vs one per work-queue claim).
  EXPECT_EQ(a, b);
  EXPECT_GT(a.diag_counter("crawl.chunks_claimed"), 0u);
  EXPECT_GT(b.diag_counter("crawl.chunks_claimed"), 0u);
}

TEST(MetricsDeterminism, NoWallClockLeakIntoSnapshotsOrEquality) {
  // The audited ban.clock allows in browser/crawl.cpp (wall_now_ms /
  // thread_cpu_ms) rest on a quarantine: real-clock values feed ONLY the
  // diagnostic domain — WorkerCounters and CrawlSummary::wall_ms — and
  // never the deterministic metric snapshot or summary equality. This
  // test fails if that quarantine springs a leak.
  web::Ecosystem eco{42};
  web::ServiceCatalog catalog{eco, 42};
  web::SiteUniverse universe{eco, catalog};
  browser::CrawlOptions options;
  options.threads = 3;
  options.seed = 4321;
  MetricsObserver observer;
  options.observer = &observer;
  browser::CrawlSummary summary = browser::crawl(universe, 0, kSites, options);

  // The real clocks did run and did land in the diagnostic fields...
  ASSERT_FALSE(summary.per_worker.empty());
  double wall_total = 0.0;
  for (const auto& worker : summary.per_worker) wall_total += worker.wall_ms;
  EXPECT_GT(wall_total, 0.0);

  // ...but no deterministic metric name carries a wall/cpu reading, and
  // the serialized snapshot (what CI diffs byte-for-byte across thread
  // counts) never mentions one.
  const Metrics merged = observer.merged();
  for (const auto& [name, value] : merged.counters()) {
    (void)value;
    EXPECT_EQ(name.find("wall"), std::string::npos) << name;
    EXPECT_EQ(name.find("cpu"), std::string::npos) << name;
  }
  for (const auto& [name, histogram] : merged.histograms()) {
    (void)histogram;
    EXPECT_EQ(name.find("wall"), std::string::npos) << name;
    EXPECT_EQ(name.find("cpu"), std::string::npos) << name;
  }
  const std::string snapshot = json::write(to_json(merged));
  EXPECT_EQ(snapshot.find("wall"), std::string::npos);
  EXPECT_EQ(snapshot.find("cpu"), std::string::npos);
  EXPECT_EQ(snapshot.find("queue_wait"), std::string::npos);

  // Summary equality ignores the clock-fed fields entirely: wildly
  // different diagnostic values compare equal, a one-count measurement
  // drift does not.
  browser::CrawlSummary tampered = summary;
  tampered.wall_ms = 1.0e9;
  for (auto& worker : tampered.per_worker) {
    worker.wall_ms = -1.0;
    worker.cpu_ms = 7.7e7;
    worker.queue_wait_ms = 1234.5;
  }
  EXPECT_TRUE(tampered == summary);
  tampered.connections_opened += 1;
  EXPECT_FALSE(tampered == summary);
}

TEST(MetricsDeterminism, StudySnapshotsIdenticalAcrossThreadCounts) {
  experiments::StudyConfig config;
  config.har_sites = 25;
  config.alexa_sites = 20;
  config.har_first_rank = 10;
  config.seed = 42;

  config.threads = 1;
  const experiments::StudyResults one = experiments::run_study(config);
  EXPECT_GT(one.metrics.counter("crawl.sites_visited"), 0u);
  EXPECT_GT(one.metrics.counter("browser.pages"), 0u);

  config.threads = 3;
  const experiments::StudyResults three = experiments::run_study(config);
  EXPECT_EQ(one.metrics, three.metrics);
  EXPECT_EQ(json::write(to_json(one.metrics)),
            json::write(to_json(three.metrics)));
}

}  // namespace
}  // namespace h2r::obs
