// Metamorphic properties of the classifier: invariances that must hold
// for ANY observation, checked over randomly generated sites.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/classify.hpp"
#include "util/rng.hpp"

namespace h2r::core {
namespace {

/// Generates a random but valid site observation: a handful of servers,
/// domains with covering or non-covering certs, randomized open times.
SiteObservation random_site(util::Rng& rng, std::size_t conn_count) {
  SiteObservation site;
  site.site_url = "https://prop.example";
  util::SimTime t = 0;
  for (std::size_t i = 0; i < conn_count; ++i) {
    ConnectionRecord rec;
    rec.id = i;
    rec.endpoint.address =
        net::IpAddress::v4(10, 0, 0, static_cast<std::uint8_t>(1 + rng.index(6)));
    rec.endpoint.port = 443;
    const std::size_t op = rng.index(3);
    rec.initial_domain = "host" + std::to_string(rng.index(4)) + ".op" +
                         std::to_string(op) + ".example";
    if (rng.chance(0.7)) {
      rec.san_dns_names = {"*.op" + std::to_string(op) + ".example"};
    } else {
      rec.san_dns_names = {rec.initial_domain};
    }
    rec.issuer_organization = "CA" + std::to_string(op);
    rec.has_certificate = true;
    t += static_cast<util::SimTime>(rng.uniform(0, 400));
    rec.opened_at = t;
    if (rng.chance(0.2)) {
      rec.closed_at = t + static_cast<util::SimTime>(rng.uniform(100, 5000));
    }
    RequestRecord req;
    req.started_at = t;
    req.finished_at = t + static_cast<util::SimTime>(rng.uniform(10, 800));
    req.domain = rec.initial_domain;
    rec.requests.push_back(req);
    if (rng.chance(0.1)) {
      rec.excluded_domains.push_back("host0.op" + std::to_string(op) +
                                     ".example");
    }
    site.connections.push_back(std::move(rec));
  }
  return site;
}

bool same_classification(const SiteClassification& a,
                         const SiteClassification& b) {
  if (a.findings.size() != b.findings.size()) return false;
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    if (a.findings[i].connection_index != b.findings[i].connection_index ||
        a.findings[i].causes != b.findings[i].causes ||
        a.findings[i].reusable_previous_domains !=
            b.findings[i].reusable_previous_domains) {
      return false;
    }
  }
  return true;
}

class ClassifierProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifierProperties, TimeShiftInvariance) {
  util::Rng rng{GetParam()};
  for (int round = 0; round < 30; ++round) {
    SiteObservation site = random_site(rng, 3 + rng.index(12));
    SiteObservation shifted = site;
    const util::SimTime delta = 1000000;
    for (ConnectionRecord& conn : shifted.connections) {
      conn.opened_at += delta;
      if (conn.closed_at.has_value()) *conn.closed_at += delta;
      for (RequestRecord& req : conn.requests) {
        req.started_at += delta;
        req.finished_at += delta;
      }
    }
    for (const DurationModel model :
         {DurationModel::kExact, DurationModel::kEndless,
          DurationModel::kImmediate}) {
      EXPECT_TRUE(same_classification(classify_site(site, {model}),
                                      classify_site(shifted, {model})));
    }
  }
}

TEST_P(ClassifierProperties, EndlessDominatesExactDominatesNothing) {
  util::Rng rng{GetParam() ^ 0xABCD};
  for (int round = 0; round < 30; ++round) {
    const SiteObservation site = random_site(rng, 4 + rng.index(12));
    const auto endless = classify_site(site, {DurationModel::kEndless});
    const auto exact = classify_site(site, {DurationModel::kExact});
    // Endless availability is a superset of exact availability: every
    // exact finding must also appear (with a superset of causes) in the
    // endless classification.
    EXPECT_GE(endless.redundant_connections(), exact.redundant_connections());
    for (const ConnectionFinding& finding : exact.findings) {
      const auto match = std::find_if(
          endless.findings.begin(), endless.findings.end(),
          [&finding](const ConnectionFinding& other) {
            return other.connection_index == finding.connection_index;
          });
      ASSERT_NE(match, endless.findings.end());
      for (Cause cause : finding.causes) {
        EXPECT_TRUE(match->causes.count(cause) > 0);
      }
    }
  }
}

TEST_P(ClassifierProperties, AppendingIsolatedConnectionChangesNothing) {
  util::Rng rng{GetParam() ^ 0x1234};
  for (int round = 0; round < 30; ++round) {
    SiteObservation site = random_site(rng, 3 + rng.index(10));
    const auto before = classify_site(site, {DurationModel::kEndless});

    // A connection to a fresh operator on a fresh IP, later than all
    // others: an unknown third party — it must neither be redundant nor
    // disturb earlier findings.
    ConnectionRecord isolated;
    isolated.id = 999;
    isolated.endpoint.address = net::IpAddress::v4(192, 168, 77, 1);
    isolated.endpoint.port = 443;
    isolated.initial_domain = "fresh.unrelated.example";
    isolated.san_dns_names = {"fresh.unrelated.example"};
    isolated.has_certificate = true;
    isolated.opened_at = site.connections.back().opened_at + 1000;
    site.connections.push_back(isolated);

    const auto after = classify_site(site, {DurationModel::kEndless});
    EXPECT_TRUE(same_classification(before, after));
  }
}

TEST_P(ClassifierProperties, FirstConnectionIsNeverRedundant) {
  util::Rng rng{GetParam() ^ 0x9999};
  for (int round = 0; round < 50; ++round) {
    const SiteObservation site = random_site(rng, 1 + rng.index(15));
    for (const DurationModel model :
         {DurationModel::kExact, DurationModel::kEndless,
          DurationModel::kImmediate}) {
      const auto cls = classify_site(site, {model});
      for (const ConnectionFinding& finding : cls.findings) {
        EXPECT_GT(finding.connection_index, 0u);
      }
    }
  }
}

TEST_P(ClassifierProperties, CausesAreConsistentWithRecords) {
  // Re-derive every finding from first principles: a CERT/CRED finding
  // requires SOME earlier same-endpoint connection, an IP finding some
  // earlier covering connection on a different endpoint.
  util::Rng rng{GetParam() ^ 0x7777};
  for (int round = 0; round < 30; ++round) {
    const SiteObservation site = random_site(rng, 4 + rng.index(12));
    const auto cls = classify_site(site, {DurationModel::kEndless});
    for (const ConnectionFinding& finding : cls.findings) {
      const ConnectionRecord& conn =
          site.connections[finding.connection_index];
      bool same_endpoint_exists = false;
      bool covering_elsewhere_exists = false;
      for (std::size_t j = 0; j < finding.connection_index; ++j) {
        const ConnectionRecord& prev = site.connections[j];
        if (prev.excludes(conn.initial_domain)) continue;
        if (prev.endpoint == conn.endpoint) same_endpoint_exists = true;
        if (prev.endpoint != conn.endpoint &&
            (prev.certificate_covers(conn.initial_domain) ||
             prev.initial_domain == conn.initial_domain)) {
          covering_elsewhere_exists = true;
        }
      }
      if (finding.causes.count(Cause::kCert) > 0 ||
          (finding.causes.count(Cause::kCred) > 0 &&
           !covering_elsewhere_exists)) {
        EXPECT_TRUE(same_endpoint_exists);
      }
      if (finding.causes.count(Cause::kIp) > 0) {
        EXPECT_TRUE(covering_elsewhere_exists);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierProperties,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ----------------------- certificate_covers wildcard edge semantics
//
// RFC 6125-ish matching as the paper's measurement pipeline applies it:
// a wildcard is ONLY the leading "*." form, it eats exactly one label,
// matching is ASCII-case-insensitive, and no cert/no SANs covers
// nothing. The SoA ConnectionTable must agree bit-for-bit — its covers
// matrix is precomputed from interned lowered strings, so any drift
// here would silently skew every CERT/IP tally downstream.

ConnectionRecord cert_with(std::vector<std::string> sans) {
  ConnectionRecord rec;
  rec.id = 1;
  rec.endpoint.address = net::IpAddress::v4(10, 9, 9, 9);
  rec.endpoint.port = 443;
  rec.initial_domain = "origin.example";
  rec.has_certificate = true;
  rec.san_dns_names = std::move(sans);
  return rec;
}

TEST(CertificateCovers, LeadingWildcardEatsExactlyOneLabel) {
  const ConnectionRecord rec = cert_with({"*.shard.example"});
  EXPECT_TRUE(rec.certificate_covers("img.shard.example"));
  EXPECT_TRUE(rec.certificate_covers("a.shard.example"));
  // The wildcard never spans label boundaries...
  EXPECT_FALSE(rec.certificate_covers("a.b.shard.example"));
  // ...never matches the bare suffix itself...
  EXPECT_FALSE(rec.certificate_covers("shard.example"));
  // ...and never matches an empty label.
  EXPECT_FALSE(rec.certificate_covers(".shard.example"));
}

TEST(CertificateCovers, MidLabelAsteriskIsALiteralNotAWildcard) {
  // "img*.example" / "i*g.example" are not the leading "*." form; the
  // pipeline treats them as literal (never-matching) names rather than
  // partial-label wildcards.
  const ConnectionRecord rec = cert_with({"img*.example", "i*g.example"});
  EXPECT_FALSE(rec.certificate_covers("img1.example"));
  EXPECT_FALSE(rec.certificate_covers("img.example"));
  EXPECT_FALSE(rec.certificate_covers("ig.example"));
  // The literal spelling itself DOES match, case-insensitively.
  EXPECT_TRUE(rec.certificate_covers("img*.example"));
  EXPECT_TRUE(rec.certificate_covers("IMG*.Example"));
}

TEST(CertificateCovers, MatchingFoldsAsciiCaseBothWays) {
  const ConnectionRecord rec = cert_with({"*.Shard.EXAMPLE", "WWW.example"});
  EXPECT_TRUE(rec.certificate_covers("img.shard.example"));
  EXPECT_TRUE(rec.certificate_covers("IMG.SHARD.EXAMPLE"));
  EXPECT_TRUE(rec.certificate_covers("www.example"));
  EXPECT_TRUE(rec.certificate_covers("WwW.ExAmPlE"));
  EXPECT_FALSE(rec.certificate_covers("shard.example"));
}

TEST(CertificateCovers, EmptySanListOrMissingCertCoversNothing) {
  const ConnectionRecord none = cert_with({});
  EXPECT_FALSE(none.certificate_covers("origin.example"));
  EXPECT_FALSE(none.certificate_covers(""));

  ConnectionRecord no_cert = cert_with({"*.example", "origin.example"});
  no_cert.has_certificate = false;
  EXPECT_FALSE(no_cert.certificate_covers("origin.example"));
  EXPECT_FALSE(no_cert.certificate_covers("img.example"));
}

TEST(CertificateCovers, DegenerateWildcardPatternsMatchNothing) {
  const ConnectionRecord rec = cert_with({"*.", "*", ""});
  EXPECT_FALSE(rec.certificate_covers("example"));
  EXPECT_FALSE(rec.certificate_covers("a.example"));
  EXPECT_FALSE(rec.certificate_covers(""));
  EXPECT_FALSE(rec.certificate_covers("."));
}

TEST(CertificateCovers, ConnectionTableCoversMatrixAgrees) {
  // Same edges through the SoA path: build a site where connection 0
  // carries the tricky SANs and later connections probe them as
  // initial domains; the table's precomputed covers bits must equal
  // certificate_covers on every (conn, domain) pair.
  SiteObservation site;
  site.site_url = "https://wildcard.example";
  ConnectionRecord first =
      cert_with({"*.Shard.example", "img*.example", "WWW.example", ""});
  first.opened_at = 10;
  site.connections.push_back(first);
  util::SimTime t = 20;
  for (const char* domain :
       {"img.shard.example", "A.B.shard.example", "shard.example",
        "img1.example", "IMG*.EXAMPLE", "www.EXAMPLE", ".shard.example"}) {
    ConnectionRecord probe = cert_with({});
    probe.id = 2;
    probe.endpoint.address = net::IpAddress::v4(10, 1, 1, 1);
    probe.initial_domain = domain;
    probe.opened_at = t;
    t += 10;
    site.connections.push_back(probe);
  }

  util::Arena arena;
  Interner interner;
  ConnectionTable table{&arena};
  table.build(site, interner);
  ASSERT_EQ(table.size(), site.connections.size());
  for (std::size_t j = 0; j < table.size(); ++j) {
    for (std::size_t d = 0; d < table.distinct_domains(); ++d) {
      const std::string domain{interner.str(table.domains[d])};
      EXPECT_EQ(table.covers_domain(j, d),
                site.connections[j].certificate_covers(domain))
          << "conn " << j << " vs domain " << domain;
    }
  }
}

}  // namespace
}  // namespace h2r::core
