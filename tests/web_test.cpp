#include <gtest/gtest.h>

#include <set>

#include "web/catalog.hpp"
#include "web/ecosystem.hpp"
#include "web/sitegen.hpp"

namespace h2r::web {
namespace {

net::Prefix pfx(const char* s) { return net::Prefix::parse(s).value(); }

Ecosystem make_eco() {
  Ecosystem eco{7};
  eco.register_as("TEST-AS", 64500, pfx("10.10.0.0/16"));
  return eco;
}

ClusterSpec basic_cluster() {
  ClusterSpec spec;
  spec.operator_name = "op";
  spec.as_name = "TEST-AS";
  spec.ip_count = 2;
  spec.certs = {{"Test CA", {"*.svc.example"}}};
  DomainSpec a;
  a.name = "a.svc.example";
  DomainSpec b;
  b.name = "b.svc.example";
  spec.domains = {a, b};
  return spec;
}

TEST(Ecosystem, ClusterCreatesServersAndDns) {
  Ecosystem eco = make_eco();
  const auto ips = eco.add_cluster(basic_cluster());
  ASSERT_EQ(ips.size(), 2u);
  EXPECT_EQ(eco.server_count(), 2u);

  const Server* server = eco.server_at(ips[0]);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->operator_name(), "op");
  EXPECT_TRUE(server->serves("a.svc.example"));
  EXPECT_TRUE(server->serves("b.svc.example"));
  EXPECT_FALSE(server->serves("c.svc.example"));
  EXPECT_EQ(server->respond("a.svc.example"), 200);
  EXPECT_EQ(server->respond("other.example"), 421);

  const auto cert = server->certificate_for("a.svc.example");
  ASSERT_NE(cert, nullptr);
  EXPECT_TRUE(cert->covers("b.svc.example"));
  EXPECT_EQ(server->certificate_for("unknown.example"), nullptr);

  dns::QueryContext ctx;
  const auto answer = eco.authority().query("a.svc.example", ctx);
  ASSERT_TRUE(answer.ok);
  EXPECT_FALSE(answer.addresses.empty());
}

TEST(Ecosystem, AsDatabaseCoversAllocatedIps) {
  Ecosystem eco = make_eco();
  const auto ips = eco.add_cluster(basic_cluster());
  const auto as_info = eco.as_database().lookup(ips[0]);
  ASSERT_TRUE(as_info.has_value());
  EXPECT_EQ(as_info->name, "TEST-AS");
  EXPECT_EQ(as_info->asn, 64500u);
}

TEST(Ecosystem, AllocationsAreUnique) {
  Ecosystem eco = make_eco();
  std::set<net::IpAddress> seen;
  for (int i = 0; i < 20; ++i) {
    ClusterSpec spec = basic_cluster();
    spec.domains[0].name = "a" + std::to_string(i) + ".svc.example";
    spec.domains[1].name = "b" + std::to_string(i) + ".svc.example";
    spec.spread_slash24 = (i % 3 == 0);
    for (const auto& ip : eco.add_cluster(spec)) {
      EXPECT_TRUE(seen.insert(ip).second) << ip.to_string();
    }
  }
}

TEST(Ecosystem, SpreadAllocationUsesDistinctSlash24s) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.ip_count = 4;
  spec.spread_slash24 = true;
  const auto ips = eco.add_cluster(spec);
  std::set<net::IpAddress> subnets;
  for (const auto& ip : ips) subnets.insert(ip.slash24());
  EXPECT_EQ(subnets.size(), 4u);
}

TEST(Ecosystem, SequentialAllocationSharesSlash24) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.ip_count = 8;
  const auto ips = eco.add_cluster(spec);
  std::set<net::IpAddress> subnets;
  for (const auto& ip : ips) subnets.insert(ip.slash24());
  EXPECT_EQ(subnets.size(), 1u);  // the paper's "same /24" observation
}

TEST(Ecosystem, ServesOnRestrictsVirtualHosts) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.domains[1].serves_on = {1};  // b only on the second IP
  const auto ips = eco.add_cluster(spec);
  EXPECT_TRUE(eco.server_at(ips[0])->serves("a.svc.example"));
  EXPECT_FALSE(eco.server_at(ips[0])->serves("b.svc.example"));
  EXPECT_TRUE(eco.server_at(ips[1])->serves("b.svc.example"));
}

TEST(Ecosystem, DnsPoolSubsets) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.ip_count = 4;
  spec.domains[0].dns_pool = {0, 1};
  spec.domains[1].dns_pool = {2, 3};
  const auto ips = eco.add_cluster(spec);
  dns::QueryContext ctx;
  const auto answer_a = eco.authority().query("a.svc.example", ctx);
  ASSERT_TRUE(answer_a.ok);
  EXPECT_EQ(answer_a.addresses[0], ips[0]);
  const auto answer_b = eco.authority().query("b.svc.example", ctx);
  EXPECT_EQ(answer_b.addresses[0], ips[2]);
}

TEST(Ecosystem, CertGroupOverride) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.certs = {
      {"CA", {"*.svc.example"}},
      {"CA", {"b.svc.example"}},
  };
  spec.domains[1].cert_group = 1;
  const auto ips = eco.add_cluster(spec);
  const auto cert_b = eco.server_at(ips[0])->certificate_for("b.svc.example");
  ASSERT_NE(cert_b, nullptr);
  EXPECT_FALSE(cert_b->covers("a.svc.example"));
}

TEST(Ecosystem, CertGroupOverrideMustCover) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.certs = {
      {"CA", {"*.svc.example"}},
      {"CA", {"unrelated.example"}},
  };
  spec.domains[1].cert_group = 1;
  EXPECT_THROW(eco.add_cluster(spec), std::invalid_argument);
}

TEST(Ecosystem, UncoveredDomainThrows) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.domains[0].name = "outside.other";
  EXPECT_THROW(eco.add_cluster(spec), std::invalid_argument);
}

TEST(Ecosystem, UnknownAsThrows) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.as_name = "NOPE";
  EXPECT_THROW(eco.add_cluster(spec), std::invalid_argument);
}

TEST(Ecosystem, OriginFrameAnnouncement) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.announce_origin_frame = true;
  const auto ips = eco.add_cluster(spec);
  const auto& frame = eco.server_at(ips[0])->origin_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->origins.size(), 2u);
  EXPECT_EQ(frame->origins[0], "https://a.svc.example");
}

TEST(Ecosystem, ExpiredCertificatesAreIssuedWithWindow) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.certs[0].not_after = util::hours(1);
  const auto ips = eco.add_cluster(spec);
  const auto cert = eco.server_at(ips[0])->certificate_for("a.svc.example");
  ASSERT_NE(cert, nullptr);
  EXPECT_TRUE(cert->valid_at(util::minutes(30)));
  EXPECT_FALSE(cert->valid_at(util::days(1)));
}

TEST(Ecosystem, IdleTimeoutAndH2Flag) {
  Ecosystem eco = make_eco();
  ClusterSpec spec = basic_cluster();
  spec.idle_timeout = util::seconds(90);
  spec.h2_enabled = false;
  const auto ips = eco.add_cluster(spec);
  EXPECT_EQ(eco.server_at(ips[0])->idle_timeout(), util::seconds(90));
  EXPECT_FALSE(eco.server_at(ips[0])->h2_enabled());
}

// ---------------------------------------------------------------- catalog

TEST(Catalog, InstallsPaperDomains) {
  Ecosystem eco{42};
  ServiceCatalog catalog{eco, 42};
  dns::QueryContext ctx;
  for (const char* domain :
       {"www.google-analytics.com", "www.googletagmanager.com",
        "connect.facebook.net", "www.facebook.com", "static.hotjar.com",
        "c0.wp.com", "stats.wp.com", "static.klaviyo.com",
        "fast.a.klaviyo.com", "pagead2.googlesyndication.com",
        "adservice.google.com", "fonts.gstatic.com", "www.google.de",
        "sync.1rx.io", "alb.reddit.com", "mc.yandex.ru"}) {
    EXPECT_TRUE(eco.authority().query(domain, ctx).ok) << domain;
  }
}

TEST(Catalog, KlaviyoCertsAreDisjunct) {
  Ecosystem eco{42};
  ServiceCatalog catalog{eco, 42};
  const auto static_cert = eco.certificate_of("static.klaviyo.com");
  const auto fast_cert = eco.certificate_of("fast.a.klaviyo.com");
  ASSERT_NE(static_cert, nullptr);
  ASSERT_NE(fast_cert, nullptr);
  EXPECT_FALSE(static_cert->covers("fast.a.klaviyo.com"));
  EXPECT_FALSE(fast_cert->covers("static.klaviyo.com"));
  EXPECT_EQ(static_cert->issuer_organization(), std::string("Let's Encrypt"));
}

TEST(Catalog, GoogleCertTopology) {
  Ecosystem eco{42};
  ServiceCatalog catalog{eco, 42};
  // GT's cert covers GA (the IP cause), the ads cert does not cover
  // adservice (the CERT case), gstatic covers google.de (Table 12 prev).
  EXPECT_TRUE(eco.certificate_of("www.googletagmanager.com")
                  ->covers("www.google-analytics.com"));
  EXPECT_FALSE(eco.certificate_of("pagead2.googlesyndication.com")
                   ->covers("adservice.google.com"));
  EXPECT_TRUE(
      eco.certificate_of("www.gstatic.com")->covers("www.google.de"));
  EXPECT_FALSE(
      eco.certificate_of("fonts.gstatic.com")->covers("www.google.de"));
  EXPECT_FALSE(eco.certificate_of("fonts.googleapis.com")
                   ->covers("fonts.gstatic.com"));
}

TEST(Catalog, FacebookAsymmetricServing) {
  Ecosystem eco{42};
  ServiceCatalog catalog{eco, 42};
  dns::QueryContext ctx;
  const auto wfb = eco.authority().query("www.facebook.com", ctx);
  const auto cfb = eco.authority().query("connect.facebook.net", ctx);
  ASSERT_TRUE(wfb.ok);
  ASSERT_TRUE(cfb.ok);
  // CFB's script is served on WFB's IPs...
  EXPECT_TRUE(eco.server_at(wfb.addresses[0])->serves("connect.facebook.net"));
  // ...but not vice versa (the paper's §5.3.1 finding).
  EXPECT_FALSE(eco.server_at(cfb.addresses[0])->serves("www.facebook.com"));
}

TEST(Catalog, GenericServicesFollowPatternMix) {
  Ecosystem eco{42};
  ServiceCatalog catalog{eco, 42, 200};
  const auto& generics = catalog.generic_services();
  ASSERT_EQ(generics.size(), 200u);
  std::map<GenericPattern, int> counts;
  for (const auto& service : generics) ++counts[service.pattern];
  EXPECT_GT(counts[GenericPattern::kClean], counts[GenericPattern::kUnsyncLb]);
  EXPECT_GT(counts[GenericPattern::kUnsyncLb],
            counts[GenericPattern::kCertSharded]);
  // Popular services are never cert-sharded.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NE(generics[i].pattern, GenericPattern::kCertSharded) << i;
  }
}

TEST(Catalog, EmbedsProduceResources) {
  Ecosystem eco{42};
  ServiceCatalog catalog{eco, 42};
  util::Rng rng{5};
  const Resource gtm = catalog.google_tag_manager(rng);
  EXPECT_FALSE(gtm.domain.empty());
  const auto fonts = catalog.google_fonts(rng, true);
  ASSERT_GE(fonts.size(), 2u);
  bool has_preconnect = false;
  for (const Resource& r : fonts) has_preconnect |= r.preconnect;
  EXPECT_TRUE(has_preconnect);
}

// ---------------------------------------------------------------- sitegen

TEST(SiteGen, DeterministicPerRank) {
  Ecosystem eco1{42};
  ServiceCatalog catalog1{eco1, 42};
  SiteUniverse universe1{eco1, catalog1};
  Ecosystem eco2{42};
  ServiceCatalog catalog2{eco2, 42};
  SiteUniverse universe2{eco2, catalog2};

  const Website& a = universe1.site(17);
  const Website& b = universe2.site(17);
  EXPECT_EQ(a.url, b.url);
  EXPECT_EQ(a.landing_domain, b.landing_domain);
  EXPECT_EQ(a.resources.size(), b.resources.size());
  EXPECT_EQ(total_requests(a), total_requests(b));
  // Same object on repeated access.
  EXPECT_EQ(&universe1.site(17), &universe1.site(17));
}

TEST(SiteGen, SiteHasResolvableLandingDomain) {
  Ecosystem eco{42};
  ServiceCatalog catalog{eco, 42};
  SiteUniverse universe{eco, catalog};
  const Website& site = universe.site(3);
  // Generated sites publish their DNS records through a per-site overlay
  // (the deployment), not the shared authority.
  ASSERT_NE(site.deployment, nullptr);
  dns::QueryContext ctx;
  EXPECT_TRUE(eco.authority()
                  .query(site.landing_domain, ctx, &site.deployment->records)
                  .ok);
  EXPECT_FALSE(eco.authority().query(site.landing_domain, ctx).ok);
  EXPECT_EQ(site.url, "https://" + site.landing_domain);
}

TEST(SiteGen, TopSitesEmbedMoreThanTailSites) {
  Ecosystem eco{42};
  ServiceCatalog catalog{eco, 42};
  UniverseConfig config = UniverseConfig::defaults();
  config.top_rank = 100;
  config.tail_rank = 1000;
  SiteUniverse universe{eco, catalog, config};
  std::size_t top_requests = 0;
  std::size_t tail_requests = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    top_requests += total_requests(universe.site(i));
    tail_requests += total_requests(universe.site(5000 + i));
  }
  EXPECT_GT(top_requests, tail_requests);
}

TEST(SiteGen, UnreachableIsDeterministicAndRare) {
  Ecosystem eco{42};
  ServiceCatalog catalog{eco, 42};
  SiteUniverse universe{eco, catalog};
  int unreachable = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(universe.unreachable(i), universe.unreachable(i));
    if (universe.unreachable(i)) ++unreachable;
  }
  EXPECT_GT(unreachable, 0);
  EXPECT_LT(unreachable, 100);
}

TEST(SiteGen, GeoVariantsSelectByRegion) {
  Resource r;
  r.domain = "www.google.com";
  r.geo_variants["eu"] = "www.google.de";
  EXPECT_EQ(r.domain_for("eu"), "www.google.de");
  EXPECT_EQ(r.domain_for("us"), "www.google.com");
  EXPECT_EQ(r.domain_for("apac"), "www.google.com");
}

TEST(SiteGen, TotalRequestsCountsTreeNotPreconnects) {
  Website site;
  site.landing_domain = "x";
  Resource parent;
  parent.domain = "a";
  Resource child;
  child.domain = "b";
  Resource pre;
  pre.domain = "c";
  pre.preconnect = true;
  parent.children.push_back(child);
  site.resources.push_back(parent);
  site.resources.push_back(pre);
  EXPECT_EQ(total_requests(site), 3u);  // document + parent + child
}

}  // namespace
}  // namespace h2r::web
