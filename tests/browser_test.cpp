#include <gtest/gtest.h>

#include <cmath>

#include "browser/browser.hpp"
#include "browser/crawl.hpp"
#include "core/classify.hpp"
#include "dns/vantage.hpp"
#include "web/catalog.hpp"
#include "web/ecosystem.hpp"

namespace h2r::browser {
namespace {

net::Prefix pfx(const char* s) { return net::Prefix::parse(s).value(); }

/// A small fixture world: one operator with two domains on one cert, and a
/// site landing page.
class BrowserTest : public ::testing::Test {
 protected:
  BrowserTest() : eco_(5) {
    eco_.register_as("T-AS", 64501, pfx("10.20.0.0/16"));

    web::ClusterSpec svc;
    svc.operator_name = "svc";
    svc.as_name = "T-AS";
    svc.ip_count = 4;
    svc.certs = {{"CA", {"*.svc.test"}}};
    for (const char* name : {"a.svc.test", "b.svc.test"}) {
      web::DomainSpec d;
      d.name = name;
      d.lb.policy = dns::LbPolicy::kStatic;
      d.lb.answer_count = 2;
      svc.domains.push_back(d);
    }
    svc_ips_ = eco_.add_cluster(svc);

    web::ClusterSpec site;
    site.operator_name = "site";
    site.as_name = "T-AS";
    site.ip_count = 1;
    site.certs = {{"CA", {"www.site.test", "site.test"}}};
    web::DomainSpec www;
    www.name = "www.site.test";
    site.domains.push_back(www);
    eco_.add_cluster(site);
  }

  web::Website site_with(std::vector<web::Resource> resources) {
    web::Website site;
    site.url = "https://www.site.test";
    site.landing_domain = "www.site.test";
    site.resources = std::move(resources);
    return site;
  }

  web::Resource res(const char* domain, fetch::Destination dest,
                    bool anonymous = false, util::SimTime delay = 10) {
    web::Resource r;
    r.domain = domain;
    r.path = "/r";
    r.destination = dest;
    r.crossorigin_anonymous = anonymous;
    r.start_delay = delay;
    return r;
  }

  PageLoadResult load(const web::Website& site, BrowserOptions options = {}) {
    dns::RecursiveResolver resolver{dns::standard_vantage_points()[0],
                                    &eco_.authority()};
    Browser chrome{eco_, resolver, options, 11};
    return chrome.load(site, util::days(1));
  }

  web::Ecosystem eco_;
  std::vector<net::IpAddress> svc_ips_;
};

TEST_F(BrowserTest, DocumentOnlyPageOpensOneConnection) {
  const auto page = load(site_with({}));
  EXPECT_EQ(page.connections_opened, 1u);
  ASSERT_EQ(page.observation.connections.size(), 1u);
  const auto& conn = page.observation.connections[0];
  EXPECT_EQ(conn.initial_domain, "www.site.test");
  ASSERT_EQ(conn.requests.size(), 1u);
  EXPECT_EQ(conn.requests[0].status, 200);
}

TEST_F(BrowserTest, SameHostRequestsShareTheGroupConnection) {
  const auto page = load(site_with({
      res("a.svc.test", fetch::Destination::kScript),
      res("a.svc.test", fetch::Destination::kImage, false, 200),
      res("a.svc.test", fetch::Destination::kImage, false, 400),
  }));
  EXPECT_EQ(page.connections_opened, 2u);  // document + one for a.svc.test
  EXPECT_EQ(page.group_reuses, 2u);
}

TEST_F(BrowserTest, IpPoolingCoalescesCoveredDomains) {
  // a and b share the pool and the certificate; with static LB both
  // resolve to the same first address -> the b request rides a's session.
  const auto page = load(site_with({
      res("a.svc.test", fetch::Destination::kScript),
      res("b.svc.test", fetch::Destination::kImage, false, 500),
  }));
  EXPECT_EQ(page.connections_opened, 2u);
  EXPECT_EQ(page.alias_reuses, 1u);
  const auto cls = core::classify_site(page.observation,
                                       {core::DurationModel::kExact});
  EXPECT_TRUE(cls.findings.empty());
}

TEST_F(BrowserTest, IpPoolingCanBeDisabled) {
  BrowserOptions options;
  options.enable_ip_pooling = false;
  const auto page = load(site_with({
                             res("a.svc.test", fetch::Destination::kScript),
                             res("b.svc.test", fetch::Destination::kImage,
                                 false, 500),
                         }),
                         options);
  EXPECT_EQ(page.connections_opened, 3u);
  EXPECT_EQ(page.alias_reuses, 0u);
  // Without pooling the second connection is redundant (CRED: same IP,
  // covering cert).
  const auto cls = core::classify_site(page.observation,
                                       {core::DurationModel::kExact});
  EXPECT_EQ(cls.redundant_connections(), 1u);
}

TEST_F(BrowserTest, PrivacyModeSplitsThePool) {
  // Credentialed image + anonymous font to the same host: Fetch forbids
  // sharing -> two connections (the CRED cause).
  const auto page = load(site_with({
      res("a.svc.test", fetch::Destination::kImage),
      res("a.svc.test", fetch::Destination::kFont, true, 300),
  }));
  EXPECT_EQ(page.connections_opened, 3u);
  const auto cls = core::classify_site(page.observation,
                                       {core::DurationModel::kExact});
  ASSERT_EQ(cls.findings.size(), 1u);
  EXPECT_EQ(cls.findings[0].causes, std::set<core::Cause>{core::Cause::kCred});
}

TEST_F(BrowserTest, PatchedBrowserIgnoresPrivacyMode) {
  BrowserOptions options;
  options.follow_fetch_credentials = false;  // the paper's patched build
  const auto page = load(site_with({
                             res("a.svc.test", fetch::Destination::kImage),
                             res("a.svc.test", fetch::Destination::kFont,
                                 true, 300),
                         }),
                         options);
  EXPECT_EQ(page.connections_opened, 2u);
  const auto cls = core::classify_site(page.observation,
                                       {core::DurationModel::kExact});
  EXPECT_TRUE(cls.findings.empty());
}

TEST_F(BrowserTest, PreconnectOpensConnectionWithoutRequest) {
  web::Resource pre;
  pre.domain = "a.svc.test";
  pre.preconnect = true;
  const auto page = load(site_with({pre}));
  EXPECT_EQ(page.connections_opened, 2u);
  bool found_empty = false;
  for (const auto& conn : page.observation.connections) {
    if (conn.initial_domain == "a.svc.test") {
      EXPECT_TRUE(conn.requests.empty());
      found_empty = true;
    }
  }
  EXPECT_TRUE(found_empty);
}

TEST_F(BrowserTest, FaultyPreconnectCausesCredRedundancy) {
  // preconnect without crossorigin (credentialed) + anonymous font.
  web::Resource pre;
  pre.domain = "a.svc.test";
  pre.preconnect = true;
  const auto page = load(site_with({
      pre,
      res("a.svc.test", fetch::Destination::kFont, true, 100),
  }));
  const auto cls = core::classify_site(page.observation,
                                       {core::DurationModel::kExact});
  ASSERT_EQ(cls.redundant_connections(), 1u);
  EXPECT_EQ(cls.findings[0].causes, std::set<core::Cause>{core::Cause::kCred});
}

TEST_F(BrowserTest, MisdirectedRequestRetriesAndExcludes) {
  // Make b.svc.test served only on IPs {2,3} while announced on {0,1}:
  // pooling routes it onto a's session (IP 0) -> 421 -> retry.
  web::ClusterSpec svc;
  svc.operator_name = "svc2";
  svc.as_name = "T-AS";
  svc.ip_count = 2;
  svc.certs = {{"CA", {"*.svc2.test"}}};
  web::DomainSpec a;
  a.name = "a.svc2.test";
  a.dns_pool = {0};
  a.serves_on = {0};
  web::DomainSpec b;
  b.name = "b.svc2.test";
  b.dns_pool = {0, 1};
  b.serves_on = {1};  // NOT served on IP 0
  svc.domains = {a, b};
  eco_.add_cluster(svc);

  const auto page = load(site_with({
      res("a.svc2.test", fetch::Destination::kScript),
      res("b.svc2.test", fetch::Destination::kImage, false, 500),
  }));
  EXPECT_EQ(page.misdirected_retries, 1u);
  // The 421 is recorded on a's session and b got its own connection.
  bool excluded = false;
  for (const auto& conn : page.observation.connections) {
    if (conn.initial_domain == "a.svc2.test") {
      excluded = conn.excludes("b.svc2.test");
    }
  }
  EXPECT_TRUE(excluded);
  // The classifier must NOT count the 421'd pair as redundant.
  const auto cls = core::classify_site(page.observation,
                                       {core::DurationModel::kExact});
  for (const auto& finding : cls.findings) {
    const auto& conn = page.observation.connections[finding.connection_index];
    EXPECT_NE(conn.initial_domain, "b.svc2.test");
  }
}

TEST_F(BrowserTest, H1OnlyServersProduceH1Entries) {
  web::ClusterSpec legacy;
  legacy.operator_name = "legacy";
  legacy.as_name = "T-AS";
  legacy.ip_count = 1;
  legacy.h2_enabled = false;
  legacy.certs = {{"CA", {"old.legacy.test"}}};
  web::DomainSpec d;
  d.name = "old.legacy.test";
  legacy.domains.push_back(d);
  eco_.add_cluster(legacy);

  const auto page = load(site_with({
      res("old.legacy.test", fetch::Destination::kImage),
  }));
  EXPECT_EQ(page.h1_entries.size(), 1u);
  EXPECT_EQ(page.h1_entries[0].http_version, "http/1.1");
  // No h2 connection for the legacy host.
  for (const auto& conn : page.observation.connections) {
    EXPECT_NE(conn.initial_domain, "old.legacy.test");
  }
}

TEST_F(BrowserTest, IdleServersCloseConnections) {
  web::ClusterSpec closing;
  closing.operator_name = "closing";
  closing.as_name = "T-AS";
  closing.ip_count = 1;
  closing.idle_timeout = util::seconds(60);
  closing.certs = {{"CA", {"c.closing.test"}}};
  web::DomainSpec d;
  d.name = "c.closing.test";
  closing.domains.push_back(d);
  eco_.add_cluster(closing);

  BrowserOptions options;
  options.post_load_wait = util::seconds(300);
  const auto page = load(site_with({
                             res("c.closing.test", fetch::Destination::kImage),
                         }),
                         options);
  bool closed = false;
  for (const auto& conn : page.observation.connections) {
    if (conn.initial_domain == "c.closing.test") {
      closed = conn.closed_at.has_value();
      if (closed) {
        EXPECT_GT(*conn.closed_at, conn.opened_at + util::seconds(59));
      }
    }
  }
  EXPECT_TRUE(closed);
}

TEST_F(BrowserTest, OriginFrameEnablesCrossIpReuse) {
  // Two domains on disjoint DNS pools: without ORIGIN support this is an
  // IP-redundant pair; with it the browser reroutes onto the session.
  web::ClusterSpec svc;
  svc.operator_name = "of";
  svc.as_name = "T-AS";
  svc.ip_count = 2;
  svc.announce_origin_frame = true;
  svc.certs = {{"CA", {"*.of.test"}}};
  web::DomainSpec a;
  a.name = "a.of.test";
  a.dns_pool = {0};
  web::DomainSpec b;
  b.name = "b.of.test";
  b.dns_pool = {1};
  svc.domains = {a, b};
  eco_.add_cluster(svc);

  const auto resources = std::vector<web::Resource>{
      res("a.of.test", fetch::Destination::kScript),
      res("b.of.test", fetch::Destination::kImage, false, 500),
  };

  const auto chromium = load(site_with(resources));
  const auto cls_chromium = core::classify_site(
      chromium.observation, {core::DurationModel::kExact});
  EXPECT_EQ(cls_chromium.count_cause(core::Cause::kIp), 1u);
  EXPECT_EQ(chromium.origin_frame_reuses, 0u);

  BrowserOptions options;
  options.support_origin_frame = true;
  const auto rfc8336 = load(site_with(resources), options);
  EXPECT_EQ(rfc8336.origin_frame_reuses, 1u);
  const auto cls_origin = core::classify_site(rfc8336.observation,
                                              {core::DurationModel::kExact});
  EXPECT_EQ(cls_origin.count_cause(core::Cause::kIp), 0u);
}

TEST_F(BrowserTest, ChildrenLoadAfterParents) {
  web::Resource parent = res("a.svc.test", fetch::Destination::kScript);
  parent.children.push_back(
      res("b.svc.test", fetch::Destination::kImage, false, 50));
  const auto page = load(site_with({parent}));
  // b's request must start after a's finished.
  util::SimTime a_end = 0;
  util::SimTime b_start = 0;
  for (const auto& conn : page.observation.connections) {
    for (const auto& req : conn.requests) {
      if (req.domain == "a.svc.test") a_end = req.finished_at;
      if (req.domain == "b.svc.test") b_start = req.started_at;
    }
  }
  ASSERT_GT(a_end, 0);
  EXPECT_GE(b_start, a_end + 50);
}

TEST_F(BrowserTest, NetLogContainsLifecycleEvents) {
  const auto page = load(site_with({res("a.svc.test",
                                        fetch::Destination::kScript)}));
  bool has_dns = false;
  bool has_created = false;
  bool has_request = false;
  for (const auto& event : page.log.events()) {
    has_dns |= event.type == netlog::EventType::kDnsResolved;
    has_created |= event.type == netlog::EventType::kSessionCreated;
    has_request |= event.type == netlog::EventType::kRequestFinished;
  }
  EXPECT_TRUE(has_dns);
  EXPECT_TRUE(has_created);
  EXPECT_TRUE(has_request);
}

TEST_F(BrowserTest, LoadIsDeterministic) {
  const auto site = site_with({
      res("a.svc.test", fetch::Destination::kScript),
      res("b.svc.test", fetch::Destination::kFont, true, 200),
  });
  const auto page1 = load(site);
  const auto page2 = load(site);
  EXPECT_EQ(page1.connections_opened, page2.connections_opened);
  EXPECT_EQ(page1.observation.connections.size(),
            page2.observation.connections.size());
  for (std::size_t i = 0; i < page1.observation.connections.size(); ++i) {
    EXPECT_EQ(page1.observation.connections[i].endpoint,
              page2.observation.connections[i].endpoint);
  }
}

// ------------------------------------------------------------------ crawl

TEST_F(BrowserTest, ExpiredCertificateMakesSiteUnreachable) {
  web::ClusterSpec stale;
  stale.operator_name = "stale";
  stale.as_name = "T-AS";
  stale.ip_count = 1;
  stale.certs = {{"CA", {"www.stale.test"}, 0, util::hours(1)}};
  web::DomainSpec d;
  d.name = "www.stale.test";
  stale.domains.push_back(d);
  eco_.add_cluster(stale);

  web::Website site;
  site.url = "https://www.stale.test";
  site.landing_domain = "www.stale.test";
  const auto page = load(site);
  // Certificate errors are NOT ignored (paper §4.2.2): the navigation
  // fails and the site counts as unreachable.
  EXPECT_FALSE(page.reachable);
  EXPECT_GT(page.failed_fetches, 0u);
}

TEST_F(BrowserTest, VisitReusesConnectionsAcrossPages) {
  const web::Website site = site_with({
      res("a.svc.test", fetch::Destination::kScript),
      res("b.svc.test", fetch::Destination::kImage, false, 200),
  });
  // Internal page reuses the same hosts.
  const std::vector<std::vector<web::Resource>> internal = {
      {res("a.svc.test", fetch::Destination::kImage, false, 30)},
      {res("b.svc.test", fetch::Destination::kImage, false, 30)},
  };
  dns::RecursiveResolver resolver{dns::standard_vantage_points()[0],
                                  &eco_.authority()};
  Browser chrome{eco_, resolver, BrowserOptions{}, 11};
  const VisitResult visit = chrome.visit(site, internal, util::days(1));
  ASSERT_EQ(visit.pages.size(), 3u);
  EXPECT_GT(visit.pages[0].connections_opened, 0u);
  EXPECT_EQ(visit.pages[1].connections_opened, 0u);  // warm pools
  EXPECT_EQ(visit.pages[2].connections_opened, 0u);
  EXPECT_GT(visit.pages[1].requests, 0u);
  // One cumulative observation covering all pages' requests.
  std::uint64_t total_requests = 0;
  for (const auto& conn : visit.observation.connections) {
    total_requests += conn.requests.size();
  }
  std::uint64_t per_page = 0;
  for (const auto& page : visit.pages) per_page += page.requests;
  EXPECT_EQ(total_requests, per_page);
  // Pages are ordered in time.
  EXPECT_LT(visit.pages[0].finished_at, visit.pages[1].started_at);
}

TEST_F(BrowserTest, VisitIdleTimeoutForcesReconnectBetweenPages) {
  web::ClusterSpec closing;
  closing.operator_name = "closing2";
  closing.as_name = "T-AS";
  closing.ip_count = 1;
  closing.idle_timeout = util::seconds(20);
  closing.certs = {{"CA", {"c.closing2.test"}}};
  web::DomainSpec d;
  d.name = "c.closing2.test";
  closing.domains.push_back(d);
  eco_.add_cluster(closing);

  const web::Website site = site_with({
      res("c.closing2.test", fetch::Destination::kImage),
  });
  const std::vector<std::vector<web::Resource>> internal = {
      {res("c.closing2.test", fetch::Destination::kImage, false, 30)},
  };
  dns::RecursiveResolver resolver{dns::standard_vantage_points()[0],
                                  &eco_.authority()};
  Browser chrome{eco_, resolver, BrowserOptions{}, 11};
  // Dwell longer than the 20s idle timeout: the server closes the
  // connection between pages and the internal page must reconnect.
  const VisitResult visit =
      chrome.visit(site, internal, util::days(1), util::seconds(60));
  ASSERT_EQ(visit.pages.size(), 2u);
  EXPECT_EQ(visit.pages[1].connections_opened, 1u);
}

TEST(SiteGen, InternalPagesAreDeterministicAndOnSite) {
  web::Ecosystem eco{42};
  web::ServiceCatalog catalog{eco, 42};
  web::SiteUniverse universe{eco, catalog};
  const auto pages1 = universe.internal_pages(5, 3);
  const auto pages2 = universe.internal_pages(5, 3);
  ASSERT_EQ(pages1.size(), 3u);
  ASSERT_EQ(pages1.size(), pages2.size());
  for (std::size_t p = 0; p < pages1.size(); ++p) {
    ASSERT_EQ(pages1[p].size(), pages2[p].size());
    EXPECT_FALSE(pages1[p].empty());
    for (std::size_t i = 0; i < pages1[p].size(); ++i) {
      EXPECT_EQ(pages1[p][i].domain, pages2[p][i].domain);
      EXPECT_EQ(pages1[p][i].path, pages2[p][i].path);
    }
  }
}

TEST(Crawl, VisitsRangeAndAggregates) {
  web::Ecosystem eco{42};
  web::ServiceCatalog catalog{eco, 42};
  web::SiteUniverse universe{eco, catalog};

  CrawlOptions options;
  options.har_path = true;
  options.har_quirks = har::ExportQuirks::none();
  int sites_seen = 0;
  const CrawlSummary summary = crawl_range(
      universe, 0, 30, options, [&](const SiteResult& site) {
        ++sites_seen;
        if (!site.reachable) return;
        EXPECT_FALSE(site.netlog_observation.site_url.empty());
        // With quirks disabled the HAR path sees the same connections
        // minus request-less preconnects and h1 traffic.
        EXPECT_LE(site.har_observation.connections.size(),
                  site.netlog_observation.connections.size());
      });
  EXPECT_EQ(sites_seen, 30);
  EXPECT_EQ(summary.sites_visited + summary.sites_unreachable, 30u);
  EXPECT_GT(summary.connections_opened, 30u);
}

TEST(Crawl, ParallelMatchesSequential) {
  auto run = [](unsigned threads) {
    web::Ecosystem eco{42};
    web::ServiceCatalog catalog{eco, 42};
    web::SiteUniverse universe{eco, catalog};
    CrawlOptions options;
    options.threads = threads;
    std::vector<std::pair<std::size_t, std::size_t>> conns_per_rank;
    const CrawlSummary summary = crawl_range(
        universe, 0, 40, options, [&](const SiteResult& site) {
          conns_per_rank.emplace_back(
              site.rank, site.netlog_observation.connections.size());
        });
    return std::make_pair(summary.connections_opened, conns_per_rank);
  };
  const auto sequential = run(1);
  const auto parallel = run(4);
  // Every per-site input is derived from (seed, site) alone, so parallel
  // crawls are EXACTLY equal to sequential ones — no tolerance. The full
  // bit-identity contract is pinned in crawl_parallel_test.cpp.
  EXPECT_EQ(sequential.first, parallel.first);
  ASSERT_EQ(sequential.second.size(), parallel.second.size());
  for (std::size_t i = 0; i < sequential.second.size(); ++i) {
    EXPECT_EQ(sequential.second[i].first, parallel.second[i].first);
    EXPECT_EQ(sequential.second[i].second, parallel.second[i].second)
        << "rank " << sequential.second[i].first;
  }
}

TEST(Crawl, SinkReceivesRankOrderInParallelMode) {
  web::Ecosystem eco{42};
  web::ServiceCatalog catalog{eco, 42};
  web::SiteUniverse universe{eco, catalog};
  CrawlOptions options;
  options.threads = 3;
  std::size_t expected = 5;
  crawl_range(universe, 5, 20, options, [&](const SiteResult& site) {
    EXPECT_EQ(site.rank, expected++);
  });
  EXPECT_EQ(expected, 25u);
}

TEST(Crawl, InvalidVantageThrows) {
  web::Ecosystem eco{42};
  web::ServiceCatalog catalog{eco, 42};
  web::SiteUniverse universe{eco, catalog};
  CrawlOptions options;
  options.vantage_index = 99;
  EXPECT_THROW(crawl_range(universe, 0, 1, options, [](const SiteResult&) {}),
               std::out_of_range);
}

}  // namespace
}  // namespace h2r::browser
