#include <gtest/gtest.h>

#include "experiments/perf_model.hpp"
#include "http2/priority.hpp"
#include "http2/session.hpp"
#include "tls/certificate.hpp"

namespace h2r::http2 {
namespace {

// ----------------------------------------------------------- PriorityTree

TEST(PriorityTree, DeclareAndQuery) {
  PriorityTree tree;
  tree.declare(1, 0, 256);
  tree.declare(3, 1, 32);
  EXPECT_TRUE(tree.contains(1));
  EXPECT_EQ(tree.weight_of(1), 256);
  EXPECT_EQ(tree.parent_of(3), 1u);
  EXPECT_EQ(tree.children_of(0), std::vector<StreamId>{1});
  EXPECT_EQ(tree.children_of(1), std::vector<StreamId>{3});
}

TEST(PriorityTree, UnknownParentDegradesToRoot) {
  PriorityTree tree;
  tree.declare(5, 99, 16);
  EXPECT_EQ(tree.parent_of(5), 0u);
}

TEST(PriorityTree, SelfDependencyDegradesToRoot) {
  PriorityTree tree;
  tree.declare(7, 7, 16);
  EXPECT_EQ(tree.parent_of(7), 0u);
}

TEST(PriorityTree, WeightsAreClamped) {
  PriorityTree tree;
  tree.declare(1, 0, 0);
  tree.declare(3, 0, 1000);
  EXPECT_EQ(tree.weight_of(1), 1);
  EXPECT_EQ(tree.weight_of(3), 256);
  EXPECT_EQ(tree.weight_of(999), kDefaultWeight);  // unknown stream
}

TEST(PriorityTree, ExclusiveInsertionAdoptsSiblings) {
  PriorityTree tree;
  tree.declare(1, 0);
  tree.declare(3, 0);
  tree.declare(5, 0, 16, /*exclusive=*/true);
  EXPECT_EQ(tree.children_of(0), std::vector<StreamId>{5});
  const auto adopted = tree.children_of(5);
  EXPECT_EQ(adopted.size(), 2u);
  EXPECT_EQ(tree.parent_of(1), 5u);
  EXPECT_EQ(tree.parent_of(3), 5u);
}

TEST(PriorityTree, RemoveReparentsChildren) {
  PriorityTree tree;
  tree.declare(1, 0);
  tree.declare(3, 1);
  tree.declare(5, 3);
  tree.remove(3);
  EXPECT_FALSE(tree.contains(3));
  EXPECT_EQ(tree.parent_of(5), 1u);
}

TEST(PriorityTree, DistributeSharesByWeight) {
  PriorityTree tree;
  tree.declare(1, 0, 200);
  tree.declare(3, 0, 100);
  const std::map<StreamId, std::uint64_t> pending = {{1, 10000}, {3, 10000}};
  const auto granted = tree.distribute(pending, 3000);
  // 2:1 split (allow rounding slack).
  EXPECT_NEAR(static_cast<double>(granted.at(1)) /
                  static_cast<double>(granted.at(3)),
              2.0, 0.1);
}

TEST(PriorityTree, ParentStarvesChildren) {
  PriorityTree tree;
  tree.declare(1, 0, 256);
  tree.declare(3, 1, 256);  // depends on 1
  const std::map<StreamId, std::uint64_t> pending = {{1, 5000}, {3, 5000}};
  const auto granted = tree.distribute(pending, 1000);
  EXPECT_EQ(granted.at(1), 1000u);
  EXPECT_EQ(granted.count(3), 0u);
}

TEST(PriorityTree, BlockedParentUnblocksChild) {
  PriorityTree tree;
  tree.declare(1, 0, 256);
  tree.declare(3, 1, 64);
  // Parent has nothing pending: the child gets the capacity.
  const std::map<StreamId, std::uint64_t> pending = {{3, 5000}};
  const auto granted = tree.distribute(pending, 1000);
  EXPECT_EQ(granted.at(3), 1000u);
}

TEST(PriorityTree, DrainedStreamReleasesCapacity) {
  PriorityTree tree;
  tree.declare(1, 0, 128);
  tree.declare(3, 0, 128);
  // Stream 1 only has 100 bytes; stream 3 should get the rest.
  const std::map<StreamId, std::uint64_t> pending = {{1, 100}, {3, 10000}};
  const auto granted = tree.distribute(pending, 2000);
  EXPECT_EQ(granted.at(1), 100u);
  EXPECT_GE(granted.at(3), 1800u);
}

TEST(PriorityTree, EmptyPendingGrantsNothing) {
  PriorityTree tree;
  tree.declare(1, 0);
  EXPECT_TRUE(tree.distribute({}, 1000).empty());
}

// -------------------------------------------------- priority experiment

TEST(PrioritySim, SingleConnectionHasNoInversions) {
  const auto workload = experiments::make_priority_workload(32, 3);
  const auto result = experiments::schedule_prioritized(workload, 1, 65536);
  EXPECT_EQ(result.inversion_share, 0.0);
}

TEST(PrioritySim, SplittingDelaysHighPriorityResources) {
  const auto workload = experiments::make_priority_workload(32, 3);
  const auto one = experiments::schedule_prioritized(workload, 1, 65536);
  const auto eight = experiments::schedule_prioritized(workload, 8, 65536);
  EXPECT_GT(eight.mean_high_priority_round, one.mean_high_priority_round);
  EXPECT_GE(eight.inversion_share, one.inversion_share);
}

TEST(PrioritySim, AllResourcesComplete) {
  const auto workload = experiments::make_priority_workload(20, 5);
  for (int conns : {1, 3, 7}) {
    const auto result =
        experiments::schedule_prioritized(workload, conns, 65536);
    ASSERT_EQ(result.completion_round.size(), workload.size());
    for (int round : result.completion_round) {
      EXPECT_GT(round, 0);
    }
  }
}

// --------------------------------------------------------- flow control

Session window_session(std::uint32_t window) {
  Session::Params params;
  params.certificate = tls::Certificate::make({"x", {"x"}, "CA"});
  params.local_settings.initial_window_size = window;
  return Session{std::move(params)};
}

TEST(FlowControl, SmallResponsesNeverStall) {
  Session s = window_session(65535);
  const StreamId id = s.submit_request({});
  EXPECT_EQ(s.receive_response_data(id, 30000), 0);
}

TEST(FlowControl, LargeResponsesStallPerWindowEpoch) {
  Session s = window_session(65535);
  const StreamId id = s.submit_request({});
  // ~4.5 windows worth of data -> 4 stalls.
  EXPECT_EQ(s.receive_response_data(id, 300000), 4);
  EXPECT_GT(s.window_updates_sent(), 0u);
}

TEST(FlowControl, WindowSizeControlsStalls) {
  Session big = window_session(1024 * 1024);
  const StreamId id = big.submit_request({});
  EXPECT_EQ(big.receive_response_data(id, 300000), 0);
}

TEST(FlowControl, ConnectionWindowSharedAcrossStreams) {
  Session s = window_session(65535);
  const StreamId a = s.submit_request({});
  const StreamId b = s.submit_request({});
  // First response eats most of the connection window; the lazy top-up
  // keeps the second response from stalling.
  EXPECT_EQ(s.receive_response_data(a, 60000), 0);
  EXPECT_EQ(s.receive_response_data(b, 60000), 0);
  EXPECT_GE(s.window_updates_sent(), 1u);
  EXPECT_GT(s.connection_receive_window(), 0);
}

TEST(FlowControl, UnknownStreamIsIgnored) {
  Session s = window_session(65535);
  EXPECT_EQ(s.receive_response_data(77, 1000000), 0);
}

}  // namespace
}  // namespace h2r::http2
