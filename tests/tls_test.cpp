#include <gtest/gtest.h>

#include "tls/certificate.hpp"
#include "tls/issuance.hpp"

namespace h2r::tls {
namespace {

struct MatchCase {
  const char* pattern;
  const char* host;
  bool expected;
};

class DnsNameMatch : public ::testing::TestWithParam<MatchCase> {};

TEST_P(DnsNameMatch, MatchesPerRfc6125) {
  const MatchCase& c = GetParam();
  EXPECT_EQ(matches_dns_name(c.pattern, c.host), c.expected)
      << c.pattern << " vs " << c.host;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DnsNameMatch,
    ::testing::Values(
        MatchCase{"example.com", "example.com", true},
        MatchCase{"EXAMPLE.com", "example.COM", true},  // case-insensitive
        MatchCase{"example.com", "www.example.com", false},
        MatchCase{"*.example.com", "www.example.com", true},
        MatchCase{"*.example.com", "EXAMPLE.com", false},   // no bare apex
        MatchCase{"*.example.com", "a.b.example.com", false},  // one label
        MatchCase{"*.example.com", "example.org", false},
        MatchCase{"*.g.doubleclick.net", "stats.g.doubleclick.net", true},
        MatchCase{"*.g.doubleclick.net", "g.doubleclick.net", false},
        MatchCase{"www.example.com", "example.com", false},
        MatchCase{"", "example.com", false},
        MatchCase{"example.com", "", false},
        MatchCase{"*.", "x.", false},  // empty label never matches
        MatchCase{"*.com", "example.com", true}));

TEST(Certificate, CoversViaSanList) {
  auto cert = Certificate::make({
      "static.klaviyo.com",
      {"static.klaviyo.com", "*.media.klaviyo.com"},
      "Let's Encrypt",
  });
  EXPECT_TRUE(cert->covers("static.klaviyo.com"));
  EXPECT_TRUE(cert->covers("a.media.klaviyo.com"));
  EXPECT_FALSE(cert->covers("fast.a.klaviyo.com"));  // the paper's CERT case
  EXPECT_EQ(cert->issuer_organization(), "Let's Encrypt");
}

TEST(Certificate, FallsBackToCommonNameWithoutSans) {
  auto cert = Certificate::make({"legacy.example.com", {}, "Old CA"});
  EXPECT_TRUE(cert->covers("legacy.example.com"));
  EXPECT_FALSE(cert->covers("other.example.com"));
}

TEST(Certificate, SanListIgnoresCommonNameWhenPresent) {
  auto cert = Certificate::make({"cn.example.com", {"san.example.com"}, "CA"});
  EXPECT_FALSE(cert->covers("cn.example.com"));
  EXPECT_TRUE(cert->covers("san.example.com"));
}

TEST(Certificate, ValidityWindow) {
  Certificate::Spec spec;
  spec.subject_common_name = "x";
  spec.san_dns_names = {"x"};
  spec.not_before = 100;
  spec.not_after = 200;
  auto cert = Certificate::make(spec);
  EXPECT_FALSE(cert->valid_at(99));
  EXPECT_TRUE(cert->valid_at(100));
  EXPECT_TRUE(cert->valid_at(200));
  EXPECT_FALSE(cert->valid_at(201));
}

TEST(Certificate, FingerprintDistinguishesSerials) {
  CertificateAuthority ca{"Test CA"};
  auto c1 = ca.issue({"a.example"});
  auto c2 = ca.issue({"a.example"});
  EXPECT_NE(c1->fingerprint(), c2->fingerprint());
}

TEST(CertificateAuthority, SerialsIncrease) {
  CertificateAuthority ca{"Test CA"};
  auto c1 = ca.issue({"a"});
  auto c2 = ca.issue({"b"});
  EXPECT_LT(c1->serial(), c2->serial());
  EXPECT_EQ(ca.issued_count(), 2u);
}

TEST(Issuance, MergedSanIssuesOneCertificate) {
  CertificateAuthority ca{"CA"};
  const auto certs = ca.issue_for(
      IssuancePolicy::kMergedSan,
      {"www.example.com", "static.example.com", "img.example.com"});
  ASSERT_EQ(certs.size(), 1u);
  EXPECT_TRUE(certs[0]->covers("www.example.com"));
  EXPECT_TRUE(certs[0]->covers("img.example.com"));
}

TEST(Issuance, PerDomainIssuesDisjunctCertificates) {
  // The certbot-default pattern behind the paper's CERT long tail.
  CertificateAuthority ca{"Let's Encrypt"};
  const auto certs = ca.issue_for(IssuancePolicy::kPerDomain,
                                  {"www.example.com", "static.example.com"});
  ASSERT_EQ(certs.size(), 2u);
  EXPECT_TRUE(certs[0]->covers("www.example.com"));
  EXPECT_FALSE(certs[0]->covers("static.example.com"));
  EXPECT_FALSE(certs[1]->covers("www.example.com"));
  EXPECT_TRUE(certs[1]->covers("static.example.com"));
}

TEST(Issuance, WildcardCoversSubdomainsPlusApex) {
  CertificateAuthority ca{"CA"};
  const auto certs = ca.issue_for(
      IssuancePolicy::kWildcard,
      {"www.example.com", "static.example.com", "example.com"},
      "example.com");
  ASSERT_EQ(certs.size(), 1u);
  EXPECT_TRUE(certs[0]->covers("example.com"));
  EXPECT_TRUE(certs[0]->covers("www.example.com"));
  EXPECT_TRUE(certs[0]->covers("anything.example.com"));
  EXPECT_FALSE(certs[0]->covers("a.b.example.com"));
}

TEST(Issuance, WildcardLeftoversGetOwnCertificates) {
  CertificateAuthority ca{"CA"};
  const auto certs = ca.issue_for(
      IssuancePolicy::kWildcard,
      {"www.example.com", "cdn.other-domain.net"}, "example.com");
  ASSERT_EQ(certs.size(), 2u);
  EXPECT_TRUE(certs[0]->covers("www.example.com"));
  EXPECT_TRUE(certs[1]->covers("cdn.other-domain.net"));
  EXPECT_FALSE(certs[0]->covers("cdn.other-domain.net"));
}

TEST(Issuance, EmptyDomainLists) {
  CertificateAuthority ca{"CA"};
  EXPECT_TRUE(ca.issue_for(IssuancePolicy::kMergedSan, {}).empty());
  EXPECT_TRUE(ca.issue_for(IssuancePolicy::kPerDomain, {}).empty());
  EXPECT_TRUE(ca.issue_for(IssuancePolicy::kWildcard, {}, "x").empty());
}

}  // namespace
}  // namespace h2r::tls
