#include <gtest/gtest.h>

#include "fetch/origin.hpp"
#include "fetch/request.hpp"

namespace h2r::fetch {
namespace {

TEST(Origin, SerializeElidesDefaultPorts) {
  EXPECT_EQ(Origin::https("example.com").serialize(), "https://example.com");
  EXPECT_EQ(Origin::https("example.com", 8443).serialize(),
            "https://example.com:8443");
}

TEST(Origin, HostIsLowercased) {
  EXPECT_EQ(Origin::https("WWW.Example.COM").host, "www.example.com");
}

TEST(Origin, SameOriginRequiresSchemeHostPort) {
  const Origin a = Origin::https("example.com");
  EXPECT_TRUE(a.same_origin(Origin::https("example.com")));
  EXPECT_FALSE(a.same_origin(Origin::https("www.example.com")));
  EXPECT_FALSE(a.same_origin(Origin::https("example.com", 8443)));
  Origin http = a;
  http.scheme = "http";
  http.port = 80;
  EXPECT_FALSE(a.same_origin(http));
}

// ------------------------------------------------- element fetch defaults

TEST(Defaults, NavigationsCarryCredentials) {
  const RequestInit init = default_init_for(Destination::kDocument, false);
  EXPECT_EQ(init.mode, RequestMode::kNavigate);
  EXPECT_EQ(init.credentials, CredentialsMode::kInclude);
}

TEST(Defaults, ClassicSubresourcesAreNoCorsInclude) {
  for (Destination d : {Destination::kScript, Destination::kImage,
                        Destination::kStyle, Destination::kMedia}) {
    const RequestInit init = default_init_for(d, false);
    EXPECT_EQ(init.mode, RequestMode::kNoCors);
    EXPECT_EQ(init.credentials, CredentialsMode::kInclude);
  }
}

TEST(Defaults, FontsAlwaysUseCorsSameOrigin) {
  // The canonical cross-origin CRED trigger the paper names (§3).
  const RequestInit init = default_init_for(Destination::kFont, false);
  EXPECT_EQ(init.mode, RequestMode::kCors);
  EXPECT_EQ(init.credentials, CredentialsMode::kSameOrigin);
}

TEST(Defaults, CrossoriginAnonymousFlipsClassicElements) {
  const RequestInit init = default_init_for(Destination::kScript, true);
  EXPECT_EQ(init.mode, RequestMode::kCors);
  EXPECT_EQ(init.credentials, CredentialsMode::kSameOrigin);
}

// ------------------------------------------------------ response tainting

FetchRequest request(Destination dest, RequestMode mode,
                     CredentialsMode credentials, const char* url_host,
                     const char* doc_host = "site.example") {
  FetchRequest r;
  r.url_origin = Origin::https(url_host);
  r.destination = dest;
  r.mode = mode;
  r.credentials = credentials;
  r.document_origin = Origin::https(doc_host);
  return r;
}

TEST(Tainting, SameOriginIsBasic) {
  EXPECT_EQ(response_tainting(request(Destination::kImage,
                                      RequestMode::kNoCors,
                                      CredentialsMode::kInclude,
                                      "site.example")),
            ResponseTainting::kBasic);
}

TEST(Tainting, CrossOriginNoCorsIsOpaque) {
  EXPECT_EQ(response_tainting(request(Destination::kImage,
                                      RequestMode::kNoCors,
                                      CredentialsMode::kInclude,
                                      "tracker.example")),
            ResponseTainting::kOpaque);
}

TEST(Tainting, CrossOriginCorsIsCors) {
  EXPECT_EQ(response_tainting(request(Destination::kFont, RequestMode::kCors,
                                      CredentialsMode::kSameOrigin,
                                      "fonts.example")),
            ResponseTainting::kCors);
}

TEST(Tainting, NavigationIsBasic) {
  EXPECT_EQ(response_tainting(request(Destination::kDocument,
                                      RequestMode::kNavigate,
                                      CredentialsMode::kInclude,
                                      "other.example")),
            ResponseTainting::kBasic);
}

// ------------------------------------------- credentials and privacy mode

TEST(Credentials, IncludeAlwaysSendsCookies) {
  EXPECT_TRUE(include_credentials(
      request(Destination::kImage, RequestMode::kNoCors,
              CredentialsMode::kInclude, "tracker.example")));
  EXPECT_FALSE(privacy_mode_enabled(
      request(Destination::kImage, RequestMode::kNoCors,
              CredentialsMode::kInclude, "tracker.example")));
}

TEST(Credentials, OmitNeverSendsCookies) {
  EXPECT_FALSE(include_credentials(
      request(Destination::kXhr, RequestMode::kCors, CredentialsMode::kOmit,
              "site.example")));
}

TEST(Credentials, SameOriginDependsOnOrigins) {
  // Same-origin request: credentials included.
  EXPECT_TRUE(include_credentials(
      request(Destination::kXhr, RequestMode::kCors,
              CredentialsMode::kSameOrigin, "site.example")));
  // Cross-origin: anonymous -> privacy mode on (the CRED pool split).
  const FetchRequest cross = request(Destination::kFont, RequestMode::kCors,
                                     CredentialsMode::kSameOrigin,
                                     "fonts.gstatic.example");
  EXPECT_FALSE(include_credentials(cross));
  EXPECT_TRUE(privacy_mode_enabled(cross));
}

TEST(Credentials, CrossOriginFontVsImageDifferInPrivacyMode) {
  // The exact pair that forces two connections to one host (cause CRED):
  // a classic image is credentialed, a font is anonymous.
  const FetchRequest image = request(Destination::kImage, RequestMode::kNoCors,
                                     CredentialsMode::kInclude,
                                     "static.site.example");
  const FetchRequest font = request(Destination::kFont, RequestMode::kCors,
                                    CredentialsMode::kSameOrigin,
                                    "static.site.example");
  EXPECT_NE(privacy_mode_enabled(image), privacy_mode_enabled(font));
}

TEST(ToString, EnumNames) {
  EXPECT_EQ(to_string(RequestMode::kNoCors), "no-cors");
  EXPECT_EQ(to_string(CredentialsMode::kSameOrigin), "same-origin");
  EXPECT_EQ(to_string(Destination::kFont), "font");
}

}  // namespace
}  // namespace h2r::fetch
