// End-to-end property tests: for several seeds, build a universe, crawl
// it through both measurement pipelines and check the structural
// invariants that must hold regardless of the random draw.
#include <gtest/gtest.h>

#include <set>

#include "browser/crawl.hpp"
#include "core/classify.hpp"
#include "core/report.hpp"
#include "har/export.hpp"
#include "har/import.hpp"
#include "web/catalog.hpp"
#include "web/sitegen.hpp"

namespace h2r {
namespace {

class CrawlInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrawlInvariants, HoldAcrossSeeds) {
  const std::uint64_t seed = GetParam();
  web::Ecosystem eco{seed};
  web::ServiceCatalog catalog{eco, seed};
  web::UniverseConfig config = web::UniverseConfig::defaults();
  config.seed = seed;
  web::SiteUniverse universe{eco, catalog, config};

  browser::CrawlOptions options;
  options.seed = seed + 1;
  options.har_path = true;

  core::Aggregator exact{&eco.as_database()};
  core::Aggregator endless{&eco.as_database()};

  browser::crawl_range(universe, 0, 60, options, [&](const browser::SiteResult&
                                                         site) {
    if (!site.reachable) return;
    const core::SiteObservation& obs = site.netlog_observation;

    // Connections are ordered and have sane timestamps.
    for (std::size_t i = 0; i < obs.connections.size(); ++i) {
      const core::ConnectionRecord& conn = obs.connections[i];
      if (i > 0) {
        EXPECT_GE(conn.opened_at, obs.connections[i - 1].opened_at);
      }
      if (conn.closed_at.has_value()) {
        EXPECT_GT(*conn.closed_at, conn.opened_at);
      }
      for (const core::RequestRecord& req : conn.requests) {
        EXPECT_GE(req.started_at, conn.opened_at);
        EXPECT_GE(req.finished_at, req.started_at);
        EXPECT_FALSE(req.domain.empty());
      }
      // Every connected endpoint exists in the ecosystem — or in the
      // site's own deployment overlay (generated first-party clusters are
      // self-contained, not published) — and serves h2.
      const web::Server* server = eco.server_at(conn.endpoint.address);
      if (server == nullptr) {
        const auto& deployment = universe.site(site.rank).deployment;
        if (deployment != nullptr) {
          server = deployment->server_at(conn.endpoint.address);
        }
      }
      ASSERT_NE(server, nullptr);
      EXPECT_TRUE(server->h2_enabled());
      // The SNI certificate must cover the initial domain (the browser
      // rejects mismatches).
      EXPECT_TRUE(conn.certificate_covers(conn.initial_domain))
          << conn.initial_domain;
    }

    // Classification invariants under every duration model.
    for (const core::DurationModel model :
         {core::DurationModel::kExact, core::DurationModel::kEndless,
          core::DurationModel::kImmediate}) {
      const core::SiteClassification cls = core::classify_site(obs, {model});
      EXPECT_LE(cls.redundant_connections(), cls.total_connections);
      for (const core::ConnectionFinding& finding : cls.findings) {
        EXPECT_FALSE(finding.causes.empty());
        EXPECT_GT(finding.connection_index, 0u);  // first conn never redundant
        for (const auto& [cause, prevs] : finding.reusable_previous_domains) {
          (void)cause;
          EXPECT_FALSE(prevs.empty());
        }
      }
    }

    // Endless sees at least as much redundancy as exact (availability of
    // endless is a superset).
    const auto cls_exact =
        core::classify_site(obs, {core::DurationModel::kExact});
    const auto cls_endless =
        core::classify_site(obs, {core::DurationModel::kEndless});
    EXPECT_GE(cls_endless.redundant_connections(),
              cls_exact.redundant_connections());

    // The HAR path can only lose information, never invent connections.
    EXPECT_LE(site.har_observation.connections.size(),
              obs.connections.size());

    exact.add_site(obs, cls_exact);
    endless.add_site(obs, cls_endless);
  });

  const core::AggregateReport& report = exact.report();
  EXPECT_LE(report.redundant_sites, report.h2_sites);
  EXPECT_LE(report.redundant_connections, report.total_connections);
  for (const auto& [cause, tally] : report.by_cause) {
    (void)cause;
    EXPECT_LE(tally.sites, report.redundant_sites);
    EXPECT_LE(tally.connections, report.redundant_connections);
  }
  // The histogram accounts for every h2 site.
  std::uint64_t hist_total = 0;
  for (const auto& [count, sites] : report.redundant_per_site_histogram) {
    (void)count;
    hist_total += sites;
  }
  EXPECT_EQ(hist_total, report.h2_sites);
  // Issuer share covers every certificate-bearing connection.
  std::uint64_t issuer_conns = 0;
  for (const auto& [issuer, tally] : report.all_issuers) {
    (void)issuer;
    issuer_conns += tally.connections;
  }
  EXPECT_EQ(issuer_conns, report.total_connections);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrawlInvariants,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// HAR round-trip without quirks preserves the classification outcome for
// connections that carry requests.
class HarRoundTripFidelity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HarRoundTripFidelity, QuirklessHarMatchesNetlogForRequestBearers) {
  const std::uint64_t seed = GetParam();
  web::Ecosystem eco{seed};
  web::ServiceCatalog catalog{eco, seed};
  web::UniverseConfig config = web::UniverseConfig::defaults();
  config.seed = seed;
  web::SiteUniverse universe{eco, catalog, config};

  browser::CrawlOptions options;
  options.seed = seed;
  options.har_path = true;
  options.har_quirks = har::ExportQuirks::none();

  browser::crawl_range(universe, 0, 25, options, [&](const browser::SiteResult&
                                                         site) {
    if (!site.reachable) return;
    std::size_t request_bearing = 0;
    for (const auto& conn : site.netlog_observation.connections) {
      if (!conn.requests.empty()) ++request_bearing;
    }
    EXPECT_EQ(site.har_observation.connections.size(), request_bearing);

    // Endpoints and SANs survive the HAR round trip.
    std::set<std::string> netlog_endpoints;
    for (const auto& conn : site.netlog_observation.connections) {
      if (!conn.requests.empty()) {
        netlog_endpoints.insert(conn.endpoint.to_string());
      }
    }
    for (const auto& conn : site.har_observation.connections) {
      EXPECT_TRUE(netlog_endpoints.count(conn.endpoint.to_string()) > 0);
      EXPECT_TRUE(conn.has_certificate);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, HarRoundTripFidelity,
                         ::testing::Values(3u, 21u, 555u));

}  // namespace
}  // namespace h2r
