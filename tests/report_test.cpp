#include <gtest/gtest.h>

#include "core/report.hpp"

namespace h2r::core {
namespace {

net::IpAddress ip(const char* s) { return net::IpAddress::parse(s).value(); }

ConnectionRecord conn(std::uint64_t id, const char* address,
                      const char* domain, std::vector<std::string> sans,
                      util::SimTime opened_at,
                      const char* issuer = "Test CA") {
  ConnectionRecord rec;
  rec.id = id;
  rec.endpoint = net::Endpoint{ip(address), 443};
  rec.initial_domain = domain;
  rec.san_dns_names = std::move(sans);
  rec.issuer_organization = issuer;
  rec.has_certificate = !rec.san_dns_names.empty();
  rec.opened_at = opened_at;
  RequestRecord req;
  req.started_at = opened_at;
  req.finished_at = opened_at + 50;
  req.domain = domain;
  rec.requests.push_back(req);
  return rec;
}

SiteObservation make_site(const char* url,
                          std::vector<ConnectionRecord> conns) {
  SiteObservation s;
  s.site_url = url;
  s.connections = std::move(conns);
  return s;
}

void feed(Aggregator& agg, const SiteObservation& site,
          DurationModel model = DurationModel::kEndless) {
  agg.add_site(site, classify_site(site, {model}));
}

TEST(Aggregator, CountsSitesAndConnections) {
  Aggregator agg;
  feed(agg, make_site("https://a", {
                          conn(1, "10.0.0.1", "x.example", {"*.example"}, 0),
                          conn(2, "10.0.0.1", "y.example", {"*.example"}, 10),
                      }));
  feed(agg, make_site("https://b",
                      {conn(1, "10.0.0.9", "solo.example", {"solo.example"}, 0)}));
  const AggregateReport& r = agg.report();
  EXPECT_EQ(r.analyzed_sites, 2u);
  EXPECT_EQ(r.h2_sites, 2u);
  EXPECT_EQ(r.total_connections, 3u);
  EXPECT_EQ(r.redundant_sites, 1u);
  EXPECT_EQ(r.redundant_connections, 1u);
  EXPECT_EQ(r.by_cause.at(Cause::kCred).sites, 1u);
  EXPECT_EQ(r.by_cause.at(Cause::kCred).connections, 1u);
  EXPECT_NEAR(r.redundant_site_share(), 0.5, 1e-9);
}

TEST(Aggregator, UnreachableSitesAreSkipped) {
  Aggregator agg;
  SiteObservation site = make_site("https://x", {});
  site.reachable = false;
  feed(agg, site);
  EXPECT_EQ(agg.report().analyzed_sites, 0u);
}

TEST(Aggregator, SitesWithoutH2ConnectionsCountAsAnalyzedOnly) {
  Aggregator agg;
  feed(agg, make_site("https://bare", {}));
  const AggregateReport& r = agg.report();
  EXPECT_EQ(r.analyzed_sites, 1u);
  EXPECT_EQ(r.h2_sites, 0u);
}

TEST(Aggregator, HistogramFeedsFigure2) {
  Aggregator agg;
  // site with 0 redundant, site with 2 redundant.
  feed(agg, make_site("https://clean",
                      {conn(1, "10.0.0.1", "a.one", {"a.one"}, 0)}));
  feed(agg, make_site("https://messy", {
                          conn(1, "10.0.0.2", "b.two", {"*.two"}, 0),
                          conn(2, "10.0.0.2", "c.two", {"*.two"}, 10),
                          conn(3, "10.0.0.2", "d.two", {"*.two"}, 20),
                      }));
  const AggregateReport& r = agg.report();
  EXPECT_EQ(r.redundant_per_site_histogram.at(0), 1u);
  EXPECT_EQ(r.redundant_per_site_histogram.at(2), 1u);
  EXPECT_EQ(r.sites_with_at_least(1), 1u);
  EXPECT_EQ(r.sites_with_at_least(2), 1u);
  EXPECT_EQ(r.sites_with_at_least(3), 0u);
  EXPECT_EQ(r.sites_with_at_least(0), 2u);
}

TEST(Aggregator, IpOriginAttribution) {
  Aggregator agg;
  feed(agg, make_site("https://s", {
                          conn(1, "10.0.0.1", "gtm.example", {"*.example"}, 0),
                          conn(2, "10.0.0.2", "ga.example", {"*.example"}, 10),
                      }));
  const AggregateReport& r = agg.report();
  ASSERT_EQ(r.ip_origins.count("ga.example"), 1u);
  const OriginTally& tally = r.ip_origins.at("ga.example");
  EXPECT_EQ(tally.connections, 1u);
  EXPECT_EQ(tally.previous_origins.at("gtm.example"), 1u);
  const auto prev = top_previous(tally);
  ASSERT_TRUE(prev.has_value());
  EXPECT_EQ(prev->first, "gtm.example");
}

TEST(Aggregator, CertAttributionWithIssuer) {
  Aggregator agg;
  feed(agg, make_site(
                "https://s",
                {conn(1, "10.0.0.1", "static.shop", {"static.shop"}, 0, "LE"),
                 conn(2, "10.0.0.1", "fast.shop", {"fast.shop"}, 10, "LE")}));
  const AggregateReport& r = agg.report();
  EXPECT_EQ(r.cert_domains.at("fast.shop").connections, 1u);
  EXPECT_EQ(r.cert_domains.at("fast.shop").issuer, "LE");
  EXPECT_EQ(r.cert_issuers.at("LE").connections, 1u);
  EXPECT_EQ(r.cert_issuers.at("LE").domains,
            std::set<std::string>{"fast.shop"});
}

TEST(Aggregator, AllIssuerShareCountsEveryConnection) {
  Aggregator agg;
  feed(agg, make_site("https://s", {
                          conn(1, "10.0.0.1", "a.x", {"a.x"}, 0, "CA-1"),
                          conn(2, "10.0.0.2", "b.y", {"b.y"}, 10, "CA-1"),
                          conn(3, "10.0.0.3", "c.z", {"c.z"}, 20, "CA-2"),
                      }));
  const AggregateReport& r = agg.report();
  EXPECT_EQ(r.all_issuers.at("CA-1").connections, 2u);
  EXPECT_EQ(r.all_issuers.at("CA-1").domains.size(), 2u);
  EXPECT_EQ(r.all_issuers.at("CA-2").connections, 1u);
}

TEST(Aggregator, AsAttributionRequiresDatabase) {
  asdb::AsDatabase db;
  db.add(net::Prefix::parse("10.0.0.0/8").value(), {64500, "TEST-AS"});
  Aggregator with_db{&db};
  Aggregator without_db;
  const auto site =
      make_site("https://s", {
                                 conn(1, "10.0.0.1", "a.ex", {"*.ex"}, 0),
                                 conn(2, "10.0.0.2", "b.ex", {"*.ex"}, 10),
                             });
  feed(with_db, site);
  feed(without_db, site);
  EXPECT_EQ(with_db.report().ip_ases.at("TEST-AS").connections, 1u);
  EXPECT_TRUE(without_db.report().ip_ases.empty());
}

TEST(Aggregator, CredSameDomainDetail) {
  Aggregator agg;
  // Same domain twice (counts) and cross-domain CRED (does not).
  feed(agg, make_site("https://s", {
                          conn(1, "10.0.0.1", "t.ex", {"*.ex"}, 0),
                          conn(2, "10.0.0.1", "t.ex", {"*.ex"}, 10),
                          conn(3, "10.0.0.1", "u.ex", {"*.ex"}, 20),
                      }));
  const AggregateReport& r = agg.report();
  EXPECT_EQ(r.by_cause.at(Cause::kCred).connections, 2u);
  EXPECT_EQ(r.cred_same_domain_connections, 1u);
}

TEST(Aggregator, LifetimeStats) {
  Aggregator agg;
  auto open_conn = conn(1, "10.0.0.1", "a.ex", {"a.ex"}, 0);
  auto closed_conn = conn(2, "10.0.0.2", "b.ex", {"b.ex"}, 100);
  closed_conn.closed_at = 122300;
  feed(agg, make_site("https://s", {open_conn, closed_conn}));
  const AggregateReport& r = agg.report();
  EXPECT_EQ(r.closed_connections, 1u);
  ASSERT_TRUE(r.median_closed_lifetime().has_value());
  EXPECT_EQ(*r.median_closed_lifetime(), 122200);
}

TEST(Aggregator, MedianLifetimeEmptyWithoutClosures) {
  Aggregator agg;
  feed(agg, make_site("https://s", {conn(1, "10.0.0.1", "a.ex", {"a.ex"}, 0)}));
  EXPECT_FALSE(agg.report().median_closed_lifetime().has_value());
}

// -------------------------------------------------------------- utilities

TEST(TopK, SortsByConnectionsThenKey) {
  std::map<std::string, OriginTally> table;
  table["b"].connections = 5;
  table["a"].connections = 5;
  table["c"].connections = 9;
  const auto top = top_k(table, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "c");
  EXPECT_EQ(top[1].first, "a");  // tie broken alphabetically
}

TEST(RankOf, OneBasedRanks) {
  std::map<std::string, OriginTally> table;
  table["x"].connections = 10;
  table["y"].connections = 5;
  table["z"].connections = 1;
  EXPECT_EQ(rank_of(table, "x"), std::optional<std::size_t>{1});
  EXPECT_EQ(rank_of(table, "y"), std::optional<std::size_t>{2});
  EXPECT_EQ(rank_of(table, "z"), std::optional<std::size_t>{3});
  EXPECT_FALSE(rank_of(table, "missing").has_value());
}

TEST(FilterSites, KeepsOnlyNamedSites) {
  std::vector<SiteObservation> sites;
  sites.push_back(make_site("https://a", {}));
  sites.push_back(make_site("https://b", {}));
  sites.push_back(make_site("https://c", {}));
  const auto kept = filter_sites(sites, {"https://a", "https://c"});
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].site_url, "https://a");
  EXPECT_EQ(kept[1].site_url, "https://c");
}

TEST(TopPrevious, EmptyTally) {
  EXPECT_FALSE(top_previous(OriginTally{}).has_value());
}

}  // namespace
}  // namespace h2r::core
