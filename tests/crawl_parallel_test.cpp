// Differential proof of the crawl determinism contract: a crawl with
// threads = N produces bit-identical per-site observations, summaries and
// classified aggregates for ANY N, because every per-site input (page RNG,
// HAR quirk RNG, resolver cache state, simulated load time) is derived
// from (seed, site) alone — never from worker identity or load order.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "browser/crawl.hpp"
#include "core/classify.hpp"
#include "core/observation_json.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "json/json.hpp"
#include "web/catalog.hpp"
#include "web/ecosystem.hpp"
#include "web/sitegen.hpp"

namespace h2r::browser {
namespace {

constexpr std::size_t kSites = 30;

struct RunOutput {
  CrawlSummary summary;
  /// Serialized exact observation per rank (bit-identity proxy).
  std::vector<std::string> netlog_json;
  std::vector<std::string> har_json;
  /// Classified cause counts over the whole crawl (endless model).
  core::AggregateReport report;
};

RunOutput run_crawl(unsigned threads, std::uint64_t seed,
                    bool har_path = false,
                    const fault::FaultConfig& faults = {}) {
  web::Ecosystem eco{seed};
  web::ServiceCatalog catalog{eco, seed};
  web::SiteUniverse universe{eco, catalog};

  CrawlOptions options;
  options.threads = threads;
  options.seed = seed + 100;
  options.har_path = har_path;
  options.browser.faults = faults;

  RunOutput out;
  core::Aggregator aggregator;
  out.summary = crawl_range(
      universe, 0, kSites, options, [&](const SiteResult& site) {
        out.netlog_json.push_back(
            json::write(core::to_json(site.netlog_observation)));
        if (har_path) {
          out.har_json.push_back(
              json::write(core::to_json(site.har_observation)));
        }
        if (site.reachable) {
          aggregator.add_site(
              site.netlog_observation,
              core::classify_site(site.netlog_observation,
                                  {core::DurationModel::kEndless}));
        }
      });
  out.report = aggregator.report();
  return out;
}

void expect_identical(const RunOutput& a, const RunOutput& b,
                      unsigned threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_TRUE(a.summary == b.summary);
  EXPECT_EQ(a.report, b.report);
  ASSERT_EQ(a.netlog_json.size(), b.netlog_json.size());
  for (std::size_t i = 0; i < a.netlog_json.size(); ++i) {
    EXPECT_EQ(a.netlog_json[i], b.netlog_json[i]) << "rank " << i;
  }
  ASSERT_EQ(a.har_json.size(), b.har_json.size());
  for (std::size_t i = 0; i < a.har_json.size(); ++i) {
    EXPECT_EQ(a.har_json[i], b.har_json[i]) << "rank " << i;
  }
}

class CrawlParallelDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrawlParallelDifferential, ThreadCountDoesNotChangeResults) {
  const std::uint64_t seed = GetParam();
  const RunOutput sequential = run_crawl(1, seed);
  for (const unsigned threads : {2u, 7u}) {
    expect_identical(sequential, run_crawl(threads, seed), threads);
  }
}

TEST_P(CrawlParallelDifferential, HarPathIsThreadCountInvariantToo) {
  // The HAR quirk RNG used to be per-worker sequential state; it is now
  // derived per site, so the noisy HAR path is deterministic as well.
  const std::uint64_t seed = GetParam();
  const RunOutput sequential = run_crawl(1, seed, /*har_path=*/true);
  expect_identical(sequential, run_crawl(7, seed, /*har_path=*/true), 7);
}

TEST_P(CrawlParallelDifferential, FaultedCrawlIsThreadCountInvariantToo) {
  // The hard half of the fault layer's determinism contract: with faults
  // FIRING (not just armed), threads = N must still be bit-identical to
  // threads = 1 — per-site FaultPlans are derived from (fault seed,
  // browser seed, site url), never from worker identity. The merged
  // FailureSummary participates via CrawlSummary::operator==.
  const std::uint64_t seed = GetParam();
  const fault::FaultConfig faults = fault::FaultConfig::uniform(0.15);
  const RunOutput sequential = run_crawl(1, seed, /*har_path=*/false, faults);
  EXPECT_GT(sequential.summary.failures.total_injected(), 0u);
  EXPECT_EQ(sequential.summary.failures.fetch_attempts,
            sequential.summary.failures.successful_fetches +
                sequential.summary.failures.failed_fetches);
  for (const unsigned threads : {2u, 7u}) {
    const RunOutput parallel =
        run_crawl(threads, seed, /*har_path=*/false, faults);
    expect_identical(sequential, parallel, threads);
    EXPECT_TRUE(sequential.summary.failures == parallel.summary.failures);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, CrawlParallelDifferential,
                         ::testing::Values(1u, 2u, 3u, 42u, 77u, 1234u));

TEST(CrawlParallel, ShardedCrawlEqualsOrderedCrawl) {
  // crawl_range_sharded (per-worker aggregation, merged afterwards) must
  // reproduce the sequential sink accumulation exactly.
  const std::uint64_t seed = 42;
  const RunOutput sequential = run_crawl(1, seed);

  web::Ecosystem eco{seed};
  web::ServiceCatalog catalog{eco, seed};
  web::SiteUniverse universe{eco, catalog};
  CrawlOptions options;
  options.threads = 5;
  options.seed = seed + 100;

  std::vector<std::unique_ptr<core::Aggregator>> shards;
  const CrawlSummary summary = crawl_range_sharded(
      universe, 0, kSites, options, [&](unsigned worker) -> ShardSink {
        while (shards.size() <= worker) {
          shards.push_back(std::make_unique<core::Aggregator>());
        }
        core::Aggregator* shard = shards[worker].get();
        return [shard](const SiteResult& site) {
          if (!site.reachable) return;
          shard->add_site(site.netlog_observation,
                          core::classify_site(site.netlog_observation,
                                              {core::DurationModel::kEndless}));
        };
      });

  core::AggregateReport merged;
  for (const auto& shard : shards) merged.merge(shard->report());
  EXPECT_TRUE(summary == sequential.summary);
  EXPECT_EQ(merged, sequential.report);
}

TEST(CrawlParallel, WorkerCountersAccountForEverySite) {
  web::Ecosystem eco{7};
  web::ServiceCatalog catalog{eco, 7};
  web::SiteUniverse universe{eco, catalog};
  CrawlOptions options;
  options.threads = 3;
  const CrawlSummary summary =
      crawl_range(universe, 0, kSites, options, [](const SiteResult&) {});

  ASSERT_EQ(summary.per_worker.size(), 3u);
  std::uint64_t loaded = 0;
  std::uint64_t unreachable = 0;
  std::uint64_t connections = 0;
  std::uint64_t chunks = 0;
  for (const WorkerCounters& worker : summary.per_worker) {
    loaded += worker.sites_loaded;
    unreachable += worker.sites_unreachable;
    connections += worker.connections_opened;
    chunks += worker.chunks_claimed;
  }
  EXPECT_EQ(loaded, summary.sites_visited);
  EXPECT_EQ(unreachable, summary.sites_unreachable);
  EXPECT_EQ(connections, summary.connections_opened);
  EXPECT_GE(chunks, 1u);
  EXPECT_FALSE(describe_workers(summary).empty());
}

}  // namespace
}  // namespace h2r::browser
