#include <gtest/gtest.h>

#include "netlog/netlog.hpp"
#include "netlog/stitch.hpp"

namespace h2r::netlog {
namespace {

TEST(NetLog, RecordsEventsInOrder) {
  NetLog log;
  log.record(EventType::kSessionCreated, 10, 1, {{"domain", "a"}});
  log.record(EventType::kRequestStarted, 20, 1, {{"stream", "1"}});
  log.record(EventType::kSessionCreated, 30, 2, {});
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.events()[0].type, EventType::kSessionCreated);
  EXPECT_EQ(log.events()[1].time, 20);
  EXPECT_EQ(log.for_source(1).size(), 2u);
  EXPECT_EQ(log.for_source(2).size(), 1u);
  EXPECT_EQ(log.for_source(9).size(), 0u);
}

TEST(NetLog, ParamAccess) {
  Event e;
  e.params.emplace_back("key", "value");
  EXPECT_EQ(e.param("key"), "value");
  EXPECT_EQ(e.param("missing"), "");
}

TEST(NetLog, JsonDump) {
  NetLog log;
  log.record(EventType::kDnsResolved, 5, 0, {{"host", "x.example"}});
  const json::Value dump = log.to_json();
  const json::Value& events = dump["events"];
  ASSERT_EQ(events.as_array().size(), 1u);
  EXPECT_EQ(events.at(0)["type"].as_string(), "DNS_RESOLVED");
  EXPECT_EQ(events.at(0)["params"]["host"].as_string(), "x.example");
}

TEST(NetLog, EventTypeNames) {
  EXPECT_EQ(to_string(EventType::kSessionCreated), "HTTP2_SESSION_CREATED");
  EXPECT_EQ(to_string(EventType::kMisdirected), "HTTP2_SESSION_MISDIRECTED");
}

// ------------------------------------------------------------- stitching

NetLog session_log() {
  NetLog log;
  log.record(EventType::kSessionCreated, 100, 7,
             {{"ip", "10.0.0.5"},
              {"port", "443"},
              {"domain", "WWW.Example.COM"},
              {"privacy", "0"},
              {"cert_sans", "*.example.com,example.com"},
              {"cert_issuer", "Test CA"},
              {"cert_serial", "42"}});
  log.record(EventType::kSessionAvailable, 160, 7, {});
  log.record(EventType::kRequestStarted, 160, 7,
             {{"domain", "www.example.com"},
              {"method", "GET"},
              {"stream", "1"}});
  log.record(EventType::kRequestFinished, 220, 7,
             {{"stream", "1"}, {"status", "200"}});
  log.record(EventType::kRequestStarted, 230, 7,
             {{"domain", "img.example.com"},
              {"method", "GET"},
              {"stream", "3"}});
  log.record(EventType::kRequestFinished, 300, 7,
             {{"stream", "3"}, {"status", "421"}});
  log.record(EventType::kMisdirected, 300, 7,
             {{"domain", "img.example.com"}});
  log.record(EventType::kSessionClosed, 5000, 7, {});
  return log;
}

TEST(Stitch, ReconstructsConnectionRecord) {
  const core::SiteObservation site =
      stitch_site("https://www.example.com", session_log());
  EXPECT_EQ(site.site_url, "https://www.example.com");
  ASSERT_EQ(site.connections.size(), 1u);
  const core::ConnectionRecord& rec = site.connections[0];
  EXPECT_EQ(rec.id, 7u);
  EXPECT_EQ(rec.endpoint.address.to_string(), "10.0.0.5");
  EXPECT_EQ(rec.endpoint.port, 443);
  EXPECT_EQ(rec.initial_domain, "www.example.com");  // lowercased
  EXPECT_EQ(rec.opened_at, 100);
  ASSERT_TRUE(rec.closed_at.has_value());
  EXPECT_EQ(*rec.closed_at, 5000);
  EXPECT_EQ(rec.san_dns_names,
            (std::vector<std::string>{"*.example.com", "example.com"}));
  EXPECT_EQ(rec.issuer_organization, "Test CA");
  EXPECT_EQ(rec.certificate_serial, 42u);
  EXPECT_TRUE(rec.has_certificate);
}

TEST(Stitch, ReconstructsRequests) {
  const auto site = stitch_site("https://x", session_log());
  const core::ConnectionRecord& rec = site.connections[0];
  ASSERT_EQ(rec.requests.size(), 2u);
  EXPECT_EQ(rec.requests[0].domain, "www.example.com");
  EXPECT_EQ(rec.requests[0].started_at, 160);
  EXPECT_EQ(rec.requests[0].finished_at, 220);
  EXPECT_EQ(rec.requests[0].status, 200);
  EXPECT_EQ(rec.requests[1].status, 421);
}

TEST(Stitch, MisdirectedBecomesExclusion) {
  const auto site = stitch_site("https://x", session_log());
  EXPECT_TRUE(site.connections[0].excludes("img.example.com"));
  EXPECT_FALSE(site.connections[0].excludes("www.example.com"));
}

TEST(Stitch, ConnectionsSortedByOpenTime) {
  NetLog log;
  log.record(EventType::kSessionCreated, 500, 2,
             {{"ip", "10.0.0.2"}, {"port", "443"}, {"domain", "b.example"},
              {"cert_sans", "b.example"}});
  log.record(EventType::kSessionCreated, 100, 9,
             {{"ip", "10.0.0.9"}, {"port", "443"}, {"domain", "a.example"},
              {"cert_sans", "a.example"}});
  const auto site = stitch_site("https://x", log);
  ASSERT_EQ(site.connections.size(), 2u);
  EXPECT_EQ(site.connections[0].initial_domain, "a.example");
  EXPECT_EQ(site.connections[1].initial_domain, "b.example");
}

TEST(Stitch, OriginFrameAttachesOriginSet) {
  NetLog log;
  log.record(EventType::kSessionCreated, 0, 1,
             {{"ip", "10.0.0.1"}, {"port", "443"}, {"domain", "a.example"},
              {"cert_sans", "*.example"}});
  log.record(EventType::kOriginFrame, 10, 1,
             {{"origins", "a.example,b.example"}});
  const auto site = stitch_site("https://x", log);
  ASSERT_TRUE(site.connections[0].origin_set.has_value());
  EXPECT_EQ(*site.connections[0].origin_set,
            (std::vector<std::string>{"a.example", "b.example"}));
  EXPECT_FALSE(site.connections[0].excludes("b.example"));
  EXPECT_TRUE(site.connections[0].excludes("c.example"));
}

TEST(Stitch, SessionWithoutCloseStaysOpen) {
  NetLog log;
  log.record(EventType::kSessionCreated, 0, 1,
             {{"ip", "10.0.0.1"}, {"port", "443"}, {"domain", "a.example"},
              {"cert_sans", "a.example"}});
  const auto site = stitch_site("https://x", log);
  EXPECT_FALSE(site.connections[0].closed_at.has_value());
}

TEST(Stitch, MissingCertSansMeansNoCertificate) {
  NetLog log;
  log.record(EventType::kSessionCreated, 0, 1,
             {{"ip", "10.0.0.1"}, {"port", "443"}, {"domain", "a.example"}});
  const auto site = stitch_site("https://x", log);
  EXPECT_FALSE(site.connections[0].has_certificate);
}

TEST(Stitch, OrphanEventsAreIgnored) {
  NetLog log;
  // Events for a session that was never created.
  log.record(EventType::kRequestStarted, 10, 5, {{"stream", "1"}});
  log.record(EventType::kRequestFinished, 20, 5, {{"stream", "1"}});
  log.record(EventType::kSessionClosed, 30, 5, {});
  const auto site = stitch_site("https://x", log);
  EXPECT_TRUE(site.connections.empty());
}

TEST(Stitch, PreconnectSessionHasNoRequests) {
  NetLog log;
  log.record(EventType::kSessionCreated, 0, 1,
             {{"ip", "10.0.0.1"}, {"port", "443"},
              {"domain", "fonts.example"}, {"cert_sans", "*.example"}});
  log.record(EventType::kPreconnect, 0, 1, {{"host", "fonts.example"}});
  const auto site = stitch_site("https://x", log);
  ASSERT_EQ(site.connections.size(), 1u);
  EXPECT_TRUE(site.connections[0].requests.empty());
}

}  // namespace
}  // namespace h2r::netlog
