#include <gtest/gtest.h>

#include "http2/frame.hpp"
#include "http2/session.hpp"
#include "http2/stream.hpp"
#include "tls/certificate.hpp"

namespace h2r::http2 {
namespace {

// ---------------------------------------------------------------- frames

class FrameHeaderRoundTrip : public ::testing::TestWithParam<FrameHeader> {};

TEST_P(FrameHeaderRoundTrip, EncodeDecode) {
  const FrameHeader header = GetParam();
  std::vector<std::uint8_t> wire;
  header.encode(wire);
  ASSERT_EQ(wire.size(), FrameHeader::kWireSize);
  const auto decoded = FrameHeader::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, header);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FrameHeaderRoundTrip,
    ::testing::Values(
        FrameHeader{0, FrameType::kSettings, 0, 0},
        FrameHeader{16384, FrameType::kData, kFlagEndStream, 1},
        FrameHeader{255, FrameType::kHeaders,
                    static_cast<std::uint8_t>(kFlagEndHeaders | kFlagEndStream),
                    12345},
        FrameHeader{0xFFFFFF, FrameType::kGoaway, 0, 0x7FFFFFFF},
        FrameHeader{9, FrameType::kOrigin, 0, 0}));

TEST(FrameHeader, DecodeRejectsShortInput) {
  const std::vector<std::uint8_t> wire(8, 0);
  EXPECT_FALSE(FrameHeader::decode(wire).has_value());
}

TEST(FrameHeader, ReservedBitIsMaskedOnDecode) {
  FrameHeader h{1, FrameType::kData, 0, 0x7FFFFFFF};
  std::vector<std::uint8_t> wire;
  h.encode(wire);
  wire[5] |= 0x80;  // set the reserved bit
  const auto decoded = FrameHeader::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->stream_id, 0x7FFFFFFFu);
}

TEST(OriginFrame, RoundTrip) {
  OriginFrame frame;
  frame.origins = {"https://example.com", "https://cdn.example.com",
                   "https://example.com:8443"};
  const auto wire = frame.encode();
  const auto decoded = OriginFrame::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
}

TEST(OriginFrame, EmptyPayload) {
  const auto decoded = OriginFrame::decode(std::vector<std::uint8_t>{});
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->origins.empty());
}

TEST(OriginFrame, TruncatedPayloadRejected) {
  OriginFrame frame;
  frame.origins = {"https://example.com"};
  auto wire = frame.encode();
  wire.pop_back();
  EXPECT_FALSE(OriginFrame::decode(wire).has_value());
  // Truncated length prefix.
  EXPECT_FALSE(
      OriginFrame::decode(std::vector<std::uint8_t>{0x00}).has_value());
}

TEST(SettingsFrame, RoundTripAndApply) {
  SettingsFrame frame;
  frame.entries = {
      {static_cast<std::uint16_t>(SettingId::kMaxConcurrentStreams), 250},
      {static_cast<std::uint16_t>(SettingId::kInitialWindowSize), 1048576},
      {static_cast<std::uint16_t>(SettingId::kEnablePush), 0},
      {0x99, 42},  // unknown identifier: carried, ignored on apply
  };
  const auto wire = frame.encode();
  EXPECT_EQ(wire.size(), 4u * 6u);
  const auto decoded = SettingsFrame::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);

  Settings settings;
  decoded->apply_to(settings);
  EXPECT_EQ(settings.max_concurrent_streams, 250u);
  EXPECT_EQ(settings.initial_window_size, 1048576u);
  EXPECT_FALSE(settings.enable_push);
  EXPECT_EQ(settings.max_frame_size, 16384u);  // untouched
}

TEST(SettingsFrame, RejectsNonMultipleOfSix) {
  EXPECT_FALSE(
      SettingsFrame::decode(std::vector<std::uint8_t>(7, 0)).has_value());
  EXPECT_TRUE(
      SettingsFrame::decode(std::vector<std::uint8_t>{}).has_value());
}

TEST(GoawayFrame, RoundTripWithDebugData) {
  GoawayFrame frame;
  frame.last_stream_id = 123;
  frame.error_code = static_cast<std::uint32_t>(ErrorCode::kEnhanceYourCalm);
  frame.debug_data = "too many pings";
  const auto decoded = GoawayFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
}

TEST(GoawayFrame, ReservedBitMaskedAndShortInputRejected) {
  GoawayFrame frame;
  frame.last_stream_id = 0xFFFFFFFF;  // reserved bit set
  const auto decoded = GoawayFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->last_stream_id, 0x7FFFFFFFu);
  EXPECT_FALSE(
      GoawayFrame::decode(std::vector<std::uint8_t>(7, 0)).has_value());
}

TEST(RstStreamFrame, RoundTripAndSizeCheck) {
  RstStreamFrame frame{static_cast<std::uint32_t>(ErrorCode::kCancel)};
  const auto decoded = RstStreamFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
  EXPECT_FALSE(
      RstStreamFrame::decode(std::vector<std::uint8_t>(5, 0)).has_value());
}

TEST(PingFrame, RoundTripAndSizeCheck) {
  PingFrame frame;
  for (std::size_t i = 0; i < 8; ++i) {
    frame.opaque[i] = static_cast<std::uint8_t>(i * 17);
  }
  const auto decoded = PingFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
  EXPECT_FALSE(
      PingFrame::decode(std::vector<std::uint8_t>(9, 0)).has_value());
}

TEST(FrameType, Names) {
  EXPECT_EQ(to_string(FrameType::kOrigin), "ORIGIN");
  EXPECT_EQ(to_string(FrameType::kGoaway), "GOAWAY");
  EXPECT_EQ(to_string(static_cast<FrameType>(0xEE)), "UNKNOWN");
}

// ---------------------------------------------------------------- stream

TEST(Stream, GetLifecycle) {
  Stream s{1, 100};
  EXPECT_EQ(s.state(), StreamState::kIdle);
  // GET: HEADERS+END_STREAM.
  EXPECT_TRUE(s.end_local(100));
  EXPECT_EQ(s.state(), StreamState::kHalfClosedLocal);
  EXPECT_TRUE(s.end_remote(150));
  EXPECT_EQ(s.state(), StreamState::kClosed);
  EXPECT_EQ(s.closed_at(), 150);
}

TEST(Stream, PostLikeLifecycle) {
  Stream s{3, 0};
  EXPECT_TRUE(s.send_headers());
  EXPECT_EQ(s.state(), StreamState::kOpen);
  EXPECT_TRUE(s.end_remote(10));  // server finished first
  EXPECT_EQ(s.state(), StreamState::kHalfClosedRemote);
  EXPECT_TRUE(s.end_local(20));
  EXPECT_TRUE(s.is_closed());
}

TEST(Stream, IllegalTransitionsRejected) {
  Stream s{5, 0};
  EXPECT_FALSE(s.end_remote(1));  // idle cannot half-close remote
  EXPECT_TRUE(s.send_headers());
  EXPECT_FALSE(s.send_headers());  // double HEADERS
  EXPECT_TRUE(s.end_local(2));
  EXPECT_TRUE(s.end_remote(3));
  EXPECT_FALSE(s.end_remote(4));  // already closed
  EXPECT_FALSE(s.end_local(5));
}

TEST(Stream, ResetClosesFromAnyState) {
  Stream s{7, 0};
  s.send_headers();
  s.reset(9);
  EXPECT_TRUE(s.is_closed());
  EXPECT_EQ(s.closed_at(), 9);
  s.reset(20);  // idempotent
  EXPECT_EQ(s.closed_at(), 9);
}

// --------------------------------------------------------------- session

Session make_session(bool privacy = false,
                     std::vector<std::string> sans = {"*.example.com"}) {
  Session::Params params;
  params.id = 1;
  params.peer = net::Endpoint{net::IpAddress::v4(10, 0, 0, 1), 443};
  params.initial_authority = "www.example.com";
  params.certificate = tls::Certificate::make(
      {"www.example.com", std::move(sans), "Test CA"});
  params.privacy_mode = privacy;
  params.opened_at = 1000;
  return Session{std::move(params)};
}

TEST(Session, SubmitAndCompleteRequests) {
  Session s = make_session();
  RequestEntry req;
  req.authority = "WWW.Example.Com";
  req.started_at = 1000;
  const StreamId id1 = s.submit_request(req);
  EXPECT_EQ(id1, 1u);  // client stream ids are odd
  const StreamId id2 = s.submit_request(req);
  EXPECT_EQ(id2, 3u);
  EXPECT_EQ(s.active_streams(), 2u);
  EXPECT_TRUE(s.complete_request(id1, 200, 1100));
  EXPECT_EQ(s.active_streams(), 1u);
  EXPECT_EQ(s.requests().size(), 2u);
  EXPECT_EQ(s.requests()[0].authority, "www.example.com");  // lowered
  EXPECT_EQ(s.requests()[0].status, 200);
  EXPECT_EQ(s.requests()[0].finished_at, 1100);
  EXPECT_EQ(s.max_observed_concurrency(), 2u);
}

TEST(Session, CompleteUnknownStreamFails) {
  Session s = make_session();
  EXPECT_FALSE(s.complete_request(99, 200, 1));
}

TEST(Session, DoubleCompleteFails) {
  Session s = make_session();
  const StreamId id = s.submit_request({});
  EXPECT_TRUE(s.complete_request(id, 200, 1));
  EXPECT_FALSE(s.complete_request(id, 200, 2));
}

TEST(Session, ConcurrencyLimitRefusesStreams) {
  Session::Params params;
  params.certificate = tls::Certificate::make({"x", {"x"}, "CA"});
  params.peer_settings.max_concurrent_streams = 2;
  Session s{std::move(params)};
  EXPECT_NE(s.submit_request({}), 0u);
  EXPECT_NE(s.submit_request({}), 0u);
  EXPECT_EQ(s.submit_request({}), 0u);  // refused
  EXPECT_TRUE(s.complete_request(1, 200, 5));
  EXPECT_NE(s.submit_request({}), 0u);  // slot freed
}

TEST(Session, CertificateCoverage) {
  Session s = make_session();
  EXPECT_TRUE(s.certificate_covers("img.example.com"));
  EXPECT_FALSE(s.certificate_covers("example.com"));
  EXPECT_FALSE(s.certificate_covers("other.net"));
}

TEST(Session, Http421MarksAuthorityRejected) {
  Session s = make_session();
  RequestEntry req;
  req.authority = "alias.example.com";
  const StreamId id = s.submit_request(req);
  EXPECT_TRUE(s.allows_authority("alias.example.com"));
  s.complete_request(id, 421, 50);
  EXPECT_TRUE(s.is_rejected("alias.example.com"));
  EXPECT_TRUE(s.is_rejected("ALIAS.example.com"));
  EXPECT_FALSE(s.allows_authority("alias.example.com"));
  EXPECT_TRUE(s.allows_authority("www.example.com"));
}

TEST(Session, OriginSetBoundsCoalescing) {
  Session s = make_session();
  EXPECT_FALSE(s.has_origin_set());
  // Without an origin set, any covered domain is allowed.
  EXPECT_TRUE(s.allows_authority("cdn.example.com"));

  OriginFrame frame;
  frame.origins = {"https://www.example.com", "https://img.example.com"};
  s.receive_origin_frame(frame);
  EXPECT_TRUE(s.has_origin_set());
  EXPECT_TRUE(s.allows_authority("img.example.com"));
  // Covered by the cert but NOT in the origin set -> excluded.
  EXPECT_FALSE(s.allows_authority("cdn.example.com"));
  // In set via later frame (frames accumulate).
  OriginFrame more;
  more.origins = {"https://cdn.example.com"};
  s.receive_origin_frame(more);
  EXPECT_TRUE(s.allows_authority("cdn.example.com"));
  // Origin set cannot override the certificate requirement.
  OriginFrame rogue;
  rogue.origins = {"https://evil.net"};
  s.receive_origin_frame(rogue);
  EXPECT_FALSE(s.allows_authority("evil.net"));
}

TEST(Session, OriginWithPortParsesHost) {
  Session s = make_session();
  OriginFrame frame;
  frame.origins = {"https://alt.example.com:8443"};
  s.receive_origin_frame(frame);
  EXPECT_TRUE(s.allows_authority("alt.example.com"));
}

TEST(Session, GoawayStopsNewStreams) {
  Session s = make_session();
  const StreamId id = s.submit_request({});
  s.receive_goaway(ErrorCode::kNoError);
  EXPECT_FALSE(s.is_open());
  EXPECT_EQ(s.submit_request({}), 0u);
  // Existing streams can still complete.
  EXPECT_TRUE(s.complete_request(id, 200, 9));
}

TEST(Session, CloseRecordsTimeOnce) {
  Session s = make_session();
  EXPECT_FALSE(s.is_closed());
  s.close(5000);
  EXPECT_TRUE(s.is_closed());
  EXPECT_EQ(s.closed_at(), 5000);
  s.close(9000);
  EXPECT_EQ(s.closed_at(), 5000);
  EXPECT_EQ(s.active_streams(), 0u);
}

TEST(Session, PrivacyModeIsExposed) {
  EXPECT_FALSE(make_session(false).privacy_mode());
  EXPECT_TRUE(make_session(true).privacy_mode());
}

}  // namespace
}  // namespace h2r::http2
