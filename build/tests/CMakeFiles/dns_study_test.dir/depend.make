# Empty dependencies file for dns_study_test.
# This may be replaced when dependencies are built.
