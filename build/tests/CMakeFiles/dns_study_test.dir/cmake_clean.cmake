file(REMOVE_RECURSE
  "CMakeFiles/dns_study_test.dir/dns_study_test.cpp.o"
  "CMakeFiles/dns_study_test.dir/dns_study_test.cpp.o.d"
  "dns_study_test"
  "dns_study_test.pdb"
  "dns_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
