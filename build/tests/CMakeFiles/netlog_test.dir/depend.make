# Empty dependencies file for netlog_test.
# This may be replaced when dependencies are built.
