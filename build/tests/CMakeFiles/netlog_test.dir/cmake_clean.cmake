file(REMOVE_RECURSE
  "CMakeFiles/netlog_test.dir/netlog_test.cpp.o"
  "CMakeFiles/netlog_test.dir/netlog_test.cpp.o.d"
  "netlog_test"
  "netlog_test.pdb"
  "netlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
