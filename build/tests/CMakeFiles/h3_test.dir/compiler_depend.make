# Empty compiler generated dependencies file for h3_test.
# This may be replaced when dependencies are built.
