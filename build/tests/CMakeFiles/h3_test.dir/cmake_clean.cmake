file(REMOVE_RECURSE
  "CMakeFiles/h3_test.dir/h3_test.cpp.o"
  "CMakeFiles/h3_test.dir/h3_test.cpp.o.d"
  "h3_test"
  "h3_test.pdb"
  "h3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
