file(REMOVE_RECURSE
  "CMakeFiles/http2_test.dir/http2_test.cpp.o"
  "CMakeFiles/http2_test.dir/http2_test.cpp.o.d"
  "http2_test"
  "http2_test.pdb"
  "http2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
