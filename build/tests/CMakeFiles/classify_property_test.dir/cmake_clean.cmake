file(REMOVE_RECURSE
  "CMakeFiles/classify_property_test.dir/classify_property_test.cpp.o"
  "CMakeFiles/classify_property_test.dir/classify_property_test.cpp.o.d"
  "classify_property_test"
  "classify_property_test.pdb"
  "classify_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
