file(REMOVE_RECURSE
  "CMakeFiles/catalog_behavior_test.dir/catalog_behavior_test.cpp.o"
  "CMakeFiles/catalog_behavior_test.dir/catalog_behavior_test.cpp.o.d"
  "catalog_behavior_test"
  "catalog_behavior_test.pdb"
  "catalog_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
