# Empty dependencies file for catalog_behavior_test.
# This may be replaced when dependencies are built.
