file(REMOVE_RECURSE
  "CMakeFiles/fetch_test.dir/fetch_test.cpp.o"
  "CMakeFiles/fetch_test.dir/fetch_test.cpp.o.d"
  "fetch_test"
  "fetch_test.pdb"
  "fetch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
