file(REMOVE_RECURSE
  "CMakeFiles/har_test.dir/har_test.cpp.o"
  "CMakeFiles/har_test.dir/har_test.cpp.o.d"
  "har_test"
  "har_test.pdb"
  "har_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/har_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
