# Empty dependencies file for har_test.
# This may be replaced when dependencies are built.
