# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/json_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/asdb_test[1]_include.cmake")
include("/root/repo/build/tests/dns_test[1]_include.cmake")
include("/root/repo/build/tests/tls_test[1]_include.cmake")
include("/root/repo/build/tests/http2_test[1]_include.cmake")
include("/root/repo/build/tests/hpack_test[1]_include.cmake")
include("/root/repo/build/tests/priority_test[1]_include.cmake")
include("/root/repo/build/tests/fetch_test[1]_include.cmake")
include("/root/repo/build/tests/har_test[1]_include.cmake")
include("/root/repo/build/tests/netlog_test[1]_include.cmake")
include("/root/repo/build/tests/classify_test[1]_include.cmake")
include("/root/repo/build/tests/classify_property_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/h3_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/report_json_test[1]_include.cmake")
include("/root/repo/build/tests/dns_study_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/web_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/browser_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
