
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/h2r.cpp" "tools/CMakeFiles/h2r.dir/h2r.cpp.o" "gcc" "tools/CMakeFiles/h2r.dir/h2r.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/h2r_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/h2r_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/h2r_web.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/h2r_core.dir/DependInfo.cmake"
  "/root/repo/build/src/har/CMakeFiles/h2r_har.dir/DependInfo.cmake"
  "/root/repo/build/src/netlog/CMakeFiles/h2r_netlog.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/h2r_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/h2r_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/h2r_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/h2r_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/fetch/CMakeFiles/h2r_fetch.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/h2r_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/h2r_net.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/h2r_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2r_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
