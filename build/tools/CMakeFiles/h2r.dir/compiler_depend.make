# Empty compiler generated dependencies file for h2r.
# This may be replaced when dependencies are built.
