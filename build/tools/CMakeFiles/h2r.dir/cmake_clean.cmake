file(REMOVE_RECURSE
  "CMakeFiles/h2r.dir/h2r.cpp.o"
  "CMakeFiles/h2r.dir/h2r.cpp.o.d"
  "h2r"
  "h2r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
