# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_h2r_usage "/root/repo/build/tools/h2r")
set_tests_properties(smoke_h2r_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_h2r_snapshot "/root/repo/build/tools/h2r" "snapshot" "/root/repo/build/tools/ds.json" "40")
set_tests_properties(smoke_h2r_snapshot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_h2r_analyze "/root/repo/build/tools/h2r" "analyze" "/root/repo/build/tools/ds.json")
set_tests_properties(smoke_h2r_analyze PROPERTIES  DEPENDS "smoke_h2r_snapshot" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
