# Empty compiler generated dependencies file for bench_table7_overlap_causes.
# This may be replaced when dependencies are built.
