file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_top_domains_cert.dir/bench_table4_top_domains_cert.cpp.o"
  "CMakeFiles/bench_table4_top_domains_cert.dir/bench_table4_top_domains_cert.cpp.o.d"
  "bench_table4_top_domains_cert"
  "bench_table4_top_domains_cert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_top_domains_cert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
