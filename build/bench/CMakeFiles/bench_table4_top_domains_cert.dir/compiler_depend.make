# Empty compiler generated dependencies file for bench_table4_top_domains_cert.
# This may be replaced when dependencies are built.
