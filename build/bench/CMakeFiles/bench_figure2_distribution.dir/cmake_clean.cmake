file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2_distribution.dir/bench_figure2_distribution.cpp.o"
  "CMakeFiles/bench_figure2_distribution.dir/bench_figure2_distribution.cpp.o.d"
  "bench_figure2_distribution"
  "bench_figure2_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
