# Empty compiler generated dependencies file for bench_figure3_dns_overlap.
# This may be replaced when dependencies are built.
