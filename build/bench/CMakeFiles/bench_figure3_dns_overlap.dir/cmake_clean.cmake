file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_dns_overlap.dir/bench_figure3_dns_overlap.cpp.o"
  "CMakeFiles/bench_figure3_dns_overlap.dir/bench_figure3_dns_overlap.cpp.o.d"
  "bench_figure3_dns_overlap"
  "bench_figure3_dns_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_dns_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
