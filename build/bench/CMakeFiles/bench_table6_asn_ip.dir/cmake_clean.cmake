file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_asn_ip.dir/bench_table6_asn_ip.cpp.o"
  "CMakeFiles/bench_table6_asn_ip.dir/bench_table6_asn_ip.cpp.o.d"
  "bench_table6_asn_ip"
  "bench_table6_asn_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_asn_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
