# Empty compiler generated dependencies file for bench_table6_asn_ip.
# This may be replaced when dependencies are built.
