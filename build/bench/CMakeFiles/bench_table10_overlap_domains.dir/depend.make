# Empty dependencies file for bench_table10_overlap_domains.
# This may be replaced when dependencies are built.
