file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_top20_ip.dir/bench_table12_top20_ip.cpp.o"
  "CMakeFiles/bench_table12_top20_ip.dir/bench_table12_top20_ip.cpp.o.d"
  "bench_table12_top20_ip"
  "bench_table12_top20_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_top20_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
