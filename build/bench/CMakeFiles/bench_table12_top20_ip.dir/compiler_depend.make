# Empty compiler generated dependencies file for bench_table12_top20_ip.
# This may be replaced when dependencies are built.
