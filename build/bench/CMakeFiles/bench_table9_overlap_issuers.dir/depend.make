# Empty dependencies file for bench_table9_overlap_issuers.
# This may be replaced when dependencies are built.
