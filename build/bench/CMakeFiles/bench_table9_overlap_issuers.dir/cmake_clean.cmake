file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_overlap_issuers.dir/bench_table9_overlap_issuers.cpp.o"
  "CMakeFiles/bench_table9_overlap_issuers.dir/bench_table9_overlap_issuers.cpp.o.d"
  "bench_table9_overlap_issuers"
  "bench_table9_overlap_issuers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_overlap_issuers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
