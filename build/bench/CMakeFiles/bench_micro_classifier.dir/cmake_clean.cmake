file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_classifier.dir/bench_micro_classifier.cpp.o"
  "CMakeFiles/bench_micro_classifier.dir/bench_micro_classifier.cpp.o.d"
  "bench_micro_classifier"
  "bench_micro_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
