file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_vantage.dir/bench_appendix_vantage.cpp.o"
  "CMakeFiles/bench_appendix_vantage.dir/bench_appendix_vantage.cpp.o.d"
  "bench_appendix_vantage"
  "bench_appendix_vantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_vantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
