# Empty dependencies file for bench_appendix_vantage.
# This may be replaced when dependencies are built.
