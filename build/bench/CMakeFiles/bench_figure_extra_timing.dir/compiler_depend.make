# Empty compiler generated dependencies file for bench_figure_extra_timing.
# This may be replaced when dependencies are built.
