file(REMOVE_RECURSE
  "CMakeFiles/bench_figure_extra_timing.dir/bench_figure_extra_timing.cpp.o"
  "CMakeFiles/bench_figure_extra_timing.dir/bench_figure_extra_timing.cpp.o.d"
  "bench_figure_extra_timing"
  "bench_figure_extra_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure_extra_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
