file(REMOVE_RECURSE
  "libh2r_bench_common.a"
)
