# Empty compiler generated dependencies file for h2r_bench_common.
# This may be replaced when dependencies are built.
