file(REMOVE_RECURSE
  "CMakeFiles/h2r_bench_common.dir/common.cpp.o"
  "CMakeFiles/h2r_bench_common.dir/common.cpp.o.d"
  "libh2r_bench_common.a"
  "libh2r_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
