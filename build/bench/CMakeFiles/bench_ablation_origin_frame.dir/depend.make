# Empty dependencies file for bench_ablation_origin_frame.
# This may be replaced when dependencies are built.
