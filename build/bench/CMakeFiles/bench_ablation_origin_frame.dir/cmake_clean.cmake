file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_origin_frame.dir/bench_ablation_origin_frame.cpp.o"
  "CMakeFiles/bench_ablation_origin_frame.dir/bench_ablation_origin_frame.cpp.o.d"
  "bench_ablation_origin_frame"
  "bench_ablation_origin_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_origin_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
