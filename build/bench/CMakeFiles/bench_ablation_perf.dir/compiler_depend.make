# Empty compiler generated dependencies file for bench_ablation_perf.
# This may be replaced when dependencies are built.
