file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_perf.dir/bench_ablation_perf.cpp.o"
  "CMakeFiles/bench_ablation_perf.dir/bench_ablation_perf.cpp.o.d"
  "bench_ablation_perf"
  "bench_ablation_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
