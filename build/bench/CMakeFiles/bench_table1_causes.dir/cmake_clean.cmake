file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_causes.dir/bench_table1_causes.cpp.o"
  "CMakeFiles/bench_table1_causes.dir/bench_table1_causes.cpp.o.d"
  "bench_table1_causes"
  "bench_table1_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
