# Empty dependencies file for bench_table1_causes.
# This may be replaced when dependencies are built.
