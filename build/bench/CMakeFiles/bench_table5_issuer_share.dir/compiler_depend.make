# Empty compiler generated dependencies file for bench_table5_issuer_share.
# This may be replaced when dependencies are built.
