file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_issuer_share.dir/bench_table5_issuer_share.cpp.o"
  "CMakeFiles/bench_table5_issuer_share.dir/bench_table5_issuer_share.cpp.o.d"
  "bench_table5_issuer_share"
  "bench_table5_issuer_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_issuer_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
