file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_top_origins_ip.dir/bench_table2_top_origins_ip.cpp.o"
  "CMakeFiles/bench_table2_top_origins_ip.dir/bench_table2_top_origins_ip.cpp.o.d"
  "bench_table2_top_origins_ip"
  "bench_table2_top_origins_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_top_origins_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
