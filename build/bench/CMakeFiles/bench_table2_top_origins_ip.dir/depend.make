# Empty dependencies file for bench_table2_top_origins_ip.
# This may be replaced when dependencies are built.
