# Empty dependencies file for bench_ablation_h3.
# This may be replaced when dependencies are built.
