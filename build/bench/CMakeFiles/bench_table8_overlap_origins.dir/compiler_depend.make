# Empty compiler generated dependencies file for bench_table8_overlap_origins.
# This may be replaced when dependencies are built.
