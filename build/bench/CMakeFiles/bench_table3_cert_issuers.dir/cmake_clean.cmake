file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cert_issuers.dir/bench_table3_cert_issuers.cpp.o"
  "CMakeFiles/bench_table3_cert_issuers.dir/bench_table3_cert_issuers.cpp.o.d"
  "bench_table3_cert_issuers"
  "bench_table3_cert_issuers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cert_issuers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
