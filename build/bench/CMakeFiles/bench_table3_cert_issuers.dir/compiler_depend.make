# Empty compiler generated dependencies file for bench_table3_cert_issuers.
# This may be replaced when dependencies are built.
