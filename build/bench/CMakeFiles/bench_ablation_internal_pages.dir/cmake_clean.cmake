file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_internal_pages.dir/bench_ablation_internal_pages.cpp.o"
  "CMakeFiles/bench_ablation_internal_pages.dir/bench_ablation_internal_pages.cpp.o.d"
  "bench_ablation_internal_pages"
  "bench_ablation_internal_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_internal_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
