file(REMOVE_RECURSE
  "CMakeFiles/bench_reproduction_score.dir/bench_reproduction_score.cpp.o"
  "CMakeFiles/bench_reproduction_score.dir/bench_reproduction_score.cpp.o.d"
  "bench_reproduction_score"
  "bench_reproduction_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reproduction_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
