# Empty compiler generated dependencies file for bench_reproduction_score.
# This may be replaced when dependencies are built.
