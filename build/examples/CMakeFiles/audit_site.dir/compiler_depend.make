# Empty compiler generated dependencies file for audit_site.
# This may be replaced when dependencies are built.
