file(REMOVE_RECURSE
  "CMakeFiles/audit_site.dir/audit_site.cpp.o"
  "CMakeFiles/audit_site.dir/audit_site.cpp.o.d"
  "audit_site"
  "audit_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
