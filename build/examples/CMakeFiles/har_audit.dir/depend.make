# Empty dependencies file for har_audit.
# This may be replaced when dependencies are built.
