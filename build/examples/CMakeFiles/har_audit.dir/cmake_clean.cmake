file(REMOVE_RECURSE
  "CMakeFiles/har_audit.dir/har_audit.cpp.o"
  "CMakeFiles/har_audit.dir/har_audit.cpp.o.d"
  "har_audit"
  "har_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/har_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
