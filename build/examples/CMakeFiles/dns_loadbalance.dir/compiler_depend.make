# Empty compiler generated dependencies file for dns_loadbalance.
# This may be replaced when dependencies are built.
