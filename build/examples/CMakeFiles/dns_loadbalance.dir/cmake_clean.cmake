file(REMOVE_RECURSE
  "CMakeFiles/dns_loadbalance.dir/dns_loadbalance.cpp.o"
  "CMakeFiles/dns_loadbalance.dir/dns_loadbalance.cpp.o.d"
  "dns_loadbalance"
  "dns_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
