# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_crawl_study "/root/repo/build/examples/crawl_study")
set_tests_properties(smoke_crawl_study PROPERTIES  ENVIRONMENT "H2R_HAR_SITES=250;H2R_ALEXA_SITES=120;H2R_HAR_FIRST_RANK=60" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_audit_site "/root/repo/build/examples/audit_site" "3")
set_tests_properties(smoke_audit_site PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_dns_loadbalance "/root/repo/build/examples/dns_loadbalance")
set_tests_properties(smoke_dns_loadbalance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_har_audit "/root/repo/build/examples/har_audit" "--demo")
set_tests_properties(smoke_har_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
