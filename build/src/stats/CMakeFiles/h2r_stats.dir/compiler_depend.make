# Empty compiler generated dependencies file for h2r_stats.
# This may be replaced when dependencies are built.
