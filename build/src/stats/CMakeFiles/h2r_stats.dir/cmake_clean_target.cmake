file(REMOVE_RECURSE
  "libh2r_stats.a"
)
