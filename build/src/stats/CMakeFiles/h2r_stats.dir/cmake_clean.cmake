file(REMOVE_RECURSE
  "CMakeFiles/h2r_stats.dir/distribution.cpp.o"
  "CMakeFiles/h2r_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/h2r_stats.dir/table.cpp.o"
  "CMakeFiles/h2r_stats.dir/table.cpp.o.d"
  "libh2r_stats.a"
  "libh2r_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
