
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/har/export.cpp" "src/har/CMakeFiles/h2r_har.dir/export.cpp.o" "gcc" "src/har/CMakeFiles/h2r_har.dir/export.cpp.o.d"
  "/root/repo/src/har/har.cpp" "src/har/CMakeFiles/h2r_har.dir/har.cpp.o" "gcc" "src/har/CMakeFiles/h2r_har.dir/har.cpp.o.d"
  "/root/repo/src/har/import.cpp" "src/har/CMakeFiles/h2r_har.dir/import.cpp.o" "gcc" "src/har/CMakeFiles/h2r_har.dir/import.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/h2r_core.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/h2r_json.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/h2r_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2r_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/h2r_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/h2r_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/h2r_asdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
