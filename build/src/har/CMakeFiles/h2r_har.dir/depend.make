# Empty dependencies file for h2r_har.
# This may be replaced when dependencies are built.
