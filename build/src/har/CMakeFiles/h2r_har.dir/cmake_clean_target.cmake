file(REMOVE_RECURSE
  "libh2r_har.a"
)
