file(REMOVE_RECURSE
  "CMakeFiles/h2r_har.dir/export.cpp.o"
  "CMakeFiles/h2r_har.dir/export.cpp.o.d"
  "CMakeFiles/h2r_har.dir/har.cpp.o"
  "CMakeFiles/h2r_har.dir/har.cpp.o.d"
  "CMakeFiles/h2r_har.dir/import.cpp.o"
  "CMakeFiles/h2r_har.dir/import.cpp.o.d"
  "libh2r_har.a"
  "libh2r_har.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_har.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
