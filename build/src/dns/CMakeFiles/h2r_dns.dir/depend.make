# Empty dependencies file for h2r_dns.
# This may be replaced when dependencies are built.
