file(REMOVE_RECURSE
  "CMakeFiles/h2r_dns.dir/authoritative.cpp.o"
  "CMakeFiles/h2r_dns.dir/authoritative.cpp.o.d"
  "CMakeFiles/h2r_dns.dir/records.cpp.o"
  "CMakeFiles/h2r_dns.dir/records.cpp.o.d"
  "CMakeFiles/h2r_dns.dir/resolver.cpp.o"
  "CMakeFiles/h2r_dns.dir/resolver.cpp.o.d"
  "CMakeFiles/h2r_dns.dir/vantage.cpp.o"
  "CMakeFiles/h2r_dns.dir/vantage.cpp.o.d"
  "libh2r_dns.a"
  "libh2r_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
