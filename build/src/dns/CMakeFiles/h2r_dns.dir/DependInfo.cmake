
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/authoritative.cpp" "src/dns/CMakeFiles/h2r_dns.dir/authoritative.cpp.o" "gcc" "src/dns/CMakeFiles/h2r_dns.dir/authoritative.cpp.o.d"
  "/root/repo/src/dns/records.cpp" "src/dns/CMakeFiles/h2r_dns.dir/records.cpp.o" "gcc" "src/dns/CMakeFiles/h2r_dns.dir/records.cpp.o.d"
  "/root/repo/src/dns/resolver.cpp" "src/dns/CMakeFiles/h2r_dns.dir/resolver.cpp.o" "gcc" "src/dns/CMakeFiles/h2r_dns.dir/resolver.cpp.o.d"
  "/root/repo/src/dns/vantage.cpp" "src/dns/CMakeFiles/h2r_dns.dir/vantage.cpp.o" "gcc" "src/dns/CMakeFiles/h2r_dns.dir/vantage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/h2r_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2r_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
