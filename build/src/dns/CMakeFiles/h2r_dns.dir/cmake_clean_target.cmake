file(REMOVE_RECURSE
  "libh2r_dns.a"
)
