
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/catalog.cpp" "src/web/CMakeFiles/h2r_web.dir/catalog.cpp.o" "gcc" "src/web/CMakeFiles/h2r_web.dir/catalog.cpp.o.d"
  "/root/repo/src/web/config.cpp" "src/web/CMakeFiles/h2r_web.dir/config.cpp.o" "gcc" "src/web/CMakeFiles/h2r_web.dir/config.cpp.o.d"
  "/root/repo/src/web/ecosystem.cpp" "src/web/CMakeFiles/h2r_web.dir/ecosystem.cpp.o" "gcc" "src/web/CMakeFiles/h2r_web.dir/ecosystem.cpp.o.d"
  "/root/repo/src/web/server.cpp" "src/web/CMakeFiles/h2r_web.dir/server.cpp.o" "gcc" "src/web/CMakeFiles/h2r_web.dir/server.cpp.o.d"
  "/root/repo/src/web/sitegen.cpp" "src/web/CMakeFiles/h2r_web.dir/sitegen.cpp.o" "gcc" "src/web/CMakeFiles/h2r_web.dir/sitegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/h2r_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/h2r_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/h2r_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/h2r_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/fetch/CMakeFiles/h2r_fetch.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/h2r_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/h2r_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2r_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
