file(REMOVE_RECURSE
  "libh2r_web.a"
)
