file(REMOVE_RECURSE
  "CMakeFiles/h2r_web.dir/catalog.cpp.o"
  "CMakeFiles/h2r_web.dir/catalog.cpp.o.d"
  "CMakeFiles/h2r_web.dir/config.cpp.o"
  "CMakeFiles/h2r_web.dir/config.cpp.o.d"
  "CMakeFiles/h2r_web.dir/ecosystem.cpp.o"
  "CMakeFiles/h2r_web.dir/ecosystem.cpp.o.d"
  "CMakeFiles/h2r_web.dir/server.cpp.o"
  "CMakeFiles/h2r_web.dir/server.cpp.o.d"
  "CMakeFiles/h2r_web.dir/sitegen.cpp.o"
  "CMakeFiles/h2r_web.dir/sitegen.cpp.o.d"
  "libh2r_web.a"
  "libh2r_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
