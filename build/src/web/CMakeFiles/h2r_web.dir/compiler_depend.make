# Empty compiler generated dependencies file for h2r_web.
# This may be replaced when dependencies are built.
