# Empty dependencies file for h2r_fetch.
# This may be replaced when dependencies are built.
