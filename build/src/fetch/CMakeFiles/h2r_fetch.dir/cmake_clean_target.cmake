file(REMOVE_RECURSE
  "libh2r_fetch.a"
)
