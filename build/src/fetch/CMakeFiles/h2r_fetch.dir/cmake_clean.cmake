file(REMOVE_RECURSE
  "CMakeFiles/h2r_fetch.dir/origin.cpp.o"
  "CMakeFiles/h2r_fetch.dir/origin.cpp.o.d"
  "CMakeFiles/h2r_fetch.dir/request.cpp.o"
  "CMakeFiles/h2r_fetch.dir/request.cpp.o.d"
  "libh2r_fetch.a"
  "libh2r_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
