
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fetch/origin.cpp" "src/fetch/CMakeFiles/h2r_fetch.dir/origin.cpp.o" "gcc" "src/fetch/CMakeFiles/h2r_fetch.dir/origin.cpp.o.d"
  "/root/repo/src/fetch/request.cpp" "src/fetch/CMakeFiles/h2r_fetch.dir/request.cpp.o" "gcc" "src/fetch/CMakeFiles/h2r_fetch.dir/request.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/h2r_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
