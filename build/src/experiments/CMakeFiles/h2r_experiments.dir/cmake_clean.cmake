file(REMOVE_RECURSE
  "CMakeFiles/h2r_experiments.dir/perf_model.cpp.o"
  "CMakeFiles/h2r_experiments.dir/perf_model.cpp.o.d"
  "CMakeFiles/h2r_experiments.dir/study.cpp.o"
  "CMakeFiles/h2r_experiments.dir/study.cpp.o.d"
  "libh2r_experiments.a"
  "libh2r_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
