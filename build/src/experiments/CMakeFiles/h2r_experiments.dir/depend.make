# Empty dependencies file for h2r_experiments.
# This may be replaced when dependencies are built.
