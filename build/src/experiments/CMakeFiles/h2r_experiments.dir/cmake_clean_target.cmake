file(REMOVE_RECURSE
  "libh2r_experiments.a"
)
