file(REMOVE_RECURSE
  "libh2r_core.a"
)
