file(REMOVE_RECURSE
  "CMakeFiles/h2r_core.dir/advisor.cpp.o"
  "CMakeFiles/h2r_core.dir/advisor.cpp.o.d"
  "CMakeFiles/h2r_core.dir/classify.cpp.o"
  "CMakeFiles/h2r_core.dir/classify.cpp.o.d"
  "CMakeFiles/h2r_core.dir/dns_study.cpp.o"
  "CMakeFiles/h2r_core.dir/dns_study.cpp.o.d"
  "CMakeFiles/h2r_core.dir/observation_json.cpp.o"
  "CMakeFiles/h2r_core.dir/observation_json.cpp.o.d"
  "CMakeFiles/h2r_core.dir/report.cpp.o"
  "CMakeFiles/h2r_core.dir/report.cpp.o.d"
  "CMakeFiles/h2r_core.dir/report_json.cpp.o"
  "CMakeFiles/h2r_core.dir/report_json.cpp.o.d"
  "libh2r_core.a"
  "libh2r_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
