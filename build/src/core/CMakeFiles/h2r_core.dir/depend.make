# Empty dependencies file for h2r_core.
# This may be replaced when dependencies are built.
