
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/h2r_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/h2r_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/h2r_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/h2r_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/dns_study.cpp" "src/core/CMakeFiles/h2r_core.dir/dns_study.cpp.o" "gcc" "src/core/CMakeFiles/h2r_core.dir/dns_study.cpp.o.d"
  "/root/repo/src/core/observation_json.cpp" "src/core/CMakeFiles/h2r_core.dir/observation_json.cpp.o" "gcc" "src/core/CMakeFiles/h2r_core.dir/observation_json.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/h2r_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/h2r_core.dir/report.cpp.o.d"
  "/root/repo/src/core/report_json.cpp" "src/core/CMakeFiles/h2r_core.dir/report_json.cpp.o" "gcc" "src/core/CMakeFiles/h2r_core.dir/report_json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/h2r_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/h2r_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/h2r_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/h2r_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/h2r_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2r_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
