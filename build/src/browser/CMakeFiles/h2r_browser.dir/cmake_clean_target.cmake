file(REMOVE_RECURSE
  "libh2r_browser.a"
)
