# Empty dependencies file for h2r_browser.
# This may be replaced when dependencies are built.
