file(REMOVE_RECURSE
  "CMakeFiles/h2r_browser.dir/browser.cpp.o"
  "CMakeFiles/h2r_browser.dir/browser.cpp.o.d"
  "CMakeFiles/h2r_browser.dir/crawl.cpp.o"
  "CMakeFiles/h2r_browser.dir/crawl.cpp.o.d"
  "libh2r_browser.a"
  "libh2r_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
