# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("json")
subdirs("net")
subdirs("asdb")
subdirs("dns")
subdirs("tls")
subdirs("http2")
subdirs("fetch")
subdirs("har")
subdirs("netlog")
subdirs("browser")
subdirs("web")
subdirs("stats")
subdirs("core")
subdirs("experiments")
