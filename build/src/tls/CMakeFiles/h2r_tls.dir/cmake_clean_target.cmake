file(REMOVE_RECURSE
  "libh2r_tls.a"
)
