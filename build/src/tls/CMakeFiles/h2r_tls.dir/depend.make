# Empty dependencies file for h2r_tls.
# This may be replaced when dependencies are built.
