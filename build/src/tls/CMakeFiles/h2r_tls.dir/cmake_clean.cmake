file(REMOVE_RECURSE
  "CMakeFiles/h2r_tls.dir/certificate.cpp.o"
  "CMakeFiles/h2r_tls.dir/certificate.cpp.o.d"
  "CMakeFiles/h2r_tls.dir/issuance.cpp.o"
  "CMakeFiles/h2r_tls.dir/issuance.cpp.o.d"
  "libh2r_tls.a"
  "libh2r_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
