file(REMOVE_RECURSE
  "libh2r_json.a"
)
