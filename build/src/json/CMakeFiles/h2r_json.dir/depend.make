# Empty dependencies file for h2r_json.
# This may be replaced when dependencies are built.
