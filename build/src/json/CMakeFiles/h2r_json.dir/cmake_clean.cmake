file(REMOVE_RECURSE
  "CMakeFiles/h2r_json.dir/json.cpp.o"
  "CMakeFiles/h2r_json.dir/json.cpp.o.d"
  "libh2r_json.a"
  "libh2r_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
