file(REMOVE_RECURSE
  "CMakeFiles/h2r_netlog.dir/netlog.cpp.o"
  "CMakeFiles/h2r_netlog.dir/netlog.cpp.o.d"
  "CMakeFiles/h2r_netlog.dir/stitch.cpp.o"
  "CMakeFiles/h2r_netlog.dir/stitch.cpp.o.d"
  "libh2r_netlog.a"
  "libh2r_netlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_netlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
