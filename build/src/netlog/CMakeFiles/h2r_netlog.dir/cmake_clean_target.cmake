file(REMOVE_RECURSE
  "libh2r_netlog.a"
)
