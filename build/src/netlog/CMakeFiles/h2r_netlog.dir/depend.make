# Empty dependencies file for h2r_netlog.
# This may be replaced when dependencies are built.
