file(REMOVE_RECURSE
  "CMakeFiles/h2r_asdb.dir/asdb.cpp.o"
  "CMakeFiles/h2r_asdb.dir/asdb.cpp.o.d"
  "libh2r_asdb.a"
  "libh2r_asdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_asdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
