
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asdb/asdb.cpp" "src/asdb/CMakeFiles/h2r_asdb.dir/asdb.cpp.o" "gcc" "src/asdb/CMakeFiles/h2r_asdb.dir/asdb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/h2r_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2r_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
