file(REMOVE_RECURSE
  "libh2r_asdb.a"
)
