# Empty dependencies file for h2r_asdb.
# This may be replaced when dependencies are built.
