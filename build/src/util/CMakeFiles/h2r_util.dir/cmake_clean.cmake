file(REMOVE_RECURSE
  "CMakeFiles/h2r_util.dir/format.cpp.o"
  "CMakeFiles/h2r_util.dir/format.cpp.o.d"
  "CMakeFiles/h2r_util.dir/rng.cpp.o"
  "CMakeFiles/h2r_util.dir/rng.cpp.o.d"
  "CMakeFiles/h2r_util.dir/strings.cpp.o"
  "CMakeFiles/h2r_util.dir/strings.cpp.o.d"
  "libh2r_util.a"
  "libh2r_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
