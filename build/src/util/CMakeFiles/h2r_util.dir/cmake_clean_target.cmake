file(REMOVE_RECURSE
  "libh2r_util.a"
)
