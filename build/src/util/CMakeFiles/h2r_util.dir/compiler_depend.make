# Empty compiler generated dependencies file for h2r_util.
# This may be replaced when dependencies are built.
