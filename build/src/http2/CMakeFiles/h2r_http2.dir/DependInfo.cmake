
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http2/frame.cpp" "src/http2/CMakeFiles/h2r_http2.dir/frame.cpp.o" "gcc" "src/http2/CMakeFiles/h2r_http2.dir/frame.cpp.o.d"
  "/root/repo/src/http2/hpack.cpp" "src/http2/CMakeFiles/h2r_http2.dir/hpack.cpp.o" "gcc" "src/http2/CMakeFiles/h2r_http2.dir/hpack.cpp.o.d"
  "/root/repo/src/http2/priority.cpp" "src/http2/CMakeFiles/h2r_http2.dir/priority.cpp.o" "gcc" "src/http2/CMakeFiles/h2r_http2.dir/priority.cpp.o.d"
  "/root/repo/src/http2/session.cpp" "src/http2/CMakeFiles/h2r_http2.dir/session.cpp.o" "gcc" "src/http2/CMakeFiles/h2r_http2.dir/session.cpp.o.d"
  "/root/repo/src/http2/stream.cpp" "src/http2/CMakeFiles/h2r_http2.dir/stream.cpp.o" "gcc" "src/http2/CMakeFiles/h2r_http2.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/h2r_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/h2r_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2r_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
