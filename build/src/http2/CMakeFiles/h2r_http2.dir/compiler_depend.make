# Empty compiler generated dependencies file for h2r_http2.
# This may be replaced when dependencies are built.
