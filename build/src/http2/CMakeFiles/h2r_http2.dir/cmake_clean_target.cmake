file(REMOVE_RECURSE
  "libh2r_http2.a"
)
