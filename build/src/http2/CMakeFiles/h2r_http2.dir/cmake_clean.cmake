file(REMOVE_RECURSE
  "CMakeFiles/h2r_http2.dir/frame.cpp.o"
  "CMakeFiles/h2r_http2.dir/frame.cpp.o.d"
  "CMakeFiles/h2r_http2.dir/hpack.cpp.o"
  "CMakeFiles/h2r_http2.dir/hpack.cpp.o.d"
  "CMakeFiles/h2r_http2.dir/priority.cpp.o"
  "CMakeFiles/h2r_http2.dir/priority.cpp.o.d"
  "CMakeFiles/h2r_http2.dir/session.cpp.o"
  "CMakeFiles/h2r_http2.dir/session.cpp.o.d"
  "CMakeFiles/h2r_http2.dir/stream.cpp.o"
  "CMakeFiles/h2r_http2.dir/stream.cpp.o.d"
  "libh2r_http2.a"
  "libh2r_http2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_http2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
