file(REMOVE_RECURSE
  "CMakeFiles/h2r_net.dir/ip.cpp.o"
  "CMakeFiles/h2r_net.dir/ip.cpp.o.d"
  "libh2r_net.a"
  "libh2r_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2r_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
