# Empty compiler generated dependencies file for h2r_net.
# This may be replaced when dependencies are built.
