file(REMOVE_RECURSE
  "libh2r_net.a"
)
