// Distribution helpers for Figure 2 (complementary cumulative distribution
// of redundant connections per site) and the lifetime statistics.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace h2r::stats {

/// Multiset of SimTime samples stored as a value -> count histogram.
/// Unlike a vector of samples, the representation is independent of
/// accumulation order, which is what lets aggregate reports built from
/// merged per-worker shards compare bit-identical to single-pass ones.
using TimeHistogram = std::map<util::SimTime, std::uint64_t>;

/// Number of samples in a histogram.
std::uint64_t histogram_count(const TimeHistogram& histogram) noexcept;

/// Nearest-rank quantile (the element at index floor(q * n) of the sorted
/// multiset, matching `quantile` below); nullopt when empty.
std::optional<util::SimTime> histogram_quantile(
    const TimeHistogram& histogram, double q);

/// A point of a complementary cumulative distribution: the share of sites
/// with at least `value` occurrences.
struct CcdfPoint {
  std::size_t value = 0;
  double share = 0.0;  // in [0, 1]
  std::uint64_t count = 0;
};

/// Builds the CCDF ("share of sites with >= k redundant connections") from
/// a histogram value -> number of sites. Includes value 0 (share 1.0).
std::vector<CcdfPoint> ccdf(
    const std::map<std::size_t, std::uint64_t>& histogram);

/// Smallest value whose CCDF share is still >= `share` (e.g. the paper's
/// "around 50% of all sites open at least two redundant connections" is
/// value_at_share(h, 0.5) == 2).
std::size_t value_at_share(const std::map<std::size_t, std::uint64_t>& histogram,
                           double share);

/// Renders a CCDF as CSV ("value,share,count\n...") for external plotting.
std::string ccdf_to_csv(const std::map<std::size_t, std::uint64_t>& histogram);

/// Spearman rank correlation between two paired samples (values are
/// ranked with average ranks for ties). Returns a value in [-1, 1];
/// 0 when fewer than two pairs. Used to score how well the simulated
/// attribution rankings reproduce the paper's published orderings.
double spearman(const std::vector<double>& a, const std::vector<double>& b);

/// Exact quantile of a sample (nearest-rank).
template <typename T>
T quantile(std::vector<T> sorted_values, double q) {
  if (sorted_values.empty()) return T{};
  const std::size_t idx = std::min(
      sorted_values.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted_values.size())));
  return sorted_values[idx];
}

}  // namespace h2r::stats
