// Distribution helpers for Figure 2 (complementary cumulative distribution
// of redundant connections per site) and the lifetime statistics.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace h2r::stats {

/// Multiset of SimTime samples stored as a value -> count histogram,
/// optionally bounded to a fixed bin budget.
///
/// Unlike a vector of samples, the representation is independent of
/// accumulation order, which is what lets aggregate reports built from
/// merged per-worker shards compare bit-identical to single-pass ones.
///
/// With `bin_budget() == 0` (the default) every distinct sample value is
/// its own bin — exactly the historical std::map behaviour. With a
/// positive budget the histogram is a deterministic coarsening sketch:
/// whenever the bin count exceeds the budget, the quantization level L is
/// raised and every value is floored to a multiple of 2^L
/// (`(v >> L) << L`, arithmetic shift). Because coarsening only ever
/// moves the level up, and merge() first lifts both operands to the
/// larger level, the final (level, bins) state is a pure function of the
/// raw sample multiset — independent of add/merge order and of how the
/// samples were partitioned across workers. That confluence is the
/// thread-count-invariance contract; stats_test.cpp pins it with
/// shuffled-shard property tests.
class TimeHistogram {
 public:
  using Map = std::map<util::SimTime, std::uint64_t>;
  using key_type = Map::key_type;
  using mapped_type = Map::mapped_type;
  using value_type = Map::value_type;
  using const_iterator = Map::const_iterator;
  using const_reverse_iterator = Map::const_reverse_iterator;

  /// Levels beyond this stop coarsening: |v| < 2^62 for all SimTime
  /// values that fit the sign bit, so level 62 collapses every
  /// non-negative sample into one bin (and negatives into another). The
  /// cap keeps the shift well-defined and is itself deterministic; a
  /// histogram straddling it may exceed its budget by one bin.
  static constexpr std::uint32_t kMaxLevel = 62;

  TimeHistogram() = default;
  /// A histogram bounded to at most `bin_budget` bins (0 = exact).
  explicit TimeHistogram(std::uint32_t bin_budget) : budget_(bin_budget) {}

  /// Records `count` occurrences of `value` (quantized to the current
  /// level), coarsening if the budget is exceeded.
  void add(util::SimTime value, std::uint64_t count = 1);

  /// Folds `other` into this histogram. The merged budget is the
  /// smaller nonzero budget of the two (0 counts as "unset"), the level
  /// is lifted to the larger of the two before bins are combined, and
  /// the result coarsens further if needed — the same state any other
  /// add/merge order would reach.
  void merge(const TimeHistogram& other);

  std::uint32_t bin_budget() const noexcept { return budget_; }
  std::uint32_t level() const noexcept { return level_; }
  const Map& bins() const noexcept { return bins_; }

  const_iterator begin() const noexcept { return bins_.begin(); }
  const_iterator end() const noexcept { return bins_.end(); }
  const_reverse_iterator rbegin() const noexcept { return bins_.rbegin(); }
  const_reverse_iterator rend() const noexcept { return bins_.rend(); }
  std::size_t size() const noexcept { return bins_.size(); }
  bool empty() const noexcept { return bins_.empty(); }
  const_iterator find(util::SimTime value) const noexcept {
    return bins_.find(value);
  }
  /// Count stored at bin `value`; throws std::out_of_range when absent.
  std::uint64_t at(util::SimTime value) const { return bins_.at(value); }
  const_iterator lower_bound(util::SimTime value) const noexcept {
    return bins_.lower_bound(value);
  }

  /// Rebuilds a histogram from serialized state; nullopt when the state
  /// is inconsistent (level above the cap, level set without a budget,
  /// a bin key that is not a multiple of 2^level, or a zero count).
  static std::optional<TimeHistogram> restore(std::uint32_t bin_budget,
                                              std::uint32_t level, Map bins);

  friend bool operator==(const TimeHistogram&,
                         const TimeHistogram&) noexcept = default;

 private:
  util::SimTime quantize(util::SimTime value) const noexcept;
  void set_level(std::uint32_t level);
  void coarsen();

  Map bins_;
  std::uint32_t budget_ = 0;  // 0 = exact (unbounded)
  std::uint32_t level_ = 0;   // bins are multiples of 2^level_
};

/// Number of samples in a histogram.
std::uint64_t histogram_count(const TimeHistogram& histogram) noexcept;

/// Nearest-rank quantile (the element at index floor(q * n) of the sorted
/// multiset, matching `quantile` below); nullopt when empty.
std::optional<util::SimTime> histogram_quantile(
    const TimeHistogram& histogram, double q);

/// A point of a complementary cumulative distribution: the share of sites
/// with at least `value` occurrences.
struct CcdfPoint {
  std::size_t value = 0;
  double share = 0.0;  // in [0, 1]
  std::uint64_t count = 0;
};

/// Builds the CCDF ("share of sites with >= k redundant connections") from
/// a histogram value -> number of sites. Includes value 0 (share 1.0).
std::vector<CcdfPoint> ccdf(
    const std::map<std::size_t, std::uint64_t>& histogram);

/// Smallest value whose CCDF share is still >= `share` (e.g. the paper's
/// "around 50% of all sites open at least two redundant connections" is
/// value_at_share(h, 0.5) == 2).
std::size_t value_at_share(const std::map<std::size_t, std::uint64_t>& histogram,
                           double share);

/// Renders a CCDF as CSV ("value,share,count\n...") for external plotting.
std::string ccdf_to_csv(const std::map<std::size_t, std::uint64_t>& histogram);

/// Spearman rank correlation between two paired samples (values are
/// ranked with average ranks for ties). Returns a value in [-1, 1];
/// 0 when fewer than two pairs. Used to score how well the simulated
/// attribution rankings reproduce the paper's published orderings.
double spearman(const std::vector<double>& a, const std::vector<double>& b);

/// Exact quantile of a sample (nearest-rank).
template <typename T>
T quantile(std::vector<T> sorted_values, double q) {
  if (sorted_values.empty()) return T{};
  const std::size_t idx = std::min(
      sorted_values.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted_values.size())));
  return sorted_values[idx];
}

}  // namespace h2r::stats
