// ASCII table rendering for the bench binaries that regenerate the paper's
// tables.
#pragma once

#include <string>
#include <vector>

namespace h2r::stats {

enum class Align { kLeft, kRight };

class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> alignments = {});

  /// Adds one row; missing cells render empty, extra cells are dropped.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator line.
  void add_separator();

  /// Renders with column padding, a header rule, and `title` on top.
  std::string render(const std::string& title = {}) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

}  // namespace h2r::stats
