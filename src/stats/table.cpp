#include "stats/table.hpp"

#include <algorithm>

namespace h2r::stats {

Table::Table(std::vector<std::string> headers, std::vector<Align> alignments)
    : headers_(std::move(headers)), alignments_(std::move(alignments)) {
  alignments_.resize(headers_.size(), Align::kRight);
  if (!alignments_.empty()) alignments_[0] = alignments_[0];
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto pad = [](const std::string& s, std::size_t width, Align align) {
    std::string out;
    const std::size_t fill = width > s.size() ? width - s.size() : 0;
    if (align == Align::kRight) out.append(fill, ' ');
    out += s;
    if (align == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::size_t total = headers_.empty() ? 0 : (headers_.size() - 1) * 3;
  for (std::size_t w : widths) total += w;

  std::string out;
  if (!title.empty()) {
    out += title;
    out += '\n';
    out.append(std::min(title.size(), total), '=');
    out += '\n';
  }
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += " | ";
    out += pad(headers_[c], widths[c],
               c == 0 ? Align::kLeft : alignments_[c]);
  }
  out += '\n';
  out.append(total, '-');
  out += '\n';
  for (const Row& row : rows_) {
    if (row.separator) {
      out.append(total, '-');
      out += '\n';
      continue;
    }
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out += " | ";
      out += pad(row.cells[c], widths[c],
                 c == 0 ? Align::kLeft : alignments_[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace h2r::stats
