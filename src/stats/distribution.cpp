#include "stats/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace h2r::stats {

util::SimTime TimeHistogram::quantize(util::SimTime value) const noexcept {
  // Arithmetic shifts (well-defined in C++20): floor to a multiple of
  // 2^level_, for negative values too.
  return (value >> level_) << level_;
}

void TimeHistogram::set_level(std::uint32_t level) {
  if (level <= level_) return;
  level_ = level;
  Map coarse;
  for (const auto& [value, count] : bins_) coarse[quantize(value)] += count;
  bins_ = std::move(coarse);
}

void TimeHistogram::coarsen() {
  while (budget_ != 0 && bins_.size() > budget_ && level_ < kMaxLevel) {
    set_level(level_ + 1);
  }
}

void TimeHistogram::add(util::SimTime value, std::uint64_t count) {
  if (count == 0) return;
  bins_[quantize(value)] += count;
  coarsen();
}

void TimeHistogram::merge(const TimeHistogram& other) {
  // Budget 0 means "unset"; a merge adopts the tighter nonzero budget so
  // that default-constructed totals folding budgeted shards stay bounded.
  if (other.budget_ != 0 &&
      (budget_ == 0 || other.budget_ < budget_)) {
    budget_ = other.budget_;
  }
  if (other.level_ > level_) set_level(other.level_);
  for (const auto& [value, count] : other.bins_) {
    bins_[quantize(value)] += count;
  }
  coarsen();
}

std::optional<TimeHistogram> TimeHistogram::restore(std::uint32_t bin_budget,
                                                    std::uint32_t level,
                                                    Map bins) {
  if (level > kMaxLevel) return std::nullopt;
  if (bin_budget == 0 && level > 0) return std::nullopt;
  TimeHistogram out{bin_budget};
  out.level_ = level;
  for (const auto& [value, count] : bins) {
    if (count == 0) return std::nullopt;
    if (out.quantize(value) != value) return std::nullopt;
  }
  out.bins_ = std::move(bins);
  return out;
}

std::uint64_t histogram_count(const TimeHistogram& histogram) noexcept {
  std::uint64_t total = 0;
  for (const auto& [value, count] : histogram) total += count;
  return total;
}

std::optional<util::SimTime> histogram_quantile(
    const TimeHistogram& histogram, double q) {
  const std::uint64_t total = histogram_count(histogram);
  if (total == 0) return std::nullopt;
  const std::uint64_t target = std::min<std::uint64_t>(
      total - 1, static_cast<std::uint64_t>(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (const auto& [value, count] : histogram) {
    seen += count;
    if (seen > target) return value;
  }
  return histogram.rbegin()->first;
}

std::vector<CcdfPoint> ccdf(
    const std::map<std::size_t, std::uint64_t>& histogram) {
  std::uint64_t total = 0;
  for (const auto& [value, count] : histogram) total += count;
  std::vector<CcdfPoint> out;
  if (total == 0) return out;

  // Walk values in increasing order; at each distinct value emit the count
  // of sites with >= that value.
  std::uint64_t remaining = total;
  std::size_t last_value = 0;
  bool first = true;
  for (const auto& [value, count] : histogram) {
    if (first || value != last_value) {
      CcdfPoint p;
      p.value = value;
      p.count = remaining;
      p.share = static_cast<double>(remaining) / static_cast<double>(total);
      out.push_back(p);
    }
    remaining -= count;
    last_value = value;
    first = false;
  }
  return out;
}

std::size_t value_at_share(
    const std::map<std::size_t, std::uint64_t>& histogram, double share) {
  std::size_t best = 0;
  for (const CcdfPoint& p : ccdf(histogram)) {
    if (p.share >= share) best = p.value;
  }
  return best;
}

std::string ccdf_to_csv(
    const std::map<std::size_t, std::uint64_t>& histogram) {
  std::string out = "value,share,count\n";
  for (const CcdfPoint& p : ccdf(histogram)) {
    out += std::to_string(p.value) + "," + std::to_string(p.share) + "," +
           std::to_string(p.count) + "\n";
  }
  return out;
}

namespace {

std::vector<double> average_ranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&values](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  const std::vector<double> ra =
      average_ranks(std::vector<double>(a.begin(), a.begin() + static_cast<long>(n)));
  const std::vector<double> rb =
      average_ranks(std::vector<double>(b.begin(), b.begin() + static_cast<long>(n)));
  double mean_a = 0;
  double mean_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += ra[i];
    mean_b += rb[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0;
  double var_a = 0;
  double var_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (ra[i] - mean_a) * (rb[i] - mean_b);
    var_a += (ra[i] - mean_a) * (ra[i] - mean_a);
    var_b += (rb[i] - mean_b) * (rb[i] - mean_b);
  }
  if (var_a <= 0 || var_b <= 0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace h2r::stats
