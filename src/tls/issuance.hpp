// Certificate issuance policies.
//
// The paper's CERT cause exists because operators obtain *disjunct*
// certificates for domains served from the same hosts (e.g. separate
// certbot-issued Let's Encrypt certs per subdomain), while others merge all
// their domains into one SAN list or use wildcards. The issuance policy is
// the knob the synthetic ecosystem turns to create (or avoid) CERT
// redundancy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tls/certificate.hpp"

namespace h2r::tls {

enum class IssuancePolicy {
  /// One certificate whose SAN list contains every domain of the operator.
  kMergedSan,
  /// One certificate per domain (certbot default — disjunct certs).
  kPerDomain,
  /// One wildcard certificate "*.base" plus the base domain.
  kWildcard,
};

/// A toy CA that hands out certificates under a fixed issuer organization,
/// with monotonically increasing serials.
class CertificateAuthority {
 public:
  explicit CertificateAuthority(std::string issuer_organization)
      : issuer_(std::move(issuer_organization)) {}

  const std::string& issuer() const noexcept { return issuer_; }

  /// Issues one certificate covering exactly `dns_names`, valid in
  /// [not_before, not_after].
  CertificatePtr issue(const std::vector<std::string>& dns_names,
                       util::SimTime not_before = 0,
                       util::SimTime not_after = util::kSimTimeMax);

  /// Applies `policy` to `domains` (all belonging to one operator) and
  /// returns one certificate per resulting SAN group, in `domains` order of
  /// first appearance.
  ///
  /// For kWildcard, `wildcard_base` names the registrable domain; domains
  /// not directly under it fall back to per-domain certificates.
  std::vector<CertificatePtr> issue_for(
      IssuancePolicy policy, const std::vector<std::string>& domains,
      const std::string& wildcard_base = {});

  std::uint64_t issued_count() const noexcept { return next_serial_; }

 private:
  std::string issuer_;
  std::uint64_t next_serial_ = 0;
};

}  // namespace h2r::tls
