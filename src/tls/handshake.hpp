// TLS handshake outcome model.
//
// The seed's browser folded "can this server's certificate serve this
// host right now" into an inline check; pulling it out gives the fault
// layer its natural hook point: after the chain would have validated,
// an injected handshake abort or cert-validation error (an OCSP hiccup,
// a clock-skewed client — failures the paper's crawls simply discarded)
// can still fail the connection attempt.
#pragma once

#include <string_view>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "tls/certificate.hpp"
#include "util/clock.hpp"

namespace h2r::tls {

struct HandshakeResult {
  bool ok = false;
  /// True when the failure was injected rather than a real certificate
  /// problem — only these are worth retrying.
  bool injected_fault = false;
};

/// Decides whether a TLS handshake with a server presenting `certificate`
/// for `sni` succeeds at `now`. Natural failures (missing certificate,
/// expired/not-yet-valid window) are checked first and never consult the
/// injector; `injector` may be null. When `metrics` is set, records
/// tls.handshakes and tls.failures_natural / tls.failures_injected.
HandshakeResult simulate_handshake(const CertificatePtr& certificate,
                                   std::string_view sni, util::SimTime now,
                                   fault::FaultInjector* injector,
                                   obs::Metrics* metrics = nullptr);

/// The upstream pool's fresh-connect hook: the handshake an edge proxy
/// performs toward an origin it already trusts (pinned roots, no natural
/// chain-validation path here — that was decided when the key's verify
/// flags were set). Only injected aborts (kTlsHandshake /
/// kTlsCertValidation — an OCSP hiccup, a mid-rotation cert) can fail
/// it. When `metrics` is set, records tls.upstream_handshakes /
/// tls.upstream_failures.
HandshakeResult simulate_upstream_handshake(std::string_view sni,
                                            fault::FaultInjector* injector,
                                            obs::Metrics* metrics = nullptr);

}  // namespace h2r::tls
