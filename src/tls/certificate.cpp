#include "tls/certificate.hpp"

#include "util/strings.hpp"

namespace h2r::tls {

namespace {

constexpr char ascii_lower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c + ('a' - 'A')) : c;
}

/// Case-insensitive ASCII equality without materializing lowered copies —
/// this predicate runs millions of times per crawl (browser pooling and
/// the classifier both funnel through it).
bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

bool iends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         iequals(s.substr(s.size() - suffix.size()), suffix);
}

}  // namespace

bool matches_dns_name(std::string_view pattern,
                      std::string_view host) noexcept {
  if (pattern.empty() || host.empty()) return false;
  if (!(pattern.size() >= 2 && pattern[0] == '*' && pattern[1] == '.')) {
    return iequals(pattern, host);
  }
  // Wildcard: "*.suffix" must match exactly one extra label, and the
  // suffix must contain at least one label itself ("*." matches nothing).
  const std::string_view suffix = pattern.substr(1);  // ".suffix"
  if (suffix.size() <= 1) return false;
  if (host.size() <= suffix.size()) return false;  // the label is non-empty
  if (!iends_with(host, suffix)) return false;
  const std::string_view label =
      host.substr(0, host.size() - suffix.size());
  return label.find('.') == std::string_view::npos;
}

CertificatePtr Certificate::make(Spec spec) {
  return CertificatePtr(new Certificate(std::move(spec)));
}

bool Certificate::covers(std::string_view host) const noexcept {
  if (spec_.san_dns_names.empty()) {
    return matches_dns_name(spec_.subject_common_name, host);
  }
  for (const std::string& san : spec_.san_dns_names) {
    if (matches_dns_name(san, host)) return true;
  }
  return false;
}

std::string Certificate::fingerprint() const {
  return spec_.issuer_organization + "/" + std::to_string(spec_.serial) + "/" +
         spec_.subject_common_name;
}

}  // namespace h2r::tls
