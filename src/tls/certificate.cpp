#include "tls/certificate.hpp"

#include "util/strings.hpp"

namespace h2r::tls {

bool matches_dns_name(std::string_view pattern,
                      std::string_view host) noexcept {
  if (pattern.empty() || host.empty()) return false;
  const std::string p = util::to_lower(pattern);
  const std::string h = util::to_lower(host);
  if (!util::starts_with(p, "*.")) return p == h;
  // Wildcard: "*.suffix" must match exactly one extra label, and the
  // suffix must contain at least one label itself ("*." matches nothing).
  const std::string_view suffix = std::string_view(p).substr(1);  // ".suffix"
  if (suffix.size() <= 1) return false;
  if (!util::ends_with(h, suffix)) return false;
  const std::string_view label =
      std::string_view(h).substr(0, h.size() - suffix.size());
  return !label.empty() && label.find('.') == std::string_view::npos;
}

CertificatePtr Certificate::make(Spec spec) {
  return CertificatePtr(new Certificate(std::move(spec)));
}

bool Certificate::covers(std::string_view host) const noexcept {
  if (spec_.san_dns_names.empty()) {
    return matches_dns_name(spec_.subject_common_name, host);
  }
  for (const std::string& san : spec_.san_dns_names) {
    if (matches_dns_name(san, host)) return true;
  }
  return false;
}

std::string Certificate::fingerprint() const {
  return spec_.issuer_organization + "/" + std::to_string(spec_.serial) + "/" +
         spec_.subject_common_name;
}

}  // namespace h2r::tls
