// TLS certificate model.
//
// HTTP/2 Connection Reuse (RFC 7540 §9.1.1) allows reusing a connection for
// a new domain only if the connection's certificate "is valid for" that
// domain — in practice, if a dNSName Subject Alternative Name matches it.
// We model exactly the fields the paper's analysis needs: SAN list, issuer
// organization (Tables 3/4/5/9/10 group by issuer) and validity window.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"

namespace h2r::tls {

/// RFC 6125-style host matching for a single dNSName pattern:
///   - case-insensitive exact match, or
///   - a wildcard in the left-most label only ("*.example.com"), matching
///     exactly one label (not "example.com", not "a.b.example.com").
bool matches_dns_name(std::string_view pattern, std::string_view host) noexcept;

class Certificate;
using CertificatePtr = std::shared_ptr<const Certificate>;

/// An immutable leaf certificate. Shared by reference between the servers
/// presenting it and every connection record that captured it.
class Certificate {
 public:
  struct Spec {
    std::string subject_common_name;
    std::vector<std::string> san_dns_names;
    std::string issuer_organization;  // e.g. "Let's Encrypt"
    util::SimTime not_before = 0;
    util::SimTime not_after = util::kSimTimeMax;
    std::uint64_t serial = 0;
  };

  static CertificatePtr make(Spec spec);

  const std::string& subject_common_name() const noexcept {
    return spec_.subject_common_name;
  }
  const std::vector<std::string>& san_dns_names() const noexcept {
    return spec_.san_dns_names;
  }
  const std::string& issuer_organization() const noexcept {
    return spec_.issuer_organization;
  }
  std::uint64_t serial() const noexcept { return spec_.serial; }

  bool valid_at(util::SimTime t) const noexcept {
    return t >= spec_.not_before && t <= spec_.not_after;
  }

  /// True if any SAN (or, absent SANs, the CN — legacy behaviour) covers
  /// `host`.
  bool covers(std::string_view host) const noexcept;

  /// Stable identity for grouping ("issuer/serial/CN").
  std::string fingerprint() const;

 private:
  explicit Certificate(Spec spec) : spec_(std::move(spec)) {}
  Spec spec_;
};

}  // namespace h2r::tls
