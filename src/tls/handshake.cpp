#include "tls/handshake.hpp"

namespace h2r::tls {

HandshakeResult simulate_handshake(const CertificatePtr& certificate,
                                   std::string_view sni, util::SimTime now,
                                   fault::FaultInjector* injector,
                                   obs::Metrics* metrics) {
  (void)sni;  // which cert the server presents for the SNI is decided by
              // the caller (web::Server::certificate_for)
  HandshakeResult result;
  if (metrics != nullptr) metrics->add("tls.handshakes");
  if (certificate == nullptr || !certificate->valid_at(now)) {
    if (metrics != nullptr) metrics->add("tls.failures_natural");
    return result;  // natural failure: certificate errors are not ignored
  }
  if (injector != nullptr) {
    if (injector->fire(fault::FaultKind::kTlsHandshake) ||
        injector->fire(fault::FaultKind::kTlsCertValidation)) {
      result.injected_fault = true;
      if (metrics != nullptr) metrics->add("tls.failures_injected");
      return result;
    }
  }
  result.ok = true;
  return result;
}

HandshakeResult simulate_upstream_handshake(std::string_view sni,
                                            fault::FaultInjector* injector,
                                            obs::Metrics* metrics) {
  (void)sni;  // trust decisions are baked into the pool key's verify flags
  HandshakeResult result;
  if (metrics != nullptr) metrics->add("tls.upstream_handshakes");
  if (injector != nullptr) {
    if (injector->fire(fault::FaultKind::kTlsHandshake) ||
        injector->fire(fault::FaultKind::kTlsCertValidation)) {
      result.injected_fault = true;
      if (metrics != nullptr) metrics->add("tls.upstream_failures");
      return result;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace h2r::tls
