#include "tls/issuance.hpp"

#include "util/strings.hpp"

namespace h2r::tls {

CertificatePtr CertificateAuthority::issue(
    const std::vector<std::string>& dns_names, util::SimTime not_before,
    util::SimTime not_after) {
  Certificate::Spec spec;
  spec.subject_common_name = dns_names.empty() ? "" : dns_names.front();
  spec.san_dns_names = dns_names;
  spec.issuer_organization = issuer_;
  spec.not_before = not_before;
  spec.not_after = not_after;
  spec.serial = next_serial_++;
  return Certificate::make(std::move(spec));
}

std::vector<CertificatePtr> CertificateAuthority::issue_for(
    IssuancePolicy policy, const std::vector<std::string>& domains,
    const std::string& wildcard_base) {
  std::vector<CertificatePtr> out;
  switch (policy) {
    case IssuancePolicy::kMergedSan: {
      if (!domains.empty()) out.push_back(issue(domains));
      break;
    }
    case IssuancePolicy::kPerDomain: {
      out.reserve(domains.size());
      for (const std::string& d : domains) {
        out.push_back(issue({d}));
      }
      break;
    }
    case IssuancePolicy::kWildcard: {
      std::vector<std::string> leftover;
      bool wildcard_needed = false;
      const std::string wildcard = "*." + wildcard_base;
      for (const std::string& d : domains) {
        if (d == wildcard_base || matches_dns_name(wildcard, d)) {
          wildcard_needed = true;
        } else {
          leftover.push_back(d);
        }
      }
      if (wildcard_needed) {
        out.push_back(issue({wildcard_base, wildcard}));
      }
      for (const std::string& d : leftover) {
        out.push_back(issue({d}));
      }
      break;
    }
  }
  return out;
}

}  // namespace h2r::tls
