// JSON serialization of analysis results — the machine-readable side of
// the toolkit (the `h2r` CLI's --json mode, CI pipelines diffing audits).
#pragma once

#include "core/advisor.hpp"
#include "core/classify.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "json/json.hpp"

namespace h2r::core {

/// Untruncated `top_n` for to_json: every attribution row is emitted.
inline constexpr std::size_t kAllRows = static_cast<std::size_t>(-1);

/// How much of an AggregateReport the serializer keeps.
enum class Fidelity {
  /// The human/CI-facing shape: per-cause tallies, the Figure 2 histogram
  /// and the attribution tables truncated to the top rows; previous-origin
  /// maps and domain sets are summarized, so this shape is NOT losslessly
  /// parseable.
  kTruncated,
  /// The lossless journal shape: every attribution row with its complete
  /// previous-origin map, full domain sets and the raw TimeHistogram
  /// sample multisets. report_from_json(x) round-trips this shape exactly
  /// (tests/report_json_test.cpp pins it).
  kFull,
};

struct ReportJsonOptions {
  Fidelity fidelity = Fidelity::kTruncated;
  /// Attribution-table row cap; only the truncated shape consults it
  /// (kFull is always complete). kAllRows = untruncated tables.
  std::size_t top_n = 20;
};

/// THE aggregate-report serializer; the two shapes of the old to_json /
/// to_json_full pair are selected by options.fidelity and preserved byte
/// for byte (both names forward here).
json::Value report_to_json(const AggregateReport& report,
                           const ReportJsonOptions& options = {});

/// Truncated shape (Fidelity::kTruncated with `top_n` rows per table).
inline json::Value to_json(const AggregateReport& report,
                           std::size_t top_n = 20) {
  return report_to_json(report, {Fidelity::kTruncated, top_n});
}

/// Lossless journal shape (Fidelity::kFull).
inline json::Value to_json_full(const AggregateReport& report) {
  return report_to_json(report, {Fidelity::kFull, kAllRows});
}

/// Strict parser for to_json_full output. Rejects malformed documents:
/// missing/mistyped fields, non-integer or negative counters (doubles and
/// NaN included), unknown cause names.
util::Expected<AggregateReport> report_from_json(const json::Value& value);

/// TimeHistogram (sample multiset) <-> JSON: array of [value_ms, count]
/// pairs, ordered by value. The parser rejects non-integer values,
/// non-positive counts and unsorted/duplicate entries.
json::Value histogram_to_json(const stats::TimeHistogram& histogram);
util::Expected<stats::TimeHistogram> histogram_from_json(
    const json::Value& value);

/// Strict parser for to_json(FailureSummary) output (the fault ledger).
util::Expected<fault::FailureSummary> failure_summary_from_json(
    const json::Value& value);

/// One site's classification -> JSON (per-connection findings with causes
/// and reusable previous origins).
json::Value to_json(const SiteClassification& classification);

/// Audit report -> JSON (advice items with cause/remedy/volume).
json::Value to_json(const AuditReport& report);

/// Policy replay tally <-> JSON (DESIGN §14). The parser is strict, like
/// report_from_json: journal checkpoints carry these per policy point.
json::Value to_json(const PolicyTally& tally);
util::Expected<PolicyTally> policy_tally_from_json(const json::Value& value);

/// Fault-layer ledger -> JSON: per-kind injected counts plus the fetch /
/// retry / degradation counters. Serialized alongside the crawl summary
/// so chaos runs diff cleanly in CI.
json::Value to_json(const fault::FailureSummary& summary);

}  // namespace h2r::core
