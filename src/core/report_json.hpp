// JSON serialization of analysis results — the machine-readable side of
// the toolkit (the `h2r` CLI's --json mode, CI pipelines diffing audits).
#pragma once

#include "core/advisor.hpp"
#include "core/classify.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "json/json.hpp"

namespace h2r::core {

/// Aggregate report -> JSON: headline counts, per-cause tallies, the
/// Figure 2 histogram and the attribution tables (top `top_n` rows each).
json::Value to_json(const AggregateReport& report, std::size_t top_n = 20);

/// One site's classification -> JSON (per-connection findings with causes
/// and reusable previous origins).
json::Value to_json(const SiteClassification& classification);

/// Audit report -> JSON (advice items with cause/remedy/volume).
json::Value to_json(const AuditReport& report);

/// Fault-layer ledger -> JSON: per-kind injected counts plus the fetch /
/// retry / degradation counters. Serialized alongside the crawl summary
/// so chaos runs diff cleanly in CI.
json::Value to_json(const fault::FailureSummary& summary);

}  // namespace h2r::core
