// The Figure 3 study: how often do two domains of one operator resolve to
// overlapping IPs, per vantage point, over time?
//
// The paper queried 10 domain pairs every 6 minutes for several days from
// 14 resolvers and plotted, per time slot, the number of resolvers whose
// answers for the two domains shared at least one IP ("darker areas denote
// more resolvers for which the DNS answers overlapped").
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dns/authoritative.hpp"
#include "dns/resolver.hpp"
#include "util/clock.hpp"

namespace h2r::core {

struct DnsOverlapConfig {
  util::SimTime start = 0;
  util::SimTime duration = util::days(3);
  util::SimTime step = util::minutes(6);  // the paper's query interval
};

struct DnsOverlapSlot {
  util::SimTime time = 0;
  /// Number of vantage points whose answers for the two domains overlapped.
  int overlapping_resolvers = 0;
};

struct DnsOverlapSeries {
  std::string domain_a;
  std::string domain_b;
  std::vector<DnsOverlapSlot> slots;

  /// Share of slots with at least one overlapping resolver.
  double any_overlap_share() const noexcept;
  /// Mean overlapping-resolver count across slots.
  double mean_overlap() const noexcept;
};

/// Runs the study for every domain pair. Each vantage point resolves both
/// domains freshly per slot (TTLs are shorter than the 6-minute step, so
/// caching does not mask rotation — matching the paper's methodology of
/// repeated queries).
std::vector<DnsOverlapSeries> run_dns_overlap_study(
    const dns::AuthoritativeServer& authority,
    std::span<const std::pair<std::string, std::string>> domain_pairs,
    const std::vector<dns::ResolverProfile>& vantage_points,
    const DnsOverlapConfig& config = {});

}  // namespace h2r::core
