// The redundancy classifier (paper §4.1).
//
// For every connection C of a site, every *previous* connection P (opened
// earlier and still available at C's open time under the duration model) is
// examined:
//
//   P excluded C's domain (421/ORIGIN)         -> P is skipped entirely
//   same endpoint, P's cert covers C's domain  -> cause CRED
//   same endpoint, cert does not cover         -> cause CERT
//   different IP, same initial domain          -> cause CRED  (corner case:
//        only happens when the credentials flag forbade reuse and DNS
//        announced several IPs — would otherwise misclassify as IP)
//   different IP, P's cert covers C's domain   -> cause IP
//   nothing matches for any P                  -> unknown third party
//                                                 (not redundant)
//
// A connection's causes are the SET over all P (the paper's four-connection
// example yields 3x CERT + 2x CRED), so per-cause sums may exceed the
// number of redundant connections.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/connection.hpp"
#include "core/connection_table.hpp"
#include "core/intern.hpp"
#include "core/policy.hpp"
#include "util/arena.hpp"

namespace h2r::core {

enum class Cause : std::uint8_t { kCert, kIp, kCred };

std::string to_string(Cause cause);

inline constexpr Cause kAllCauses[] = {Cause::kCert, Cause::kIp, Cause::kCred};

/// Why one connection was deemed redundant, with the attribution details
/// the paper's tables need.
struct ConnectionFinding {
  std::size_t connection_index = 0;  // into SiteObservation::connections
  std::set<Cause> causes;
  /// Per cause: the distinct initial domains of the previous connections
  /// that could have been reused ("prev:" rows of Tables 2/4/8/10/12).
  std::map<Cause, std::set<std::string>> reusable_previous_domains;
};

/// One connection a counterfactual policy replay recovered: the browser
/// under the policy would have reused `reused_connection_index` instead of
/// opening `connection_index`.
struct RecoveredConnection {
  std::size_t connection_index = 0;        // into SiteObservation::connections
  std::size_t reused_connection_index = 0; // the survivor it folds into
  /// Operator credited with the recovery: the recovered connection's own
  /// operator, else the survivor's, else the base domain of the
  /// connection's initial domain.
  std::string operator_name;
};

struct SiteClassification {
  std::string site_url;
  std::size_t total_connections = 0;
  std::vector<ConnectionFinding> findings;  // redundant connections only
  /// Connections a counterfactual policy recovered (empty for baseline
  /// policies). `findings` then describe the surviving connections only.
  std::vector<RecoveredConnection> recovered;

  bool has_cause(Cause cause) const noexcept;
  std::size_t count_cause(Cause cause) const noexcept;
  std::size_t redundant_connections() const noexcept {
    return findings.size();
  }
};

/// Deprecated name from before the policy redesign; new code should spell
/// out core::Policy (h2r-lint's policy.alias rule flags this alias).
using ClassifyOptions = Policy;  // h2r-lint: allow(policy.alias) -- alias definition

/// Reusable per-worker classification state: an arena for site-scoped
/// scratch, a deterministic interner for domains/SANs, and the SoA
/// ConnectionTable the sweep iterates. prepare() builds the table once
/// per site; classify() then sweeps it once per duration model, so the
/// model-independent work (lowering, SAN matching, exclusion tests) is
/// paid once instead of once per model per pair.
///
/// Results are byte-identical to classify_site() — the free function is
/// now a thin wrapper over a thread-local context, and every id the
/// context assigns stays internal (findings materialize interned
/// STRINGS, never ids — DESIGN §12).
///
/// Not thread-safe; one context per worker.
class ClassifyContext {
 public:
  /// `use_arena` defaults to the process-wide H2R_ARENA knob; off means
  /// table columns fall back to plain heap allocation (same results —
  /// tests/arena_test.cpp pins the differential).
  explicit ClassifyContext(bool use_arena = util::arena_enabled());

  /// Builds the table for `site`. The observation must outlive the next
  /// prepare() (classify() reads site_url, the connection count, and —
  /// for horizon policies — per-request times). prepare() is
  /// knob-independent: one table serves every policy point.
  void prepare(const SiteObservation& site);

  /// Classifies the prepared site under `policy`. Baseline policies
  /// (mask() == 0, no horizon) run the exact paper sweep; counterfactual
  /// policies first replay the browser's reuse decisions under the knobs
  /// (phase 1: recovery), then re-classify the surviving connections
  /// (phase 2) with endpoints remapped as the counterfactual browser
  /// would have rotated addresses.
  SiteClassification classify(const Policy& policy);

  /// The table built by the last prepare() (for tests/benches).
  const ConnectionTable& table() const noexcept { return *table_; }

 private:
  std::unique_ptr<util::Arena> arena_;  // null when use_arena is false
  Interner interner_;
  const SiteObservation* site_ = nullptr;
  std::optional<ConnectionTable> table_;
  // Model-dependent availability-end column, rebuilt per classify().
  std::vector<util::SimTime> avail_end_;
  // Per-connection (cause x distinct-domain) match marks, generation
  // stamped so clearing is O(matches) instead of O(matrix).
  std::vector<std::uint32_t> marks_;
  std::vector<std::uint32_t> touched_;
  std::uint32_t generation_ = 0;

  // Policy-replay scratch (counterfactual / horizon classifies only).
  std::vector<util::SimTime> cf_last_;      // counterfactual last activity
  std::vector<util::SimTime> cf_end_;       // counterfactual availability end
  std::vector<util::SimTime> idle_gap_;     // closed - last_request_end
  std::vector<std::uint32_t> recovered_into_;
  std::vector<std::uint32_t> remap_;        // survivor -> baseline slot

  SiteClassification classify_replay(const Policy& policy);
};

/// Classifies one site's connections. `connections` must be in open order
/// (ties broken by record order); the classifier asserts monotonicity.
SiteClassification classify_site(const SiteObservation& site,
                                 const Policy& policy = {});

}  // namespace h2r::core
