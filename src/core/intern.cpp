#include "core/intern.hpp"

#include <algorithm>
#include <cassert>

namespace h2r::core {

namespace {

constexpr char ascii_lower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c + ('a' - 'A')) : c;
}

bool is_ascii_lower(std::string_view s) noexcept {
  for (const char c : s) {
    if (c >= 'A' && c <= 'Z') return false;
  }
  return true;
}

}  // namespace

std::uint32_t Interner::intern(std::string_view s) {
  const std::uint32_t hash = fnv1a(s);
  const std::size_t mask = buckets_.size() - 1;
  for (std::size_t b = hash & mask;; b = (b + 1) & mask) {
    const std::uint32_t slot = buckets_[b];
    if (slot == 0) return insert(s, hash);
    const std::uint32_t id = slot - 1;
    if (entries_[id].hash == hash && str(id) == s) return id;
  }
}

std::uint32_t Interner::intern_lower(std::string_view s) {
  if (is_ascii_lower(s)) return intern(s);
  // Rare path: fold into a small stack buffer (domains are short); spill
  // to a heap string only for pathological lengths.
  char stack[256];
  if (s.size() <= sizeof(stack)) {
    for (std::size_t i = 0; i < s.size(); ++i) stack[i] = ascii_lower(s[i]);
    return intern(std::string_view(stack, s.size()));
  }
  std::string lowered(s);
  for (char& c : lowered) c = ascii_lower(c);
  return intern(lowered);
}

std::uint32_t Interner::find(std::string_view s) const noexcept {
  const std::uint32_t hash = fnv1a(s);
  const std::size_t mask = buckets_.size() - 1;
  for (std::size_t b = hash & mask;; b = (b + 1) & mask) {
    const std::uint32_t slot = buckets_[b];
    if (slot == 0) return kNpos;
    const std::uint32_t id = slot - 1;
    if (entries_[id].hash == hash && str(id) == s) return id;
  }
}

std::uint32_t Interner::insert(std::string_view s, std::uint32_t hash) {
  assert(entries_.size() < kNpos);
  Entry e;
  e.offset = static_cast<std::uint32_t>(pool_.size());
  e.size = static_cast<std::uint32_t>(s.size());
  e.hash = hash;
  pool_.append(s);
  const std::uint32_t id = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(e);
  if ((entries_.size() + 1) * 4 > buckets_.size() * 3) {
    rehash(buckets_.size() * 2);  // re-places every id, including this one
  } else {
    const std::size_t mask = buckets_.size() - 1;
    std::size_t b = hash & mask;
    while (buckets_[b] != 0) b = (b + 1) & mask;
    buckets_[b] = id + 1;
  }
  return id;
}

void Interner::rehash(std::size_t buckets) {
  buckets_.assign(buckets, 0);
  const std::size_t mask = buckets - 1;
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    std::size_t b = entries_[id].hash & mask;
    while (buckets_[b] != 0) b = (b + 1) & mask;
    buckets_[b] = id + 1;
  }
}

void Interner::clear() {
  pool_.clear();
  entries_.clear();
  rehash(1024);
}

CanonicalRemap::CanonicalRemap(const std::vector<const Interner*>& shards) {
  // Union of every shard's strings, sorted lexicographically: the
  // canonical order is a pure function of the SET of strings, so any
  // sharding of the same work yields the same canonical ids.
  for (const Interner* shard : shards) {
    for (std::uint32_t id = 0; id < shard->size(); ++id) {
      strings_.push_back(shard->str(id));
    }
  }
  std::sort(strings_.begin(), strings_.end());
  strings_.erase(std::unique(strings_.begin(), strings_.end()),
                 strings_.end());
  tables_.reserve(shards.size());
  for (const Interner* shard : shards) {
    std::vector<std::uint32_t> table(shard->size());
    for (std::uint32_t id = 0; id < shard->size(); ++id) {
      const auto it = std::lower_bound(strings_.begin(), strings_.end(),
                                       shard->str(id));
      table[id] = static_cast<std::uint32_t>(it - strings_.begin());
    }
    tables_.push_back(std::move(table));
  }
}

}  // namespace h2r::core
