#include "core/dns_study.hpp"

#include <algorithm>
#include <set>

namespace h2r::core {

double DnsOverlapSeries::any_overlap_share() const noexcept {
  if (slots.empty()) return 0.0;
  const auto overlapping =
      std::count_if(slots.begin(), slots.end(), [](const DnsOverlapSlot& s) {
        return s.overlapping_resolvers > 0;
      });
  return static_cast<double>(overlapping) / static_cast<double>(slots.size());
}

double DnsOverlapSeries::mean_overlap() const noexcept {
  if (slots.empty()) return 0.0;
  double sum = 0.0;
  for (const DnsOverlapSlot& s : slots) sum += s.overlapping_resolvers;
  return sum / static_cast<double>(slots.size());
}

std::vector<DnsOverlapSeries> run_dns_overlap_study(
    const dns::AuthoritativeServer& authority,
    std::span<const std::pair<std::string, std::string>> domain_pairs,
    const std::vector<dns::ResolverProfile>& vantage_points,
    const DnsOverlapConfig& config) {
  std::vector<DnsOverlapSeries> out;
  out.reserve(domain_pairs.size());
  for (const auto& [a, b] : domain_pairs) {
    DnsOverlapSeries series;
    series.domain_a = a;
    series.domain_b = b;
    for (util::SimTime t = config.start; t < config.start + config.duration;
         t += config.step) {
      DnsOverlapSlot slot;
      slot.time = t;
      for (const dns::ResolverProfile& vantage : vantage_points) {
        dns::QueryContext ctx;
        ctx.resolver_id = vantage.id;
        ctx.region = vantage.region;
        ctx.now = t;
        const dns::Answer answer_a = authority.query(a, ctx);
        const dns::Answer answer_b = authority.query(b, ctx);
        if (!answer_a.ok || !answer_b.ok) continue;  // filtered slot entry
        const std::set<net::IpAddress> set_a(answer_a.addresses.begin(),
                                             answer_a.addresses.end());
        const bool overlap = std::any_of(
            answer_b.addresses.begin(), answer_b.addresses.end(),
            [&set_a](const net::IpAddress& ip) { return set_a.count(ip) > 0; });
        if (overlap) ++slot.overlapping_resolvers;
      }
      series.slots.push_back(slot);
    }
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace h2r::core
