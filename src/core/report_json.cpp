#include "core/report_json.hpp"

namespace h2r::core {

namespace {

json::Value cause_tally_json(const AggregateReport& report, Cause cause) {
  json::Object obj;
  const auto it = report.by_cause.find(cause);
  obj.set("sites", it == report.by_cause.end()
                       ? std::int64_t{0}
                       : static_cast<std::int64_t>(it->second.sites));
  obj.set("connections",
          it == report.by_cause.end()
              ? std::int64_t{0}
              : static_cast<std::int64_t>(it->second.connections));
  return json::Value{std::move(obj)};
}

json::Value origin_table_json(const std::map<std::string, OriginTally>& table,
                              std::size_t top_n) {
  json::Array rows;
  for (const auto& [origin, tally] : top_k(table, top_n)) {
    json::Object row;
    row.set("origin", origin);
    row.set("connections", static_cast<std::int64_t>(tally->connections));
    if (!tally->issuer.empty()) row.set("issuer", tally->issuer);
    if (const auto prev = top_previous(*tally)) {
      json::Object prev_obj;
      prev_obj.set("origin", prev->first);
      prev_obj.set("connections", static_cast<std::int64_t>(prev->second));
      row.set("top_previous", std::move(prev_obj));
    }
    rows.emplace_back(std::move(row));
  }
  return json::Value{std::move(rows)};
}

json::Value issuer_table_json(const std::map<std::string, IssuerTally>& table,
                              std::size_t top_n) {
  json::Array rows;
  for (const auto& [issuer, tally] : top_k(table, top_n)) {
    json::Object row;
    row.set("issuer", issuer);
    row.set("connections", static_cast<std::int64_t>(tally->connections));
    row.set("domains", static_cast<std::int64_t>(tally->domains.size()));
    rows.emplace_back(std::move(row));
  }
  return json::Value{std::move(rows)};
}

// ---------------------------------------------------------------- full
// fidelity (journal) serialization: every map in AggregateReport survives
// the round trip bit for bit, so a crash-recovered shard merges exactly
// like the in-memory one it replaces.

/// Strict counter read: the field must exist, be a JSON integer (doubles,
/// NaN and out-of-int64-range literals parse as kDouble and are rejected)
/// and be non-negative.
util::Expected<std::uint64_t> parse_count(const json::Value& value,
                                          std::string_view key) {
  const json::Value& field = value[key];
  if (!field.is_int() || field.as_int() < 0) {
    return util::unexpected(
        util::Error{"bad or missing counter: " + std::string(key)});
  }
  return static_cast<std::uint64_t>(field.as_int());
}

util::Expected<Cause> cause_from_string(const std::string& name) {
  for (Cause cause : kAllCauses) {
    if (to_string(cause) == name) return cause;
  }
  return util::unexpected(util::Error{"unknown cause: " + name});
}

json::Value origin_tally_full_json(const OriginTally& tally) {
  json::Object obj;
  obj.set("connections", static_cast<std::int64_t>(tally.connections));
  obj.set("issuer", tally.issuer);
  json::Object previous;
  for (const auto& [origin, count] : tally.previous_origins) {
    previous.set(origin, static_cast<std::int64_t>(count));
  }
  obj.set("previous", std::move(previous));
  return json::Value{std::move(obj)};
}

util::Expected<OriginTally> origin_tally_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return util::unexpected(util::Error{"origin tally is not an object"});
  }
  OriginTally tally;
  const auto connections = parse_count(value, "connections");
  if (!connections) return util::unexpected(connections.error());
  tally.connections = *connections;
  if (!value["issuer"].is_string()) {
    return util::unexpected(util::Error{"origin tally without issuer"});
  }
  tally.issuer = value["issuer"].as_string();
  if (!value["previous"].is_object()) {
    return util::unexpected(util::Error{"origin tally without previous map"});
  }
  for (const auto& [origin, count] : value["previous"].as_object()) {
    if (!count.is_int() || count.as_int() <= 0) {
      return util::unexpected(
          util::Error{"bad previous-origin count for " + origin});
    }
    tally.previous_origins[origin] = static_cast<std::uint64_t>(count.as_int());
  }
  return tally;
}

template <typename Tally>
json::Value domains_tally_full_json(const Tally& tally) {
  json::Object obj;
  obj.set("connections", static_cast<std::int64_t>(tally.connections));
  json::Array domains;
  for (const std::string& domain : tally.domains) domains.emplace_back(domain);
  obj.set("domains", std::move(domains));
  return json::Value{std::move(obj)};
}

template <typename Tally>
util::Expected<Tally> domains_tally_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return util::unexpected(util::Error{"tally is not an object"});
  }
  Tally tally;
  const auto connections = parse_count(value, "connections");
  if (!connections) return util::unexpected(connections.error());
  tally.connections = *connections;
  if (!value["domains"].is_array()) {
    return util::unexpected(util::Error{"tally without domains array"});
  }
  for (const json::Value& domain : value["domains"].as_array()) {
    if (!domain.is_string()) {
      return util::unexpected(util::Error{"non-string tally domain"});
    }
    tally.domains.insert(domain.as_string());
  }
  return tally;
}

}  // namespace

json::Value histogram_to_json(const stats::TimeHistogram& histogram) {
  json::Array samples;
  for (const auto& [value, count] : histogram) {
    json::Array pair;
    pair.emplace_back(static_cast<std::int64_t>(value));
    pair.emplace_back(static_cast<std::int64_t>(count));
    samples.emplace_back(std::move(pair));
  }
  if (histogram.bin_budget() == 0) {
    // Exact histograms keep the legacy array shape, byte-for-byte.
    return json::Value{std::move(samples)};
  }
  // Budgeted sketches carry their quantization level explicitly: it
  // cannot be re-derived from sparse bins, and resuming with a wrong
  // level would break merge determinism.
  json::Object obj;
  obj.set("budget", static_cast<std::int64_t>(histogram.bin_budget()));
  obj.set("level", static_cast<std::int64_t>(histogram.level()));
  obj.set("bins", std::move(samples));
  return json::Value{std::move(obj)};
}

namespace {

util::Expected<stats::TimeHistogram::Map> histogram_bins_from_json(
    const json::Value& value) {
  if (!value.is_array()) {
    return util::unexpected(util::Error{"histogram is not an array"});
  }
  stats::TimeHistogram::Map bins;
  bool first = true;
  util::SimTime last = 0;
  for (const json::Value& pair : value.as_array()) {
    if (!pair.is_array() || pair.as_array().size() != 2 ||
        !pair.at(0).is_int() || !pair.at(1).is_int()) {
      return util::unexpected(
          util::Error{"histogram entry is not an integer pair"});
    }
    const util::SimTime sample = pair.at(0).as_int();
    const std::int64_t count = pair.at(1).as_int();
    if (count <= 0) {
      return util::unexpected(util::Error{"non-positive histogram count"});
    }
    if (!first && sample <= last) {
      return util::unexpected(
          util::Error{"histogram samples not strictly increasing"});
    }
    bins[sample] = static_cast<std::uint64_t>(count);
    last = sample;
    first = false;
  }
  return bins;
}

}  // namespace

util::Expected<stats::TimeHistogram> histogram_from_json(
    const json::Value& value) {
  if (value.is_object()) {
    const json::Value& budget = value["budget"];
    const json::Value& level = value["level"];
    if (!budget.is_int() || budget.as_int() <= 0 ||
        budget.as_int() > 0xFFFFFFFFll || !level.is_int() ||
        level.as_int() < 0 || level.as_int() > 0xFFFFFFFFll) {
      return util::unexpected(
          util::Error{"budgeted histogram without valid budget/level"});
    }
    auto bins = histogram_bins_from_json(value["bins"]);
    if (!bins) return util::unexpected(bins.error());
    auto restored = stats::TimeHistogram::restore(
        static_cast<std::uint32_t>(budget.as_int()),
        static_cast<std::uint32_t>(level.as_int()), std::move(*bins));
    if (!restored) {
      return util::unexpected(util::Error{"inconsistent budgeted histogram"});
    }
    return *restored;
  }
  auto bins = histogram_bins_from_json(value);
  if (!bins) return util::unexpected(bins.error());
  stats::TimeHistogram histogram;
  for (const auto& [sample, count] : *bins) histogram.add(sample, count);
  return histogram;
}

util::Expected<fault::FailureSummary> failure_summary_from_json(
    const json::Value& value) {
  if (!value.is_object()) {
    return util::unexpected(util::Error{"failure summary is not an object"});
  }
  fault::FailureSummary summary;
  const json::Value& injected = value["injected"];
  if (!injected.is_object()) {
    return util::unexpected(util::Error{"failure summary without injected"});
  }
  for (std::size_t i = 0; i < fault::kFaultKindCount; ++i) {
    const fault::FaultKind kind = static_cast<fault::FaultKind>(i);
    const auto count = parse_count(injected, fault::to_string(kind));
    if (!count) return util::unexpected(count.error());
    summary.count(kind) = *count;
  }
  const std::pair<const char*, std::uint64_t fault::FailureSummary::*>
      counters[] = {
          {"fetch_attempts", &fault::FailureSummary::fetch_attempts},
          {"successful_fetches", &fault::FailureSummary::successful_fetches},
          {"failed_fetches", &fault::FailureSummary::failed_fetches},
          {"retries", &fault::FailureSummary::retries},
          {"retry_successes", &fault::FailureSummary::retry_successes},
          {"degraded_resources", &fault::FailureSummary::degraded_resources},
          {"degraded_sites", &fault::FailureSummary::degraded_sites},
          {"deadline_exceeded", &fault::FailureSummary::deadline_exceeded},
          {"pool_stale_handouts", &fault::FailureSummary::pool_stale_handouts},
          {"pool_connect_failures",
           &fault::FailureSummary::pool_connect_failures},
          {"pool_connect_abandoned",
           &fault::FailureSummary::pool_connect_abandoned},
          {"pool_dead_discards", &fault::FailureSummary::pool_dead_discards},
          {"pool_idle_evictions", &fault::FailureSummary::pool_idle_evictions},
          {"pool_cap_evictions", &fault::FailureSummary::pool_cap_evictions},
          {"pool_breaker_rejected",
           &fault::FailureSummary::pool_breaker_rejected},
          {"pool_breaker_opens", &fault::FailureSummary::pool_breaker_opens},
      };
  for (const auto& [key, member] : counters) {
    const auto count = parse_count(value, key);
    if (!count) return util::unexpected(count.error());
    summary.*member = *count;
  }
  return summary;
}

json::Value report_to_json(const AggregateReport& report,
                           const ReportJsonOptions& options) {
  const bool full = options.fidelity == Fidelity::kFull;
  const std::size_t top_n = options.top_n;
  json::Object root;
  root.set("analyzed_sites", static_cast<std::int64_t>(report.analyzed_sites));
  root.set("h2_sites", static_cast<std::int64_t>(report.h2_sites));
  root.set("redundant_sites",
           static_cast<std::int64_t>(report.redundant_sites));
  root.set("total_connections",
           static_cast<std::int64_t>(report.total_connections));
  root.set("redundant_connections",
           static_cast<std::int64_t>(report.redundant_connections));
  root.set("filtered_requests",
           static_cast<std::int64_t>(report.filtered_requests));

  // Causes: the full shape emits exactly the tallies present (lossless),
  // the truncated shape always emits the paper's three columns, zeros
  // included, so CI diffs line up across runs.
  if (full) {
    json::Object causes;
    for (const auto& [cause, tally] : report.by_cause) {
      json::Object obj;
      obj.set("sites", static_cast<std::int64_t>(tally.sites));
      obj.set("connections", static_cast<std::int64_t>(tally.connections));
      causes.set(to_string(cause), std::move(obj));
    }
    root.set("causes", std::move(causes));
  } else {
    json::Object causes;
    causes.set("CERT", cause_tally_json(report, Cause::kCert));
    causes.set("IP", cause_tally_json(report, Cause::kIp));
    causes.set("CRED", cause_tally_json(report, Cause::kCred));
    root.set("causes", std::move(causes));
  }

  // Figure 2 histogram: compact [count, sites] pairs in the full shape,
  // self-describing objects in the human-facing one.
  json::Array histogram;
  for (const auto& [count, sites] : report.redundant_per_site_histogram) {
    if (full) {
      json::Array pair;
      pair.emplace_back(static_cast<std::int64_t>(count));
      pair.emplace_back(static_cast<std::int64_t>(sites));
      histogram.emplace_back(std::move(pair));
    } else {
      json::Object bucket;
      bucket.set("redundant_connections", static_cast<std::int64_t>(count));
      bucket.set("sites", static_cast<std::int64_t>(sites));
      histogram.emplace_back(std::move(bucket));
    }
  }
  root.set("redundant_per_site", std::move(histogram));

  // Attribution tables: complete maps (full) vs top-N row arrays.
  if (full) {
    auto origin_map = [](const std::map<std::string, OriginTally>& table) {
      json::Object obj;
      for (const auto& [origin, tally] : table) {
        obj.set(origin, origin_tally_full_json(tally));
      }
      return json::Value{std::move(obj)};
    };
    root.set("ip_origins", origin_map(report.ip_origins));
    root.set("cert_domains", origin_map(report.cert_domains));

    auto issuer_map = [](const std::map<std::string, IssuerTally>& table) {
      json::Object obj;
      for (const auto& [issuer, tally] : table) {
        obj.set(issuer, domains_tally_full_json(tally));
      }
      return json::Value{std::move(obj)};
    };
    root.set("cert_issuers", issuer_map(report.cert_issuers));
    root.set("all_issuers", issuer_map(report.all_issuers));

    json::Object ases;
    for (const auto& [as_name, tally] : report.ip_ases) {
      ases.set(as_name, domains_tally_full_json(tally));
    }
    root.set("ip_ases", std::move(ases));
  } else {
    root.set("ip_origins", origin_table_json(report.ip_origins, top_n));
    root.set("cert_domains", origin_table_json(report.cert_domains, top_n));
    root.set("cert_issuers", issuer_table_json(report.cert_issuers, top_n));
    root.set("all_issuers", issuer_table_json(report.all_issuers, top_n));

    json::Array ases;
    for (const auto& [as_name, tally] : top_k(report.ip_ases, top_n)) {
      json::Object row;
      row.set("as", as_name);
      row.set("connections", static_cast<std::int64_t>(tally->connections));
      row.set("domains", static_cast<std::int64_t>(tally->domains.size()));
      ases.emplace_back(std::move(row));
    }
    root.set("ip_ases", std::move(ases));
  }

  root.set("closed_connections",
           static_cast<std::int64_t>(report.closed_connections));
  if (full) {
    root.set("closed_lifetimes_ms",
             histogram_to_json(report.closed_lifetimes_ms));
  } else if (const auto median = report.median_closed_lifetime()) {
    root.set("median_closed_lifetime_ms", static_cast<std::int64_t>(*median));
  }
  root.set("cred_same_domain_connections",
           static_cast<std::int64_t>(report.cred_same_domain_connections));

  if (full) {
    json::Object offsets;
    for (const auto& [cause, samples] : report.redundant_open_offsets) {
      offsets.set(to_string(cause), histogram_to_json(samples));
    }
    root.set("redundant_open_offsets", std::move(offsets));
  }
  return json::Value{std::move(root)};
}

util::Expected<AggregateReport> report_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return util::unexpected(util::Error{"report is not an object"});
  }
  AggregateReport report;
  {
    const std::pair<const char*, std::uint64_t AggregateReport::*>
        counters[] = {
            {"analyzed_sites", &AggregateReport::analyzed_sites},
            {"h2_sites", &AggregateReport::h2_sites},
            {"redundant_sites", &AggregateReport::redundant_sites},
            {"total_connections", &AggregateReport::total_connections},
            {"redundant_connections", &AggregateReport::redundant_connections},
            {"filtered_requests", &AggregateReport::filtered_requests},
            {"closed_connections", &AggregateReport::closed_connections},
            {"cred_same_domain_connections",
             &AggregateReport::cred_same_domain_connections},
        };
    for (const auto& [key, member] : counters) {
      const auto count = parse_count(value, key);
      if (!count) return util::unexpected(count.error());
      report.*member = *count;
    }
  }

  if (!value["causes"].is_object()) {
    return util::unexpected(util::Error{"report without causes"});
  }
  for (const auto& [name, tally] : value["causes"].as_object()) {
    const auto cause = cause_from_string(name);
    if (!cause) return util::unexpected(cause.error());
    const auto sites = parse_count(tally, "sites");
    if (!sites) return util::unexpected(sites.error());
    const auto connections = parse_count(tally, "connections");
    if (!connections) return util::unexpected(connections.error());
    report.by_cause[*cause] = CauseTally{*sites, *connections};
  }

  if (!value["redundant_per_site"].is_array()) {
    return util::unexpected(util::Error{"report without redundant_per_site"});
  }
  for (const json::Value& pair : value["redundant_per_site"].as_array()) {
    if (!pair.is_array() || pair.as_array().size() != 2 ||
        !pair.at(0).is_int() || pair.at(0).as_int() < 0 ||
        !pair.at(1).is_int() || pair.at(1).as_int() <= 0) {
      return util::unexpected(util::Error{"bad redundant_per_site bucket"});
    }
    const std::size_t bucket = static_cast<std::size_t>(pair.at(0).as_int());
    if (report.redundant_per_site_histogram.count(bucket) > 0) {
      return util::unexpected(
          util::Error{"duplicate redundant_per_site bucket"});
    }
    report.redundant_per_site_histogram[bucket] =
        static_cast<std::uint64_t>(pair.at(1).as_int());
  }

  auto parse_origin_map = [](const json::Value& table,
                             std::map<std::string, OriginTally>& out)
      -> util::Expected<bool> {
    if (!table.is_object()) {
      return util::unexpected(util::Error{"origin table is not an object"});
    }
    for (const auto& [origin, tally] : table.as_object()) {
      auto parsed = origin_tally_from_json(tally);
      if (!parsed) return util::unexpected(parsed.error());
      out[origin] = std::move(parsed.value());
    }
    return true;
  };
  if (const auto ok = parse_origin_map(value["ip_origins"],
                                       report.ip_origins);
      !ok) {
    return util::unexpected(ok.error());
  }
  if (const auto ok = parse_origin_map(value["cert_domains"],
                                       report.cert_domains);
      !ok) {
    return util::unexpected(ok.error());
  }

  auto parse_issuer_map = [](const json::Value& table,
                             std::map<std::string, IssuerTally>& out)
      -> util::Expected<bool> {
    if (!table.is_object()) {
      return util::unexpected(util::Error{"issuer table is not an object"});
    }
    for (const auto& [issuer, tally] : table.as_object()) {
      auto parsed = domains_tally_from_json<IssuerTally>(tally);
      if (!parsed) return util::unexpected(parsed.error());
      out[issuer] = std::move(parsed.value());
    }
    return true;
  };
  if (const auto ok = parse_issuer_map(value["cert_issuers"],
                                       report.cert_issuers);
      !ok) {
    return util::unexpected(ok.error());
  }
  if (const auto ok = parse_issuer_map(value["all_issuers"],
                                       report.all_issuers);
      !ok) {
    return util::unexpected(ok.error());
  }

  if (!value["ip_ases"].is_object()) {
    return util::unexpected(util::Error{"report without ip_ases"});
  }
  for (const auto& [as_name, tally] : value["ip_ases"].as_object()) {
    auto parsed = domains_tally_from_json<AsTally>(tally);
    if (!parsed) return util::unexpected(parsed.error());
    report.ip_ases[as_name] = std::move(parsed.value());
  }

  auto lifetimes = histogram_from_json(value["closed_lifetimes_ms"]);
  if (!lifetimes) return util::unexpected(lifetimes.error());
  report.closed_lifetimes_ms = std::move(lifetimes.value());

  if (!value["redundant_open_offsets"].is_object()) {
    return util::unexpected(
        util::Error{"report without redundant_open_offsets"});
  }
  for (const auto& [name, samples] :
       value["redundant_open_offsets"].as_object()) {
    const auto cause = cause_from_string(name);
    if (!cause) return util::unexpected(cause.error());
    auto histogram = histogram_from_json(samples);
    if (!histogram) return util::unexpected(histogram.error());
    report.redundant_open_offsets[*cause] = std::move(histogram.value());
  }
  return report;
}

json::Value to_json(const SiteClassification& classification) {
  json::Object root;
  root.set("site", classification.site_url);
  root.set("total_connections",
           static_cast<std::int64_t>(classification.total_connections));
  root.set("redundant_connections",
           static_cast<std::int64_t>(classification.redundant_connections()));
  json::Array findings;
  for (const ConnectionFinding& finding : classification.findings) {
    json::Object item;
    item.set("connection_index",
             static_cast<std::int64_t>(finding.connection_index));
    json::Array causes;
    for (Cause cause : finding.causes) causes.emplace_back(to_string(cause));
    item.set("causes", std::move(causes));
    json::Object prevs;
    for (const auto& [cause, domains] : finding.reusable_previous_domains) {
      json::Array list;
      for (const std::string& domain : domains) list.emplace_back(domain);
      prevs.set(to_string(cause), std::move(list));
    }
    item.set("reusable_previous", std::move(prevs));
    findings.emplace_back(std::move(item));
  }
  root.set("findings", std::move(findings));
  if (!classification.recovered.empty()) {
    root.set("recovered_connections",
             static_cast<std::int64_t>(classification.recovered.size()));
    json::Array recovered;
    for (const RecoveredConnection& rec : classification.recovered) {
      json::Object item;
      item.set("connection_index",
               static_cast<std::int64_t>(rec.connection_index));
      item.set("reused_connection_index",
               static_cast<std::int64_t>(rec.reused_connection_index));
      item.set("operator", rec.operator_name);
      recovered.emplace_back(std::move(item));
    }
    root.set("recovered", std::move(recovered));
  }
  return json::Value{std::move(root)};
}

json::Value to_json(const PolicyTally& tally) {
  json::Object root;
  root.set("sites", static_cast<std::int64_t>(tally.sites));
  root.set("baseline_connections",
           static_cast<std::int64_t>(tally.baseline_connections));
  root.set("baseline_redundant",
           static_cast<std::int64_t>(tally.baseline_redundant));
  root.set("recovered", static_cast<std::int64_t>(tally.recovered));
  root.set("remaining_redundant",
           static_cast<std::int64_t>(tally.remaining_redundant));
  json::Object by_cause;
  for (const auto& [cause, count] : tally.remaining_by_cause) {
    by_cause.set(to_string(cause), static_cast<std::int64_t>(count));
  }
  root.set("remaining_by_cause", std::move(by_cause));
  json::Object by_operator;
  for (const auto& [name, count] : tally.recovered_by_operator) {
    by_operator.set(name, static_cast<std::int64_t>(count));
  }
  root.set("recovered_by_operator", std::move(by_operator));
  return json::Value{std::move(root)};
}

util::Expected<PolicyTally> policy_tally_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return util::unexpected(util::Error{"policy tally must be an object"});
  }
  PolicyTally tally;
  for (const auto& [field, dst] :
       std::initializer_list<std::pair<const char*, std::uint64_t*>>{
           {"sites", &tally.sites},
           {"baseline_connections", &tally.baseline_connections},
           {"baseline_redundant", &tally.baseline_redundant},
           {"recovered", &tally.recovered},
           {"remaining_redundant", &tally.remaining_redundant}}) {
    const json::Value& v = value[field];
    if (!v.is_int() || v.as_int() < 0) {
      return util::unexpected(
          util::Error{std::string("policy tally field '") + field +
                      "' must be a non-negative integer"});
    }
    *dst = static_cast<std::uint64_t>(v.as_int());
  }
  const json::Value& by_cause = value["remaining_by_cause"];
  if (!by_cause.is_object()) {
    return util::unexpected(
        util::Error{"policy tally without remaining_by_cause"});
  }
  for (const auto& [name, count] : by_cause.as_object()) {
    auto cause = cause_from_string(name);
    if (!cause) return util::unexpected(cause.error());
    if (!count.is_int() || count.as_int() < 0) {
      return util::unexpected(util::Error{"bad policy tally cause count"});
    }
    tally.remaining_by_cause[*cause] =
        static_cast<std::uint64_t>(count.as_int());
  }
  const json::Value& by_operator = value["recovered_by_operator"];
  if (!by_operator.is_object()) {
    return util::unexpected(
        util::Error{"policy tally without recovered_by_operator"});
  }
  for (const auto& [name, count] : by_operator.as_object()) {
    if (!count.is_int() || count.as_int() < 0) {
      return util::unexpected(util::Error{"bad policy tally operator count"});
    }
    tally.recovered_by_operator[name] =
        static_cast<std::uint64_t>(count.as_int());
  }
  return tally;
}

json::Value to_json(const AuditReport& report) {
  json::Object root;
  root.set("site", report.site_url);
  root.set("total_connections",
           static_cast<std::int64_t>(report.total_connections));
  root.set("redundant_connections",
           static_cast<std::int64_t>(report.redundant_connections));
  root.set("non_ip_redundant",
           static_cast<std::int64_t>(report.non_ip_redundant));
  if (!report.remaining_redundant.empty()) {
    json::Object remaining;
    for (const auto& [kind, count] : report.remaining_redundant) {
      remaining.set(std::string(remedy_slug(kind)),
                    static_cast<std::int64_t>(count));
    }
    root.set("remaining_redundant", std::move(remaining));
  }
  json::Array advice;
  for (const Advice& item : report.advice) {
    json::Object obj;
    obj.set("cause", to_string(item.cause));
    obj.set("remedy", to_string(item.remedy));
    obj.set("domain", item.domain);
    obj.set("reusable_domain", item.reusable_domain);
    obj.set("connections", static_cast<std::int64_t>(item.connections));
    obj.set("recovered", static_cast<std::int64_t>(item.recovered));
    obj.set("message", item.message);
    advice.emplace_back(std::move(obj));
  }
  root.set("advice", std::move(advice));
  return json::Value{std::move(root)};
}

json::Value to_json(const fault::FailureSummary& summary) {
  json::Object injected;
  for (std::size_t i = 0; i < fault::kFaultKindCount; ++i) {
    const fault::FaultKind kind = static_cast<fault::FaultKind>(i);
    injected.set(fault::to_string(kind),
                 static_cast<std::int64_t>(summary.count(kind)));
  }
  json::Object root;
  root.set("injected", std::move(injected));
  root.set("fetch_attempts",
           static_cast<std::int64_t>(summary.fetch_attempts));
  root.set("successful_fetches",
           static_cast<std::int64_t>(summary.successful_fetches));
  root.set("failed_fetches",
           static_cast<std::int64_t>(summary.failed_fetches));
  root.set("retries", static_cast<std::int64_t>(summary.retries));
  root.set("retry_successes",
           static_cast<std::int64_t>(summary.retry_successes));
  root.set("degraded_resources",
           static_cast<std::int64_t>(summary.degraded_resources));
  root.set("degraded_sites",
           static_cast<std::int64_t>(summary.degraded_sites));
  root.set("deadline_exceeded",
           static_cast<std::int64_t>(summary.deadline_exceeded));
  root.set("pool_stale_handouts",
           static_cast<std::int64_t>(summary.pool_stale_handouts));
  root.set("pool_connect_failures",
           static_cast<std::int64_t>(summary.pool_connect_failures));
  root.set("pool_connect_abandoned",
           static_cast<std::int64_t>(summary.pool_connect_abandoned));
  root.set("pool_dead_discards",
           static_cast<std::int64_t>(summary.pool_dead_discards));
  root.set("pool_idle_evictions",
           static_cast<std::int64_t>(summary.pool_idle_evictions));
  root.set("pool_cap_evictions",
           static_cast<std::int64_t>(summary.pool_cap_evictions));
  root.set("pool_breaker_rejected",
           static_cast<std::int64_t>(summary.pool_breaker_rejected));
  root.set("pool_breaker_opens",
           static_cast<std::int64_t>(summary.pool_breaker_opens));
  return json::Value{std::move(root)};
}

}  // namespace h2r::core
