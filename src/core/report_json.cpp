#include "core/report_json.hpp"

namespace h2r::core {

namespace {

json::Value cause_tally_json(const AggregateReport& report, Cause cause) {
  json::Object obj;
  const auto it = report.by_cause.find(cause);
  obj.set("sites", it == report.by_cause.end()
                       ? std::int64_t{0}
                       : static_cast<std::int64_t>(it->second.sites));
  obj.set("connections",
          it == report.by_cause.end()
              ? std::int64_t{0}
              : static_cast<std::int64_t>(it->second.connections));
  return json::Value{std::move(obj)};
}

json::Value origin_table_json(const std::map<std::string, OriginTally>& table,
                              std::size_t top_n) {
  json::Array rows;
  for (const auto& [origin, tally] : top_k(table, top_n)) {
    json::Object row;
    row.set("origin", origin);
    row.set("connections", static_cast<std::int64_t>(tally->connections));
    if (!tally->issuer.empty()) row.set("issuer", tally->issuer);
    if (const auto prev = top_previous(*tally)) {
      json::Object prev_obj;
      prev_obj.set("origin", prev->first);
      prev_obj.set("connections", static_cast<std::int64_t>(prev->second));
      row.set("top_previous", std::move(prev_obj));
    }
    rows.emplace_back(std::move(row));
  }
  return json::Value{std::move(rows)};
}

json::Value issuer_table_json(const std::map<std::string, IssuerTally>& table,
                              std::size_t top_n) {
  json::Array rows;
  for (const auto& [issuer, tally] : top_k(table, top_n)) {
    json::Object row;
    row.set("issuer", issuer);
    row.set("connections", static_cast<std::int64_t>(tally->connections));
    row.set("domains", static_cast<std::int64_t>(tally->domains.size()));
    rows.emplace_back(std::move(row));
  }
  return json::Value{std::move(rows)};
}

}  // namespace

json::Value to_json(const AggregateReport& report, std::size_t top_n) {
  json::Object root;
  root.set("analyzed_sites", static_cast<std::int64_t>(report.analyzed_sites));
  root.set("h2_sites", static_cast<std::int64_t>(report.h2_sites));
  root.set("redundant_sites",
           static_cast<std::int64_t>(report.redundant_sites));
  root.set("total_connections",
           static_cast<std::int64_t>(report.total_connections));
  root.set("redundant_connections",
           static_cast<std::int64_t>(report.redundant_connections));
  root.set("filtered_requests",
           static_cast<std::int64_t>(report.filtered_requests));

  json::Object causes;
  causes.set("CERT", cause_tally_json(report, Cause::kCert));
  causes.set("IP", cause_tally_json(report, Cause::kIp));
  causes.set("CRED", cause_tally_json(report, Cause::kCred));
  root.set("causes", std::move(causes));

  json::Array histogram;
  for (const auto& [count, sites] : report.redundant_per_site_histogram) {
    json::Object bucket;
    bucket.set("redundant_connections", static_cast<std::int64_t>(count));
    bucket.set("sites", static_cast<std::int64_t>(sites));
    histogram.emplace_back(std::move(bucket));
  }
  root.set("redundant_per_site", std::move(histogram));

  root.set("ip_origins", origin_table_json(report.ip_origins, top_n));
  root.set("cert_domains", origin_table_json(report.cert_domains, top_n));
  root.set("cert_issuers", issuer_table_json(report.cert_issuers, top_n));
  root.set("all_issuers", issuer_table_json(report.all_issuers, top_n));

  json::Array ases;
  for (const auto& [as_name, tally] : top_k(report.ip_ases, top_n)) {
    json::Object row;
    row.set("as", as_name);
    row.set("connections", static_cast<std::int64_t>(tally->connections));
    row.set("domains", static_cast<std::int64_t>(tally->domains.size()));
    ases.emplace_back(std::move(row));
  }
  root.set("ip_ases", std::move(ases));

  root.set("closed_connections",
           static_cast<std::int64_t>(report.closed_connections));
  if (const auto median = report.median_closed_lifetime()) {
    root.set("median_closed_lifetime_ms", static_cast<std::int64_t>(*median));
  }
  root.set("cred_same_domain_connections",
           static_cast<std::int64_t>(report.cred_same_domain_connections));
  return json::Value{std::move(root)};
}

json::Value to_json(const SiteClassification& classification) {
  json::Object root;
  root.set("site", classification.site_url);
  root.set("total_connections",
           static_cast<std::int64_t>(classification.total_connections));
  root.set("redundant_connections",
           static_cast<std::int64_t>(classification.redundant_connections()));
  json::Array findings;
  for (const ConnectionFinding& finding : classification.findings) {
    json::Object item;
    item.set("connection_index",
             static_cast<std::int64_t>(finding.connection_index));
    json::Array causes;
    for (Cause cause : finding.causes) causes.emplace_back(to_string(cause));
    item.set("causes", std::move(causes));
    json::Object prevs;
    for (const auto& [cause, domains] : finding.reusable_previous_domains) {
      json::Array list;
      for (const std::string& domain : domains) list.emplace_back(domain);
      prevs.set(to_string(cause), std::move(list));
    }
    item.set("reusable_previous", std::move(prevs));
    findings.emplace_back(std::move(item));
  }
  root.set("findings", std::move(findings));
  return json::Value{std::move(root)};
}

json::Value to_json(const AuditReport& report) {
  json::Object root;
  root.set("site", report.site_url);
  root.set("total_connections",
           static_cast<std::int64_t>(report.total_connections));
  root.set("redundant_connections",
           static_cast<std::int64_t>(report.redundant_connections));
  root.set("non_ip_redundant",
           static_cast<std::int64_t>(report.non_ip_redundant));
  json::Array advice;
  for (const Advice& item : report.advice) {
    json::Object obj;
    obj.set("cause", to_string(item.cause));
    obj.set("remedy", to_string(item.remedy));
    obj.set("domain", item.domain);
    obj.set("reusable_domain", item.reusable_domain);
    obj.set("connections", static_cast<std::int64_t>(item.connections));
    obj.set("message", item.message);
    advice.emplace_back(std::move(obj));
  }
  root.set("advice", std::move(advice));
  return json::Value{std::move(root)};
}

json::Value to_json(const fault::FailureSummary& summary) {
  json::Object injected;
  for (std::size_t i = 0; i < fault::kFaultKindCount; ++i) {
    const fault::FaultKind kind = static_cast<fault::FaultKind>(i);
    injected.set(fault::to_string(kind),
                 static_cast<std::int64_t>(summary.count(kind)));
  }
  json::Object root;
  root.set("injected", std::move(injected));
  root.set("fetch_attempts",
           static_cast<std::int64_t>(summary.fetch_attempts));
  root.set("successful_fetches",
           static_cast<std::int64_t>(summary.successful_fetches));
  root.set("failed_fetches",
           static_cast<std::int64_t>(summary.failed_fetches));
  root.set("retries", static_cast<std::int64_t>(summary.retries));
  root.set("retry_successes",
           static_cast<std::int64_t>(summary.retry_successes));
  root.set("degraded_resources",
           static_cast<std::int64_t>(summary.degraded_resources));
  root.set("degraded_sites",
           static_cast<std::int64_t>(summary.degraded_sites));
  return json::Value{std::move(root)};
}

}  // namespace h2r::core
