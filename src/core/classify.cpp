#include "core/classify.hpp"

#include <algorithm>
#include <cassert>

#include "tls/certificate.hpp"
#include "util/strings.hpp"

namespace h2r::core {

bool ConnectionRecord::certificate_covers(
    std::string_view host) const noexcept {
  if (!has_certificate) return false;
  for (const std::string& san : san_dns_names) {
    if (tls::matches_dns_name(san, host)) return true;
  }
  return false;
}

bool ConnectionRecord::excludes(std::string_view host) const noexcept {
  const std::string needle = util::to_lower(host);
  for (const std::string& d : excluded_domains) {
    if (d == needle) return true;
  }
  if (origin_set.has_value()) {
    for (const std::string& d : *origin_set) {
      if (d == needle) return false;
    }
    return true;  // origin set announced and host not in it
  }
  return false;
}

util::SimTime ConnectionRecord::first_request_time() const noexcept {
  if (requests.empty()) return opened_at;
  util::SimTime t = requests.front().started_at;
  for (const RequestRecord& r : requests) t = std::min(t, r.started_at);
  return t;
}

util::SimTime ConnectionRecord::last_request_end() const noexcept {
  util::SimTime t = opened_at;
  for (const RequestRecord& r : requests) {
    t = std::max(t, std::max(r.started_at, r.finished_at));
  }
  return t;
}

std::string to_string(DurationModel model) {
  switch (model) {
    case DurationModel::kEndless: return "endless";
    case DurationModel::kImmediate: return "immediate";
    case DurationModel::kExact: return "exact";
  }
  return "?";
}

Interval availability(const ConnectionRecord& conn,
                      DurationModel model) noexcept {
  switch (model) {
    case DurationModel::kEndless:
      return {conn.opened_at, util::kSimTimeMax};
    case DurationModel::kImmediate:
      // Closed right after the last request finished. The half-open end
      // (+1) keeps a connection usable at the exact instant its last
      // request ends.
      return {conn.opened_at, conn.last_request_end() + 1};
    case DurationModel::kExact:
      return {conn.opened_at,
              conn.closed_at.has_value() ? *conn.closed_at
                                         : util::kSimTimeMax};
  }
  return {};
}

std::string to_string(Cause cause) {
  switch (cause) {
    case Cause::kCert: return "CERT";
    case Cause::kIp: return "IP";
    case Cause::kCred: return "CRED";
  }
  return "?";
}

bool SiteClassification::has_cause(Cause cause) const noexcept {
  return std::any_of(findings.begin(), findings.end(),
                     [cause](const ConnectionFinding& f) {
                       return f.causes.count(cause) > 0;
                     });
}

std::size_t SiteClassification::count_cause(Cause cause) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [cause](const ConnectionFinding& f) {
                      return f.causes.count(cause) > 0;
                    }));
}

SiteClassification classify_site(const SiteObservation& site,
                                 const ClassifyOptions& options) {
  SiteClassification result;
  result.site_url = site.site_url;
  result.total_connections = site.connections.size();

  const auto& conns = site.connections;
  for (std::size_t i = 1; i < conns.size(); ++i) {
    assert(conns[i].opened_at >= conns[i - 1].opened_at &&
           "connections must be sorted by open time");
  }

  for (std::size_t i = 0; i < conns.size(); ++i) {
    const ConnectionRecord& current = conns[i];
    const std::string domain = util::to_lower(current.initial_domain);

    ConnectionFinding finding;
    finding.connection_index = i;

    for (std::size_t j = 0; j < i; ++j) {
      const ConnectionRecord& prev = conns[j];
      // The previous connection must have been available when `current`
      // was opened.
      if (!availability(prev, options.duration).contains(current.opened_at)) {
        continue;
      }
      // Explicitly excluded domains are ignored (§4.1).
      if (prev.excludes(domain)) continue;

      const bool same_endpoint = prev.endpoint == current.endpoint;
      const bool covers = prev.certificate_covers(domain);
      const bool same_initial_domain =
          util::to_lower(prev.initial_domain) == domain;

      if (same_endpoint) {
        if (covers) {
          finding.causes.insert(Cause::kCred);
          finding.reusable_previous_domains[Cause::kCred].insert(
              util::to_lower(prev.initial_domain));
        } else {
          finding.causes.insert(Cause::kCert);
          finding.reusable_previous_domains[Cause::kCert].insert(
              util::to_lower(prev.initial_domain));
        }
      } else if (same_initial_domain) {
        // Corner case (§4.1): same initial domain on different IPs only
        // happens when CRED forbids reuse and DNS announces several IPs.
        finding.causes.insert(Cause::kCred);
        finding.reusable_previous_domains[Cause::kCred].insert(
            util::to_lower(prev.initial_domain));
      } else if (covers) {
        finding.causes.insert(Cause::kIp);
        finding.reusable_previous_domains[Cause::kIp].insert(
            util::to_lower(prev.initial_domain));
      }
      // No match: `prev` could not have served this request — an unknown
      // third party relative to `prev`.
    }

    if (!finding.causes.empty()) {
      result.findings.push_back(std::move(finding));
    }
  }
  return result;
}

}  // namespace h2r::core
