#include "core/classify.hpp"

#include <algorithm>
#include <cassert>

#include "tls/certificate.hpp"
#include "util/strings.hpp"

namespace h2r::core {

bool ConnectionRecord::certificate_covers(
    std::string_view host) const noexcept {
  if (!has_certificate) return false;
  for (const std::string& san : san_dns_names) {
    if (tls::matches_dns_name(san, host)) return true;
  }
  return false;
}

bool ConnectionRecord::excludes(std::string_view host) const noexcept {
  const std::string needle = util::to_lower(host);
  for (const std::string& d : excluded_domains) {
    if (d == needle) return true;
  }
  if (origin_set.has_value()) {
    for (const std::string& d : *origin_set) {
      if (d == needle) return false;
    }
    return true;  // origin set announced and host not in it
  }
  return false;
}

util::SimTime ConnectionRecord::first_request_time() const noexcept {
  if (requests.empty()) return opened_at;
  util::SimTime t = requests.front().started_at;
  for (const RequestRecord& r : requests) t = std::min(t, r.started_at);
  return t;
}

util::SimTime ConnectionRecord::last_request_end() const noexcept {
  util::SimTime t = opened_at;
  for (const RequestRecord& r : requests) {
    t = std::max(t, std::max(r.started_at, r.finished_at));
  }
  return t;
}

std::string to_string(DurationModel model) {
  switch (model) {
    case DurationModel::kEndless: return "endless";
    case DurationModel::kImmediate: return "immediate";
    case DurationModel::kExact: return "exact";
  }
  return "?";
}

Interval availability(const ConnectionRecord& conn,
                      DurationModel model) noexcept {
  switch (model) {
    case DurationModel::kEndless:
      return {conn.opened_at, util::kSimTimeMax};
    case DurationModel::kImmediate:
      // Closed right after the last request finished. The half-open end
      // (+1) keeps a connection usable at the exact instant its last
      // request ends.
      return {conn.opened_at, conn.last_request_end() + 1};
    case DurationModel::kExact:
      return {conn.opened_at,
              conn.closed_at.has_value() ? *conn.closed_at
                                         : util::kSimTimeMax};
  }
  return {};
}

std::string to_string(Cause cause) {
  switch (cause) {
    case Cause::kCert: return "CERT";
    case Cause::kIp: return "IP";
    case Cause::kCred: return "CRED";
  }
  return "?";
}

bool SiteClassification::has_cause(Cause cause) const noexcept {
  return std::any_of(findings.begin(), findings.end(),
                     [cause](const ConnectionFinding& f) {
                       return f.causes.count(cause) > 0;
                     });
}

std::size_t SiteClassification::count_cause(Cause cause) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [cause](const ConnectionFinding& f) {
                      return f.causes.count(cause) > 0;
                    }));
}

ClassifyContext::ClassifyContext(bool use_arena)
    : arena_(use_arena ? std::make_unique<util::Arena>() : nullptr) {}

// h2r-lint: hotpath -- runs once per site per worker; the arena reset +
// SoA rebuild here is the 2.2x win the allocation rule guards
void ClassifyContext::prepare(const SiteObservation& site) {
  site_ = &site;
  // Site-scoped scratch dies here; the table is rebuilt on the rewound
  // arena. (With the arena off the columns free/reallocate on the heap —
  // slower, identical values.)
  table_.reset();
  if (arena_ != nullptr) arena_->reset();
  // Workers live for millions of sites: cap the interner so unique
  // per-site domains cannot grow it without bound. Ids never escape the
  // context, so the reset is invisible to results.
  if (interner_.pool_bytes() > (1u << 22) || interner_.size() > (1u << 18)) {
    interner_.clear();
  }
  table_.emplace(arena_.get());
  table_->build(site, interner_);
}

SiteClassification ClassifyContext::classify(const Policy& policy) {
  assert(site_ != nullptr && "prepare() must run before classify()");
  if (policy.counterfactual() || policy.horizon != util::kSimTimeMax) {
    return classify_replay(policy);
  }
  const ConnectionTable& table = *table_;
  const std::size_t n = table.size();
  const std::size_t ndom = table.distinct_domains();

  SiteClassification result;
  result.site_url = site_->site_url;
  result.total_connections = n;

  // Availability end per connection under this duration model — the only
  // model-dependent column, O(n) per sweep.
  avail_end_.assign(n, util::kSimTimeMax);
  switch (policy.duration) {
    case DurationModel::kEndless:
      break;
    case DurationModel::kImmediate:
      // Closed right after the last request finished; the half-open end
      // (+1) keeps a connection usable at that exact instant.
      for (std::size_t j = 0; j < n; ++j) {
        avail_end_[j] = table.last_request_end[j] + 1;
      }
      break;
    case DurationModel::kExact:
      for (std::size_t j = 0; j < n; ++j) {
        avail_end_[j] = table.closed_or_max[j];
      }
      break;
  }

  marks_.assign(3 * ndom, 0);
  generation_ = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t dom_i = table.domain[i];
    const std::uint32_t local_i = table.local_domain[i];
    const std::uint32_t ep_i = table.endpoint[i];
    const util::SimTime opened_i = table.opened[i];

    ++generation_;
    touched_.clear();
    std::set<Cause> causes;

    for (std::size_t j = 0; j < i; ++j) {
      // The previous connection must have been available when `i` was
      // opened (open order makes opened[j] <= opened_i; the lower bound
      // is kept for hand-built, unsorted observations in release mode).
      if (opened_i >= avail_end_[j] || opened_i < table.opened[j]) continue;
      // Explicitly excluded domains are ignored (§4.1).
      if (table.excludes_domain(j, local_i)) continue;

      const bool same_endpoint = table.endpoint[j] == ep_i;
      const bool covers = table.covers_domain(j, local_i);
      const bool same_initial_domain = table.domain[j] == dom_i;

      Cause cause;
      if (same_endpoint) {
        cause = covers ? Cause::kCred : Cause::kCert;
      } else if (same_initial_domain) {
        // Corner case (§4.1): same initial domain on different IPs only
        // happens when CRED forbids reuse and DNS announces several IPs.
        cause = Cause::kCred;
      } else if (covers) {
        cause = Cause::kIp;
      } else {
        // No match: `j` could not have served this request — an unknown
        // third party relative to `j`.
        continue;
      }
      causes.insert(cause);
      const std::uint32_t mark = static_cast<std::uint32_t>(
          static_cast<std::size_t>(cause) * ndom + table.local_domain[j]);
      if (marks_[mark] != generation_) {
        marks_[mark] = generation_;
        touched_.push_back(mark);
      }
    }

    if (!causes.empty()) {
      ConnectionFinding finding;
      finding.connection_index = i;
      finding.causes = std::move(causes);
      // Materialize interned ids back into strings here and only here:
      // findings (and everything serialized from them) carry the domain
      // text, so per-worker id spaces never leak into output.
      for (const std::uint32_t mark : touched_) {
        const Cause cause = static_cast<Cause>(mark / ndom);
        const std::uint32_t dom = table.domains[mark % ndom];
        finding.reusable_previous_domains[cause].insert(
            std::string(interner_.str(dom)));
      }
      result.findings.push_back(std::move(finding));
    }
  }
  return result;
}

// The counterfactual replay (DESIGN §14). Phase 1 re-runs the browser's
// session-acquisition decisions under the policy knobs: a connection the
// counterfactual browser could have served from an existing session is
// *recovered* (absorbed into that survivor, extending the survivor's idle
// window). Phase 2 re-classifies the survivors with the paper's pair
// sweep, with each survivor's endpoint/certificate/vhost columns remapped
// to the slot the counterfactual address rotation would have given it.
// A horizon policy additionally truncates the observation as if
// measurement stopped at the horizon.
SiteClassification ClassifyContext::classify_replay(const Policy& policy) {
  constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  const ConnectionTable& table = *table_;
  const std::size_t n = table.size();
  const std::size_t ndom = table.distinct_domains();
  const bool horizoned = policy.horizon != util::kSimTimeMax;

  // Visible prefix under the horizon (connections are in open order).
  std::size_t n_vis = n;
  if (horizoned) {
    n_vis = 0;
    while (n_vis < n && table.opened[n_vis] < policy.horizon) ++n_vis;
  }

  SiteClassification result;
  result.site_url = site_->site_url;
  // Set after phase 1: the connections the counterfactual browser still
  // opens (visible minus recovered).
  result.total_connections = n_vis;

  // Horizon-adjusted last activity and idle gap. The gap (close minus
  // last request end) is the server/browser idle timeout in effect for
  // that connection; the replay re-applies it after a survivor absorbs
  // extra traffic.
  cf_last_.assign(n_vis, 0);
  idle_gap_.assign(n_vis, util::kSimTimeMax);
  for (std::size_t j = 0; j < n_vis; ++j) {
    util::SimTime last = table.last_request_end[j];
    util::SimTime closed = table.closed_or_max[j];
    if (horizoned) {
      if (closed != util::kSimTimeMax && closed > policy.horizon) {
        closed = util::kSimTimeMax;  // closed after measurement end
      }
      const ConnectionRecord& c = site_->connections[j];
      last = c.opened_at;
      for (const RequestRecord& r : c.requests) {
        if (r.started_at >= policy.horizon) continue;
        last = std::max(last, std::max(r.started_at, r.finished_at));
      }
    }
    cf_last_[j] = last;
    if (closed != util::kSimTimeMax) {
      idle_gap_[j] = closed > last ? closed - last : 0;
    }
  }

  const auto avail_gap = [&policy](util::SimTime last, util::SimTime gap) {
    switch (policy.duration) {
      case DurationModel::kEndless:
        return util::kSimTimeMax;
      case DurationModel::kImmediate:
        return last + 1;
      case DurationModel::kExact:
        return gap == util::kSimTimeMax ? util::kSimTimeMax : last + gap;
    }
    return util::kSimTimeMax;
  };

  // Effective operator key: the recorded operator when known, else the
  // base domain — HAR records carry no operator, so same-eTLD+1 stands in.
  const auto op_key = [&table](std::size_t j) {
    return table.operator_id[j] != ConnectionTable::kNoOperator
               ? table.operator_id[j]
               : table.base_domain[j];
  };

  // Baseline connection indices per distinct domain, in open order: the
  // counterfactual browser rotates resolver addresses by per-host
  // creation count, so the m-th *surviving* connection of a host takes
  // the endpoint/certificate/vhost/operator/idle-gap columns of the m-th
  // *baseline* connection of that host.
  std::vector<std::vector<std::uint32_t>> by_domain(ndom);
  for (std::size_t j = 0; j < n_vis; ++j) {
    by_domain[table.local_domain[j]].push_back(static_cast<std::uint32_t>(j));
  }
  std::vector<std::uint32_t> next_slot(ndom, 0);

  // Exclusion under the policy: with ORIGIN frames deployed the origin
  // set IS the vhost list, so reuse is refused exactly for domains the
  // server does not serve; otherwise the baseline 421/ORIGIN knowledge
  // applies. `rj` is the candidate's remapped (column) index.
  const auto excluded_for = [&](std::size_t rj, std::uint32_t local_i) {
    if (policy.origin_frame && table.has_served[rj] != 0) {
      return !table.serves_domain(rj, local_i);
    }
    return table.excludes_domain(rj, local_i);
  };

  // ---- Phase 1: replay session acquisition, newest candidate first.
  recovered_into_.assign(n_vis, kNone);
  remap_.assign(n_vis, 0);
  cf_end_.assign(n_vis, 0);
  const std::uint8_t mask = policy.mask();
  for (std::size_t i = 0; i < n_vis; ++i) {
    const std::uint32_t dom_i = table.domain[i];
    const std::uint32_t local_i = table.local_domain[i];
    const util::SimTime opened_i = table.opened[i];
    const std::uint8_t priv_i = table.privacy[i];
    // The slot this connection would occupy if it survives: its endpoint
    // and operator in the counterfactual world.
    const std::uint32_t slot_i = by_domain[local_i][next_slot[local_i]];
    const std::uint32_t ep_i = table.endpoint[slot_i];
    const std::uint32_t opkey_i = op_key(slot_i);

    std::size_t best = kNone;
    if (mask != 0) {
      // Pass 0: the host's own pool (group reuse — no certificate check,
      // like the browser's session-group table). Pass 1: same endpoint
      // (alias/IP pooling). Pass 2: the policy's cross-IP paths.
      for (int pass = 0; pass < 3 && best == kNone; ++pass) {
        for (std::size_t j = i; j-- > 0;) {
          if (recovered_into_[j] != kNone) continue;
          if (opened_i >= cf_end_[j] || opened_i < table.opened[j]) continue;
          const std::size_t rj = remap_[j];
          if (excluded_for(rj, local_i)) continue;
          if (!policy.ignore_credentials && table.privacy[j] != priv_i) {
            continue;
          }
          const bool covers2 =
              table.covers_domain(rj, local_i) ||
              (policy.cert_consolidation && op_key(rj) == opkey_i);
          bool match = false;
          switch (pass) {
            case 0:
              match = table.domain[j] == dom_i;
              break;
            case 1:
              match = table.endpoint[rj] == ep_i && covers2;
              break;
            case 2:
              if (policy.origin_frame && table.has_served[rj] != 0 &&
                  table.serves_domain(rj, local_i) && covers2) {
                match = true;
              } else if (policy.sync_dns && covers2 &&
                         (table.has_served[rj] == 0 ||
                          table.serves_domain(rj, local_i))) {
                match = true;
              }
              break;
          }
          if (match) {
            best = j;
            break;
          }
        }
      }
    }

    if (best != kNone) {
      recovered_into_[i] = static_cast<std::uint32_t>(best);
      // The survivor absorbs this connection's traffic; its idle close
      // moves out accordingly.
      cf_last_[best] = std::max(cf_last_[best], cf_last_[i]);
      cf_end_[best] = avail_gap(cf_last_[best], idle_gap_[remap_[best]]);
      RecoveredConnection rec;
      rec.connection_index = i;
      rec.reused_connection_index = best;
      std::uint32_t credit = table.operator_id[slot_i];
      if (credit == ConnectionTable::kNoOperator) {
        credit = table.operator_id[remap_[best]];
      }
      if (credit == ConnectionTable::kNoOperator) {
        credit = table.base_domain[i];
      }
      rec.operator_name = std::string(interner_.str(credit));
      result.recovered.push_back(std::move(rec));
    } else {
      remap_[i] = slot_i;
      ++next_slot[local_i];
      cf_end_[i] = avail_gap(cf_last_[i], idle_gap_[slot_i]);
    }
  }

  result.total_connections = n_vis - result.recovered.size();

  // ---- Phase 2: the paper's pair sweep over the survivors, with
  // remapped columns and the policy's exclusion semantics.
  marks_.assign(3 * ndom, 0);
  generation_ = 0;
  for (std::size_t i = 0; i < n_vis; ++i) {
    if (recovered_into_[i] != kNone) continue;
    const std::size_t ri = remap_[i];
    const std::uint32_t dom_i = table.domain[i];
    const std::uint32_t local_i = table.local_domain[i];
    const std::uint32_t ep_i = table.endpoint[ri];
    const std::uint32_t opkey_i = op_key(ri);
    const util::SimTime opened_i = table.opened[i];

    ++generation_;
    touched_.clear();
    std::set<Cause> causes;

    for (std::size_t j = 0; j < i; ++j) {
      if (recovered_into_[j] != kNone) continue;
      if (opened_i >= cf_end_[j] || opened_i < table.opened[j]) continue;
      const std::size_t rj = remap_[j];
      if (excluded_for(rj, local_i)) continue;

      const bool same_endpoint = table.endpoint[rj] == ep_i;
      const bool covers = table.covers_domain(rj, local_i) ||
                          (policy.cert_consolidation && op_key(rj) == opkey_i);
      const bool same_initial_domain = table.domain[j] == dom_i;

      Cause cause;
      if (same_endpoint) {
        cause = covers ? Cause::kCred : Cause::kCert;
      } else if (same_initial_domain) {
        cause = Cause::kCred;
      } else if (covers) {
        cause = Cause::kIp;
      } else {
        continue;
      }
      causes.insert(cause);
      const std::uint32_t mark = static_cast<std::uint32_t>(
          static_cast<std::size_t>(cause) * ndom + table.local_domain[j]);
      if (marks_[mark] != generation_) {
        marks_[mark] = generation_;
        touched_.push_back(mark);
      }
    }

    if (!causes.empty()) {
      ConnectionFinding finding;
      finding.connection_index = i;
      finding.causes = std::move(causes);
      for (const std::uint32_t mark : touched_) {
        const Cause cause = static_cast<Cause>(mark / ndom);
        const std::uint32_t dom = table.domains[mark % ndom];
        finding.reusable_previous_domains[cause].insert(
            std::string(interner_.str(dom)));
      }
      result.findings.push_back(std::move(finding));
    }
  }
  return result;
}

SiteClassification classify_site(const SiteObservation& site,
                                 const Policy& policy) {
  // One context per thread: callers that loop (tests, examples, the
  // study's per-worker sinks before they switched to explicit contexts)
  // get warmed-up arena + interner reuse for free.
  thread_local ClassifyContext context;
  context.prepare(site);
  return context.classify(policy);
}

}  // namespace h2r::core
