#include "core/classify.hpp"

#include <algorithm>
#include <cassert>

#include "tls/certificate.hpp"
#include "util/strings.hpp"

namespace h2r::core {

bool ConnectionRecord::certificate_covers(
    std::string_view host) const noexcept {
  if (!has_certificate) return false;
  for (const std::string& san : san_dns_names) {
    if (tls::matches_dns_name(san, host)) return true;
  }
  return false;
}

bool ConnectionRecord::excludes(std::string_view host) const noexcept {
  const std::string needle = util::to_lower(host);
  for (const std::string& d : excluded_domains) {
    if (d == needle) return true;
  }
  if (origin_set.has_value()) {
    for (const std::string& d : *origin_set) {
      if (d == needle) return false;
    }
    return true;  // origin set announced and host not in it
  }
  return false;
}

util::SimTime ConnectionRecord::first_request_time() const noexcept {
  if (requests.empty()) return opened_at;
  util::SimTime t = requests.front().started_at;
  for (const RequestRecord& r : requests) t = std::min(t, r.started_at);
  return t;
}

util::SimTime ConnectionRecord::last_request_end() const noexcept {
  util::SimTime t = opened_at;
  for (const RequestRecord& r : requests) {
    t = std::max(t, std::max(r.started_at, r.finished_at));
  }
  return t;
}

std::string to_string(DurationModel model) {
  switch (model) {
    case DurationModel::kEndless: return "endless";
    case DurationModel::kImmediate: return "immediate";
    case DurationModel::kExact: return "exact";
  }
  return "?";
}

Interval availability(const ConnectionRecord& conn,
                      DurationModel model) noexcept {
  switch (model) {
    case DurationModel::kEndless:
      return {conn.opened_at, util::kSimTimeMax};
    case DurationModel::kImmediate:
      // Closed right after the last request finished. The half-open end
      // (+1) keeps a connection usable at the exact instant its last
      // request ends.
      return {conn.opened_at, conn.last_request_end() + 1};
    case DurationModel::kExact:
      return {conn.opened_at,
              conn.closed_at.has_value() ? *conn.closed_at
                                         : util::kSimTimeMax};
  }
  return {};
}

std::string to_string(Cause cause) {
  switch (cause) {
    case Cause::kCert: return "CERT";
    case Cause::kIp: return "IP";
    case Cause::kCred: return "CRED";
  }
  return "?";
}

bool SiteClassification::has_cause(Cause cause) const noexcept {
  return std::any_of(findings.begin(), findings.end(),
                     [cause](const ConnectionFinding& f) {
                       return f.causes.count(cause) > 0;
                     });
}

std::size_t SiteClassification::count_cause(Cause cause) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [cause](const ConnectionFinding& f) {
                      return f.causes.count(cause) > 0;
                    }));
}

ClassifyContext::ClassifyContext(bool use_arena)
    : arena_(use_arena ? std::make_unique<util::Arena>() : nullptr) {}

void ClassifyContext::prepare(const SiteObservation& site) {
  site_ = &site;
  // Site-scoped scratch dies here; the table is rebuilt on the rewound
  // arena. (With the arena off the columns free/reallocate on the heap —
  // slower, identical values.)
  table_.reset();
  if (arena_ != nullptr) arena_->reset();
  // Workers live for millions of sites: cap the interner so unique
  // per-site domains cannot grow it without bound. Ids never escape the
  // context, so the reset is invisible to results.
  if (interner_.pool_bytes() > (1u << 22) || interner_.size() > (1u << 18)) {
    interner_.clear();
  }
  table_.emplace(arena_.get());
  table_->build(site, interner_);
}

SiteClassification ClassifyContext::classify(const ClassifyOptions& options) {
  assert(site_ != nullptr && "prepare() must run before classify()");
  const ConnectionTable& table = *table_;
  const std::size_t n = table.size();
  const std::size_t ndom = table.distinct_domains();

  SiteClassification result;
  result.site_url = site_->site_url;
  result.total_connections = n;

  // Availability end per connection under this duration model — the only
  // model-dependent column, O(n) per sweep.
  avail_end_.assign(n, util::kSimTimeMax);
  switch (options.duration) {
    case DurationModel::kEndless:
      break;
    case DurationModel::kImmediate:
      // Closed right after the last request finished; the half-open end
      // (+1) keeps a connection usable at that exact instant.
      for (std::size_t j = 0; j < n; ++j) {
        avail_end_[j] = table.last_request_end[j] + 1;
      }
      break;
    case DurationModel::kExact:
      for (std::size_t j = 0; j < n; ++j) {
        avail_end_[j] = table.closed_or_max[j];
      }
      break;
  }

  marks_.assign(3 * ndom, 0);
  generation_ = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t dom_i = table.domain[i];
    const std::uint32_t local_i = table.local_domain[i];
    const std::uint32_t ep_i = table.endpoint[i];
    const util::SimTime opened_i = table.opened[i];

    ++generation_;
    touched_.clear();
    std::set<Cause> causes;

    for (std::size_t j = 0; j < i; ++j) {
      // The previous connection must have been available when `i` was
      // opened (open order makes opened[j] <= opened_i; the lower bound
      // is kept for hand-built, unsorted observations in release mode).
      if (opened_i >= avail_end_[j] || opened_i < table.opened[j]) continue;
      // Explicitly excluded domains are ignored (§4.1).
      if (table.excludes_domain(j, local_i)) continue;

      const bool same_endpoint = table.endpoint[j] == ep_i;
      const bool covers = table.covers_domain(j, local_i);
      const bool same_initial_domain = table.domain[j] == dom_i;

      Cause cause;
      if (same_endpoint) {
        cause = covers ? Cause::kCred : Cause::kCert;
      } else if (same_initial_domain) {
        // Corner case (§4.1): same initial domain on different IPs only
        // happens when CRED forbids reuse and DNS announces several IPs.
        cause = Cause::kCred;
      } else if (covers) {
        cause = Cause::kIp;
      } else {
        // No match: `j` could not have served this request — an unknown
        // third party relative to `j`.
        continue;
      }
      causes.insert(cause);
      const std::uint32_t mark = static_cast<std::uint32_t>(
          static_cast<std::size_t>(cause) * ndom + table.local_domain[j]);
      if (marks_[mark] != generation_) {
        marks_[mark] = generation_;
        touched_.push_back(mark);
      }
    }

    if (!causes.empty()) {
      ConnectionFinding finding;
      finding.connection_index = i;
      finding.causes = std::move(causes);
      // Materialize interned ids back into strings here and only here:
      // findings (and everything serialized from them) carry the domain
      // text, so per-worker id spaces never leak into output.
      for (const std::uint32_t mark : touched_) {
        const Cause cause = static_cast<Cause>(mark / ndom);
        const std::uint32_t dom = table.domains[mark % ndom];
        finding.reusable_previous_domains[cause].insert(
            std::string(interner_.str(dom)));
      }
      result.findings.push_back(std::move(finding));
    }
  }
  return result;
}

SiteClassification classify_site(const SiteObservation& site,
                                 const ClassifyOptions& options) {
  // One context per thread: callers that loop (tests, examples, the
  // study's per-worker sinks before they switched to explicit contexts)
  // get warmed-up arena + interner reuse for free.
  thread_local ClassifyContext context;
  context.prepare(site);
  return context.classify(options);
}

}  // namespace h2r::core
