// Remediation advisor: turns a site's classification into actionable
// advice — the operator-facing half of a coalescing audit.
//
// The mapping follows the paper's §5.3 discussion:
//   IP   -> synchronize DNS load balancing (common CNAME, anycast) or
//           deploy RFC 8336 ORIGIN frames,
//   CERT -> merge the SAN lists / use a wildcard certificate,
//   CRED -> browser-side Fetch adaptation; site-side: align crossorigin
//           attributes (e.g. credentialed preconnect + anonymous font).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/classify.hpp"
#include "core/connection.hpp"
#include "core/policy.hpp"

namespace h2r::core {

enum class RemedyKind : std::uint8_t {
  kSyncDnsLoadBalancing,   // cause IP, same operator, interchangeable IPs
  kDeployOriginFrame,      // cause IP, any
  kMergeCertificates,      // cause CERT
  kAlignCrossoriginUsage,  // cause CRED, same domain again
  kRelaxFetchCredentials,  // cause CRED, browser-side
};

inline constexpr RemedyKind kAllRemedies[] = {
    RemedyKind::kSyncDnsLoadBalancing, RemedyKind::kDeployOriginFrame,
    RemedyKind::kMergeCertificates, RemedyKind::kAlignCrossoriginUsage,
    RemedyKind::kRelaxFetchCredentials};

std::string to_string(RemedyKind kind);

/// Short stable identifier ("sync_dns", "origin_frame", ...) for JSON maps.
std::string_view remedy_slug(RemedyKind kind);

/// The policy knob that models this remedy in a replay.
PolicyKnob remedy_knob(RemedyKind kind) noexcept;

struct Advice {
  Cause cause = Cause::kIp;
  RemedyKind remedy = RemedyKind::kDeployOriginFrame;
  /// The redundant connection's domain.
  std::string domain;
  /// The earlier connection that could have been reused.
  std::string reusable_domain;
  /// How many of the site's redundant connections this item covers.
  std::uint64_t connections = 0;
  /// MEASURED: connections to `domain` the policy replay recovers when
  /// this advice's remedy (its policy knob) is applied — not a heuristic
  /// count. Advice rows for the same domain and knob share the pool.
  std::uint64_t recovered = 0;
  /// Human-readable one-liner.
  std::string message;
};

struct AuditReport {
  std::string site_url;
  std::size_t total_connections = 0;
  std::size_t redundant_connections = 0;
  std::vector<Advice> advice;  // deduplicated, most-connections first

  /// Connections that would remain redundant if all IP-cause advice were
  /// followed (i.e. CERT + CRED leftovers).
  std::uint64_t non_ip_redundant = 0;

  /// Per remedy: how many connections stay redundant when that remedy's
  /// policy knob is applied, measured by the policy replay (generalizes
  /// the old IP-only `non_ip_redundant`).
  std::map<RemedyKind, std::uint64_t> remaining_redundant;
};

/// Builds the audit for one site from its observation + classification.
/// `base` supplies the duration model (and horizon) the per-remedy policy
/// replays run under — pass the policy the classification was made with.
AuditReport audit_site(const SiteObservation& site,
                       const SiteClassification& classification,
                       const Policy& base);
AuditReport audit_site(const SiteObservation& site,
                       const SiteClassification& classification);

/// Convenience: classify (exact durations) and audit in one step.
AuditReport audit_site(const SiteObservation& site);

/// Renders the report as human-readable text.
std::string render(const AuditReport& report);

}  // namespace h2r::core
