// Deterministic string interning for the classifier hot path.
//
// Domains, SANs and issuer organizations recur constantly inside a site
// (and across the sites one worker crawls); the classifier used to
// lowercase and compare them as strings on every pair it swept. An
// Interner maps each distinct string to a dense 32-bit id assigned in
// FIRST-SEEN order, so the sweep compares ids — two ids are equal iff
// the strings are equal — and lowercasing happens once per distinct
// string instead of once per comparison.
//
// Determinism contract (DESIGN §12):
//   * ids are a pure function of the sequence of distinct strings a
//     worker interns — no hashing order, no pointer order leaks in;
//   * ids NEVER appear in serialized output: findings, reports and
//     journal frames always materialize the interned string itself, so
//     per-worker id spaces cannot make output depend on thread count;
//   * when shards must be combined id-wise, CanonicalRemap builds a
//     shard-count-independent canonical id space (lexicographic over the
//     union) and per-shard remap tables — tests/intern_test.cpp pins
//     that threads {1,2,7} emit byte-identical JSON through it.
//
// The lookup index is hand-rolled open addressing (power-of-two bucket
// array of ids + FNV-1a), NOT std::unordered_map: this TU feeds
// serializing code paths, where tools/h2r-lint's `order.unordered` rule
// bans unordered containers outright. Iteration surfaces (ids 0..size)
// are insertion-ordered and hash-free either way.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace h2r::core {

class Interner {
 public:
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;

  Interner() { rehash(1024); }

  /// Id of `s`, interning it first-seen. Ids are dense from 0 upward.
  std::uint32_t intern(std::string_view s);

  /// Id of the ASCII-lowercase of `s` (the classifier's host folding),
  /// without materializing a lowered copy when `s` is already lowercase.
  std::uint32_t intern_lower(std::string_view s);

  /// Id of `s` if already interned, kNpos otherwise. Never inserts.
  std::uint32_t find(std::string_view s) const noexcept;

  /// The interned string for `id`. The view is invalidated by the next
  /// intern() (the pool may grow); ids themselves are stable forever.
  std::string_view str(std::uint32_t id) const noexcept {
    const Entry& e = entries_[id];
    return {pool_.data() + e.offset, e.size};
  }

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }

  /// Bytes of interned string payload (for periodic reset caps).
  std::size_t pool_bytes() const noexcept { return pool_.size(); }

  void clear();

 private:
  struct Entry {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint32_t hash = 0;
  };

  static std::uint32_t fnv1a(std::string_view s) noexcept {
    std::uint32_t h = 2166136261u;
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 16777619u;
    }
    return h;
  }

  std::uint32_t insert(std::string_view s, std::uint32_t hash);
  void rehash(std::size_t buckets);

  // Contiguous payload pool + per-id spans: stable views, two
  // allocations' worth of growth instead of one node per string.
  std::string pool_;
  std::vector<Entry> entries_;
  // Open addressing: bucket -> id + 1, 0 = empty. Power-of-two sized.
  std::vector<std::uint32_t> buckets_;
};

/// Canonical id space over several per-shard interners. Canonical ids
/// are assigned in lexicographic order of the UNION of the shards'
/// strings, so they do not depend on how many shards there were or which
/// shard saw a string first — the property that lets id-keyed shard
/// state be combined into thread-count-invariant output.
class CanonicalRemap {
 public:
  /// `shards` must outlive the remap and stay un-mutated while it is in
  /// use (str() returns views into their pools).
  explicit CanonicalRemap(const std::vector<const Interner*>& shards);

  /// Canonical id of shard-local `id` from `shard`.
  std::uint32_t remap(std::size_t shard, std::uint32_t id) const noexcept {
    return tables_[shard][id];
  }

  /// The string behind a canonical id.
  std::string_view str(std::uint32_t canonical) const noexcept {
    return strings_[canonical];
  }

  /// Number of distinct strings across all shards.
  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(strings_.size());
  }

 private:
  std::vector<std::string_view> strings_;  // sorted; views into the shards
  std::vector<std::vector<std::uint32_t>> tables_;  // per shard: id -> canon
};

}  // namespace h2r::core
