// Aggregation across sites: everything the paper's tables and figures are
// computed from.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "asdb/asdb.hpp"
#include "core/classify.hpp"
#include "core/connection.hpp"
#include "stats/distribution.hpp"

namespace h2r::core {

struct CauseTally {
  std::uint64_t sites = 0;
  std::uint64_t connections = 0;

  bool operator==(const CauseTally&) const = default;
};

/// Order-independent sample multiset (see stats::TimeHistogram) — the
/// representation that keeps shard-merged reports bit-identical to
/// single-pass ones.
using TimeHistogram = stats::TimeHistogram;

/// Per-origin attribution: how many redundant connections had this origin,
/// and which previous-connection origins could have been reused (Tables
/// 2/4/8/10/12's "prev:" rows).
struct OriginTally {
  std::uint64_t connections = 0;
  std::map<std::string, std::uint64_t> previous_origins;
  std::string issuer;  // only filled for CERT attribution (Table 4)

  bool operator==(const OriginTally&) const = default;
};

struct IssuerTally {
  std::uint64_t connections = 0;
  std::set<std::string> domains;

  bool operator==(const IssuerTally&) const = default;
};

struct AsTally {
  std::uint64_t connections = 0;
  std::set<std::string> domains;

  bool operator==(const AsTally&) const = default;
};

struct AggregateReport {
  // Site-level headline numbers (§5.1).
  std::uint64_t analyzed_sites = 0;       // reachable sites
  std::uint64_t h2_sites = 0;             // >= 1 HTTP/2 connection
  std::uint64_t redundant_sites = 0;      // >= 1 redundant connection
  std::uint64_t total_connections = 0;
  std::uint64_t redundant_connections = 0;
  std::uint64_t filtered_requests = 0;

  std::map<Cause, CauseTally> by_cause;

  /// redundant-connection count -> number of sites (Figure 2 histogram).
  std::map<std::size_t, std::uint64_t> redundant_per_site_histogram;

  /// Cause IP origin attribution (Tables 2, 8, 12).
  std::map<std::string, OriginTally> ip_origins;

  /// Cause CERT domain attribution (Tables 4, 10).
  std::map<std::string, OriginTally> cert_domains;

  /// Cause CERT issuer attribution (Tables 3, 9).
  std::map<std::string, IssuerTally> cert_issuers;

  /// Issuer share over ALL connections (Table 5).
  std::map<std::string, IssuerTally> all_issuers;

  /// Cause IP AS attribution (Table 6). Empty without an AS database.
  std::map<std::string, AsTally> ip_ases;

  // Connection lifetime stats (exact-duration runs; §5.1's "median
  // lifetime 122.2s for the 3.5% that closed"). Histogram so that shard
  // merges stay order-independent.
  std::uint64_t closed_connections = 0;
  TimeHistogram closed_lifetimes_ms;

  // CRED detail (§5.3.3): redundant CRED connections whose own domain was
  // already connected ("connect to the same domain again").
  std::uint64_t cred_same_domain_connections = 0;

  /// Extension analysis (not in the paper): when during the page load do
  /// redundant connections open? Offsets (ms since the site's first
  /// connection) per cause — late openers explain most of the
  /// endless-vs-immediate gap (the reusable connection has gone idle).
  std::map<Cause, TimeHistogram> redundant_open_offsets;

  /// Median open offset for a cause; nullopt when unseen.
  std::optional<util::SimTime> median_open_offset(Cause cause) const;

  /// Folds another shard into this report. Every field is a commutative
  /// sum / map-sum / set-union, so merging any partition of the same site
  /// set in any order produces the same report as single-pass
  /// accumulation (OriginTally::issuer assumes what the simulation
  /// guarantees: one issuer per domain — the first non-empty value wins).
  void merge(const AggregateReport& shard);

  bool operator==(const AggregateReport&) const = default;

  /// Fraction helpers.
  double redundant_site_share() const noexcept;
  std::optional<util::SimTime> median_closed_lifetime() const;

  /// Number of sites with at least `n` redundant connections (Figure 2 is
  /// the complementary cumulative distribution of this).
  std::uint64_t sites_with_at_least(std::size_t n) const noexcept;
};

/// Per-policy replay totals (DESIGN §14): what one counterfactual policy
/// point recovered across a site set. Deliberately small — the optimizer
/// sweeps 2^k of these per chunk window, so unlike AggregateReport it
/// carries only the ranking surface.
struct PolicyTally {
  std::uint64_t sites = 0;
  /// Baseline connections / redundant connections over the same sites.
  std::uint64_t baseline_connections = 0;
  std::uint64_t baseline_redundant = 0;
  /// Connections the policy's replay recovered (not opened at all).
  std::uint64_t recovered = 0;
  /// Redundant connections still classified among the survivors.
  std::uint64_t remaining_redundant = 0;
  /// Remaining redundant connections by cause.
  std::map<Cause, std::uint64_t> remaining_by_cause;
  /// Recovered connections credited per operator (server operator when
  /// recorded, else the connection's base domain).
  std::map<std::string, std::uint64_t> recovered_by_operator;

  /// Accumulates one site's replay under this tally's policy.
  void add_site(const SiteClassification& baseline,
                const SiteClassification& replayed);

  /// Commutative shard merge (sums / map-sums), like AggregateReport.
  void merge(const PolicyTally& shard);

  bool operator==(const PolicyTally&) const = default;
};

/// Streaming aggregator: feed (observation, classification) pairs, read the
/// report at the end. The AS database is optional; without it the AS table
/// stays empty. A nonzero `hist_budget` bounds every TimeHistogram the
/// report accumulates to that many bins (see stats::TimeHistogram).
class Aggregator {
 public:
  explicit Aggregator(const asdb::AsDatabase* as_database = nullptr,
                      std::uint32_t hist_budget = 0)
      : as_database_(as_database), hist_budget_(hist_budget) {
    report_.closed_lifetimes_ms = TimeHistogram{hist_budget};
  }

  void add_site(const SiteObservation& site, const SiteClassification& cls);

  const AggregateReport& report() const noexcept { return report_; }

 private:
  const asdb::AsDatabase* as_database_;
  std::uint32_t hist_budget_ = 0;
  AggregateReport report_;
};

/// Sorted top-k view of an attribution map, by connection count descending
/// (ties broken by key for determinism).
template <typename Tally>
std::vector<std::pair<std::string, const Tally*>> top_k(
    const std::map<std::string, Tally>& table, std::size_t k) {
  std::vector<std::pair<std::string, const Tally*>> rows;
  rows.reserve(table.size());
  for (const auto& [key, tally] : table) rows.emplace_back(key, &tally);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second->connections != b.second->connections) {
      return a.second->connections > b.second->connections;
    }
    return a.first < b.first;
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

/// 1-based rank of `key` in `table` by connection count (paper's "↑"
/// column); nullopt when absent.
template <typename Tally>
std::optional<std::size_t> rank_of(const std::map<std::string, Tally>& table,
                                   const std::string& key) {
  const auto it = table.find(key);
  if (it == table.end()) return std::nullopt;
  std::size_t rank = 1;
  for (const auto& [other_key, tally] : table) {
    if (tally.connections > it->second.connections ||
        (tally.connections == it->second.connections && other_key < key)) {
      ++rank;
    }
  }
  return rank;
}

/// The most frequent previous origin of a tally (the "prev:" row).
std::optional<std::pair<std::string, std::uint64_t>> top_previous(
    const OriginTally& tally);

/// Restricts observations to the sites named in `keep` (overlap analysis,
/// Tables 7-10).
std::vector<SiteObservation> filter_sites(
    const std::vector<SiteObservation>& sites,
    const std::set<std::string>& keep);

}  // namespace h2r::core
