// The policy-driven classifier API (DESIGN §14).
//
// A core::Policy is one point in the counterfactual intervention space the
// optimizer sweeps: the duration model the classifier always had, plus the
// knobs the paper's discussion section proposes — ORIGIN frames deployed
// everywhere, DNS answers synchronized across coalescable hosts, operator
// certificates consolidated into one SAN set, and fetch-credential /
// privacy-mode partitioning ignored. ClassifyContext::prepare() stays
// knob-independent; classify(policy) replays the prepared site under the
// policy, recovering the connections the counterfactual browser would not
// have opened and re-classifying the survivors.
#pragma once

#include <cstdint>
#include <string>

#include "core/connection.hpp"
#include "util/clock.hpp"

namespace h2r::core {

/// Bit per counterfactual knob; Policy::mask() packs them in this order.
enum PolicyKnob : std::uint8_t {
  kKnobOriginFrame = 1u << 0,
  kKnobSyncDns = 1u << 1,
  kKnobCertConsolidation = 1u << 2,
  kKnobIgnoreCredentials = 1u << 3,
};

inline constexpr std::uint8_t kAllPolicyKnobs = 0xF;
inline constexpr std::size_t kPolicyKnobCount = 4;

struct Policy {
  /// Connection-lifetime bound (paper §4.2.1). First member so the old
  /// brace form `{DurationModel::kExact}` keeps compiling through the
  /// ClassifyOptions alias.
  DurationModel duration = DurationModel::kExact;

  /// Classify as if measurement had stopped here: connections opened at or
  /// after the horizon are invisible, requests past it are truncated, and
  /// close times past it are unknown. Used by the internal-pages ablation
  /// to score the landing page out of a whole-visit observation.
  util::SimTime horizon = util::kSimTimeMax;

  /// Every server announces its RFC 8336 origin set, and the browser
  /// honors it: a previous connection whose server serves C's domain is
  /// reused across IPs (the paper's "every same-operator cross-IP case").
  bool origin_frame = false;

  /// DNS answers are synchronized: coalescable hosts resolve to the same
  /// address, so certificate-covered cross-IP pairs collapse.
  bool sync_dns = false;

  /// Each operator consolidates its certificates into one SAN set: a
  /// same-endpoint, same-operator pair coalesces even when the observed
  /// certificate did not cover the later domain.
  bool cert_consolidation = false;

  /// Fetch-credential / privacy-mode partitioning is ignored: connections
  /// that differ only in the privacy bit share a pool.
  bool ignore_credentials = false;

  /// True when any counterfactual knob is set (the replay phases run).
  bool counterfactual() const noexcept { return mask() != 0; }

  /// Knob bits packed per PolicyKnob (duration/horizon excluded).
  std::uint8_t mask() const noexcept;

  /// Number of enabled knobs (popcount of mask()).
  std::size_t knob_count() const noexcept;

  /// "baseline" or "+origin_frame+sync_dns+..." in PolicyKnob bit order —
  /// stable across runs, used by reports and journal checkpoints.
  std::string label() const;

  /// The policy with the given knob bits on top of `base`'s duration and
  /// horizon.
  static Policy with_mask(std::uint8_t mask, const Policy& base);
  static Policy with_mask(std::uint8_t mask);

  /// Reads H2R_POLICY_DURATION (endless|immediate|exact) and the four
  /// H2R_POLICY_* knob flags. Unset flags stay off.
  static Policy from_env();
};

bool operator==(const Policy& a, const Policy& b) noexcept;

/// Short name of a single knob bit ("origin_frame", ...); knob must be one
/// PolicyKnob value.
std::string_view to_string(PolicyKnob knob);

}  // namespace h2r::core
