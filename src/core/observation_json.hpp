// Dataset snapshots: (de)serialize SiteObservations to JSON.
//
// The paper keeps its datasets as HAR/NetLog dumps; this is the exact-
// record equivalent for our pipeline — crawl once, snapshot, re-analyze
// under different duration models or classifier versions without
// re-simulating.
#pragma once

#include <vector>

#include "core/connection.hpp"
#include "json/json.hpp"
#include "util/expected.hpp"

namespace h2r::core {

json::Value to_json(const SiteObservation& site);
util::Expected<SiteObservation> observation_from_json(
    const json::Value& value);

/// A whole dataset ({"sites": [...]}).
json::Value dataset_to_json(const std::vector<SiteObservation>& sites);
util::Expected<std::vector<SiteObservation>> dataset_from_json(
    const json::Value& value);

}  // namespace h2r::core
