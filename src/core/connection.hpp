// The classifier's input model: what one observed HTTP/2 connection looked
// like. Both measurement paths produce this —
//   * the HAR path (request-level only: open time = first request, no close
//     time -> duration models "endless"/"immediate"),
//   * the NetLog path (exact socket open/close events).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.hpp"
#include "util/clock.hpp"

namespace h2r::core {

struct RequestRecord {
  util::SimTime started_at = 0;
  util::SimTime finished_at = 0;
  std::string domain;  // the :authority requested
  std::string method = "GET";
  int status = 200;
};

struct ConnectionRecord {
  std::uint64_t id = 0;
  net::Endpoint endpoint;          // destination IP + port
  std::string initial_domain;      // SNI / first :authority
  bool has_certificate = true;
  std::vector<std::string> san_dns_names;
  std::string issuer_organization;
  std::uint64_t certificate_serial = 0;

  /// "h2" or "h3". HTTP/3 inherits the same Connection Reuse mechanism,
  /// so the classifier treats both identically (paper §6).
  std::string protocol = "h2";

  util::SimTime opened_at = 0;
  /// Exact close time when known (NetLog path); nullopt when the connection
  /// was still open at measurement end or the source lacks close events
  /// (HAR path).
  std::optional<util::SimTime> closed_at;

  std::vector<RequestRecord> requests;

  /// Domains this server refused on this connection (HTTP 421) — reuse
  /// must not be expected for them.
  std::vector<std::string> excluded_domains;

  /// RFC 8336 origin set, when the server announced one and the browser
  /// honors ORIGIN frames. Domains outside the set count as excluded.
  /// (Chromium — and hence the paper — never sees these; our extension
  /// benches do.)
  std::optional<std::vector<std::string>> origin_set;

  /// True when the connection lived in the credentialless/privacy pool
  /// (fetch credentials mode forbade sharing with the default pool).
  bool privacy = false;

  /// Operator that terminated the connection (NetLog path; empty on the
  /// HAR path, which cannot see it). Policy replays use it for the
  /// cert-consolidation knob and per-operator recovery attribution.
  std::string operator_name;

  /// Every domain the contacted server actually serves (its vhost list,
  /// lowered + sorted), recorded regardless of whether the server
  /// announced an ORIGIN frame. Ground truth for the origin_frame and
  /// sync_dns policy knobs; empty on the HAR path.
  std::vector<std::string> served_domains;

  /// True if any SAN covers `host` (wildcard-aware); false without a cert.
  bool certificate_covers(std::string_view host) const noexcept;

  /// True if `host` was explicitly excluded (421 / ORIGIN).
  bool excludes(std::string_view host) const noexcept;

  util::SimTime first_request_time() const noexcept;
  util::SimTime last_request_end() const noexcept;
};

/// How to bound a connection's lifetime when deciding whether it was still
/// available at the moment a later connection opened (paper §4.2.1).
enum class DurationModel {
  /// Connections never close (upper bound on redundancy). Used for HAR and
  /// as a sensitivity check on the NetLog data.
  kEndless,
  /// Connections close right after their last request (lower bound).
  kImmediate,
  /// Use the recorded close times (NetLog path).
  kExact,
};

std::string to_string(DurationModel model);

/// Half-open availability interval [start, end) of `conn` under `model`.
/// `end` is util::kSimTimeMax when unbounded.
struct Interval {
  util::SimTime start = 0;
  util::SimTime end = util::kSimTimeMax;

  bool contains(util::SimTime t) const noexcept {
    return t >= start && t < end;
  }
};

Interval availability(const ConnectionRecord& conn,
                      DurationModel model) noexcept;

/// One website's observation: the landing-page URL plus every HTTP/2
/// connection the browser opened while loading it, in open order.
struct SiteObservation {
  std::string site_url;
  bool reachable = true;
  std::vector<ConnectionRecord> connections;
  /// Requests that had to be dropped for consistency reasons (§4.3).
  std::uint64_t filtered_requests = 0;
};

}  // namespace h2r::core
