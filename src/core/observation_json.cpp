#include "core/observation_json.hpp"

namespace h2r::core {

namespace {

json::Value request_to_json(const RequestRecord& req) {
  json::Object obj;
  obj.set("started_at", static_cast<std::int64_t>(req.started_at));
  obj.set("finished_at", static_cast<std::int64_t>(req.finished_at));
  obj.set("domain", req.domain);
  obj.set("method", req.method);
  obj.set("status", static_cast<std::int64_t>(req.status));
  return json::Value{std::move(obj)};
}

util::Expected<RequestRecord> request_from_json(const json::Value& value) {
  RequestRecord req;
  req.started_at = value["started_at"].as_int();
  req.finished_at = value["finished_at"].as_int();
  req.domain = value["domain"].as_string();
  req.method = value["method"].as_string();
  req.status = static_cast<int>(value["status"].as_int());
  if (req.domain.empty()) {
    return util::unexpected(util::Error{"request without domain"});
  }
  return req;
}

json::Value connection_to_json(const ConnectionRecord& conn) {
  json::Object obj;
  obj.set("id", static_cast<std::int64_t>(conn.id));
  obj.set("ip", conn.endpoint.address.to_string());
  obj.set("port", static_cast<std::int64_t>(conn.endpoint.port));
  obj.set("initial_domain", conn.initial_domain);
  obj.set("protocol", conn.protocol);
  obj.set("has_certificate", conn.has_certificate);
  json::Array sans;
  for (const std::string& san : conn.san_dns_names) sans.emplace_back(san);
  obj.set("san_dns_names", std::move(sans));
  obj.set("issuer", conn.issuer_organization);
  obj.set("certificate_serial",
          static_cast<std::int64_t>(conn.certificate_serial));
  obj.set("opened_at", static_cast<std::int64_t>(conn.opened_at));
  if (conn.closed_at.has_value()) {
    obj.set("closed_at", static_cast<std::int64_t>(*conn.closed_at));
  }
  json::Array requests;
  for (const RequestRecord& req : conn.requests) {
    requests.emplace_back(request_to_json(req));
  }
  obj.set("requests", std::move(requests));
  json::Array excluded;
  for (const std::string& domain : conn.excluded_domains) {
    excluded.emplace_back(domain);
  }
  obj.set("excluded_domains", std::move(excluded));
  if (conn.origin_set.has_value()) {
    json::Array origins;
    for (const std::string& origin : *conn.origin_set) {
      origins.emplace_back(origin);
    }
    obj.set("origin_set", std::move(origins));
  }
  // Policy-replay provenance (PR 9): emitted only when present so cached
  // observations from earlier runs stay byte-identical.
  if (conn.privacy) obj.set("privacy", true);
  if (!conn.operator_name.empty()) obj.set("operator", conn.operator_name);
  if (!conn.served_domains.empty()) {
    json::Array served;
    for (const std::string& domain : conn.served_domains) {
      served.emplace_back(domain);
    }
    obj.set("served_domains", std::move(served));
  }
  return json::Value{std::move(obj)};
}

util::Expected<ConnectionRecord> connection_from_json(
    const json::Value& value) {
  ConnectionRecord conn;
  conn.id = static_cast<std::uint64_t>(value["id"].as_int());
  const auto ip = net::IpAddress::parse(value["ip"].as_string());
  if (!ip.has_value()) {
    return util::unexpected(util::Error{"bad connection ip"});
  }
  conn.endpoint.address = ip.value();
  conn.endpoint.port = static_cast<std::uint16_t>(value["port"].as_int(443));
  conn.initial_domain = value["initial_domain"].as_string();
  if (value["protocol"].is_string()) {
    conn.protocol = value["protocol"].as_string();
  }
  conn.has_certificate = value["has_certificate"].as_bool(true);
  for (const json::Value& san : value["san_dns_names"].as_array()) {
    conn.san_dns_names.push_back(san.as_string());
  }
  conn.issuer_organization = value["issuer"].as_string();
  conn.certificate_serial =
      static_cast<std::uint64_t>(value["certificate_serial"].as_int());
  conn.opened_at = value["opened_at"].as_int();
  if (value["closed_at"].is_number()) {
    conn.closed_at = value["closed_at"].as_int();
  }
  for (const json::Value& req : value["requests"].as_array()) {
    auto parsed = request_from_json(req);
    if (!parsed) return util::unexpected(parsed.error());
    conn.requests.push_back(std::move(parsed.value()));
  }
  for (const json::Value& domain : value["excluded_domains"].as_array()) {
    conn.excluded_domains.push_back(domain.as_string());
  }
  if (value["origin_set"].is_array()) {
    std::vector<std::string> origins;
    for (const json::Value& origin : value["origin_set"].as_array()) {
      origins.push_back(origin.as_string());
    }
    conn.origin_set = std::move(origins);
  }
  conn.privacy = value["privacy"].as_bool(false);
  if (value["operator"].is_string()) {
    conn.operator_name = value["operator"].as_string();
  }
  if (value["served_domains"].is_array()) {
    for (const json::Value& domain : value["served_domains"].as_array()) {
      conn.served_domains.push_back(domain.as_string());
    }
  }
  return conn;
}

}  // namespace

json::Value to_json(const SiteObservation& site) {
  json::Object obj;
  obj.set("site", site.site_url);
  obj.set("reachable", site.reachable);
  obj.set("filtered_requests",
          static_cast<std::int64_t>(site.filtered_requests));
  json::Array connections;
  for (const ConnectionRecord& conn : site.connections) {
    connections.emplace_back(connection_to_json(conn));
  }
  obj.set("connections", std::move(connections));
  return json::Value{std::move(obj)};
}

util::Expected<SiteObservation> observation_from_json(
    const json::Value& value) {
  SiteObservation site;
  site.site_url = value["site"].as_string();
  site.reachable = value["reachable"].as_bool(true);
  site.filtered_requests =
      static_cast<std::uint64_t>(value["filtered_requests"].as_int());
  for (const json::Value& conn : value["connections"].as_array()) {
    auto parsed = connection_from_json(conn);
    if (!parsed) return util::unexpected(parsed.error());
    site.connections.push_back(std::move(parsed.value()));
  }
  return site;
}

json::Value dataset_to_json(const std::vector<SiteObservation>& sites) {
  json::Array array;
  array.reserve(sites.size());
  for (const SiteObservation& site : sites) {
    array.emplace_back(to_json(site));
  }
  json::Object root;
  root.set("sites", std::move(array));
  return json::Value{std::move(root)};
}

util::Expected<std::vector<SiteObservation>> dataset_from_json(
    const json::Value& value) {
  if (!value["sites"].is_array()) {
    return util::unexpected(util::Error{"missing sites array"});
  }
  std::vector<SiteObservation> out;
  for (const json::Value& site : value["sites"].as_array()) {
    auto parsed = observation_from_json(site);
    if (!parsed) return util::unexpected(parsed.error());
    out.push_back(std::move(parsed.value()));
  }
  return out;
}

}  // namespace h2r::core
