#include "core/advisor.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/strings.hpp"

namespace h2r::core {

std::string to_string(RemedyKind kind) {
  switch (kind) {
    case RemedyKind::kSyncDnsLoadBalancing:
      return "synchronize DNS load balancing (shared CNAME / anycast)";
    case RemedyKind::kDeployOriginFrame:
      return "deploy HTTP ORIGIN frames (RFC 8336)";
    case RemedyKind::kMergeCertificates:
      return "merge the domains into one certificate (SAN list / wildcard)";
    case RemedyKind::kAlignCrossoriginUsage:
      return "align crossorigin attributes (credentialed vs anonymous "
             "fetches to one host force a second connection)";
    case RemedyKind::kRelaxFetchCredentials:
      return "browser-side: relax the Fetch credentials pool key "
             "(privacy benefit is disputed)";
  }
  return "?";
}

std::string_view remedy_slug(RemedyKind kind) {
  switch (kind) {
    case RemedyKind::kSyncDnsLoadBalancing:
      return "sync_dns";
    case RemedyKind::kDeployOriginFrame:
      return "origin_frame";
    case RemedyKind::kMergeCertificates:
      return "merge_certificates";
    case RemedyKind::kAlignCrossoriginUsage:
      return "align_crossorigin";
    case RemedyKind::kRelaxFetchCredentials:
      return "relax_credentials";
  }
  return "?";
}

PolicyKnob remedy_knob(RemedyKind kind) noexcept {
  switch (kind) {
    case RemedyKind::kSyncDnsLoadBalancing:
      return kKnobSyncDns;
    case RemedyKind::kDeployOriginFrame:
      return kKnobOriginFrame;
    case RemedyKind::kMergeCertificates:
      return kKnobCertConsolidation;
    case RemedyKind::kAlignCrossoriginUsage:
    case RemedyKind::kRelaxFetchCredentials:
      return kKnobIgnoreCredentials;
  }
  return kKnobOriginFrame;
}

namespace {

struct Key {
  Cause cause;
  std::string domain;
  std::string reusable;

  bool operator<(const Key& other) const {
    return std::tie(cause, domain, reusable) <
           std::tie(other.cause, other.domain, other.reusable);
  }
};

std::size_t knob_index(RemedyKind kind) noexcept {
  std::uint8_t bit = static_cast<std::uint8_t>(remedy_knob(kind));
  std::size_t index = 0;
  while ((bit >>= 1) != 0) ++index;
  return index;
}

}  // namespace

AuditReport audit_site(const SiteObservation& site,
                       const SiteClassification& classification,
                       const Policy& base) {
  AuditReport report;
  report.site_url = site.site_url;
  report.total_connections = site.connections.size();
  report.redundant_connections = classification.redundant_connections();

  std::map<Key, std::uint64_t> grouped;
  for (const ConnectionFinding& finding : classification.findings) {
    const ConnectionRecord& conn = site.connections[finding.connection_index];
    const std::string domain = util::to_lower(conn.initial_domain);
    bool ip_only = finding.causes.count(Cause::kIp) > 0 &&
                   finding.causes.size() == 1;
    if (!ip_only) ++report.non_ip_redundant;
    for (Cause cause : finding.causes) {
      const auto it = finding.reusable_previous_domains.find(cause);
      const std::string reusable =
          it != finding.reusable_previous_domains.end() && !it->second.empty()
              ? *it->second.begin()
              : "";
      ++grouped[Key{cause, domain, reusable}];
    }
  }

  for (const auto& [key, count] : grouped) {
    Advice advice;
    advice.cause = key.cause;
    advice.domain = key.domain;
    advice.reusable_domain = key.reusable;
    advice.connections = count;
    switch (key.cause) {
      case Cause::kIp:
        // Same registrable domain -> almost certainly one operator whose
        // LB is unsynchronized; otherwise suggest the protocol fix.
        advice.remedy =
            util::base_domain(key.domain) == util::base_domain(key.reusable)
                ? RemedyKind::kSyncDnsLoadBalancing
                : RemedyKind::kDeployOriginFrame;
        advice.message = key.domain + " resolved away from the live " +
                         key.reusable + " connection";
        break;
      case Cause::kCert:
        advice.remedy = RemedyKind::kMergeCertificates;
        advice.message = "certificate of " + key.reusable +
                         " does not include " + key.domain;
        break;
      case Cause::kCred:
        advice.remedy = key.domain == key.reusable
                            ? RemedyKind::kAlignCrossoriginUsage
                            : RemedyKind::kRelaxFetchCredentials;
        advice.message =
            "credentials-mode mismatch forced a second connection to " +
            key.domain;
        break;
    }
    report.advice.push_back(std::move(advice));
  }

  // Measure each remedy instead of guessing: replay the visit once per
  // policy knob and read off what the intervention actually recovers.
  std::map<std::string, std::uint64_t> recovered_by_domain[kPolicyKnobCount];
  std::uint64_t remaining[kPolicyKnobCount] = {};
  {
    thread_local ClassifyContext ctx;
    ctx.prepare(site);
    for (std::size_t k = 0; k < kPolicyKnobCount; ++k) {
      const SiteClassification& replay = ctx.classify(
          Policy::with_mask(static_cast<std::uint8_t>(1u << k), base));
      remaining[k] = replay.redundant_connections();
      for (const RecoveredConnection& rec : replay.recovered) {
        const ConnectionRecord& conn = site.connections[rec.connection_index];
        ++recovered_by_domain[k][util::to_lower(conn.initial_domain)];
      }
    }
  }
  for (RemedyKind kind : kAllRemedies) {
    report.remaining_redundant[kind] = remaining[knob_index(kind)];
  }
  for (Advice& advice : report.advice) {
    const auto& by_domain = recovered_by_domain[knob_index(advice.remedy)];
    const auto it = by_domain.find(advice.domain);
    if (it != by_domain.end()) advice.recovered = it->second;
  }

  // Most connections first; full tie-break so equal-volume advice has a
  // stable order (domain, then cause, then reusable domain).
  std::sort(report.advice.begin(), report.advice.end(),
            [](const Advice& a, const Advice& b) {
              if (a.connections != b.connections) {
                return a.connections > b.connections;
              }
              return std::tie(a.domain, a.cause, a.reusable_domain) <
                     std::tie(b.domain, b.cause, b.reusable_domain);
            });
  return report;
}

AuditReport audit_site(const SiteObservation& site,
                       const SiteClassification& classification) {
  return audit_site(site, classification, Policy{});
}

AuditReport audit_site(const SiteObservation& site) {
  return audit_site(site, classify_site(site, {DurationModel::kExact}),
                    Policy{});
}

std::string render(const AuditReport& report) {
  std::string out = "coalescing audit of " + report.site_url + "\n";
  out += "  " + std::to_string(report.redundant_connections) + " of " +
         std::to_string(report.total_connections) +
         " HTTP/2 connections were redundant\n";
  if (report.advice.empty()) {
    out += "  connection reuse works here — nothing to do.\n";
    return out;
  }
  for (const Advice& advice : report.advice) {
    out += "  [" + to_string(advice.cause) + " x" +
           std::to_string(advice.connections) + "] " + advice.message +
           "\n      fix: " + to_string(advice.remedy);
    if (advice.recovered > 0) {
      out += " (replay recovers " + std::to_string(advice.recovered) +
             " to " + advice.domain + ")";
    }
    out += "\n";
  }
  if (!report.remaining_redundant.empty()) {
    out += "  measured by policy replay — redundant left if applied:\n";
    for (RemedyKind kind : kAllRemedies) {
      const auto it = report.remaining_redundant.find(kind);
      if (it == report.remaining_redundant.end()) continue;
      out += "      " + std::string(remedy_slug(kind)) + ": " +
             std::to_string(it->second) + "\n";
    }
  }
  return out;
}

}  // namespace h2r::core
