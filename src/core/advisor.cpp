#include "core/advisor.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/strings.hpp"

namespace h2r::core {

std::string to_string(RemedyKind kind) {
  switch (kind) {
    case RemedyKind::kSyncDnsLoadBalancing:
      return "synchronize DNS load balancing (shared CNAME / anycast)";
    case RemedyKind::kDeployOriginFrame:
      return "deploy HTTP ORIGIN frames (RFC 8336)";
    case RemedyKind::kMergeCertificates:
      return "merge the domains into one certificate (SAN list / wildcard)";
    case RemedyKind::kAlignCrossoriginUsage:
      return "align crossorigin attributes (credentialed vs anonymous "
             "fetches to one host force a second connection)";
    case RemedyKind::kRelaxFetchCredentials:
      return "browser-side: relax the Fetch credentials pool key "
             "(privacy benefit is disputed)";
  }
  return "?";
}

namespace {

struct Key {
  Cause cause;
  std::string domain;
  std::string reusable;

  bool operator<(const Key& other) const {
    return std::tie(cause, domain, reusable) <
           std::tie(other.cause, other.domain, other.reusable);
  }
};

}  // namespace

AuditReport audit_site(const SiteObservation& site,
                       const SiteClassification& classification) {
  AuditReport report;
  report.site_url = site.site_url;
  report.total_connections = site.connections.size();
  report.redundant_connections = classification.redundant_connections();

  std::map<Key, std::uint64_t> grouped;
  for (const ConnectionFinding& finding : classification.findings) {
    const ConnectionRecord& conn = site.connections[finding.connection_index];
    const std::string domain = util::to_lower(conn.initial_domain);
    bool ip_only = finding.causes.count(Cause::kIp) > 0 &&
                   finding.causes.size() == 1;
    if (!ip_only) ++report.non_ip_redundant;
    for (Cause cause : finding.causes) {
      const auto it = finding.reusable_previous_domains.find(cause);
      const std::string reusable =
          it != finding.reusable_previous_domains.end() && !it->second.empty()
              ? *it->second.begin()
              : "";
      ++grouped[Key{cause, domain, reusable}];
    }
  }

  for (const auto& [key, count] : grouped) {
    Advice advice;
    advice.cause = key.cause;
    advice.domain = key.domain;
    advice.reusable_domain = key.reusable;
    advice.connections = count;
    switch (key.cause) {
      case Cause::kIp:
        // Same registrable domain -> almost certainly one operator whose
        // LB is unsynchronized; otherwise suggest the protocol fix.
        advice.remedy =
            util::base_domain(key.domain) == util::base_domain(key.reusable)
                ? RemedyKind::kSyncDnsLoadBalancing
                : RemedyKind::kDeployOriginFrame;
        advice.message = key.domain + " resolved away from the live " +
                         key.reusable + " connection";
        break;
      case Cause::kCert:
        advice.remedy = RemedyKind::kMergeCertificates;
        advice.message = "certificate of " + key.reusable +
                         " does not include " + key.domain;
        break;
      case Cause::kCred:
        advice.remedy = key.domain == key.reusable
                            ? RemedyKind::kAlignCrossoriginUsage
                            : RemedyKind::kRelaxFetchCredentials;
        advice.message =
            "credentials-mode mismatch forced a second connection to " +
            key.domain;
        break;
    }
    report.advice.push_back(std::move(advice));
  }

  std::sort(report.advice.begin(), report.advice.end(),
            [](const Advice& a, const Advice& b) {
              if (a.connections != b.connections) {
                return a.connections > b.connections;
              }
              return a.domain < b.domain;
            });
  return report;
}

AuditReport audit_site(const SiteObservation& site) {
  return audit_site(site, classify_site(site, {DurationModel::kExact}));
}

std::string render(const AuditReport& report) {
  std::string out = "coalescing audit of " + report.site_url + "\n";
  out += "  " + std::to_string(report.redundant_connections) + " of " +
         std::to_string(report.total_connections) +
         " HTTP/2 connections were redundant\n";
  if (report.advice.empty()) {
    out += "  connection reuse works here — nothing to do.\n";
    return out;
  }
  for (const Advice& advice : report.advice) {
    out += "  [" + to_string(advice.cause) + " x" +
           std::to_string(advice.connections) + "] " + advice.message +
           "\n      fix: " + to_string(advice.remedy) + "\n";
  }
  return out;
}

}  // namespace h2r::core
