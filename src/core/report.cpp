#include "core/report.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace h2r::core {

double AggregateReport::redundant_site_share() const noexcept {
  if (h2_sites == 0) return 0.0;
  return static_cast<double>(redundant_sites) / static_cast<double>(h2_sites);
}

std::optional<util::SimTime> AggregateReport::median_closed_lifetime() const {
  return stats::histogram_quantile(closed_lifetimes_ms, 0.5);
}

std::optional<util::SimTime> AggregateReport::median_open_offset(
    Cause cause) const {
  const auto it = redundant_open_offsets.find(cause);
  if (it == redundant_open_offsets.end()) return std::nullopt;
  return stats::histogram_quantile(it->second, 0.5);
}

void PolicyTally::add_site(const SiteClassification& baseline,
                           const SiteClassification& replayed) {
  ++sites;
  baseline_connections += baseline.total_connections;
  baseline_redundant += baseline.findings.size();
  recovered += replayed.recovered.size();
  remaining_redundant += replayed.findings.size();
  for (const ConnectionFinding& finding : replayed.findings) {
    for (const Cause cause : finding.causes) ++remaining_by_cause[cause];
  }
  for (const RecoveredConnection& rec : replayed.recovered) {
    ++recovered_by_operator[rec.operator_name];
  }
}

void PolicyTally::merge(const PolicyTally& shard) {
  sites += shard.sites;
  baseline_connections += shard.baseline_connections;
  baseline_redundant += shard.baseline_redundant;
  recovered += shard.recovered;
  remaining_redundant += shard.remaining_redundant;
  for (const auto& [cause, count] : shard.remaining_by_cause) {
    remaining_by_cause[cause] += count;
  }
  for (const auto& [name, count] : shard.recovered_by_operator) {
    recovered_by_operator[name] += count;
  }
}

void AggregateReport::merge(const AggregateReport& shard) {
  analyzed_sites += shard.analyzed_sites;
  h2_sites += shard.h2_sites;
  redundant_sites += shard.redundant_sites;
  total_connections += shard.total_connections;
  redundant_connections += shard.redundant_connections;
  filtered_requests += shard.filtered_requests;

  for (const auto& [cause, tally] : shard.by_cause) {
    CauseTally& dst = by_cause[cause];
    dst.sites += tally.sites;
    dst.connections += tally.connections;
  }
  for (const auto& [count, sites] : shard.redundant_per_site_histogram) {
    redundant_per_site_histogram[count] += sites;
  }

  auto merge_origins = [](std::map<std::string, OriginTally>& dst_map,
                          const std::map<std::string, OriginTally>& src_map) {
    for (const auto& [origin, tally] : src_map) {
      OriginTally& dst = dst_map[origin];
      dst.connections += tally.connections;
      for (const auto& [prev, count] : tally.previous_origins) {
        dst.previous_origins[prev] += count;
      }
      if (dst.issuer.empty()) dst.issuer = tally.issuer;
    }
  };
  merge_origins(ip_origins, shard.ip_origins);
  merge_origins(cert_domains, shard.cert_domains);

  auto merge_issuers = [](std::map<std::string, IssuerTally>& dst_map,
                          const std::map<std::string, IssuerTally>& src_map) {
    for (const auto& [issuer, tally] : src_map) {
      IssuerTally& dst = dst_map[issuer];
      dst.connections += tally.connections;
      dst.domains.insert(tally.domains.begin(), tally.domains.end());
    }
  };
  merge_issuers(cert_issuers, shard.cert_issuers);
  merge_issuers(all_issuers, shard.all_issuers);

  for (const auto& [as_name, tally] : shard.ip_ases) {
    AsTally& dst = ip_ases[as_name];
    dst.connections += tally.connections;
    dst.domains.insert(tally.domains.begin(), tally.domains.end());
  }

  closed_connections += shard.closed_connections;
  closed_lifetimes_ms.merge(shard.closed_lifetimes_ms);
  cred_same_domain_connections += shard.cred_same_domain_connections;
  for (const auto& [cause, histogram] : shard.redundant_open_offsets) {
    redundant_open_offsets[cause].merge(histogram);
  }
}

std::uint64_t AggregateReport::sites_with_at_least(
    std::size_t n) const noexcept {
  std::uint64_t total = 0;
  for (const auto& [count, sites] : redundant_per_site_histogram) {
    if (count >= n) total += sites;
  }
  return total;
}

void Aggregator::add_site(const SiteObservation& site,
                          const SiteClassification& cls) {
  if (!site.reachable) return;
  ++report_.analyzed_sites;
  report_.filtered_requests += site.filtered_requests;
  if (site.connections.empty()) return;

  ++report_.h2_sites;
  report_.total_connections += site.connections.size();

  // Issuer share over all connections (Table 5).
  for (const ConnectionRecord& conn : site.connections) {
    if (conn.has_certificate && !conn.issuer_organization.empty()) {
      IssuerTally& tally = report_.all_issuers[conn.issuer_organization];
      ++tally.connections;
      tally.domains.insert(util::to_lower(conn.initial_domain));
    }
    if (conn.closed_at.has_value()) {
      ++report_.closed_connections;
      report_.closed_lifetimes_ms.add(*conn.closed_at - conn.opened_at);
    }
  }

  if (!cls.findings.empty()) ++report_.redundant_sites;
  report_.redundant_connections += cls.findings.size();
  ++report_.redundant_per_site_histogram[cls.findings.size()];

  for (Cause cause : kAllCauses) {
    if (cls.has_cause(cause)) ++report_.by_cause[cause].sites;
    report_.by_cause[cause].connections += cls.count_cause(cause);
  }

  const util::SimTime page_start =
      site.connections.empty() ? 0 : site.connections.front().opened_at;
  for (const ConnectionFinding& finding : cls.findings) {
    const ConnectionRecord& conn = site.connections[finding.connection_index];
    const std::string domain = util::to_lower(conn.initial_domain);
    for (Cause cause : finding.causes) {
      report_.redundant_open_offsets
          .try_emplace(cause, TimeHistogram{hist_budget_})
          .first->second.add(conn.opened_at - page_start);
    }

    if (finding.causes.count(Cause::kIp) > 0) {
      OriginTally& tally = report_.ip_origins[domain];
      ++tally.connections;
      const auto it = finding.reusable_previous_domains.find(Cause::kIp);
      if (it != finding.reusable_previous_domains.end()) {
        for (const std::string& prev : it->second) {
          ++tally.previous_origins[prev];
        }
      }
      if (as_database_ != nullptr) {
        if (auto as = as_database_->lookup(conn.endpoint.address)) {
          AsTally& as_tally = report_.ip_ases[as->name];
          ++as_tally.connections;
          as_tally.domains.insert(domain);
        }
      }
    }

    if (finding.causes.count(Cause::kCert) > 0) {
      OriginTally& tally = report_.cert_domains[domain];
      ++tally.connections;
      tally.issuer = conn.issuer_organization;
      const auto it = finding.reusable_previous_domains.find(Cause::kCert);
      if (it != finding.reusable_previous_domains.end()) {
        for (const std::string& prev : it->second) {
          ++tally.previous_origins[prev];
        }
      }
      if (conn.has_certificate && !conn.issuer_organization.empty()) {
        IssuerTally& issuer_tally =
            report_.cert_issuers[conn.issuer_organization];
        ++issuer_tally.connections;
        issuer_tally.domains.insert(domain);
      }
    }

    if (finding.causes.count(Cause::kCred) > 0) {
      const auto it = finding.reusable_previous_domains.find(Cause::kCred);
      if (it != finding.reusable_previous_domains.end() &&
          it->second.count(domain) > 0) {
        ++report_.cred_same_domain_connections;
      }
    }
  }
}

std::optional<std::pair<std::string, std::uint64_t>> top_previous(
    const OriginTally& tally) {
  std::optional<std::pair<std::string, std::uint64_t>> best;
  for (const auto& [origin, count] : tally.previous_origins) {
    if (!best.has_value() || count > best->second) {
      best = {origin, count};
    }
  }
  return best;
}

std::vector<SiteObservation> filter_sites(
    const std::vector<SiteObservation>& sites,
    const std::set<std::string>& keep) {
  std::vector<SiteObservation> out;
  for (const SiteObservation& site : sites) {
    if (keep.count(site.site_url) > 0) out.push_back(site);
  }
  return out;
}

}  // namespace h2r::core
