#include "core/report.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace h2r::core {

double AggregateReport::redundant_site_share() const noexcept {
  if (h2_sites == 0) return 0.0;
  return static_cast<double>(redundant_sites) / static_cast<double>(h2_sites);
}

std::optional<util::SimTime> AggregateReport::median_closed_lifetime() const {
  if (closed_lifetimes_ms.empty()) return std::nullopt;
  std::vector<util::SimTime> sorted = closed_lifetimes_ms;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

std::optional<util::SimTime> AggregateReport::median_open_offset(
    Cause cause) const {
  const auto it = redundant_open_offsets.find(cause);
  if (it == redundant_open_offsets.end() || it->second.empty()) {
    return std::nullopt;
  }
  std::vector<util::SimTime> sorted = it->second;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

std::uint64_t AggregateReport::sites_with_at_least(
    std::size_t n) const noexcept {
  std::uint64_t total = 0;
  for (const auto& [count, sites] : redundant_per_site_histogram) {
    if (count >= n) total += sites;
  }
  return total;
}

void Aggregator::add_site(const SiteObservation& site,
                          const SiteClassification& cls) {
  if (!site.reachable) return;
  ++report_.analyzed_sites;
  report_.filtered_requests += site.filtered_requests;
  if (site.connections.empty()) return;

  ++report_.h2_sites;
  report_.total_connections += site.connections.size();

  // Issuer share over all connections (Table 5).
  for (const ConnectionRecord& conn : site.connections) {
    if (conn.has_certificate && !conn.issuer_organization.empty()) {
      IssuerTally& tally = report_.all_issuers[conn.issuer_organization];
      ++tally.connections;
      tally.domains.insert(util::to_lower(conn.initial_domain));
    }
    if (conn.closed_at.has_value()) {
      ++report_.closed_connections;
      report_.closed_lifetimes_ms.push_back(*conn.closed_at - conn.opened_at);
    }
  }

  if (!cls.findings.empty()) ++report_.redundant_sites;
  report_.redundant_connections += cls.findings.size();
  ++report_.redundant_per_site_histogram[cls.findings.size()];

  for (Cause cause : kAllCauses) {
    if (cls.has_cause(cause)) ++report_.by_cause[cause].sites;
    report_.by_cause[cause].connections += cls.count_cause(cause);
  }

  const util::SimTime page_start =
      site.connections.empty() ? 0 : site.connections.front().opened_at;
  for (const ConnectionFinding& finding : cls.findings) {
    const ConnectionRecord& conn = site.connections[finding.connection_index];
    const std::string domain = util::to_lower(conn.initial_domain);
    for (Cause cause : finding.causes) {
      report_.redundant_open_offsets[cause].push_back(conn.opened_at -
                                                      page_start);
    }

    if (finding.causes.count(Cause::kIp) > 0) {
      OriginTally& tally = report_.ip_origins[domain];
      ++tally.connections;
      const auto it = finding.reusable_previous_domains.find(Cause::kIp);
      if (it != finding.reusable_previous_domains.end()) {
        for (const std::string& prev : it->second) {
          ++tally.previous_origins[prev];
        }
      }
      if (as_database_ != nullptr) {
        if (auto as = as_database_->lookup(conn.endpoint.address)) {
          AsTally& as_tally = report_.ip_ases[as->name];
          ++as_tally.connections;
          as_tally.domains.insert(domain);
        }
      }
    }

    if (finding.causes.count(Cause::kCert) > 0) {
      OriginTally& tally = report_.cert_domains[domain];
      ++tally.connections;
      tally.issuer = conn.issuer_organization;
      const auto it = finding.reusable_previous_domains.find(Cause::kCert);
      if (it != finding.reusable_previous_domains.end()) {
        for (const std::string& prev : it->second) {
          ++tally.previous_origins[prev];
        }
      }
      if (conn.has_certificate && !conn.issuer_organization.empty()) {
        IssuerTally& issuer_tally =
            report_.cert_issuers[conn.issuer_organization];
        ++issuer_tally.connections;
        issuer_tally.domains.insert(domain);
      }
    }

    if (finding.causes.count(Cause::kCred) > 0) {
      const auto it = finding.reusable_previous_domains.find(Cause::kCred);
      if (it != finding.reusable_previous_domains.end() &&
          it->second.count(domain) > 0) {
        ++report_.cred_same_domain_connections;
      }
    }
  }
}

std::optional<std::pair<std::string, std::uint64_t>> top_previous(
    const OriginTally& tally) {
  std::optional<std::pair<std::string, std::uint64_t>> best;
  for (const auto& [origin, count] : tally.previous_origins) {
    if (!best.has_value() || count > best->second) {
      best = {origin, count};
    }
  }
  return best;
}

std::vector<SiteObservation> filter_sites(
    const std::vector<SiteObservation>& sites,
    const std::set<std::string>& keep) {
  std::vector<SiteObservation> out;
  for (const SiteObservation& site : sites) {
    if (keep.count(site.site_url) > 0) out.push_back(site);
  }
  return out;
}

}  // namespace h2r::core
