#include "core/connection_table.hpp"

#include <cassert>

#include "util/strings.hpp"

namespace h2r::core {

namespace {

/// Wildcard-aware SAN match against an already-lowered host, mirroring
/// tls::matches_dns_name (which tests/classify_property_test.cpp pins as
/// the ConnectionTable's reference semantics): "*.suffix" matches exactly
/// one extra label, the suffix must contain at least one label, anything
/// not starting with "*." is literal equality — handled by the caller as
/// an interned-id compare.
bool wildcard_matches(std::string_view lowered_pattern,
                      std::string_view lowered_host) noexcept {
  const std::string_view suffix = lowered_pattern.substr(1);  // ".suffix"
  if (suffix.size() <= 1) return false;                       // "*." matches nothing
  if (lowered_host.size() <= suffix.size()) return false;     // label non-empty
  if (lowered_host.substr(lowered_host.size() - suffix.size()) != suffix) {
    return false;
  }
  const std::string_view label =
      lowered_host.substr(0, lowered_host.size() - suffix.size());
  return label.find('.') == std::string_view::npos;
}

}  // namespace

// h2r-lint: hotpath -- per-site SoA flatten; every column must come from
// the per-worker arena, not ad-hoc heap blocks
void ConnectionTable::build(const SiteObservation& site, Interner& interner) {
  const auto& conns = site.connections;
  const std::size_t n = conns.size();
  for (std::size_t i = 1; i < n; ++i) {
    assert(conns[i].opened_at >= conns[i - 1].opened_at &&
           "connections must be sorted by open time");
  }

  opened.assign(n, 0);
  closed_or_max.assign(n, 0);
  last_request_end.assign(n, 0);
  domain.assign(n, 0);
  local_domain.assign(n, 0);
  endpoint.assign(n, 0);
  base_domain.assign(n, 0);
  operator_id.assign(n, kNoOperator);
  host_order.assign(n, 0);
  privacy.assign(n, 0);
  has_served.assign(n, 0);
  domains.clear();

  for (std::size_t i = 0; i < n; ++i) {
    const ConnectionRecord& c = conns[i];
    opened[i] = c.opened_at;
    closed_or_max[i] =
        c.closed_at.has_value() ? *c.closed_at : util::kSimTimeMax;
    util::SimTime last = c.opened_at;
    for (const RequestRecord& r : c.requests) {
      last = std::max(last, std::max(r.started_at, r.finished_at));
    }
    last_request_end[i] = last;

    const std::uint32_t dom = interner.intern_lower(c.initial_domain);
    domain[i] = dom;
    std::uint32_t local = static_cast<std::uint32_t>(domains.size());
    for (std::uint32_t d = 0; d < domains.size(); ++d) {
      if (domains[d] == dom) {
        local = d;
        break;
      }
    }
    if (local == domains.size()) domains.push_back(dom);
    local_domain[i] = local;
    base_domain[i] = interner.intern_lower(util::base_domain(c.initial_domain));
    if (!c.operator_name.empty()) {
      operator_id[i] = interner.intern_lower(c.operator_name);
    }
    privacy[i] = c.privacy ? 1 : 0;
    // nth connection the browser created for this initial domain — the
    // policy replay's survivor remap is keyed on it (address rotation
    // picks the destination by per-host creation count).
    std::uint32_t order = 0;
    for (std::size_t k = 0; k < i; ++k) {
      if (domain[k] == dom) ++order;
    }
    host_order[i] = order;

    // Dense endpoint ids: equal endpoints (IP + port) share an id, so the
    // sweep's same-endpoint test is one integer compare. Sites have a
    // handful of endpoints; the linear scan is cheaper than any map.
    std::uint32_t ep = 0;
    while (ep < i && !(conns[ep].endpoint == c.endpoint)) ++ep;
    endpoint[i] = ep < i ? endpoint[ep] : static_cast<std::uint32_t>(i);
  }

  const std::size_t ndom = domains.size();
  covers.assign(n * ndom, 0);
  excluded.assign(n * ndom, 0);
  served.assign(n * ndom, 0);
  for (std::size_t j = 0; j < n; ++j) {
    const ConnectionRecord& c = conns[j];
    std::uint8_t* cover_row = covers.data() + j * ndom;
    std::uint8_t* excl_row = excluded.data() + j * ndom;

    if (!c.served_domains.empty()) {
      has_served[j] = 1;
      std::uint8_t* served_row = served.data() + j * ndom;
      for (const std::string& name : c.served_domains) {
        // Vhost names are literal (no wildcards): lowered equality is
        // interned-id equality, like literal SANs below.
        const std::uint32_t name_id = interner.intern_lower(name);
        for (std::size_t d = 0; d < ndom; ++d) {
          if (domains[d] == name_id) served_row[d] = 1;
        }
      }
    }

    if (c.has_certificate) {
      for (const std::string& san : c.san_dns_names) {
        if (san.empty()) continue;
        if (san.size() >= 2 && san[0] == '*' && san[1] == '.') {
          const std::uint32_t pattern = interner.intern_lower(san);
          for (std::size_t d = 0; d < ndom; ++d) {
            if (cover_row[d] == 0 &&
                wildcard_matches(interner.str(pattern),
                                 interner.str(domains[d]))) {
              cover_row[d] = 1;
            }
          }
        } else {
          // Literal SAN: lowered equality is interned-id equality.
          const std::uint32_t san_id = interner.intern_lower(san);
          for (std::size_t d = 0; d < ndom; ++d) {
            if (domains[d] == san_id) cover_row[d] = 1;
          }
        }
      }
    }

    // Exclusion semantics, exactly as ConnectionRecord::excludes: the
    // 421 list wins, then an announced origin set excludes every domain
    // outside it. Entries are compared RAW against the lowered domain —
    // a stored entry only ever matched the host when byte-equal to it.
    if (!c.excluded_domains.empty() || c.origin_set.has_value()) {
      for (std::size_t d = 0; d < ndom; ++d) {
        const std::string_view dom_str = interner.str(domains[d]);
        for (const std::string& excl : c.excluded_domains) {
          if (excl == dom_str) {
            excl_row[d] = 1;
            break;
          }
        }
        if (excl_row[d] == 0 && c.origin_set.has_value()) {
          bool in_set = false;
          for (const std::string& origin : *c.origin_set) {
            if (origin == dom_str) {
              in_set = true;
              break;
            }
          }
          if (!in_set) excl_row[d] = 1;
        }
      }
    }
  }
}

}  // namespace h2r::core
