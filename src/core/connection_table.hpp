// Struct-of-arrays view of one site's connections for the classifier
// sweep (paper §4.1 — the O(n²) previous-connection scan).
//
// `std::vector<ConnectionRecord>` spreads the fields the sweep touches
// (open/close times, endpoint, domain, SANs, exclusions) across dozens
// of heap blocks per record; the sweep also re-lowercased and re-matched
// the same strings for every pair AND every duration model. The table
// flattens a site once:
//
//   * times and ids live in cache-dense columns (one per field);
//   * domains are interned (core/intern.hpp) and compressed to a dense
//     per-site domain index, endpoints to a dense endpoint id — the
//     sweep compares 32-bit ids, never strings;
//   * the model-INDEPENDENT pair predicates — "P's certificate covers
//     C's domain" and "P excluded C's domain" — are precomputed into
//     connection × distinct-domain bit matrices, shared by all 2-3
//     duration-model sweeps of the same site.
//
// Columns are allocated from a per-worker util::Arena (reset per site);
// the table holds no owning pointers into the observation it was built
// from except through the Interner, so output materialization always
// goes ids -> interned string -> ordinary heap string (ids never appear
// in serialized output — DESIGN §12).
#pragma once

#include <cstdint>

#include "core/connection.hpp"
#include "core/intern.hpp"
#include "util/arena.hpp"

namespace h2r::core {

struct ConnectionTable {
  /// Sentinel operator id when the record carried no operator name.
  static constexpr std::uint32_t kNoOperator = 0xFFFFFFFFu;

  explicit ConnectionTable(util::Arena* arena)
      : opened(alloc_time(arena)),
        closed_or_max(alloc_time(arena)),
        last_request_end(alloc_time(arena)),
        domain(alloc_u32(arena)),
        local_domain(alloc_u32(arena)),
        endpoint(alloc_u32(arena)),
        base_domain(alloc_u32(arena)),
        operator_id(alloc_u32(arena)),
        host_order(alloc_u32(arena)),
        privacy(alloc_u8(arena)),
        has_served(alloc_u8(arena)),
        domains(alloc_u32(arena)),
        covers(alloc_u8(arena)),
        excluded(alloc_u8(arena)),
        served(alloc_u8(arena)) {}

  /// Builds every column and matrix from `site` (connections in open
  /// order, as the classifier contract requires). Lowered domains and
  /// SAN patterns are interned into `interner`.
  void build(const SiteObservation& site, Interner& interner);

  std::size_t size() const noexcept { return opened.size(); }
  std::size_t distinct_domains() const noexcept { return domains.size(); }

  /// Did connection `j`'s certificate cover distinct domain `d`?
  bool covers_domain(std::size_t j, std::size_t d) const noexcept {
    return covers[j * domains.size() + d] != 0;
  }
  /// Did connection `j` exclude distinct domain `d` (421 / ORIGIN)?
  bool excludes_domain(std::size_t j, std::size_t d) const noexcept {
    return excluded[j * domains.size() + d] != 0;
  }
  /// Does connection `j`'s server serve distinct domain `d`? Only
  /// meaningful when has_served[j] (NetLog records carry vhost lists; HAR
  /// records do not).
  bool serves_domain(std::size_t j, std::size_t d) const noexcept {
    return served[j * domains.size() + d] != 0;
  }

  // Per-connection columns, index = connection index in open order.
  util::ArenaVector<util::SimTime> opened;
  util::ArenaVector<util::SimTime> closed_or_max;  // closed_at or kSimTimeMax
  util::ArenaVector<util::SimTime> last_request_end;
  util::ArenaVector<std::uint32_t> domain;        // interned lowered domain
  util::ArenaVector<std::uint32_t> local_domain;  // index into `domains`
  util::ArenaVector<std::uint32_t> endpoint;      // dense per-site endpoint
  util::ArenaVector<std::uint32_t> base_domain;   // interned eTLD+1 of domain
  util::ArenaVector<std::uint32_t> operator_id;   // interned; kNoOperator
  util::ArenaVector<std::uint32_t> host_order;    // nth connection (0-based)
                                                  // of this initial domain
  util::ArenaVector<std::uint8_t> privacy;        // credentialless pool bit
  util::ArenaVector<std::uint8_t> has_served;     // served row is meaningful

  /// Distinct interned initial domains, in first-appearance order.
  util::ArenaVector<std::uint32_t> domains;

  // size() x distinct_domains() matrices, row-major by connection.
  util::ArenaVector<std::uint8_t> covers;
  util::ArenaVector<std::uint8_t> excluded;
  util::ArenaVector<std::uint8_t> served;

 private:
  static util::ArenaAllocator<util::SimTime> alloc_time(util::Arena* a) {
    return util::ArenaAllocator<util::SimTime>(a);
  }
  static util::ArenaAllocator<std::uint32_t> alloc_u32(util::Arena* a) {
    return util::ArenaAllocator<std::uint32_t>(a);
  }
  static util::ArenaAllocator<std::uint8_t> alloc_u8(util::Arena* a) {
    return util::ArenaAllocator<std::uint8_t>(a);
  }
};

}  // namespace h2r::core
