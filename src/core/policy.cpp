#include "core/policy.hpp"

#include "util/env.hpp"

namespace h2r::core {

std::uint8_t Policy::mask() const noexcept {
  std::uint8_t m = 0;
  if (origin_frame) m |= kKnobOriginFrame;
  if (sync_dns) m |= kKnobSyncDns;
  if (cert_consolidation) m |= kKnobCertConsolidation;
  if (ignore_credentials) m |= kKnobIgnoreCredentials;
  return m;
}

std::size_t Policy::knob_count() const noexcept {
  std::size_t count = 0;
  for (std::uint8_t m = mask(); m != 0; m &= static_cast<std::uint8_t>(m - 1)) {
    ++count;
  }
  return count;
}

std::string Policy::label() const {
  if (!counterfactual()) return "baseline";
  std::string out;
  for (const PolicyKnob knob : {kKnobOriginFrame, kKnobSyncDns,
                                kKnobCertConsolidation,
                                kKnobIgnoreCredentials}) {
    if ((mask() & knob) != 0) {
      out += '+';
      out += to_string(knob);
    }
  }
  return out;
}

Policy Policy::with_mask(std::uint8_t mask) { return with_mask(mask, Policy{}); }

Policy Policy::with_mask(std::uint8_t mask, const Policy& base) {
  Policy p = base;
  p.origin_frame = (mask & kKnobOriginFrame) != 0;
  p.sync_dns = (mask & kKnobSyncDns) != 0;
  p.cert_consolidation = (mask & kKnobCertConsolidation) != 0;
  p.ignore_credentials = (mask & kKnobIgnoreCredentials) != 0;
  return p;
}

Policy Policy::from_env() {
  Policy p;
  const std::string duration = util::env_string("H2R_POLICY_DURATION", "exact");
  if (duration == "endless") {
    p.duration = DurationModel::kEndless;
  } else if (duration == "immediate") {
    p.duration = DurationModel::kImmediate;
  } else {
    p.duration = DurationModel::kExact;
  }
  p.origin_frame = util::env_flag("H2R_POLICY_ORIGIN_FRAME");
  p.sync_dns = util::env_flag("H2R_POLICY_SYNC_DNS");
  p.cert_consolidation = util::env_flag("H2R_POLICY_CERT_CONSOLIDATION");
  p.ignore_credentials = util::env_flag("H2R_POLICY_IGNORE_CREDENTIALS");
  return p;
}

bool operator==(const Policy& a, const Policy& b) noexcept {
  // Field-by-field, not via mask(): mask() packs exactly the four knob
  // bits today, but a comparison routed through it would silently ignore
  // any future field that is not a knob — the exact gap
  // contract.eq-coverage exists to catch.
  return a.duration == b.duration && a.horizon == b.horizon &&
         a.origin_frame == b.origin_frame && a.sync_dns == b.sync_dns &&
         a.cert_consolidation == b.cert_consolidation &&
         a.ignore_credentials == b.ignore_credentials;
}

std::string_view to_string(PolicyKnob knob) {
  switch (knob) {
    case kKnobOriginFrame: return "origin_frame";
    case kKnobSyncDns: return "sync_dns";
    case kKnobCertConsolidation: return "cert_consolidation";
    case kKnobIgnoreCredentials: return "ignore_credentials";
  }
  return "?";
}

}  // namespace h2r::core
