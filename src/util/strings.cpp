#include "util/strings.hpp"

#include <cctype>

namespace h2r::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

namespace {
template <typename Range>
std::string join_impl(const Range& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out.append(sep);
    out.append(part);
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string to_lower(std::string_view s) {
  // ASCII-only fold, branch-local instead of a locale lookup per char:
  // this runs on every domain the stitcher and aggregator touch. The
  // inputs are DNS names, so the C-locale std::tolower it replaces
  // behaved identically.
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + ('a' - 'A'));
  }
  return out;
}

std::string_view to_lower_into(std::string_view s, char* buf,
                               std::size_t buf_size) noexcept {
  const std::size_t n = s.size() < buf_size ? s.size() : buf_size;
  for (std::size_t i = 0; i < n; ++i) {
    char c = s[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + ('a' - 'A'));
    buf[i] = c;
  }
  return {buf, n};
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view base_domain(std::string_view host) noexcept {
  const std::size_t last = host.rfind('.');
  if (last == std::string_view::npos || last == 0) return host;
  const std::size_t second = host.rfind('.', last - 1);
  if (second == std::string_view::npos) return host;
  return host.substr(second + 1);
}

}  // namespace h2r::util
