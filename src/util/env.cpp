#include "util/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string_view>

namespace h2r::util {

std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                      std::uint64_t minimum) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  // strtoull skips whitespace and wraps negative literals; require the
  // first character to be a digit so "-4", " 7" and "+2" all fall back.
  if (*value < '0' || *value > '9') return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (errno == ERANGE || end == value || *end != '\0') return fallback;
  if (parsed < minimum) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

double env_double(const char* name, double fallback, double min, double max) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE) return fallback;
  // The negated comparison also rejects NaN.
  if (!(parsed >= min && parsed <= max)) return fallback;
  return parsed;
}

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' &&
         std::string_view(value) != "0";
}

std::string env_string(const char* name, std::string fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

}  // namespace h2r::util
