#include "util/format.hpp"

#include <cmath>
#include <cstdio>

namespace h2r::util {

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string human_count(std::uint64_t n) {
  if (n >= 1000000) {
    return fixed(static_cast<double>(n) / 1e6, 2) + " M";
  }
  if (n >= 1000) {
    return fixed(static_cast<double>(n) / 1e3, 2) + " k";
  }
  return std::to_string(n);
}

std::string percent(double numerator, double denominator) {
  if (denominator <= 0.0) return "- %";
  const double pct = 100.0 * numerator / denominator;
  return std::to_string(static_cast<long long>(std::llround(pct))) + " %";
}

std::string seconds_str(std::int64_t millis) {
  return fixed(static_cast<double>(millis) / 1000.0, 1) + "s";
}

}  // namespace h2r::util
