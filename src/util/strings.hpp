// Small string utilities shared across modules.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace h2r::util {

/// Splits `s` on `sep`, keeping empty fields ("a..b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// ASCII-folds `s` into the caller's buffer and returns the folded view —
/// the allocation-free variant for hot paths (DNS keys, host compares).
/// `buf_size` must be >= s.size(); callers pass a stack array sized for
/// the domain (e.g. 254 bytes, the DNS name cap) and fall back to
/// to_lower() for oversized inputs.
std::string_view to_lower_into(std::string_view s, char* buf,
                               std::size_t buf_size) noexcept;

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// True if `s` ends with `suffix` (case-sensitive).
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// True if `s` starts with `prefix` (case-sensitive).
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Registrable-domain heuristic: returns the last two labels of a host name
/// ("www.google-analytics.com" -> "google-analytics.com"). Good enough for a
/// synthetic ecosystem where we control the names; a full public-suffix list
/// is out of scope.
std::string_view base_domain(std::string_view host) noexcept;

}  // namespace h2r::util
