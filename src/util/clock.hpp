// Simulated time.
//
// All timestamps in the simulator are SimTime: milliseconds since the start
// of the simulated epoch. Connection lifecycles, DNS TTLs and load-balancing
// slots all share this clock, which makes runs fully deterministic.
#pragma once

#include <cstdint>
#include <limits>

namespace h2r::util {

/// Milliseconds since the simulated epoch.
using SimTime = std::int64_t;

constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

constexpr SimTime milliseconds(std::int64_t n) noexcept { return n; }
constexpr SimTime seconds(std::int64_t n) noexcept { return n * 1000; }
constexpr SimTime minutes(std::int64_t n) noexcept { return n * 60 * 1000; }
constexpr SimTime hours(std::int64_t n) noexcept { return n * 3600 * 1000; }
constexpr SimTime days(std::int64_t n) noexcept { return n * 86400 * 1000; }

/// A manually advanced clock. Components take a `const SimClock&` when they
/// only read time and a `SimClock&` when they drive it forward.
class SimClock {
 public:
  constexpr SimClock() noexcept = default;
  constexpr explicit SimClock(SimTime start) noexcept : now_(start) {}

  constexpr SimTime now() const noexcept { return now_; }

  constexpr void advance(SimTime delta) noexcept { now_ += delta; }
  constexpr void advance_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }

 private:
  SimTime now_ = 0;
};

}  // namespace h2r::util
