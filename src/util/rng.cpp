#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace h2r::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_seed(std::uint64_t base, std::string_view name) noexcept {
  std::uint64_t state = base;
  for (unsigned char c : name) {
    state ^= c;
    (void)splitmix64(state);
  }
  return splitmix64(state);
}

std::uint64_t combine_seed(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
  return splitmix64(state);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t state = seed;
  for (auto& word : s_) word = splitmix64(state);
}

Rng Rng::fork(std::string_view name) const noexcept {
  return Rng{hash_seed(seed_, name)};
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t range = hi - lo;
  if (range == ~0ull) return next();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = range + 1;
  const std::uint64_t limit = ~0ull - (~0ull % bound);
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return lo + x % bound;
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) noexcept {
  assert(n > 0);
  return static_cast<std::size_t>(uniform(0, n - 1));
}

std::size_t Rng::weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0.0;
  assert(total > 0.0);
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

std::size_t Rng::escalating(std::size_t min_count, double p,
                            std::size_t max_count) noexcept {
  std::size_t k = min_count;
  while (k < max_count && chance(p)) ++k;
  return k;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (double& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double x = rng.uniform01();
  // Binary search for the first CDF entry >= x.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace h2r::util
