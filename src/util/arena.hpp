// Per-worker monotonic arena for per-site scratch.
//
// The crawl's hot loop used to build and tear down thousands of little
// heap blocks per site (classifier columns, cover/exclusion matrices,
// per-finding scratch). An Arena turns that into pointer bumps: scratch
// is allocated monotonically from reusable chunks and the whole site's
// worth of it is released with one reset() at the next site's start —
// chunks are kept and rewound, so a warmed-up worker allocates nothing.
//
// Lifetime rules (DESIGN §12):
//   * arena memory is SITE-SCOPED: nothing allocated from an arena may
//     outlive the reset() that ends its site — anything that escapes the
//     per-site scope (findings, reports, observations) is copied into
//     ordinary heap-owned containers first;
//   * deallocate() is a no-op: containers that grow leak their old
//     buffers into the current site's chunk, reclaimed wholesale by
//     reset();
//   * one arena per worker, never shared across threads.
//
// ArenaAllocator is a std-compatible allocator over an Arena. With a
// null arena it degrades to plain operator new/delete — that is the
// H2R_ARENA=0 escape hatch (arena_enabled()), which tests/arena_test.cpp
// uses to pin that results are allocator-independent, byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace h2r::util {

/// H2R_ARENA knob (default on; exactly "0" disables), read through
/// util/env.hpp at every call. Callers sample it when they construct
/// their per-worker state, so a run's workers all see one answer.
bool arena_enabled();

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes < 256 ? 256 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two). Requests
  /// larger than the chunk size get a dedicated chunk.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    std::size_t offset = (used_ + (align - 1)) & ~(align - 1);
    if (current_ >= chunks_.size() || offset + bytes > chunks_[current_].size) {
      next_chunk(bytes + align);
      offset = (used_ + (align - 1)) & ~(align - 1);
    }
    used_ = offset + bytes;
    high_water_ += bytes;
    return chunks_[current_].data.get() + offset;
  }

  /// Rewinds to empty without releasing chunks: the next site's scratch
  /// reuses the same memory. Everything previously allocated is invalid.
  void reset() noexcept {
    current_ = 0;
    used_ = 0;
    high_water_ = 0;
  }

  /// Bytes handed out since the last reset() (diagnostics only).
  std::size_t bytes_used() const noexcept { return high_water_; }
  /// Chunks currently owned (they survive reset()).
  std::size_t chunk_count() const noexcept { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void next_chunk(std::size_t min_bytes) {
    // Advance into an already-owned chunk when one is large enough;
    // otherwise grow. Rewound chunks are reused in order, so a steady
    // per-site working set stops allocating after the first site.
    std::size_t next = current_ >= chunks_.size() ? 0 : current_ + 1;
    while (next < chunks_.size() && chunks_[next].size < min_bytes) ++next;
    if (next == chunks_.size()) {
      const std::size_t size =
          min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
      chunks_.push_back(Chunk{std::unique_ptr<char[]>(new char[size]), size});
    }
    current_ = next;
    used_ = 0;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index of the chunk being bumped
  std::size_t used_ = 0;     // bytes bumped in chunks_[current_]
  std::size_t high_water_ = 0;
};

/// std allocator over an Arena; with arena == nullptr it is plain heap
/// allocation, so the same container type serves both H2R_ARENA modes.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT(google-explicit-constructor)
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena memory is reclaimed wholesale by Arena::reset().
  }

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace h2r::util
