#include "util/arena.hpp"

#include "util/env.hpp"

namespace h2r::util {

bool arena_enabled() {
  // Default ON: H2R_ARENA=0 falls back to plain heap allocation.
  // Deliberately NOT cached: the knob is read at context construction
  // (cold), and tests flip it between in-process crawls.
  return env_string("H2R_ARENA", "1") != "0";
}

}  // namespace h2r::util
