// Deterministic random number generation.
//
// All simulation randomness flows through Rng so that every experiment is
// reproducible from a single 64-bit seed. The generator is xoshiro256**,
// seeded via SplitMix64 (the construction recommended by its authors).
#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <span>
#include <string_view>
#include <vector>

namespace h2r::util {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for cheap stateless hashing of seed material.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Mixes a string into a 64-bit value; used to derive per-entity seeds
/// (e.g. per-domain, per-resolver) from a run seed plus a name.
std::uint64_t hash_seed(std::uint64_t base, std::string_view name) noexcept;

/// Combines two 64-bit seeds into one (order-sensitive).
std::uint64_t combine_seed(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// Derives an independent generator for a named sub-component.
  [[nodiscard]] Rng fork(std::string_view name) const noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Uniformly picks an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[index(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[index(items.size())];
  }

  /// Samples an index according to non-negative weights (linear scan).
  /// Requires at least one strictly positive weight.
  std::size_t weighted(std::span<const double> weights) noexcept;

  /// Geometric-ish count: returns k >= min_count, continuing while chance(p).
  /// Capped at max_count to keep workloads bounded.
  std::size_t escalating(std::size_t min_count, double p,
                         std::size_t max_count) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;
};

/// Zipf(s, n) sampler over ranks 1..n, via precomputed CDF.
/// Models heavy-tailed popularity (site traffic, service embed frequency).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Returns a rank in [0, n).
  std::size_t sample(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace h2r::util
