// Typed environment-variable parsing with fallback-on-invalid semantics.
//
// Before this header, every layer that read an H2R_* knob re-implemented
// parsing with subtly different invalid-value handling: the study config
// used atoll (accepting "12abc" as 12), the fault config used strtod with
// its own range checks, and the benches called getenv directly. These
// helpers are the one place those semantics live:
//
//   * unset or empty variables always yield the fallback;
//   * the whole string must parse — trailing junk ("12abc"), signs on
//     unsigned values and out-of-range literals yield the fallback;
//   * values below a caller-supplied minimum (or outside [min, max] for
//     doubles) yield the fallback, never a clamp — a bad knob should be
//     ignored loudly-documented, not silently adjusted.
//
// tests/env_test.cpp pins every one of these rules.
#pragma once

#include <cstdint>
#include <string>

namespace h2r::util {

/// Unsigned integer knob. Returns `fallback` when `name` is unset, empty,
/// not a whole-string decimal number, out of uint64 range, or below
/// `minimum` (e.g. minimum = 1 for "must be positive" knobs).
std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                      std::uint64_t minimum = 0);

/// Floating-point knob bounded to [min, max] (defaults fit probabilities).
/// Returns `fallback` when unset, empty, not a whole-string number, NaN,
/// or outside the bounds.
double env_double(const char* name, double fallback, double min = 0.0,
                  double max = 1.0);

/// Boolean knob: false when unset, empty or exactly "0"; true otherwise
/// (matching the long-standing H2R_RESUME convention).
bool env_flag(const char* name);

/// String knob: the variable's value, or `fallback` when unset or empty.
std::string env_string(const char* name, std::string fallback = {});

}  // namespace h2r::util
