// A minimal std::expected stand-in (we target C++20; std::expected is C++23).
//
// Used by parsers (JSON, IP addresses, HAR) to report recoverable input
// errors without exceptions on the hot path.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace h2r::util {

/// Error payload: a human-readable message plus an optional input offset.
struct Error {
  std::string message;
  std::size_t offset = 0;

  friend bool operator==(const Error&, const Error&) = default;
};

template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected<E> unexpected(E e) {
  return Unexpected<E>{std::move(e)};
}

/// Either a value of type T or an Error-like E.
template <typename T, typename E = Error>
class Expected {
 public:
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> e)
      : data_(std::in_place_index<1>, std::move(e.error)) {}

  bool has_value() const noexcept { return data_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() & {
    assert(has_value());
    return std::get<0>(data_);
  }
  const T& value() const& {
    assert(has_value());
    return std::get<0>(data_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(data_));
  }

  const E& error() const& {
    assert(!has_value());
    return std::get<1>(data_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& {
    return has_value() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, E> data_;
};

}  // namespace h2r::util
