// Human-readable number formatting matching the paper's table style
// ("2.25 M", "52.31 k", "885.40 k") plus percentage helpers.
#pragma once

#include <cstdint>
#include <string>

namespace h2r::util {

/// Formats a count the way the paper prints it: values >= 1e6 as "x.yz M",
/// >= 1e3 as "x.yz k", otherwise as a plain integer.
std::string human_count(std::uint64_t n);

/// Formats a ratio as an integer percentage ("76 %"), the paper's rounding.
std::string percent(double numerator, double denominator);

/// Fixed-point formatting with `digits` decimals.
std::string fixed(double value, int digits);

/// Formats a SimTime-style millisecond duration as seconds ("122.2s").
std::string seconds_str(std::int64_t millis);

}  // namespace h2r::util
