#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

namespace h2r::obs {

namespace {

template <typename Map, typename Fold>
void merge_into(Map& target, const Map& source, Fold fold) {
  for (const auto& [name, value] : source) {
    auto [it, inserted] = target.try_emplace(name, value);
    if (!inserted) fold(it->second, value);
  }
}

}  // namespace

void Metrics::add(std::string_view name, std::uint64_t delta) {
  if (delta == 0) return;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Metrics::gauge_max(std::string_view name, std::int64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else if (value > it->second) {
    it->second = value;
  }
}

void Metrics::observe(std::string_view name, util::SimTime value,
                      std::uint64_t count) {
  if (count == 0) return;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), stats::TimeHistogram{hist_budget_})
             .first;
  }
  it->second.add(value, count);
}

void Metrics::restore_histogram(std::string_view name,
                                stats::TimeHistogram hist) {
  histograms_.insert_or_assign(std::string(name), std::move(hist));
}

void Metrics::add_diag(std::string_view name, std::uint64_t delta) {
  if (delta == 0) return;
  auto it = diag_counters_.find(name);
  if (it == diag_counters_.end()) {
    diag_counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Metrics::merge(const Metrics& other) {
  merge_into(counters_, other.counters_,
             [](std::uint64_t& a, std::uint64_t b) { a += b; });
  merge_into(gauges_, other.gauges_, [](std::int64_t& a, std::int64_t b) {
    if (b > a) a = b;
  });
  merge_into(histograms_, other.histograms_,
             [](stats::TimeHistogram& a, const stats::TimeHistogram& b) {
               a.merge(b);
             });
  merge_into(diag_counters_, other.diag_counters_,
             [](std::uint64_t& a, std::uint64_t b) { a += b; });
}

std::uint64_t Metrics::counter(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t Metrics::gauge(std::string_view name) const noexcept {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const stats::TimeHistogram& Metrics::histogram(
    std::string_view name) const noexcept {
  static const stats::TimeHistogram kEmpty;
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? kEmpty : it->second;
}

std::uint64_t Metrics::diag_counter(std::string_view name) const noexcept {
  const auto it = diag_counters_.find(name);
  return it == diag_counters_.end() ? 0 : it->second;
}

Metrics& MetricRegistry::shard(unsigned worker) {
  while (shards_.size() <= worker) {
    shards_.emplace_back().set_histogram_budget(hist_budget_);
  }
  return shards_[worker];
}

void MetricRegistry::set_histogram_budget(std::uint32_t bin_budget) {
  hist_budget_ = bin_budget;
  for (Metrics& shard : shards_) shard.set_histogram_budget(bin_budget);
}

Metrics MetricRegistry::merged() const {
  Metrics total;
  for (const Metrics& shard : shards_) total.merge(shard);
  return total;
}

json::Value to_json(const Metrics& metrics) {
  json::Object doc;
  // std::map iteration is already sorted, so every section is emitted in
  // a canonical key order and two equal snapshots serialize identically.
  json::Object counters;
  for (const auto& [name, count] : metrics.counters()) {
    counters.set(name, static_cast<std::int64_t>(count));
  }
  doc.set("counters", std::move(counters));

  json::Object gauges;
  for (const auto& [name, value] : metrics.gauges()) {
    gauges.set(name, value);
  }
  doc.set("gauges", std::move(gauges));

  json::Object histograms;
  for (const auto& [name, histogram] : metrics.histograms()) {
    json::Array pairs;
    for (const auto& [value, count] : histogram) {
      json::Array pair;
      pair.emplace_back(value);
      pair.emplace_back(static_cast<std::int64_t>(count));
      pairs.emplace_back(std::move(pair));
    }
    if (histogram.bin_budget() == 0) {
      histograms.set(name, std::move(pairs));
    } else {
      // Budgeted sketch: the level must ride along — it cannot be
      // re-derived from sparse bins (see stats::TimeHistogram).
      json::Object sketch;
      sketch.set("budget", static_cast<std::int64_t>(histogram.bin_budget()));
      sketch.set("level", static_cast<std::int64_t>(histogram.level()));
      sketch.set("bins", std::move(pairs));
      histograms.set(name, std::move(sketch));
    }
  }
  doc.set("histograms", std::move(histograms));
  return json::Value{std::move(doc)};
}

util::Expected<Metrics> metrics_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return util::unexpected(util::Error{"metrics: not an object"});
  }
  for (const auto& [key, section] : value.as_object()) {
    (void)section;
    if (key != "counters" && key != "gauges" && key != "histograms") {
      return util::unexpected(util::Error{"metrics: unknown key: " + key});
    }
  }

  Metrics metrics;
  const json::Value& counters = value["counters"];
  if (!counters.is_object()) {
    return util::unexpected(util::Error{"metrics: bad counters section"});
  }
  for (const auto& [name, count] : counters.as_object()) {
    if (!count.is_int() || count.as_int() < 0) {
      return util::unexpected(util::Error{"metrics: bad counter: " + name});
    }
    metrics.add(name, static_cast<std::uint64_t>(count.as_int()));
  }

  const json::Value& gauges = value["gauges"];
  if (!gauges.is_object()) {
    return util::unexpected(util::Error{"metrics: bad gauges section"});
  }
  for (const auto& [name, gauge] : gauges.as_object()) {
    if (!gauge.is_int()) {
      return util::unexpected(util::Error{"metrics: bad gauge: " + name});
    }
    metrics.gauge_max(name, gauge.as_int());
  }

  const json::Value& histograms = value["histograms"];
  if (!histograms.is_object()) {
    return util::unexpected(util::Error{"metrics: bad histograms section"});
  }
  for (const auto& [name, entry] : histograms.as_object()) {
    const json::Value* pairs = &entry;
    std::uint32_t budget = 0;
    std::uint32_t level = 0;
    if (entry.is_object()) {
      for (const auto& [key, unused] : entry.as_object()) {
        (void)unused;
        if (key != "budget" && key != "level" && key != "bins") {
          return util::unexpected(
              util::Error{"metrics: unknown histogram key: " + key});
        }
      }
      const json::Value& budget_value = entry["budget"];
      const json::Value& level_value = entry["level"];
      if (!budget_value.is_int() || budget_value.as_int() <= 0 ||
          budget_value.as_int() > 0xFFFFFFFFll || !level_value.is_int() ||
          level_value.as_int() < 0 || level_value.as_int() > 0xFFFFFFFFll) {
        return util::unexpected(
            util::Error{"metrics: bad histogram budget/level: " + name});
      }
      budget = static_cast<std::uint32_t>(budget_value.as_int());
      level = static_cast<std::uint32_t>(level_value.as_int());
      pairs = &entry["bins"];
    }
    if (!pairs->is_array()) {
      return util::unexpected(util::Error{"metrics: bad histogram: " + name});
    }
    stats::TimeHistogram::Map bins;
    bool first = true;
    util::SimTime previous = 0;
    for (const json::Value& pair : pairs->as_array()) {
      if (!pair.is_array() || pair.as_array().size() != 2 ||
          !pair.at(0).is_int() || !pair.at(1).is_int() ||
          pair.at(1).as_int() <= 0) {
        return util::unexpected(
            util::Error{"metrics: bad histogram pair in: " + name});
      }
      const util::SimTime sample = pair.at(0).as_int();
      if (!first && sample <= previous) {
        return util::unexpected(
            util::Error{"metrics: unsorted histogram: " + name});
      }
      first = false;
      previous = sample;
      bins[sample] = static_cast<std::uint64_t>(pair.at(1).as_int());
    }
    auto restored = stats::TimeHistogram::restore(budget, level,
                                                  std::move(bins));
    if (!restored) {
      return util::unexpected(
          util::Error{"metrics: inconsistent histogram: " + name});
    }
    metrics.restore_histogram(name, std::move(*restored));
  }
  return metrics;
}

std::string render_table(const Metrics& metrics) {
  if (metrics.empty()) return {};
  std::size_t width = 0;
  const auto widen = [&width](const auto& map) {
    for (const auto& [name, value] : map) {
      (void)value;
      if (name.size() > width) width = name.size();
    }
  };
  widen(metrics.counters());
  widen(metrics.gauges());
  widen(metrics.histograms());
  widen(metrics.diag_counters());

  std::string out;
  char line[256];
  const int name_width = static_cast<int>(width);
  for (const auto& [name, count] : metrics.counters()) {
    std::snprintf(line, sizeof(line), "  %-*s  %" PRIu64 "\n", name_width,
                  name.c_str(), count);
    out += line;
  }
  for (const auto& [name, value] : metrics.gauges()) {
    std::snprintf(line, sizeof(line), "  %-*s  max=%" PRId64 "\n", name_width,
                  name.c_str(), value);
    out += line;
  }
  for (const auto& [name, histogram] : metrics.histograms()) {
    const std::uint64_t count = stats::histogram_count(histogram);
    const util::SimTime p50 = stats::histogram_quantile(histogram, 0.5).value_or(0);
    const util::SimTime p99 = stats::histogram_quantile(histogram, 0.99).value_or(0);
    std::snprintf(line, sizeof(line),
                  "  %-*s  count=%" PRIu64 " p50=%" PRId64 "ms p99=%" PRId64
                  "ms\n",
                  name_width, name.c_str(), count, p50, p99);
    out += line;
  }
  for (const auto& [name, count] : metrics.diag_counters()) {
    std::snprintf(line, sizeof(line), "  %-*s  %" PRIu64 "  (diagnostic)\n",
                  name_width, name.c_str(), count);
    out += line;
  }
  return out;
}

}  // namespace h2r::obs
