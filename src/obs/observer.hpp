// The one observation interface the crawl carries.
//
// PRs 1-3 each threaded a new callback parameter through the crawl entry
// points: PR 1 added ShardSink factories, PR 2 the fault ledger, PR 3
// ChunkSink for journaling — three signatures, three lifetime contracts.
// This interface replaces them all: CrawlOptions carries one Observer*,
// and every observation channel (per-site results with their NetLog,
// chunk checkpoints, metric shards) flows through it.
//
// Threading contract, designed around the deterministic-merge rule:
//   * begin() and metrics() run on the coordinating thread before any
//     worker starts — allocate per-worker state there.
//   * site() and chunk() run on the worker's own thread, only ever with
//     that worker's index; two calls with the same index never race.
//   * Nothing is called after the crawl returns; the observer may then
//     be read without synchronization.
#pragma once

#include "obs/metrics.hpp"

namespace h2r::browser {
struct ChunkEvent;
struct SiteResult;
}  // namespace h2r::browser

namespace h2r::obs {

class Observer {
 public:
  virtual ~Observer();

  /// The crawl is about to start `workers` worker loops (1 for the
  /// sequential path). Coordinating thread.
  virtual void begin(unsigned workers) { (void)workers; }

  /// Metrics shard for `worker`, or nullptr to skip recording for it.
  /// Called once per worker on the coordinating thread, after begin();
  /// the shard must stay valid until the crawl returns.
  virtual Metrics* metrics(unsigned worker) {
    (void)worker;
    return nullptr;
  }

  /// One site finished (reachable or not), in claim order on the
  /// worker's thread. The result is the observer's to consume — it may
  /// move pieces out; the crawl discards it afterwards.
  virtual void site(unsigned worker, browser::SiteResult& result) {
    (void)worker;
    (void)result;
  }

  /// One work-queue chunk drained (chunked crawls only), on the worker's
  /// thread.
  virtual void chunk(const browser::ChunkEvent& event) { (void)event; }
};

/// Observer that only collects metrics — one shard per worker, merged on
/// demand. The building block for the CLI, benches and tests.
class MetricsObserver : public Observer {
 public:
  void begin(unsigned workers) override;
  Metrics* metrics(unsigned worker) override;

  const MetricRegistry& registry() const noexcept { return registry_; }
  Metrics merged() const { return registry_.merged(); }

 private:
  MetricRegistry registry_;
};

}  // namespace h2r::obs
