#include "obs/process.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace h2r::obs {

std::uint64_t peak_rss_kib() {
#if defined(__linux__)
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    // "VmHWM:     123456 kB" — the high-water mark of the resident set.
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(status);
  return kib;
#else
  return 0;
#endif
}

}  // namespace h2r::obs
