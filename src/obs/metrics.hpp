// Deterministic metrics.
//
// The engine's own runtime is an attribution problem too: PRs 1-3 each
// bolted on a private counter struct (WorkerCounters, the fault ledger,
// journal telemetry) with its own printing path. This module is the one
// substrate they converge on: named counters, high-water gauges and
// simulated-time histograms, accumulated into cheap per-worker shards and
// merged commutatively like every other measurement in the crawl.
//
// Two domains with different contracts:
//
//   * DETERMINISTIC metrics are pure functions of (seed, config, site
//     set): counters add, gauges merge by max, histograms are value->count
//     multisets — all order-independent, so a merged snapshot is
//     bit-identical for any thread count (tests/metrics_determinism_test
//     pins snapshots across H2R_THREADS in {1, 2, 7}).
//   * DIAGNOSTIC metrics (prefix-free, recorded via the *_diag calls)
//     capture scheduling accidents — chunks claimed, journal bytes, wall
//     time buckets. They are rendered for humans but excluded from
//     to_json(), exactly like WorkerCounters are excluded from
//     CrawlSummary::operator==.
//
// Snapshots serialize to a strict JSON schema with a round-trip parser
// (metrics_from_json), mirroring core::report_from_json: CI can diff two
// runs byte-for-byte and reject a malformed export instead of guessing.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "json/json.hpp"
#include "stats/distribution.hpp"
#include "util/clock.hpp"
#include "util/expected.hpp"

namespace h2r::obs {

/// One mergeable metric accumulator — a worker's shard, a campaign's
/// fold, or the whole study's snapshot (they are the same type; merging
/// is closed and commutative). Not thread-safe: every worker records into
/// its own shard and the owner merges after the workers join.
class Metrics {
 public:
  /// Deterministic counter: adds `delta` (default 1).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Deterministic high-water gauge: keeps the maximum value ever set.
  /// Max is the only gauge fold that stays commutative under shard
  /// merges, which is why last-write-wins gauges do not exist here.
  void gauge_max(std::string_view name, std::int64_t value);

  /// Deterministic simulated-time histogram sample (`count` copies; the
  /// bulk form is what lets the JSON parser rebuild a histogram without
  /// replaying every sample).
  void observe(std::string_view name, util::SimTime value,
               std::uint64_t count = 1);

  /// Bounds every histogram created by observe() from now on to
  /// `bin_budget` bins (0 = exact; see stats::TimeHistogram). Budgeted
  /// sketches stay order-independent, so the determinism contract is
  /// unchanged — but the budget is part of the measurement, so all
  /// shards being merged must share one value.
  void set_histogram_budget(std::uint32_t bin_budget) noexcept {
    hist_budget_ = bin_budget;
  }

  /// Installs a deserialized histogram verbatim (JSON parser only;
  /// replaces any histogram already recorded under `name`).
  void restore_histogram(std::string_view name, stats::TimeHistogram hist);

  /// Diagnostic counter (scheduling/wall-clock domain; excluded from
  /// to_json and the determinism contract).
  void add_diag(std::string_view name, std::uint64_t delta = 1);

  /// Commutative fold: counters add, gauges max, histogram multisets add,
  /// diagnostics add. merge(a) then merge(b) == merge(b) then merge(a).
  void merge(const Metrics& other);

  std::uint64_t counter(std::string_view name) const noexcept;
  std::int64_t gauge(std::string_view name) const noexcept;
  /// Histogram for `name` (empty when never observed).
  const stats::TimeHistogram& histogram(std::string_view name) const noexcept;
  std::uint64_t diag_counter(std::string_view name) const noexcept;

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           diag_counters_.empty();
  }

  const std::map<std::string, std::uint64_t, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  const std::map<std::string, std::int64_t, std::less<>>& gauges()
      const noexcept {
    return gauges_;
  }
  const std::map<std::string, stats::TimeHistogram, std::less<>>& histograms()
      const noexcept {
    return histograms_;
  }
  const std::map<std::string, std::uint64_t, std::less<>>& diag_counters()
      const noexcept {
    return diag_counters_;
  }

  /// Deterministic domain only — diagnostics are deliberately invisible
  /// to equality, like WorkerCounters in CrawlSummary.
  bool operator==(const Metrics& other) const noexcept {
    return counters_ == other.counters_ && gauges_ == other.gauges_ &&
           histograms_ == other.histograms_;
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, std::int64_t, std::less<>> gauges_;
  std::map<std::string, stats::TimeHistogram, std::less<>> histograms_;
  std::map<std::string, std::uint64_t, std::less<>> diag_counters_;
  std::uint32_t hist_budget_ = 0;
};

/// Owns the per-worker shards of one crawl/campaign. Shard addresses are
/// stable (deque), so a worker can hold its shard pointer for the whole
/// crawl; create shards on the calling thread before the workers start
/// (Observer::begin is the natural place).
class MetricRegistry {
 public:
  /// The shard for `worker`, creating shards [size, worker] on demand.
  /// NOT thread-safe — call from the coordinating thread only.
  Metrics& shard(unsigned worker);

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Histogram bin budget applied to every shard, existing and future
  /// (0 = exact). Set before the workers start recording.
  void set_histogram_budget(std::uint32_t bin_budget);

  /// Commutative fold of every shard into one Metrics.
  Metrics merged() const;

 private:
  std::deque<Metrics> shards_;
  std::uint32_t hist_budget_ = 0;
};

/// Deterministic snapshot -> strict JSON:
///   {"counters": {name: n}, "gauges": {name: v},
///    "histograms": {name: [[value_ms, count], ...]}}
/// Budgeted histograms (see set_histogram_budget) serialize as
///   {"budget": B, "level": L, "bins": [[value_ms, count], ...]}
/// because the quantization level cannot be re-derived from sparse bins.
/// Diagnostics are excluded so the document is byte-identical across
/// thread counts. Keys are emitted in sorted order.
json::Value to_json(const Metrics& metrics);

/// Strict parser for to_json output. Rejects missing/mistyped sections,
/// non-integer or negative counters, malformed histogram pairs and
/// unknown top-level keys. metrics_from_json(to_json(m)) == m.
util::Expected<Metrics> metrics_from_json(const json::Value& value);

/// Human rendering: one aligned line per metric ("  dns.queries  12345"),
/// histograms as count/p50/p99, diagnostics in a trailing section marked
/// "(diagnostic)". Empty string for empty metrics.
std::string render_table(const Metrics& metrics);

}  // namespace h2r::obs
