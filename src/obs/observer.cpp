#include "obs/observer.hpp"

namespace h2r::obs {

Observer::~Observer() = default;

void MetricsObserver::begin(unsigned workers) {
  // Materialize every shard up front so metrics() below never mutates
  // the deque (it may be handed out right before worker threads spawn).
  for (unsigned worker = 0; worker < workers; ++worker) {
    registry_.shard(worker);
  }
}

Metrics* MetricsObserver::metrics(unsigned worker) {
  return &registry_.shard(worker);
}

}  // namespace h2r::obs
