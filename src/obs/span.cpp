#include "obs/span.hpp"

#include <cinttypes>
#include <cstdio>

namespace h2r::obs {

int Trace::begin_span(std::string name, util::SimTime start, int parent) {
  Span span;
  span.name = std::move(name);
  span.start = start;
  span.end = start;
  span.parent = parent;
  spans.push_back(std::move(span));
  return static_cast<int>(spans.size()) - 1;
}

void Trace::end_span(int index, util::SimTime end) {
  if (index >= 0 && static_cast<std::size_t>(index) < spans.size()) {
    spans[static_cast<std::size_t>(index)].end = end;
  }
}

json::Value to_json(const Trace& trace) {
  json::Object doc;
  doc.set("site", trace.site);
  json::Array spans;
  for (const Span& span : trace.spans) {
    json::Object obj;
    obj.set("name", span.name);
    obj.set("start", span.start);
    obj.set("end", span.end);
    obj.set("parent", static_cast<std::int64_t>(span.parent));
    if (!span.attrs.empty()) {
      json::Object attrs;
      for (const auto& [key, value] : span.attrs) attrs.set(key, value);
      obj.set("attrs", std::move(attrs));
    }
    spans.emplace_back(std::move(obj));
  }
  doc.set("spans", std::move(spans));
  return json::Value{std::move(doc)};
}

std::string render(const Trace& trace) {
  std::string out;
  if (!trace.site.empty()) {
    out += trace.site;
    out += '\n';
  }
  // Children are appended after their parent, so depth is 1 + parent's
  // depth, computable in one forward pass.
  std::vector<int> depth(trace.spans.size(), 0);
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const int parent = trace.spans[i].parent;
    if (parent >= 0 && static_cast<std::size_t>(parent) < i) {
      depth[i] = depth[static_cast<std::size_t>(parent)] + 1;
    }
    out.append(static_cast<std::size_t>(depth[i] + 1) * 2, ' ');
    out += trace.spans[i].name;
    char window[64];
    std::snprintf(window, sizeof(window), " [%" PRId64 " .. %" PRId64 "]",
                  trace.spans[i].start, trace.spans[i].end);
    out += window;
    for (const auto& [key, value] : trace.spans[i].attrs) {
      out += ' ';
      out += key;
      out += '=';
      out += value;
    }
    out += '\n';
  }
  return out;
}

}  // namespace h2r::obs
