// Process-level resource observations.
//
// Peak RSS is the one number the streaming-crawl work is accountable to:
// a million-site study must finish under a fixed memory budget, and CI
// enforces that with the H2R_RSS_BUDGET_MB guard (bench_scale_sites and
// the RSS test in tests/streaming_crawl_test.cpp). The value is a
// property of the machine and allocator, not of the simulation — strictly
// diagnostic domain, never serialized into deterministic snapshots.
#pragma once

#include <cstdint>

namespace h2r::obs {

/// The process's peak resident set size ("VmHWM" from /proc/self/status)
/// in KiB. Returns 0 on platforms without procfs or when the read fails —
/// callers treat 0 as "unknown", never as "no memory used".
std::uint64_t peak_rss_kib();

}  // namespace h2r::obs
