// Deterministic span tracing of the per-site pipeline.
//
// A Trace is the per-site analogue of Chromium's NetLog viewer: a tree of
// named intervals (DNS resolve -> TLS handshake -> H2 session -> page
// load -> classify) stamped in *simulated* time. Because every timestamp
// is derived from (seed, site) and spans are appended by the single
// worker that owns the site, a trace is bit-identical across thread
// counts and across runs with the same H2R_SEED — tracing a flake
// reproduces the flake.
//
// Recording is opt-in (BrowserOptions::record_trace); the default crawl
// path never allocates a span.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "util/clock.hpp"

namespace h2r::obs {

/// One timed interval. Point events have start == end. `parent` indexes
/// into Trace::spans (-1 for the root); children always appear after
/// their parent, so index order is also a valid pre-order walk.
struct Span {
  std::string name;
  util::SimTime start = 0;
  util::SimTime end = 0;
  int parent = -1;
  std::map<std::string, std::string> attrs;

  friend bool operator==(const Span&, const Span&) = default;
};

/// The span tree for one site load. Span 0, when present, is the
/// "page.load" root.
struct Trace {
  std::string site;
  std::vector<Span> spans;

  /// Appends an open span and returns its index.
  int begin_span(std::string name, util::SimTime start, int parent = -1);

  /// Closes the span at `index`.
  void end_span(int index, util::SimTime end);

  bool empty() const noexcept { return spans.empty(); }

  friend bool operator==(const Trace&, const Trace&) = default;
};

/// Strict-schema export: {"site": ..., "spans": [{"name", "start", "end",
/// "parent", "attrs"}...]} with attrs in sorted key order.
json::Value to_json(const Trace& trace);

/// Human rendering: one line per span, indented by tree depth, e.g.
///   page.load [86400000 .. 86400396]
///     dns.resolve [86400000 .. 86400000] from_cache=0 host=example.org
/// (tests/obs_test.cpp pins this format for one site — the golden trace.)
std::string render(const Trace& trace);

}  // namespace h2r::obs
