// Autonomous-system database: prefix -> AS mapping with longest-prefix match.
//
// Substrate for the paper's Table 6 ("Top 10 ASNs for connections of cause
// IP"): every redundant connection's destination IP is attributed to the AS
// announcing its longest matching prefix. Implemented as a binary trie over
// address bits, the textbook structure for IP route lookup.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.hpp"

namespace h2r::asdb {

struct AsInfo {
  std::uint32_t asn = 0;
  std::string name;  // e.g. "GOOGLE", "AMAZON-02"

  friend bool operator==(const AsInfo&, const AsInfo&) = default;
};

/// Prefix trie mapping CIDR prefixes to AS records.
class AsDatabase {
 public:
  AsDatabase();
  ~AsDatabase();
  AsDatabase(AsDatabase&&) noexcept;
  AsDatabase& operator=(AsDatabase&&) noexcept;
  AsDatabase(const AsDatabase&) = delete;
  AsDatabase& operator=(const AsDatabase&) = delete;

  /// Registers `prefix` as announced by `info`. Later insertions of the
  /// exact same prefix overwrite earlier ones.
  void add(const net::Prefix& prefix, AsInfo info);

  /// Longest-prefix-match lookup. Empty when no covering prefix exists.
  std::optional<AsInfo> lookup(const net::IpAddress& addr) const;

  /// All registered prefixes (for diagnostics / tests).
  std::vector<net::Prefix> prefixes() const;

  std::size_t size() const noexcept { return size_; }

 private:
  struct Node;
  std::unique_ptr<Node> root_v4_;
  std::unique_ptr<Node> root_v6_;
  std::size_t size_ = 0;
};

}  // namespace h2r::asdb
