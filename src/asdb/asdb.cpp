#include "asdb/asdb.hpp"

namespace h2r::asdb {

struct AsDatabase::Node {
  std::optional<AsInfo> info;
  std::optional<net::Prefix> prefix;
  std::unique_ptr<Node> child[2];
};

AsDatabase::AsDatabase()
    : root_v4_(std::make_unique<Node>()), root_v6_(std::make_unique<Node>()) {}
AsDatabase::~AsDatabase() = default;
AsDatabase::AsDatabase(AsDatabase&&) noexcept = default;
AsDatabase& AsDatabase::operator=(AsDatabase&&) noexcept = default;

void AsDatabase::add(const net::Prefix& prefix, AsInfo info) {
  Node* node =
      prefix.base().is_v4() ? root_v4_.get() : root_v6_.get();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    const int b = prefix.base().bit(depth) ? 1 : 0;
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (!node->info.has_value()) ++size_;
  node->info = std::move(info);
  node->prefix = prefix;
}

std::optional<AsInfo> AsDatabase::lookup(const net::IpAddress& addr) const {
  const Node* node = addr.is_v4() ? root_v4_.get() : root_v6_.get();
  std::optional<AsInfo> best = node->info;
  for (int depth = 0; depth < addr.bit_length(); ++depth) {
    const int b = addr.bit(depth) ? 1 : 0;
    if (!node->child[b]) break;
    node = node->child[b].get();
    if (node->info.has_value()) best = node->info;
  }
  return best;
}

std::vector<net::Prefix> AsDatabase::prefixes() const {
  std::vector<net::Prefix> out;
  // Depth-first walk of both tries.
  struct Walker {
    static void walk(const Node* node, std::vector<net::Prefix>& out) {
      if (node == nullptr) return;
      if (node->prefix.has_value()) out.push_back(*node->prefix);
      walk(node->child[0].get(), out);
      walk(node->child[1].get(), out);
    }
  };
  Walker::walk(root_v4_.get(), out);
  Walker::walk(root_v6_.get(), out);
  return out;
}

}  // namespace h2r::asdb
