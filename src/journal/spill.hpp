// Streaming fold of per-chunk report windows.
//
// A streaming study never keeps per-site state: each crawl worker
// aggregates a chunk's sites into chunk-local AggregateReports (a
// "window"), hands the window over at the chunk boundary, and resets.
// ReportFold is where those windows go: a thread-safe, commutative merge
// into campaign totals, so the memory high-water mark of a million-site
// campaign is O(workers * window) instead of O(sites).
//
// Two modes share one interface:
//
//   * resident (default): windows merge straight into in-memory totals —
//     the normal streaming path;
//   * spilling: windows are framed through the journal codec
//     (checkpoint.hpp + journal.hpp) to a spill file as they arrive and
//     only merged back at finish(), keeping even the totals off the heap
//     until the end. Because report/summary merges are commutative and
//     the codec is full-fidelity, both modes produce identical totals —
//     tests/streaming_crawl_test.cpp pins this equivalence.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "browser/crawl.hpp"
#include "core/report.hpp"
#include "journal/checkpoint.hpp"
#include "journal/journal.hpp"
#include "util/expected.hpp"

namespace h2r::journal {

/// Everything a fold accumulated. `reports` and `overlap_sites` are the
/// measurement state; `summary` is carried for recovery-style consumers
/// (the study's live crawl summary already contains these counters, so it
/// must NOT merge this one in). `windows`/`spill_bytes` are diagnostics.
struct FoldTotals {
  std::map<std::string, core::AggregateReport> reports;
  /// Policy-replay tallies by Policy::label() (optimizer folds only).
  std::map<std::string, core::PolicyTally> tallies;
  browser::CrawlSummary summary;
  std::uint64_t overlap_sites = 0;
  std::uint64_t windows = 0;
  std::uint64_t spill_bytes = 0;
};

class ReportFold {
 public:
  /// Resident fold: windows merge into in-memory totals immediately.
  ReportFold() = default;

  /// Spilling fold: windows are committed to `path` as journal frames
  /// and merged only at finish(). Fails when the file cannot be created.
  static util::Expected<std::unique_ptr<ReportFold>> spilling(
      const std::string& path);

  ReportFold(const ReportFold&) = delete;
  ReportFold& operator=(const ReportFold&) = delete;

  /// Folds one window. Thread-safe — crawl workers call this from their
  /// chunk sinks concurrently; merge commutativity makes the totals
  /// independent of arrival order. Resident folds cannot fail; a
  /// spilling fold surfaces write errors here.
  util::Expected<bool> fold(const ChunkCheckpoint& window);

  /// Returns the accumulated totals. A spilling fold replays its spill
  /// file here (erroring on unreadable or torn frames — the file is
  /// process-local, so a torn tail means lost windows, not a crash to
  /// tolerate). Call once, after the last fold().
  util::Expected<FoldTotals> finish();

  std::uint64_t windows() const noexcept;

 private:
  ReportFold(std::unique_ptr<JournalWriter> writer, std::string path)
      : writer_(std::move(writer)), spill_path_(std::move(path)) {}

  mutable std::mutex mutex_;  // guards: totals_, writer_ use
  FoldTotals totals_;
  std::unique_ptr<JournalWriter> writer_;  // non-null = spilling mode
  std::string spill_path_;
};

}  // namespace h2r::journal
