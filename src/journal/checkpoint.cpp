#include "journal/checkpoint.hpp"

namespace h2r::journal {

namespace {

/// Strict non-negative integer field parse: rejects missing keys,
/// doubles, and negative values instead of defaulting to zero.
util::Expected<std::uint64_t> parse_count(const json::Value& object,
                                          const char* key) {
  const json::Value& field = object[key];
  if (!field.is_int() || field.as_int() < 0) {
    return util::unexpected(
        util::Error{std::string("bad or missing counter '") + key + "'"});
  }
  return static_cast<std::uint64_t>(field.as_int());
}

template <typename Struct>
struct CounterField {
  const char* key;
  std::uint64_t Struct::*member;
};

constexpr CounterField<har::ImportStats> kImportStatFields[] = {
    {"total_entries", &har::ImportStats::total_entries},
    {"h2_entries", &har::ImportStats::h2_entries},
    {"used_entries", &har::ImportStats::used_entries},
    {"socket_zero", &har::ImportStats::socket_zero},
    {"missing_ip", &har::ImportStats::missing_ip},
    {"inconsistent_ip", &har::ImportStats::inconsistent_ip},
    {"invalid_method", &har::ImportStats::invalid_method},
    {"invalid_version", &har::ImportStats::invalid_version},
    {"invalid_status", &har::ImportStats::invalid_status},
    {"wrong_pageref", &har::ImportStats::wrong_pageref},
    {"missing_request_id", &har::ImportStats::missing_request_id},
    {"missing_certificate", &har::ImportStats::missing_certificate},
    {"h1_entries", &har::ImportStats::h1_entries},
    {"h3_entries", &har::ImportStats::h3_entries},
};

constexpr CounterField<browser::CrawlSummary> kSummaryFields[] = {
    {"sites_visited", &browser::CrawlSummary::sites_visited},
    {"sites_unreachable", &browser::CrawlSummary::sites_unreachable},
    {"connections_opened", &browser::CrawlSummary::connections_opened},
    {"group_reuses", &browser::CrawlSummary::group_reuses},
    {"alias_reuses", &browser::CrawlSummary::alias_reuses},
    {"origin_frame_reuses", &browser::CrawlSummary::origin_frame_reuses},
    {"misdirected_retries", &browser::CrawlSummary::misdirected_retries},
};

}  // namespace

json::Value to_json(const har::ImportStats& stats) {
  json::Object object;
  for (const auto& field : kImportStatFields) {
    object.set(field.key, static_cast<std::int64_t>(stats.*field.member));
  }
  return json::Value{std::move(object)};
}

util::Expected<har::ImportStats> import_stats_from_json(
    const json::Value& value) {
  if (!value.is_object()) {
    return util::unexpected(util::Error{"import stats must be an object"});
  }
  har::ImportStats stats;
  for (const auto& field : kImportStatFields) {
    auto parsed = parse_count(value, field.key);
    if (!parsed) return util::unexpected(parsed.error());
    stats.*field.member = parsed.value();
  }
  return stats;
}

json::Value to_json(const browser::CrawlSummary& summary) {
  json::Object object;
  for (const auto& field : kSummaryFields) {
    object.set(field.key, static_cast<std::int64_t>(summary.*field.member));
  }
  object.set("failures", core::to_json(summary.failures));
  object.set("har_stats", to_json(summary.har_stats));
  return json::Value{std::move(object)};
}

util::Expected<browser::CrawlSummary> crawl_summary_from_json(
    const json::Value& value) {
  if (!value.is_object()) {
    return util::unexpected(util::Error{"crawl summary must be an object"});
  }
  browser::CrawlSummary summary;
  for (const auto& field : kSummaryFields) {
    auto parsed = parse_count(value, field.key);
    if (!parsed) return util::unexpected(parsed.error());
    summary.*field.member = parsed.value();
  }
  auto failures = core::failure_summary_from_json(value["failures"]);
  if (!failures) return util::unexpected(failures.error());
  summary.failures = failures.value();
  auto har_stats = import_stats_from_json(value["har_stats"]);
  if (!har_stats) return util::unexpected(har_stats.error());
  summary.har_stats = har_stats.value();
  return summary;
}

std::size_t ChunkCheckpoint::site_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [first, count] : ranges) {
    (void)first;
    total += count;
  }
  return total;
}

json::Value to_json(const ChunkCheckpoint& chunk) {
  json::Object object;
  object.set("campaign", chunk.campaign);
  json::Array ranges;
  for (const auto& [first, count] : chunk.ranges) {
    json::Array range;
    range.push_back(json::Value{static_cast<std::int64_t>(first)});
    range.push_back(json::Value{static_cast<std::int64_t>(count)});
    ranges.push_back(json::Value{std::move(range)});
  }
  object.set("ranges", json::Value{std::move(ranges)});
  object.set("summary", to_json(chunk.summary));
  json::Object reports;
  for (const auto& [name, report] : chunk.reports) {
    reports.set(name, core::to_json_full(report));
  }
  object.set("reports", json::Value{std::move(reports)});
  if (!chunk.tallies.empty()) {
    json::Object tallies;
    for (const auto& [name, tally] : chunk.tallies) {
      tallies.set(name, core::to_json(tally));
    }
    object.set("tallies", json::Value{std::move(tallies)});
  }
  object.set("overlap_sites",
             static_cast<std::int64_t>(chunk.overlap_sites));
  return json::Value{std::move(object)};
}

util::Expected<ChunkCheckpoint> chunk_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return util::unexpected(util::Error{"chunk must be an object"});
  }
  ChunkCheckpoint chunk;
  if (!value["campaign"].is_string() ||
      value["campaign"].as_string().empty()) {
    return util::unexpected(util::Error{"chunk without a campaign name"});
  }
  chunk.campaign = value["campaign"].as_string();

  const json::Value& ranges = value["ranges"];
  if (!ranges.is_array() || ranges.as_array().empty()) {
    return util::unexpected(util::Error{"chunk without rank ranges"});
  }
  for (const json::Value& range : ranges.as_array()) {
    if (!range.is_array() || range.as_array().size() != 2 ||
        !range.at(0).is_int() || !range.at(1).is_int() ||
        range.at(0).as_int() < 0 || range.at(1).as_int() <= 0) {
      return util::unexpected(util::Error{"malformed chunk rank range"});
    }
    chunk.ranges.emplace_back(static_cast<std::size_t>(range.at(0).as_int()),
                              static_cast<std::size_t>(range.at(1).as_int()));
  }

  auto summary = crawl_summary_from_json(value["summary"]);
  if (!summary) return util::unexpected(summary.error());
  chunk.summary = summary.value();

  const json::Value& reports = value["reports"];
  if (!reports.is_object()) {
    return util::unexpected(util::Error{"chunk without a reports object"});
  }
  for (const auto& [name, report_json] : reports.as_object()) {
    auto report = core::report_from_json(report_json);
    if (!report) return util::unexpected(report.error());
    chunk.reports.emplace_back(name, std::move(report.value()));
  }

  // Optional: policy-replay tallies (absent in study journals).
  const json::Value& tallies = value["tallies"];
  if (!tallies.is_null()) {
    if (!tallies.is_object()) {
      return util::unexpected(util::Error{"chunk tallies must be an object"});
    }
    for (const auto& [name, tally_json] : tallies.as_object()) {
      auto tally = core::policy_tally_from_json(tally_json);
      if (!tally) return util::unexpected(tally.error());
      chunk.tallies.emplace_back(name, std::move(tally.value()));
    }
  }

  auto overlap = parse_count(value, "overlap_sites");
  if (!overlap) return util::unexpected(overlap.error());
  chunk.overlap_sites = overlap.value();
  return chunk;
}

}  // namespace h2r::journal
