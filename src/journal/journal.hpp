// Crash-safe append-only journal.
//
// The paper's measurement campaigns ran for days; losing a crawl to a
// crash at site 87,000 of 100,000 meant re-crawling everything. This
// module is the durability substrate that makes interruption recoverable:
// an append-only file of CRC32-framed JSON records, fsynced on every
// commit, with a reader that tolerates the one corruption an append-only
// writer can produce — a torn final frame from a crash mid-append.
//
// Frame format (little-endian):
//
//   +----------------+----------------+------------------+
//   | u32 payload_len | u32 crc32(payload) | payload bytes |
//   +----------------+----------------+------------------+
//
// Frame 0 is the header (journal magic, format version, and the writer's
// config fingerprint); every later frame is one entry. The reader stops
// at the first incomplete or CRC-failing frame and reports how many valid
// bytes precede it; appending resumes at that offset, truncating the torn
// tail. Entries are compact JSON — self-describing, diffable with jq, and
// versionable without a schema compiler.
//
// The layer is content-agnostic: what goes into an entry (study chunk
// checkpoints) is defined by checkpoint.hpp on top.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "util/expected.hpp"

namespace h2r::journal {

/// CRC32 (IEEE 802.3 polynomial, reflected) of a byte string — the frame
/// checksum. Exposed for tests.
std::uint32_t crc32(std::string_view data) noexcept;

/// Everything read_journal recovered from a journal file.
struct JournalContents {
  json::Value header;                // frame 0
  std::vector<json::Value> entries;  // frames 1..n
  /// Offset of the first byte NOT covered by a valid frame. Equal to the
  /// file size for a clean journal; smaller when a torn tail was dropped.
  std::uint64_t valid_bytes = 0;
  /// True when trailing bytes were dropped (crash mid-append).
  bool torn_tail = false;
};

/// Reads a journal. A truncated or CRC-failing final frame is NOT an
/// error — it is the expected signature of a crash during append, and is
/// dropped (torn_tail set). A file without even a complete, valid header
/// frame IS an error, as is a header without the journal magic.
util::Expected<JournalContents> read_journal(const std::string& path);

/// Append-only writer. Every append() is framed, written and fsynced
/// before it returns — after a crash, every entry that append() returned
/// success for is recoverable. Thread-safe: concurrent appends from crawl
/// workers serialize on an internal mutex.
class JournalWriter {
 public:
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates (or truncates) the journal at `path` and commits the header
  /// frame. `header` becomes frame 0, wrapped with the journal magic and
  /// format version.
  static util::Expected<std::unique_ptr<JournalWriter>> create(
      const std::string& path, const json::Value& fingerprint);

  /// Reopens an existing journal for appending. `valid_bytes` (from
  /// read_journal) is where appending resumes; a torn tail beyond it is
  /// truncated away first.
  static util::Expected<std::unique_ptr<JournalWriter>> append_to(
      const std::string& path, std::uint64_t valid_bytes);

  /// Commits one entry: serialize, frame, write, fsync. Returns an error
  /// on any short write / fsync failure (the journal is then no longer
  /// trustworthy and the caller should abort the run).
  util::Expected<bool> append(const json::Value& entry);

  /// Durability counters (for the bench/CLI banners).
  std::uint64_t bytes_written() const noexcept;
  std::uint64_t fsync_count() const noexcept;

 private:
  explicit JournalWriter(int fd) : fd_(fd) {}

  util::Expected<bool> commit_frame(const std::string& payload);

  int fd_ = -1;
  // guards: fd_ writes, bytes_written_, fsyncs_ (append/telemetry race)
  mutable std::mutex mutex_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t fsyncs_ = 0;
};

/// The header fingerprint a journal was created with (read side).
/// Returns an error when the header is not a v1 h2r journal header.
util::Expected<json::Value> header_fingerprint(const json::Value& header);

}  // namespace h2r::journal
