#include "journal/spill.hpp"

#include <utility>

namespace h2r::journal {

namespace {

void merge_window(FoldTotals& totals, const ChunkCheckpoint& window) {
  for (const auto& [name, report] : window.reports) {
    totals.reports[name].merge(report);
  }
  for (const auto& [name, tally] : window.tallies) {
    totals.tallies[name].merge(tally);
  }
  totals.summary.merge(window.summary);
  totals.overlap_sites += window.overlap_sites;
  ++totals.windows;
}

}  // namespace

util::Expected<std::unique_ptr<ReportFold>> ReportFold::spilling(
    const std::string& path) {
  json::Object header;
  header.set("kind", "report-spill");
  auto writer = JournalWriter::create(path, json::Value{std::move(header)});
  if (!writer) return util::unexpected(writer.error());
  return std::unique_ptr<ReportFold>(
      new ReportFold(std::move(writer.value()), path));
}

util::Expected<bool> ReportFold::fold(const ChunkCheckpoint& window) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (writer_ == nullptr) {
    merge_window(totals_, window);
    return true;
  }
  auto committed = writer_->append(to_json(window));
  if (!committed) return util::unexpected(committed.error());
  ++totals_.windows;
  return true;
}

util::Expected<FoldTotals> ReportFold::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (writer_ == nullptr) return std::move(totals_);

  totals_.spill_bytes = writer_->bytes_written();
  writer_.reset();  // closes the fd before the read-back
  auto contents = read_journal(spill_path_);
  if (!contents) return util::unexpected(contents.error());
  if (contents->torn_tail) {
    return util::unexpected(
        util::Error{"spill file has a torn tail: a fold window was lost"});
  }
  const std::uint64_t committed = totals_.windows;
  totals_.windows = 0;
  for (const json::Value& entry : contents->entries) {
    auto window = chunk_from_json(entry);
    if (!window) return util::unexpected(window.error());
    merge_window(totals_, *window);
  }
  if (totals_.windows != committed) {
    return util::unexpected(util::Error{"spill replay count mismatch"});
  }
  return std::move(totals_);
}

std::uint64_t ReportFold::windows() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_.windows;
}

}  // namespace h2r::journal
