// Checkpoint records: what the study engine journals per completed chunk.
//
// A chunk checkpoint captures everything needed to reconstruct a worker's
// contribution for a contiguous-ish slice of a campaign: which absolute
// rank ranges it covered, the CrawlSummary for those sites, and the
// full-fidelity AggregateReports built from them. Because report and
// summary merges are commutative, replaying journaled chunks in any order
// and crawling only the complement reproduces the uninterrupted run
// bit-for-bit.
//
// Serialization is strict both ways: to_json emits full-fidelity reports
// (no top-N truncation — see core::to_json_full), and chunk_from_json
// rejects structurally invalid documents rather than guessing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "browser/crawl.hpp"
#include "core/report_json.hpp"
#include "json/json.hpp"
#include "util/expected.hpp"

namespace h2r::journal {

/// Crawl summary codec (full fidelity; per-worker split and wall time are
/// deliberately excluded — they are observability, not state).
json::Value to_json(const browser::CrawlSummary& summary);
util::Expected<browser::CrawlSummary> crawl_summary_from_json(
    const json::Value& value);

/// HAR import statistics codec.
json::Value to_json(const har::ImportStats& stats);
util::Expected<har::ImportStats> import_stats_from_json(
    const json::Value& value);

/// One journaled unit of completed work.
struct ChunkCheckpoint {
  /// Which campaign the chunk belongs to: "alexa", "nofetch" or "har".
  std::string campaign;
  /// Absolute (first_rank, count) runs covered by this chunk. Usually one
  /// run; more when a resume interleaves leftover ranks.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  /// Crawl counters for exactly the sites in `ranges`.
  browser::CrawlSummary summary;
  /// Named full-fidelity reports for exactly the sites in `ranges`.
  std::vector<std::pair<std::string, core::AggregateReport>> reports;
  /// Named policy-replay tallies for the sites in `ranges` (optimizer
  /// chunks only — one per policy point, keyed by Policy::label()).
  /// Serialized only when non-empty, so study journal bytes are unchanged.
  std::vector<std::pair<std::string, core::PolicyTally>> tallies;
  /// Sites that appeared in both study halves (har campaign only).
  std::uint64_t overlap_sites = 0;

  /// Total number of sites across all ranges.
  std::size_t site_count() const noexcept;
};

json::Value to_json(const ChunkCheckpoint& chunk);
util::Expected<ChunkCheckpoint> chunk_from_json(const json::Value& value);

}  // namespace h2r::journal
