#include "journal/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace h2r::journal {

namespace {

constexpr char kMagic[] = "h2r-journal";
constexpr std::int64_t kFormatVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc
/// Upper bound on one frame: a chunk checkpoint is at most a few MB even
/// at campaign scale; anything bigger is corruption, not data.
constexpr std::uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t read_u32le(const char* bytes) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3]))
          << 24);
}

void append_u32le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

util::Error errno_error(const std::string& what, const std::string& path) {
  return util::Error{what + " " + path + ": " + std::strerror(errno)};
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char byte : data) {
    crc = table[(crc ^ static_cast<unsigned char>(byte)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

util::Expected<JournalContents> read_journal(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return util::unexpected(util::Error{"cannot open journal " + path});
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string data = buffer.str();

  JournalContents contents;
  std::size_t offset = 0;
  bool saw_header = false;
  while (offset + kFrameHeaderBytes <= data.size()) {
    const std::uint32_t length = read_u32le(data.data() + offset);
    const std::uint32_t expected_crc = read_u32le(data.data() + offset + 4);
    if (length > kMaxFrameBytes ||
        offset + kFrameHeaderBytes + length > data.size()) {
      break;  // torn tail: length field from a partial append (or garbage)
    }
    const std::string_view payload(data.data() + offset + kFrameHeaderBytes,
                                   length);
    if (crc32(payload) != expected_crc) break;  // torn tail: partial payload
    auto parsed = json::parse(payload);
    if (!parsed) break;  // CRC collision on garbage — treat as torn
    if (!saw_header) {
      auto fingerprint = header_fingerprint(parsed.value());
      if (!fingerprint) return util::unexpected(fingerprint.error());
      contents.header = std::move(parsed.value());
      saw_header = true;
    } else {
      contents.entries.push_back(std::move(parsed.value()));
    }
    offset += kFrameHeaderBytes + length;
  }
  if (!saw_header) {
    return util::unexpected(
        util::Error{"journal " + path + " has no valid header frame"});
  }
  contents.valid_bytes = offset;
  contents.torn_tail = offset < data.size();
  return contents;
}

util::Expected<json::Value> header_fingerprint(const json::Value& header) {
  if (header["magic"].as_string() != kMagic) {
    return util::unexpected(util::Error{"not an h2r journal (bad magic)"});
  }
  if (!header["version"].is_int() ||
      header["version"].as_int() != kFormatVersion) {
    return util::unexpected(util::Error{"unsupported journal version"});
  }
  if (!header["fingerprint"].is_object()) {
    return util::unexpected(util::Error{"journal header without fingerprint"});
  }
  return header["fingerprint"];
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

util::Expected<std::unique_ptr<JournalWriter>> JournalWriter::create(
    const std::string& path, const json::Value& fingerprint) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return util::unexpected(errno_error("cannot create journal", path));
  }
  std::unique_ptr<JournalWriter> writer{new JournalWriter(fd)};
  json::Object header;
  header.set("magic", kMagic);
  header.set("version", kFormatVersion);
  header.set("fingerprint", fingerprint);
  auto committed = writer->append(json::Value{std::move(header)});
  if (!committed) return util::unexpected(committed.error());
  return writer;
}

util::Expected<std::unique_ptr<JournalWriter>> JournalWriter::append_to(
    const std::string& path, std::uint64_t valid_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    return util::unexpected(errno_error("cannot open journal", path));
  }
  // Drop the torn tail (if any) so the next frame starts on a boundary.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return util::unexpected(errno_error("cannot truncate journal", path));
  }
  return std::unique_ptr<JournalWriter>{new JournalWriter(fd)};
}

util::Expected<bool> JournalWriter::commit_frame(const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  append_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  append_u32le(frame, crc32(payload));
  frame += payload;

  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::unexpected(
          util::Error{std::string("journal write failed: ") +
                      std::strerror(errno)});
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return util::unexpected(util::Error{
        std::string("journal fsync failed: ") + std::strerror(errno)});
  }
  bytes_written_ += frame.size();
  ++fsyncs_;
  return true;
}

util::Expected<bool> JournalWriter::append(const json::Value& entry) {
  if (entry.is_null()) {
    return util::unexpected(util::Error{"refusing to journal a null entry"});
  }
  return commit_frame(json::write(entry));
}

std::uint64_t JournalWriter::bytes_written() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_written_;
}

std::uint64_t JournalWriter::fsync_count() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return fsyncs_;
}

}  // namespace h2r::journal
