#include "net/connect.hpp"

namespace h2r::net {

ConnectResult simulate_connect(const Endpoint& endpoint,
                               fault::FaultInjector* injector,
                               obs::Metrics* metrics) {
  (void)endpoint;  // routing always succeeds in the simulation; the
                   // endpoint is here for symmetry with a real dialer
  ConnectResult result;
  if (metrics != nullptr) metrics->add("net.connect_attempts");
  if (injector == nullptr) return result;
  if (injector->fire(fault::FaultKind::kConnectRefused) ||
      injector->fire(fault::FaultKind::kConnectReset)) {
    result.ok = false;
    result.injected_fault = true;
    if (metrics != nullptr) metrics->add("net.connect_failures");
    return result;
  }
  result.latency_penalty = injector->latency_penalty();
  if (metrics != nullptr && result.latency_penalty > 0) {
    metrics->observe("net.latency_spike_ms", result.latency_penalty);
  }
  return result;
}

HandoutResult simulate_handout(fault::FaultInjector* injector,
                               obs::Metrics* metrics) {
  HandoutResult result;
  if (metrics != nullptr) metrics->add("net.handout_attempts");
  if (injector == nullptr) return result;
  if (injector->fire(fault::FaultKind::kConnectReset)) {
    result.ok = false;
    result.injected_fault = true;
    if (metrics != nullptr) metrics->add("net.handout_stale");
  }
  return result;
}

}  // namespace h2r::net
