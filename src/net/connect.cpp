#include "net/connect.hpp"

namespace h2r::net {

ConnectResult simulate_connect(const Endpoint& endpoint,
                               fault::FaultInjector* injector) {
  (void)endpoint;  // routing always succeeds in the simulation; the
                   // endpoint is here for symmetry with a real dialer
  ConnectResult result;
  if (injector == nullptr) return result;
  if (injector->fire(fault::FaultKind::kConnectRefused) ||
      injector->fire(fault::FaultKind::kConnectReset)) {
    result.ok = false;
    result.injected_fault = true;
    return result;
  }
  result.latency_penalty = injector->latency_penalty();
  return result;
}

}  // namespace h2r::net
