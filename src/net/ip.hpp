// IP address, CIDR prefix and endpoint types.
//
// IPv4 and IPv6 are stored in one 16-byte value type (v4 occupies the first
// 4 bytes). The paper's analysis groups addresses by /24 (the "slightly
// different IPs in the same /24 network" observation), which `Prefix` and
// `IpAddress::slash24()` support directly.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/expected.hpp"

namespace h2r::net {

enum class Family : std::uint8_t { kV4 = 4, kV6 = 6 };

class IpAddress {
 public:
  /// Default: the unspecified IPv4 address 0.0.0.0.
  constexpr IpAddress() noexcept = default;

  /// Builds an IPv4 address from a host-order 32-bit value.
  static IpAddress v4(std::uint32_t host_order) noexcept;

  /// Builds an IPv4 address from four octets.
  static IpAddress v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d) noexcept;

  /// Builds an IPv6 address from 16 bytes (network order).
  static IpAddress v6(const std::array<std::uint8_t, 16>& bytes) noexcept;

  /// Parses dotted-quad IPv4 or RFC 4291 IPv6 (with `::` compression).
  static util::Expected<IpAddress> parse(std::string_view text);

  Family family() const noexcept { return family_; }
  bool is_v4() const noexcept { return family_ == Family::kV4; }
  bool is_v6() const noexcept { return family_ == Family::kV6; }

  /// Host-order 32-bit value; only meaningful for v4.
  std::uint32_t v4_value() const noexcept;

  const std::array<std::uint8_t, 16>& bytes() const noexcept { return bytes_; }

  /// Number of address bits (32 or 128).
  int bit_length() const noexcept { return is_v4() ? 32 : 128; }

  /// Returns bit `i` counting from the most significant bit of the address.
  bool bit(int i) const noexcept;

  /// The address with all bits below `prefix_len` cleared.
  IpAddress masked(int prefix_len) const noexcept;

  /// The enclosing /24 (v4) or /48 (v6) network address — the granularity
  /// the paper uses when discussing "same /24" load balancing.
  IpAddress slash24() const noexcept;

  std::string to_string() const;

  friend std::strong_ordering operator<=>(const IpAddress& a,
                                          const IpAddress& b) noexcept;
  friend bool operator==(const IpAddress& a, const IpAddress& b) noexcept;

 private:
  Family family_ = Family::kV4;
  std::array<std::uint8_t, 16> bytes_{};  // v4 in bytes 0..3
};

/// A CIDR prefix: base address plus prefix length.
class Prefix {
 public:
  Prefix() noexcept = default;
  Prefix(IpAddress base, int length) noexcept;

  /// Parses "a.b.c.d/len" or "v6::/len".
  static util::Expected<Prefix> parse(std::string_view text);

  const IpAddress& base() const noexcept { return base_; }
  int length() const noexcept { return length_; }

  bool contains(const IpAddress& addr) const noexcept;

  std::string to_string() const;

  friend bool operator==(const Prefix& a, const Prefix& b) noexcept = default;

 private:
  IpAddress base_;
  int length_ = 0;
};

/// Transport endpoint: address + port. HTTP/2 Connection Reuse requires both
/// to match (RFC 7540 §9.1.1).
struct Endpoint {
  IpAddress address;
  std::uint16_t port = 443;

  std::string to_string() const;

  friend std::strong_ordering operator<=>(const Endpoint&,
                                          const Endpoint&) noexcept = default;
  friend bool operator==(const Endpoint&, const Endpoint&) noexcept = default;
};

}  // namespace h2r::net

template <>
struct std::hash<h2r::net::IpAddress> {
  std::size_t operator()(const h2r::net::IpAddress& a) const noexcept {
    std::size_t h = static_cast<std::size_t>(a.family());
    for (std::uint8_t b : a.bytes()) h = h * 1099511628211ull + b;
    return h;
  }
};

template <>
struct std::hash<h2r::net::Endpoint> {
  std::size_t operator()(const h2r::net::Endpoint& e) const noexcept {
    return std::hash<h2r::net::IpAddress>{}(e.address) * 31 + e.port;
  }
};
