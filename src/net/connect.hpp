// TCP connection establishment model.
//
// The seed assumed every connect succeeds instantly (modulo RTT); this is
// the fault layer's transport hook: an injected refusal/reset fails the
// attempt before TLS, and a latency spike (bufferbloat, a loaded server)
// stretches the handshake without failing it.
#pragma once

#include "fault/fault.hpp"
#include "net/ip.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"

namespace h2r::net {

struct ConnectResult {
  bool ok = true;
  /// True when the failure was injected (refused/reset); the only kind of
  /// connect failure this model produces.
  bool injected_fault = false;
  /// Extra handshake latency from an injected spike; 0 normally.
  util::SimTime latency_penalty = 0;
};

/// Decides whether a TCP connect to `endpoint` succeeds; `injector` may
/// be null (always succeeds, no penalty). When `metrics` is set, records
/// net.connect_attempts / net.connect_failures and the injected latency
/// spikes as the net.latency_spike_ms histogram.
ConnectResult simulate_connect(const Endpoint& endpoint,
                               fault::FaultInjector* injector,
                               obs::Metrics* metrics = nullptr);

struct HandoutResult {
  bool ok = true;
  /// True when the pooled connection turned out stale (injected reset).
  bool injected_fault = false;
};

/// The upstream pool's handout hook: decides whether an idle pooled
/// connection is still alive when handed out. A server may have silently
/// closed it while it idled — modeled as an injected kConnectReset (the
/// same kind a mid-establishment reset uses; the pool layer attributes it
/// to pool_stale_handouts). `injector` may be null (always alive). When
/// `metrics` is set, records net.handout_attempts / net.handout_stale.
HandoutResult simulate_handout(fault::FaultInjector* injector,
                               obs::Metrics* metrics = nullptr);

}  // namespace h2r::net
