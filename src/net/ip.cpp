#include "net/ip.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "util/strings.hpp"

namespace h2r::net {

IpAddress IpAddress::v4(std::uint32_t host_order) noexcept {
  IpAddress a;
  a.family_ = Family::kV4;
  a.bytes_[0] = static_cast<std::uint8_t>(host_order >> 24);
  a.bytes_[1] = static_cast<std::uint8_t>(host_order >> 16);
  a.bytes_[2] = static_cast<std::uint8_t>(host_order >> 8);
  a.bytes_[3] = static_cast<std::uint8_t>(host_order);
  return a;
}

IpAddress IpAddress::v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept {
  return v4((static_cast<std::uint32_t>(a) << 24) |
            (static_cast<std::uint32_t>(b) << 16) |
            (static_cast<std::uint32_t>(c) << 8) | d);
}

IpAddress IpAddress::v6(const std::array<std::uint8_t, 16>& bytes) noexcept {
  IpAddress a;
  a.family_ = Family::kV6;
  a.bytes_ = bytes;
  return a;
}

std::uint32_t IpAddress::v4_value() const noexcept {
  return (static_cast<std::uint32_t>(bytes_[0]) << 24) |
         (static_cast<std::uint32_t>(bytes_[1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[2]) << 8) | bytes_[3];
}

bool IpAddress::bit(int i) const noexcept {
  assert(i >= 0 && i < bit_length());
  const int byte = i / 8;
  const int offset = 7 - i % 8;
  return ((bytes_[static_cast<std::size_t>(byte)] >> offset) & 1) != 0;
}

IpAddress IpAddress::masked(int prefix_len) const noexcept {
  IpAddress out = *this;
  const int bits = bit_length();
  if (prefix_len >= bits) return out;
  if (prefix_len < 0) prefix_len = 0;
  const std::size_t total_bytes = static_cast<std::size_t>(bits / 8);
  const std::size_t full = static_cast<std::size_t>(prefix_len / 8);
  const int rem = prefix_len % 8;
  std::size_t i = full;
  if (rem != 0 && i < total_bytes) {
    const std::uint8_t mask =
        static_cast<std::uint8_t>(0xFFu << (8 - rem));
    out.bytes_[i] = static_cast<std::uint8_t>(out.bytes_[i] & mask);
    ++i;
  }
  for (; i < total_bytes; ++i) out.bytes_[i] = 0;
  return out;
}

IpAddress IpAddress::slash24() const noexcept {
  return masked(is_v4() ? 24 : 48);
}

namespace {

util::Expected<IpAddress> parse_v4(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) {
    return util::unexpected(util::Error{"IPv4 needs 4 octets"});
  }
  std::array<std::uint8_t, 4> octets{};
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string_view p = parts[i];
    if (p.empty() || p.size() > 3) {
      return util::unexpected(util::Error{"bad IPv4 octet"});
    }
    unsigned value = 0;
    for (char c : p) {
      if (c < '0' || c > '9') {
        return util::unexpected(util::Error{"bad IPv4 octet"});
      }
      value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value > 255) {
      return util::unexpected(util::Error{"IPv4 octet out of range"});
    }
    octets[i] = static_cast<std::uint8_t>(value);
  }
  return IpAddress::v4(octets[0], octets[1], octets[2], octets[3]);
}

util::Expected<IpAddress> parse_v6(std::string_view text) {
  // Split on "::" first; each side is a list of 16-bit groups.
  std::array<std::uint8_t, 16> bytes{};
  const std::size_t gap = text.find("::");
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;

  auto parse_groups = [](std::string_view part,
                         std::vector<std::uint16_t>& out) -> bool {
    if (part.empty()) return true;
    for (std::string_view g : util::split(part, ':')) {
      if (g.empty() || g.size() > 4) return false;
      unsigned value = 0;
      for (char c : g) {
        value <<= 4;
        if (c >= '0' && c <= '9') {
          value |= static_cast<unsigned>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          value |= static_cast<unsigned>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          value |= static_cast<unsigned>(c - 'A' + 10);
        } else {
          return false;
        }
      }
      out.push_back(static_cast<std::uint16_t>(value));
    }
    return true;
  };

  if (gap == std::string_view::npos) {
    if (!parse_groups(text, head) || head.size() != 8) {
      return util::unexpected(util::Error{"bad IPv6 address"});
    }
  } else {
    if (text.find("::", gap + 1) != std::string_view::npos) {
      return util::unexpected(util::Error{"multiple '::' in IPv6"});
    }
    if (!parse_groups(text.substr(0, gap), head) ||
        !parse_groups(text.substr(gap + 2), tail) ||
        head.size() + tail.size() >= 8) {
      return util::unexpected(util::Error{"bad IPv6 address"});
    }
  }
  std::vector<std::uint16_t> groups(8, 0);
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i) {
    groups[8 - tail.size() + i] = tail[i];
  }
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xFF);
  }
  return IpAddress::v6(bytes);
}

}  // namespace

util::Expected<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

std::string IpAddress::to_string() const {
  char buf[64];
  if (is_v4()) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes_[0], bytes_[1],
                  bytes_[2], bytes_[3]);
    return buf;
  }
  // RFC 5952 canonical form: compress the longest run of zero groups.
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>((bytes_[2 * i] << 8) |
                                           bytes_[2 * i + 1]);
  }
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;  // Don't compress a single zero group.

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    std::snprintf(buf, sizeof(buf), "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  return out;
}

std::strong_ordering operator<=>(const IpAddress& a,
                                 const IpAddress& b) noexcept {
  if (a.family_ != b.family_) {
    return a.family_ < b.family_ ? std::strong_ordering::less
                                 : std::strong_ordering::greater;
  }
  return a.bytes_ <=> b.bytes_;
}

bool operator==(const IpAddress& a, const IpAddress& b) noexcept {
  return a.family_ == b.family_ && a.bytes_ == b.bytes_;
}

Prefix::Prefix(IpAddress base, int length) noexcept
    : base_(base.masked(length)), length_(length) {
  assert(length >= 0 && length <= base.bit_length());
}

util::Expected<Prefix> Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return util::unexpected(util::Error{"prefix needs '/len'"});
  }
  auto addr = IpAddress::parse(text.substr(0, slash));
  if (!addr) return util::unexpected(addr.error());
  const std::string len_str(text.substr(slash + 1));
  char* end = nullptr;
  const long len = std::strtol(len_str.c_str(), &end, 10);
  if (end != len_str.c_str() + len_str.size() || len < 0 ||
      len > addr->bit_length()) {
    return util::unexpected(util::Error{"bad prefix length"});
  }
  return Prefix{addr.value(), static_cast<int>(len)};
}

bool Prefix::contains(const IpAddress& addr) const noexcept {
  if (addr.family() != base_.family()) return false;
  return addr.masked(length_) == base_;
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

std::string Endpoint::to_string() const {
  if (address.is_v6()) {
    return "[" + address.to_string() + "]:" + std::to_string(port);
  }
  return address.to_string() + ":" + std::to_string(port);
}

}  // namespace h2r::net
