#include "netlog/netlog.hpp"

#include <algorithm>

namespace h2r::netlog {

std::string to_string(EventType type) {
  switch (type) {
    case EventType::kDnsResolved: return "DNS_RESOLVED";
    case EventType::kSessionCreated: return "HTTP2_SESSION_CREATED";
    case EventType::kSessionAvailable: return "HTTP2_SESSION_AVAILABLE";
    case EventType::kSessionClosed: return "HTTP2_SESSION_CLOSED";
    case EventType::kSessionGoaway: return "HTTP2_SESSION_GOAWAY";
    case EventType::kSessionAliasReused: return "HTTP2_SESSION_POOL_ALIAS";
    case EventType::kOriginFrame: return "HTTP2_SESSION_ORIGIN_FRAME";
    case EventType::kRequestStarted: return "HTTP2_STREAM_STARTED";
    case EventType::kRequestFinished: return "HTTP2_STREAM_FINISHED";
    case EventType::kMisdirected: return "HTTP2_SESSION_MISDIRECTED";
    case EventType::kPreconnect: return "HTTP2_SESSION_PRECONNECT";
    case EventType::kConnectFailed: return "SOCKET_CONNECT_FAILED";
    case EventType::kStreamReset: return "HTTP2_STREAM_RESET";
    case EventType::kFetchRetry: return "URL_REQUEST_RETRY";
    case EventType::kDeadlineExceeded: return "PAGE_LOAD_DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

void NetLog::record(EventType type, util::SimTime time,
                    std::uint64_t source_id, ParamList params) {
  Event e;
  e.type = type;
  e.time = time;
  e.source_id = source_id;
  e.params = std::move(params);
  // Sorted params are the Event invariant: param() binary-searches and
  // to_json relies on the order for byte-stable dumps.
  std::sort(e.params.begin(), e.params.end());
  events_.push_back(std::move(e));
}

std::vector<const Event*> NetLog::for_source(std::uint64_t source_id) const {
  std::vector<const Event*> out;
  for (const Event& e : events_) {
    if (e.source_id == source_id) out.push_back(&e);
  }
  return out;
}

json::Value NetLog::to_json() const {
  json::Array events;
  events.reserve(events_.size());
  for (const Event& e : events_) {
    json::Object obj;
    obj.set("type", to_string(e.type));
    obj.set("time", static_cast<std::int64_t>(e.time));
    obj.set("source", static_cast<std::int64_t>(e.source_id));
    json::Object params;
    for (const auto& [key, value] : e.params) params.set(key, value);
    obj.set("params", std::move(params));
    events.emplace_back(std::move(obj));
  }
  json::Object root;
  root.set("events", std::move(events));
  return json::Value{std::move(root)};
}

util::Expected<NetLog> NetLog::from_json(const json::Value& value) {
  const json::Value& events = value["events"];
  if (!events.is_array()) {
    return util::unexpected(util::Error{"missing events array"});
  }
  NetLog log;
  for (const json::Value& item : events.as_array()) {
    const std::string& type_name = item["type"].as_string();
    bool found = false;
    Event e;
    for (int t = 0; t <= static_cast<int>(EventType::kDeadlineExceeded); ++t) {
      if (to_string(static_cast<EventType>(t)) == type_name) {
        e.type = static_cast<EventType>(t);
        found = true;
        break;
      }
    }
    if (!found) {
      return util::unexpected(
          util::Error{"unknown event type: " + type_name});
    }
    e.time = item["time"].as_int();
    e.source_id = static_cast<std::uint64_t>(item["source"].as_int());
    for (const auto& [key, param] : item["params"].as_object()) {
      e.params.emplace_back(key, param.as_string());
    }
    std::sort(e.params.begin(), e.params.end());
    log.events_.push_back(std::move(e));
  }
  return log;
}

}  // namespace h2r::netlog
