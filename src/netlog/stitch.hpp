// Reconstructs connection records from a raw NetLog event stream
// ("stitch these events together to gather a precise view of the session
// lifecycle", paper §4.2.2).
#pragma once

#include <string>

#include "core/connection.hpp"
#include "netlog/netlog.hpp"

namespace h2r::netlog {

/// Builds the per-site observation from the event stream of one page load.
/// Connections are ordered by creation time; requests carry exact start
/// and finish times; 421 responses populate the exclusion lists; origin
/// sets are attached when ORIGIN frames were logged.
core::SiteObservation stitch_site(const std::string& site_url,
                                  const NetLog& log);

}  // namespace h2r::netlog
