#include "netlog/stitch.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "net/ip.hpp"
#include "util/strings.hpp"

namespace h2r::netlog {

namespace {

std::vector<std::string> split_list(const std::string& joined) {
  std::vector<std::string> out;
  if (joined.empty()) return out;
  for (std::string_view part : util::split(joined, ',')) {
    if (!part.empty()) out.emplace_back(part);
  }
  return out;
}

}  // namespace

core::SiteObservation stitch_site(const std::string& site_url,
                                  const NetLog& log) {
  core::SiteObservation site;
  site.site_url = site_url;

  std::map<std::uint64_t, core::ConnectionRecord> sessions;
  // (session, stream) -> index into the record's request list.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> streams;

  for (const Event& e : log.events()) {
    switch (e.type) {
      case EventType::kSessionCreated: {
        core::ConnectionRecord rec;
        rec.id = e.source_id;
        auto ip = net::IpAddress::parse(e.param("ip"));
        if (ip.has_value()) rec.endpoint.address = ip.value();
        rec.endpoint.port = static_cast<std::uint16_t>(
            std::strtoul(e.param("port").c_str(), nullptr, 10));
        rec.initial_domain = util::to_lower(e.param("domain"));
        rec.opened_at = e.time;
        rec.san_dns_names = split_list(e.param("cert_sans"));
        rec.issuer_organization = e.param("cert_issuer");
        rec.certificate_serial =
            std::strtoull(e.param("cert_serial").c_str(), nullptr, 10);
        rec.has_certificate = !rec.san_dns_names.empty();
        if (!e.param("protocol").empty()) rec.protocol = e.param("protocol");
        rec.privacy = e.param("privacy") == "1";
        rec.operator_name = e.param("operator");
        rec.served_domains = split_list(e.param("served"));
        sessions[e.source_id] = std::move(rec);
        break;
      }
      case EventType::kSessionClosed: {
        const auto it = sessions.find(e.source_id);
        if (it != sessions.end()) it->second.closed_at = e.time;
        break;
      }
      case EventType::kOriginFrame: {
        const auto it = sessions.find(e.source_id);
        if (it != sessions.end()) {
          it->second.origin_set = split_list(e.param("origins"));
        }
        break;
      }
      case EventType::kMisdirected: {
        const auto it = sessions.find(e.source_id);
        if (it != sessions.end()) {
          it->second.excluded_domains.push_back(
              util::to_lower(e.param("domain")));
        }
        break;
      }
      case EventType::kRequestStarted: {
        const auto it = sessions.find(e.source_id);
        if (it == sessions.end()) break;
        core::RequestRecord req;
        req.started_at = e.time;
        req.domain = util::to_lower(e.param("domain"));
        req.method = e.param("method").empty() ? "GET" : e.param("method");
        const std::uint64_t stream =
            std::strtoull(e.param("stream").c_str(), nullptr, 10);
        streams[{e.source_id, stream}] = it->second.requests.size();
        it->second.requests.push_back(std::move(req));
        break;
      }
      case EventType::kRequestFinished: {
        const auto session_it = sessions.find(e.source_id);
        if (session_it == sessions.end()) break;
        const std::uint64_t stream =
            std::strtoull(e.param("stream").c_str(), nullptr, 10);
        const auto idx_it = streams.find({e.source_id, stream});
        if (idx_it == streams.end()) break;
        core::RequestRecord& req =
            session_it->second.requests[idx_it->second];
        req.finished_at = e.time;
        req.status =
            static_cast<int>(std::strtol(e.param("status").c_str(), nullptr,
                                         10));
        break;
      }
      case EventType::kStreamReset: {
        // Aborted exchange: without this the request would keep its
        // defaults (status 200, finished_at 0) and look successful.
        const auto session_it = sessions.find(e.source_id);
        if (session_it == sessions.end()) break;
        const std::uint64_t stream =
            std::strtoull(e.param("stream").c_str(), nullptr, 10);
        const auto idx_it = streams.find({e.source_id, stream});
        if (idx_it == streams.end()) break;
        core::RequestRecord& req =
            session_it->second.requests[idx_it->second];
        req.finished_at = e.time;
        req.status = 0;
        break;
      }
      case EventType::kDnsResolved:
      case EventType::kSessionAvailable:
      case EventType::kSessionGoaway:
      case EventType::kSessionAliasReused:
      case EventType::kPreconnect:
      case EventType::kConnectFailed:
      case EventType::kFetchRetry:
      case EventType::kDeadlineExceeded:
        break;  // informational only
    }
  }

  site.connections.reserve(sessions.size());
  for (auto& [id, rec] : sessions) {
    (void)id;
    site.connections.push_back(std::move(rec));
  }
  std::stable_sort(site.connections.begin(), site.connections.end(),
                   [](const core::ConnectionRecord& a,
                      const core::ConnectionRecord& b) {
                     if (a.opened_at != b.opened_at) {
                       return a.opened_at < b.opened_at;
                     }
                     return a.id < b.id;
                   });
  return site;
}

}  // namespace h2r::netlog
