// A Chromium-NetLog-like event stream.
//
// The browser emits one flat, time-ordered list of typed events with a
// source id (the HTTP/2 session). The paper's own-measurement pipeline
// "stitches these events together to gather a precise view of the session
// lifecycle" — stitch.hpp does exactly that, reconstructing
// core::ConnectionRecords from nothing but the event stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json/json.hpp"
#include "util/expected.hpp"
#include "util/clock.hpp"

namespace h2r::netlog {

enum class EventType : std::uint8_t {
  kDnsResolved,        // host, addresses, from_cache
  kSessionCreated,     // ip, port, domain, privacy, cert_*
  kSessionAvailable,   // TLS handshake done
  kSessionClosed,      // end of socket
  kSessionGoaway,      // server GOAWAY
  kSessionAliasReused, // IP-pooling hit: request coalesced onto session
  kOriginFrame,        // RFC 8336 origin set received
  kRequestStarted,     // stream opened
  kRequestFinished,    // response complete (status)
  kMisdirected,        // HTTP 421 for a domain on this session
  kPreconnect,         // speculative connection (no request)
  // Fault-layer events. Appended after kPreconnect so dumps written by
  // older builds keep parsing (from_json iterates the enum range).
  kConnectFailed,      // injected connect/TLS/DNS failure (host, cause)
  kStreamReset,        // server RST_STREAM (stream, cause)
  kFetchRetry,         // browser retry after an injected fault (host,
                       // attempt, backoff_ms)
  kDeadlineExceeded,   // per-site watchdog fired: load abandoned
                       // (budget_ms, pending)
};

std::string to_string(EventType type);

/// Event parameters as a flat key/value list, sorted by key. A browser
/// run records millions of events; a std::map cost one tree node per
/// parameter, which dominated the crawl's allocation profile. record()
/// establishes the sort order, so to_json still emits keys in the same
/// (sorted) order a map produced — dump bytes are unchanged.
using ParamList = std::vector<std::pair<std::string, std::string>>;

struct Event {
  EventType type = EventType::kSessionCreated;
  util::SimTime time = 0;
  /// Session id the event belongs to (0 = no session, e.g. DNS).
  std::uint64_t source_id = 0;
  /// Free-form parameters, mirroring NetLog's JSON params. Sorted by
  /// key; param() binary-searches.
  ParamList params;

  // Inline: stitch reads several params per event over millions of
  // events, so the binary search must not pay a call per key.
  const std::string& param(std::string_view key) const noexcept {
    static const std::string kEmpty;
    const auto it = std::lower_bound(
        params.begin(), params.end(), key,
        [](const auto& entry, std::string_view k) { return entry.first < k; });
    return it == params.end() || it->first != key ? kEmpty : it->second;
  }
};

class NetLog {
 public:
  void record(EventType type, util::SimTime time, std::uint64_t source_id,
              ParamList params = {});

  const std::vector<Event>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }
  /// Pre-size the event buffer (the browser reserves per page load).
  void reserve(std::size_t n) { events_.reserve(n); }

  /// Events of one session, in order.
  std::vector<const Event*> for_source(std::uint64_t source_id) const;

  /// NetLog-style JSON dump ({"events": [...]}).
  json::Value to_json() const;

  /// Parses a dump produced by to_json(). Unknown event-type strings are
  /// an error (the dump format is ours).
  static util::Expected<NetLog> from_json(const json::Value& value);

 private:
  std::vector<Event> events_;
};

}  // namespace h2r::netlog
