// Minimal JSON document model, parser and writer.
//
// This exists as the substrate for the HAR module (HTTP Archive files are
// JSON). It supports the full JSON grammar (RFC 8259) with UTF-8 pass-through
// and \uXXXX escapes (including surrogate pairs), preserves object key
// insertion order (HAR consumers expect stable output), and distinguishes
// integers from doubles where the input allows it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/expected.hpp"

namespace h2r::json {

class Value;

/// An ordered object: preserves insertion order of keys, with O(log n)
/// lookup via a side index.
class Object {
 public:
  using Entry = std::pair<std::string, Value>;

  Object() = default;
  Object(const Object& other);
  Object& operator=(const Object& other);
  Object(Object&&) noexcept = default;
  Object& operator=(Object&&) noexcept = default;
  ~Object() = default;

  /// Inserts or overwrites `key`.
  Value& set(std::string key, Value value);

  /// Returns the value for `key`, or nullptr.
  const Value* find(std::string_view key) const noexcept;
  Value* find(std::string_view key) noexcept;

  bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

  friend bool operator==(const Object& a, const Object& b);

 private:
  void rebuild_index();

  std::vector<Entry> entries_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

using Array = std::vector<Value>;

enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

/// A JSON value. Value-semantic; arrays and objects are held by value.
class Value {
 public:
  Value() noexcept : type_(Type::kNull) {}
  Value(std::nullptr_t) noexcept : type_(Type::kNull) {}
  Value(bool b) noexcept : type_(Type::kBool), bool_(b) {}
  Value(int i) noexcept : type_(Type::kInt), int_(i) {}
  Value(std::int64_t i) noexcept : type_(Type::kInt), int_(i) {}
  Value(std::uint64_t u) noexcept
      : type_(Type::kInt), int_(static_cast<std::int64_t>(u)) {}
  Value(double d) noexcept : type_(Type::kDouble), double_(d) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}
  Value(std::string s) noexcept : type_(Type::kString), string_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::kString), string_(s) {}
  Value(Array a) noexcept : type_(Type::kArray), array_(std::move(a)) {}
  Value(Object o) noexcept : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_int() const noexcept { return type_ == Type::kInt; }
  bool is_double() const noexcept { return type_ == Type::kDouble; }
  bool is_number() const noexcept { return is_int() || is_double(); }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const noexcept {
    if (is_int()) return int_;
    if (is_double()) return static_cast<std::int64_t>(double_);
    return fallback;
  }
  double as_double(double fallback = 0.0) const noexcept {
    if (is_double()) return double_;
    if (is_int()) return static_cast<double>(int_);
    return fallback;
  }
  const std::string& as_string() const noexcept {
    static const std::string kEmpty;
    return is_string() ? string_ : kEmpty;
  }
  const Array& as_array() const noexcept {
    static const Array kEmpty;
    return is_array() ? array_ : kEmpty;
  }
  const Object& as_object() const noexcept {
    static const Object kEmpty;
    return is_object() ? object_ : kEmpty;
  }
  Array& mutable_array() noexcept { return array_; }
  Object& mutable_object() noexcept { return object_; }

  /// Object member access; returns a null Value for misses/non-objects.
  const Value& operator[](std::string_view key) const noexcept;

  /// Array element access; returns a null Value when out of range.
  const Value& at(std::size_t i) const noexcept;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a complete JSON document. Trailing non-whitespace is an error.
util::Expected<Value> parse(std::string_view text);

struct WriteOptions {
  bool pretty = false;
  int indent = 2;
};

/// Serializes `value` to a JSON string.
std::string write(const Value& value, const WriteOptions& opts = {});

}  // namespace h2r::json
